"""Setup shim for environments without the ``wheel`` package.

The project is configured in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on offline machines where pip cannot
build PEP 517 editable wheels.
"""

from setuptools import setup

setup()
