"""Figure 9 — power gate, Vcc, frequency and throttle timelines.

Paper claims regenerated here:
* case (a), base frequency: the AVX2 loop opens the power gate within
  nanoseconds, then runs throttled for microseconds while the rail ramps
  the di/dt guardband — the wake latency is ~0.1 % of the TP;
* case (c), turbo frequency: the same loop additionally triggers the
  Icc_max protection, and the package steps its frequency down.
"""

from conftest import banner

from repro.analysis.experiments import fig9_timeline
from repro.analysis.figures import ascii_series


def test_bench_fig09(benchmark):
    result = benchmark.pedantic(fig9_timeline, rounds=1, iterations=1)

    banner("Figure 9(a): di/dt guardband ramp at base frequency")
    print(f"AVX power-gate wake : {result.didt_wake_ns:.1f} ns (paper: 8-15 ns)")
    print(f"throttling period   : {result.didt_tp_us:.1f} us (paper: ~10 us)")
    share = result.didt_wake_ns / (result.didt_tp_us * 1000.0)
    print(f"wake / TP share     : {share * 100:.2f}% (paper: ~0.1%)")
    print("throttle breakpoints (t_ns, state):", result.didt_throttle[:6])
    print(ascii_series(result.didt_vcc.times_ns, result.didt_vcc.values * 1000,
                       label="Vcc (mV) during ramp"))

    banner("Figure 9(c): Icc_max protection at turbo (P-state transition)")
    for t, f in result.limit_freq[:8]:
        print(f"  t={t / 1000.0:8.1f} us  f={f:.2f} GHz")

    benchmark.extra_info["wake_ns"] = result.didt_wake_ns
    benchmark.extra_info["tp_us"] = round(result.didt_tp_us, 2)
    assert result.didt_wake_ns <= 20.0
    assert result.didt_tp_us > 5.0
    assert share < 0.005
    assert min(f for _, f in result.limit_freq) < 3.1
