"""Scenario library: declarative runs must stay cheap enough to gate.

The verify goldens, the docs regenerator, and the CI gates all lean on
``run_scenario`` being fast — the determinism auditor re-runs every
golden scenario in fresh interpreters, so a slow scenario multiplies
straight into the gate's wall clock.  This benchmark pins the
two-tenant interference scenario (the most expensive registered
golden: two calibrations plus two interleaved transfers on one shared
PMU) and records the per-tenant outcome in ``extra_info`` so the gate
artifact shows the channel quality alongside the timing.
"""

from repro.scenarios import run_scenario

SCENARIO = "interference_2pair"


def test_bench_scenario_interference(benchmark):
    run = benchmark.pedantic(
        lambda: run_scenario(SCENARIO), rounds=5, iterations=1)
    assert len(run.tenants) == 2
    assert all(tenant.feasible for tenant in run.tenants)

    benchmark.extra_info["scenario"] = SCENARIO
    benchmark.extra_info["mean_ber"] = round(run.mean_ber, 4)
    benchmark.extra_info["aggregate_goodput_bps"] = round(
        run.aggregate_goodput_bps, 1)
    benchmark.extra_info["slot_ns"] = run.slot_ns
