"""Simulator performance: how fast the simulation itself runs.

Not a paper artifact — a regression guard on the event-driven engine's
efficiency.  A full covert-channel transfer (calibration + 16 symbols,
~18 ms of simulated time, hundreds of voltage transitions) should stay
in the tens-of-milliseconds range of host time.
"""

from repro import System, cannon_lake_i3_8121u
from repro.core import IccThreadCovert


def one_transfer():
    system = System(cannon_lake_i3_8121u())
    report = IccThreadCovert(system).transfer(b"\x5a\xc3\x0f\x3c")
    return system, report


def test_bench_simperf(benchmark):
    system, report = benchmark.pedantic(one_transfer, rounds=5, iterations=1)
    simulated_s = system.now / 1e9
    benchmark.extra_info["simulated_ms"] = round(system.now / 1e6, 1)
    benchmark.extra_info["events"] = system.engine.events_run
    assert report.ber == 0.0
    # The engine must stay event-driven: a multi-ms simulation takes a
    # few hundred events, not millions.
    assert system.engine.events_run < 20_000
    assert simulated_s > 0.01  # really simulated multiple milliseconds
