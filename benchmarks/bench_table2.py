"""Table 2 — comparison against state-of-the-art throttling channels.

Regenerates the paper's comparison matrix with *measured* bandwidths:
NetSpectre reaches the same hardware thread only at ~1.5 kb/s; TurboCC
crosses cores but needs turbo and manages ~61 b/s; IChannels covers all
three placements at ~3 kb/s, user-level, turbo-independent.
"""

from conftest import banner, runner_from_env

from repro.analysis.experiments import fig12_throughput, table2_comparison
from repro.analysis.figures import format_table


def test_bench_table2(benchmark):
    def build():
        runner = runner_from_env()
        return table2_comparison(fig12_throughput(runner=runner))

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    banner("Table 2: comparison to state-of-the-art covert channels")
    def mark(flag):
        return "yes" if flag else "-"

    table = []
    for row in rows:
        table.append([
            row.proposal, mark(row.same_core), mark(row.cross_smt),
            mark(row.cross_core), f"{row.bw_bps:.0f} b/s",
            "U" if row.user_level else "K", row.mechanism,
            mark(row.turbo_independent), mark(row.root_cause_identified),
            mark(row.effective_mitigations),
        ])
    print(format_table(
        ["proposal", "same core", "cross-SMT", "cross-core", "BW",
         "U/K", "mechanism", "turbo-indep", "root cause", "mitigations"],
        table))

    by_name = {r.proposal: r for r in rows}
    benchmark.extra_info["ichannels_bw"] = round(by_name["IChannels"].bw_bps)
    benchmark.extra_info["netspectre_bw"] = round(by_name["NetSpectre"].bw_bps)
    benchmark.extra_info["turbocc_bw"] = round(by_name["TurboCC"].bw_bps)
    assert by_name["IChannels"].bw_bps > 2000.0
    assert by_name["NetSpectre"].bw_bps > 1000.0
    assert by_name["TurboCC"].bw_bps < 100.0
    assert by_name["IChannels"].cross_smt and by_name["IChannels"].cross_core
