"""Shared helpers for the benchmark harnesses.

Each ``bench_*`` module regenerates one of the paper's tables or figures
(see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
paper-vs-measured record).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated rows/series; without it they are captured
but the benchmark timings and ``extra_info`` summaries still print.
"""

from __future__ import annotations


def banner(title: str) -> None:
    """Print a section header for a regenerated artifact."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
