"""Shared helpers for the benchmark harnesses.

Each ``bench_*`` module regenerates one of the paper's tables or figures
(see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
paper-vs-measured record).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated rows/series; without it they are captured
but the benchmark timings and ``extra_info`` summaries still print.
"""

from __future__ import annotations

import os

import pytest

from repro.obs import Tracer, install, write_chrome_trace, write_metrics_json
from repro.runner import ResultCache, SweepRunner


@pytest.fixture(scope="session", autouse=True)
def obs_from_env():
    """Trace/meter a whole benchmark run from the environment.

    ``REPRO_TRACE=trace.json`` records every instrumented span of the
    session and writes a Chrome trace there at teardown;
    ``REPRO_METRICS=metrics.json`` writes the counter/histogram
    snapshot.  Either alone works (metrics-only runs skip the event
    list).  Unset, this fixture is inert and the no-op tracer stays
    installed.
    """
    trace_path = os.environ.get("REPRO_TRACE")
    metrics_path = os.environ.get("REPRO_METRICS")
    if not trace_path and not metrics_path:
        yield None
        return
    tracer = Tracer(events=trace_path is not None)
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)
        if trace_path:
            write_chrome_trace(tracer, trace_path)
        if metrics_path:
            write_metrics_json(tracer, metrics_path)


def runner_from_env() -> SweepRunner:
    """A :class:`SweepRunner` configured from the environment.

    ``REPRO_JOBS`` sets the worker-process count (default 1, serial) and
    ``REPRO_CACHE_DIR`` — when set — attaches a result cache there, so
    CI can parallelise and warm-cache the sweep benchmarks without
    touching the harness code.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    cache = ResultCache(root=cache_dir) if cache_dir else None
    return SweepRunner(jobs=jobs, cache=cache)


def banner(title: str) -> None:
    """Print a section header for a regenerated artifact."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
