"""Shared helpers for the benchmark harnesses.

Each ``bench_*`` module regenerates one of the paper's tables or figures
(see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
paper-vs-measured record).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated rows/series; without it they are captured
but the benchmark timings and ``extra_info`` summaries still print.
"""

from __future__ import annotations

import os

from repro.runner import ResultCache, SweepRunner


def runner_from_env() -> SweepRunner:
    """A :class:`SweepRunner` configured from the environment.

    ``REPRO_JOBS`` sets the worker-process count (default 1, serial) and
    ``REPRO_CACHE_DIR`` — when set — attaches a result cache there, so
    CI can parallelise and warm-cache the sweep benchmarks without
    touching the harness code.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    cache = ResultCache(root=cache_dir) if cache_dir else None
    return SweepRunner(jobs=jobs, cache=cache)


def banner(title: str) -> None:
    """Print a section header for a regenerated artifact."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
