"""Multi-tenant interference: two covert pairs on one machine.

Beyond-paper: what happens when two independent IccCoresCovert pairs run
concurrently on an 8-core Coffee Lake?  Both pairs' transitions
serialise on the shared rail, so each is the other's worst-case noise.
Aligned slot clocks collide every transaction and kill both channels;
offsetting one schedule by half a slot time-division-multiplexes the
rail and restores both — covert capacity on a shared machine is a
contended resource that colluding attackers must schedule.
"""

from conftest import banner

from repro.analysis.experiments import multi_pair_interference
from repro.analysis.figures import format_table


def test_bench_multipair(benchmark):
    result = benchmark.pedantic(multi_pair_interference, rounds=1,
                                iterations=1)

    banner("Two IccCoresCovert pairs sharing one 8-core Coffee Lake")
    print(format_table(
        ["configuration", "pair A BER", "pair B BER"],
        [["solo (reference)", f"{result.ber_solo:.3f}", "-"],
         ["both pairs, aligned slots", f"{result.ber_aligned[0]:.3f}",
          f"{result.ber_aligned[1]:.3f}"],
         ["both pairs, half-slot offset", f"{result.ber_offset[0]:.3f}",
          f"{result.ber_offset[1]:.3f}"]]))
    print("-> the shared rail is a contended medium: time-division "
          "multiplexing (the half-slot offset) is the sharing discipline")

    benchmark.extra_info["aligned_ber"] = result.ber_aligned[0]
    benchmark.extra_info["offset_ber"] = result.ber_offset[0]
    assert result.ber_solo == 0.0
    assert min(result.ber_aligned) > 0.2   # aligned pairs jam each other
    assert max(result.ber_offset) < 0.05   # TDM restores both
