"""Figure 14 — bit error rate under system noise and concurrent PHIs.

Paper claims regenerated here:
* (a) BER stays low even at thousands of interrupts/context switches per
  second — the decode window is only microseconds long, so collisions
  are rare;
* (c) BER rises with the rate of a concurrent application injecting
  random-level PHIs, because higher-level App PHIs outrank the channel's
  own symbols on the shared rail;
* running a 7-zip-like neighbour (AVX2 bursts, no AVX-512) keeps BER
  below the paper's 0.07 bound.
"""

from conftest import banner, runner_from_env

from repro.analysis.experiments import fig14_noise_sensitivity
from repro.analysis.figures import ascii_bars


def test_bench_fig14(benchmark):
    result = benchmark.pedantic(fig14_noise_sensitivity,
                                kwargs={"runner": runner_from_env()},
                                rounds=1, iterations=1)

    banner("Figure 14(a): BER vs interrupt/context-switch rate")
    rows = [(f"{int(rate):>6d} events/s", ber)
            for rate, ber in sorted(result.ber_vs_event_rate.items())]
    print(ascii_bars(rows))
    print("(paper: low BER even in a highly noisy system)")

    banner("Figure 14(c): BER vs concurrent App-PHI rate")
    rows = [(f"{int(rate):>6d} PHIs/s", ber)
            for rate, ber in sorted(result.ber_vs_phi_rate.items())]
    print(ascii_bars(rows))
    print("(paper: BER grows significantly with the App-PHI rate)")

    banner("7-zip neighbour")
    print(f"BER with 7-zip-like workload: {result.sevenzip_ber:.3f} "
          f"(paper: < 0.07)")

    benchmark.extra_info["max_event_ber"] = round(
        max(result.ber_vs_event_rate.values()), 4)
    benchmark.extra_info["phi_10k_ber"] = round(
        result.ber_vs_phi_rate[10000.0], 4)
    benchmark.extra_info["sevenzip_ber"] = round(result.sevenzip_ber, 4)
    assert max(result.ber_vs_event_rate.values()) < 0.15
    assert (result.ber_vs_phi_rate[10000.0]
            >= result.ber_vs_phi_rate[10.0])
    assert result.sevenzip_ber < 0.07
