"""Figure 13 — receiver TP distributions per level in a low-noise system.

Paper claims regenerated here: the four level clusters (L1-L4) do not
overlap, with adjacent clusters separated by more than 2 000 TSC cycles,
so threshold decoding has a near-zero error rate under low system noise.
"""

from conftest import banner, runner_from_env

from repro.analysis.experiments import fig13_level_distribution
from repro.analysis.figures import histogram_text


def test_bench_fig13(benchmark):
    result = benchmark.pedantic(fig13_level_distribution,
                                kwargs={"symbols_per_level": 10,
                                        "runner": runner_from_env()},
                                rounds=1, iterations=1)

    banner("Figure 13: receiver TP measurement clusters (TSC cycles)")
    for symbol in sorted(result.samples_by_symbol):
        samples = result.samples_by_symbol[symbol]
        print(f"\nL{symbol + 1} (bits {symbol >> 1}{symbol & 1}), "
              f"{len(samples)} transactions:")
        print(histogram_text(samples, bins=5))
    print("\ndecision thresholds:",
          [f"{t:.0f}" for t in result.thresholds])
    print("adjacent cluster gaps (cycles):",
          [(f"L{a + 1}", f"L{b + 1}", round(g)) for a, b, g in result.separations])
    print(f"minimum gap: {result.min_gap_cycles:.0f} cycles "
          f"(paper: > 2000 cycles)")

    benchmark.extra_info["min_gap_cycles"] = round(result.min_gap_cycles)
    assert result.min_gap_cycles > 2000.0
