"""Trace-capture microbenchmark: vectorized vs scalar rail sampling.

The paper's measurement setup samples the rail at 3.5 MS/s (NI
PCIe-6376); regenerating a figure means evaluating the simulated rail
at tens of thousands of grid points.  This benchmark times the two
:class:`~repro.measure.sampler.TraceSampler` paths over the same
multi-millisecond covert-transfer trace and asserts the contract the
experiment code relies on:

* the vectorized breakpoint path is at least 10x faster than the
  scalar-callable fallback;
* both paths agree to within 1e-12 V at every sample.
"""

import time

import numpy as np
from conftest import banner

from repro.core import IccThreadCovert
from repro.measure import TraceSampler, sample_grid
from repro.obs import NullTracer, install
from repro.obs.tracer import current as _obs
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.system import System

#: Acceptance floor for the fast path (ISSUE: >= 10x on multi-ms traces).
MIN_SPEEDUP = 10.0

#: Both sampling paths must agree to this tolerance (volts).
MAX_ABS_DIFF = 1e-12

#: Ceiling on the cost of disabled tracing relative to an untraced
#: transfer (ISSUE: < 5%).
MAX_DISABLED_OVERHEAD = 0.05


def _traced_system() -> System:
    """A system whose rail history holds a full covert transfer."""
    system = System(cannon_lake_i3_8121u())
    channel = IccThreadCovert(system)
    channel.calibrate()
    channel.transfer(b"\xa5\x3c\x96")
    return system


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_trace_sampling(benchmark):
    system = _traced_system()
    signal = system.vcc_signal()
    times = sample_grid(0.0, system.now, 3.5e6)
    sampler = TraceSampler()

    def scalar():
        return sampler.evaluate(lambda t: system.vcc_at(t), times)

    def vectorized():
        return sampler.evaluate(signal, times)

    scalar_values = scalar()
    vectorized_values = vectorized()
    max_diff = float(np.max(np.abs(scalar_values - vectorized_values)))

    t_scalar = _best_of(scalar)
    t_vectorized = _best_of(vectorized)
    speedup = t_scalar / t_vectorized

    benchmark.pedantic(vectorized, rounds=5, iterations=1)

    banner("Trace sampling: vectorized breakpoint path vs scalar fallback")
    print(f"trace span: {system.now / 1e6:.2f} ms, "
          f"{len(times):,} samples at 3.5 MS/s, "
          f"{len(signal.breakpoints()[0]):,} rail breakpoints")
    print(f"scalar:     {t_scalar * 1e3:8.2f} ms")
    print(f"vectorized: {t_vectorized * 1e3:8.2f} ms")
    print(f"speedup:    {speedup:8.1f}x (floor: {MIN_SPEEDUP:.0f}x)")
    print(f"max |diff|: {max_diff:.2e} V (tolerance: {MAX_ABS_DIFF:.0e})")

    benchmark.extra_info["samples"] = len(times)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["max_abs_diff_v"] = max_diff

    assert len(times) > 10_000
    assert max_diff <= MAX_ABS_DIFF
    assert speedup >= MIN_SPEEDUP


class _CountingTracer(NullTracer):
    """A disabled tracer whose ``enabled`` check counts its callers.

    Instrumentation sites on the disabled path do exactly one thing:
    read the current tracer and test ``enabled``.  Making ``enabled`` a
    counting property gives an *exact* census of those site visits for
    a workload, without altering what the sites execute afterwards.
    """

    def __init__(self):
        super().__init__()
        self.touches = 0

    @property
    def enabled(self):
        self.touches += 1
        return False


def _transfer_workload():
    system = System(cannon_lake_i3_8121u())
    IccThreadCovert(system).transfer(b"\xa5\x3c\x96")


def test_bench_disabled_tracing_overhead(benchmark):
    """Tracing that is off must cost < 5% of a covert transfer.

    The disabled path is ``current()`` plus one attribute check per
    instrumented site; this bounds (exact site visits for a full
    transfer) x (measured per-visit cost) against the transfer's own
    wall time.
    """
    counting = _CountingTracer()
    previous = install(counting)
    try:
        _transfer_workload()
    finally:
        install(previous)
    touches = counting.touches

    # Per-visit cost of the real disabled path, measured tightly.
    probes = 100_000
    start = time.perf_counter()
    for _ in range(probes):
        tracer = _obs()
        if tracer.enabled:  # pragma: no cover - always False here
            raise AssertionError
    per_touch = (time.perf_counter() - start) / probes

    t_workload = _best_of(_transfer_workload, repeats=3)
    overhead = (touches * per_touch) / t_workload

    benchmark.pedantic(_transfer_workload, rounds=3, iterations=1)

    banner("Disabled-tracing overhead: guarded sites vs untraced transfer")
    print(f"site visits:   {touches:,} per 3-byte transfer")
    print(f"per-visit:     {per_touch * 1e9:8.1f} ns")
    print(f"transfer:      {t_workload * 1e3:8.2f} ms")
    print(f"overhead:      {overhead * 100:8.3f}% "
          f"(ceiling: {MAX_DISABLED_OVERHEAD * 100:.0f}%)")

    benchmark.extra_info["site_visits"] = touches
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 3)

    assert touches > 0
    assert overhead < MAX_DISABLED_OVERHEAD
