"""Figure 10 — multi-level throttling sweeps on Cannon Lake.

Paper claims regenerated here:
* (a) the TP grows with instruction intensity, frequency and the number
  of cores concurrently executing PHIs; anchor point: 256b_Heavy at
  1 GHz is ~5 us on one core and ~9 us on two;
* (b) the TP of a trailing 512b_Heavy loop *decreases* as the preceding
  loop's intensity increases, forming at least five levels (L1-L5).
"""

from conftest import banner, runner_from_env

from repro.analysis.experiments import fig10_multilevel
from repro.analysis.figures import ascii_bars, format_table
from repro.isa import IClass


def test_bench_fig10(benchmark):
    result = benchmark.pedantic(fig10_multilevel,
                                kwargs={"runner": runner_from_env()},
                                rounds=1, iterations=1)

    banner("Figure 10(a): TP (us) vs class x frequency x active cores")
    rows = []
    for iclass in sorted(IClass):
        row = [iclass.label]
        for freq in (1.0, 1.2, 1.4):
            for cores in (1, 2):
                row.append(f"{result.sweep[(iclass.label, freq, cores)]:.1f}")
        rows.append(row)
    print(format_table(
        ["class", "1.0GHz/1c", "1.0GHz/2c", "1.2GHz/1c", "1.2GHz/2c",
         "1.4GHz/1c", "1.4GHz/2c"], rows))

    banner("Figure 10(b): TP of a 512b_Heavy loop after each class (1.4 GHz)")
    bars = [(f"{result.levels[c.label]} after {c.label}",
             result.preceded[c.label]) for c in sorted(IClass)]
    print(ascii_bars(bars, unit="us"))
    levels = sorted(set(result.levels.values()))
    print(f"distinct levels: {levels} (paper: L1-L5)")

    one = result.sweep[("256b_Heavy", 1.0, 1)]
    two = result.sweep[("256b_Heavy", 1.0, 2)]
    benchmark.extra_info["256b_heavy_1ghz_1core_us"] = round(one, 2)
    benchmark.extra_info["256b_heavy_1ghz_2core_us"] = round(two, 2)
    benchmark.extra_info["levels"] = len(levels)
    assert 3.5 <= one <= 7.0   # paper: ~5 us
    assert 7.0 <= two <= 11.0  # paper: ~9 us
    assert len(levels) >= 5
