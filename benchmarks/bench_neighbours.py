"""Neighbour-noise matrix: channel BER vs realistic co-running apps.

Extends Section 6.3's single 7-zip data point into a matrix over a
workload zoo (browser-like, 7-zip-like, video-codec-like, ML-inference-
like).  The emergent result is sharper than "heavier neighbours are
worse": what hurts is the neighbour's *guardband transition rate*, not
its intensity — a codec holding a steady AVX2 grant shifts the rail once
and calibration absorbs it, while a bursty browser re-triggers
transitions near the channel's own slot rate.
"""

from conftest import banner

from repro.analysis.experiments import neighbour_noise_matrix
from repro.analysis.figures import format_table


def test_bench_neighbours(benchmark):
    result = benchmark.pedantic(neighbour_noise_matrix, rounds=1, iterations=1)

    banner("Channel BER vs co-running neighbour application")
    rows = []
    for channel in result.channels:
        rows.append([channel] + [
            f"{result.ber[(channel, neighbour)]:.3f}"
            for neighbour in result.neighbours
        ])
    print(format_table(["channel"] + result.neighbours, rows))
    print("\n(paper anchor: BER < 0.07 beside 7-zip; the rest of the "
          "matrix is a beyond-paper study)")

    for channel in result.channels:
        assert result.ber[(channel, "idle")] == 0.0
        assert result.ber[(channel, "7-zip")] < 0.07   # the paper's bound
        benchmark.extra_info[f"{channel}_ml"] = result.ber[(channel, "ml-inference")]
    # Every cell stays within usable range even for the hostile server.
    assert max(result.ber.values()) < 0.25
