"""Figure 7 — Icc_max/Vcc_max limit protection at turbo frequencies.

Paper claims regenerated here:
* desktop (i7-9700K): AVX2 at 4.9 GHz exceeds Vcc_max = 1.27 V (current
  stays under 100 A); at 4.8 GHz everything fits;
* mobile (i3-8121U): two cores of AVX2 at 3.1 GHz exceed Icc_max = 29 A
  (voltage stays under 1.15 V); at 2.2 GHz everything fits;
* the Non-AVX -> AVX2 -> AVX512 timeline drops frequency within tens of
  microseconds of each phase start while junction temperature stays far
  below Tj_max — the drops are current management, not thermal.
"""

from conftest import banner

from repro.analysis.experiments import fig7_limit_protection
from repro.analysis.figures import format_table


def test_bench_fig07(benchmark):
    result = benchmark.pedantic(fig7_limit_protection, rounds=1, iterations=1)

    banner("Figure 7(a): operating points vs electrical limits")
    rows = []
    for p in result.points:
        rows.append([
            p.system, f"{p.freq_req_ghz:.1f}", p.workload,
            f"{p.vcc_projected:.3f}/{p.vcc_max:.2f}",
            f"{p.icc_projected:.1f}/{p.icc_max:.0f}",
            "VIOLATION" if p.vcc_violation else "ok",
            "VIOLATION" if p.icc_violation else "ok",
            f"{p.freq_realized_ghz:.2f}",
        ])
    print(format_table(
        ["system", "freq", "workload", "Vcc/Vmax", "Icc/Imax",
         "Vcc check", "Icc check", "realized GHz"], rows))

    banner("Figure 7(b): phase timeline (Non-AVX -> AVX2 -> AVX512)")
    print("frequency breakpoints (us, GHz):")
    for t, f in result.timeline_freq[:12]:
        print(f"  t={t / 1000.0:9.1f} us  f={f:.2f} GHz")
    print(f"junction temperature max: {result.temp_max_c:.1f} C "
          f"(Tj_max {result.tj_max_c:.0f} C - not thermal)")

    desktop_49 = [p for p in result.points
                  if p.system == "Coffee Lake" and p.freq_req_ghz == 4.9
                  and p.workload == "AVX2"][0]
    mobile_31 = [p for p in result.points
                 if p.system == "Cannon Lake" and p.freq_req_ghz == 3.1
                 and p.workload == "AVX2"][0]
    benchmark.extra_info["desktop_4.9_avx2_vcc_violation"] = desktop_49.vcc_violation
    benchmark.extra_info["mobile_3.1_avx2_icc_violation"] = mobile_31.icc_violation
    assert desktop_49.vcc_violation and not desktop_49.icc_violation
    assert mobile_31.icc_violation and not mobile_31.vcc_violation
    assert result.temp_max_c < result.tj_max_c - 30.0
