"""Mitigation matrix: the CI smoke corner must stay gate-cheap.

The ``mitigation-matrix`` CI job runs the smoke grid (three protocol
tiers on the cross-core channel against three defenders) plus the
defender cost harness on every push, and the ``matrix_2x2`` golden
re-runs a corner of it in fresh interpreters during the determinism
audit.  This benchmark pins both pieces: the smoke sweep without costs
(nine cells through the scenario/session machinery) and one defended
cost measurement (two full victim-workload runs).  ``extra_info``
records the verdict row the sweep produced so the gate artifact shows
matrix health alongside the timing.
"""

from repro.mitigations.matrix import defender_cost, smoke_matrix


def test_bench_matrix_smoke(benchmark):
    report = benchmark.pedantic(
        lambda: smoke_matrix(include_costs=False), rounds=5, iterations=1)
    assert len(report.cells) == 9
    assert report.channels_defeated("secure_mode") == {"cores"}
    assert report.adaptive_shortfalls() == []

    benchmark.extra_info["cells"] = len(report.cells)
    benchmark.extra_info["verdicts"] = {
        f"{cell.attacker}x{cell.defender}": cell.verdict
        for cell in report.cells}


def test_bench_matrix_defender_cost(benchmark):
    cost = benchmark.pedantic(
        lambda: defender_cost("state_flush"), rounds=5, iterations=1)
    assert cost.completion_ns >= cost.reference_ns

    benchmark.extra_info["defender"] = "state_flush"
    benchmark.extra_info["runtime_overhead"] = round(
        cost.runtime_overhead, 4)
    benchmark.extra_info["power_overhead"] = round(cost.power_overhead, 4)
