"""Sensitivity sweeps: the design space around the paper's parameters.

Not a paper artifact — a beyond-the-paper study charting how the channel
degrades as the hardware parameters move, which quantifies the
mitigation continuum:

* VR slew rate: level separation halves per slew doubling; at LDO
  speeds the ladder collapses (the per-core-VR mitigation's fast-ramp
  half);
* reset-time: throughput scales inversely (the hysteresis dominates the
  transaction cycle);
* load-line impedance: Equation 1 makes every level gap proportional to
  R_LL — a stiff PDN is itself a mitigation.
"""

from conftest import banner

from repro.analysis.figures import format_table
from repro.analysis.sensitivity import (
    sweep_load_line,
    sweep_reset_time,
    sweep_vr_slew,
    theoretical_reset_limited_bps,
)


def run_all_sweeps():
    return {
        "slew": sweep_vr_slew(),
        "reset": sweep_reset_time(),
        "rll": sweep_load_line(),
    }


def test_bench_sensitivity(benchmark):
    result = benchmark.pedantic(run_all_sweeps, rounds=1, iterations=1)

    banner("Sweep 1: level separation vs VR slew rate (Cannon Lake base)")
    rows = [[f"{p.parameter:g} mV/us", f"{p.min_separation_tsc:.0f}",
             "yes" if p.usable else "no"]
            for p in result["slew"]]
    print(format_table(["slew rate", "min level gap (TSC)", "usable"], rows))

    banner("Sweep 2: throughput vs reset-time (hysteresis window)")
    rows = [[f"{p.parameter:g} us", f"{p.throughput_bps:.0f} b/s",
             f"{theoretical_reset_limited_bps(p.parameter):.0f} b/s"]
            for p in result["reset"]]
    print(format_table(["reset-time", "measured", "theory bound"], rows))

    banner("Sweep 3: level separation vs load-line impedance")
    rows = [[f"{p.parameter:g} mOhm", f"{p.min_separation_tsc:.0f}",
             "yes" if p.usable else "no"]
            for p in result["rll"]]
    print(format_table(["R_LL", "min level gap (TSC)", "usable"], rows))

    slew_points = {p.parameter: p for p in result["slew"]}
    benchmark.extra_info["sep_at_mbvr_slew"] = round(
        slew_points[1.25].min_separation_tsc)
    benchmark.extra_info["sep_at_ldo_slew"] = round(
        slew_points[100.0].min_separation_tsc)
    # Shape assertions.
    seps = [p.min_separation_tsc for p in result["slew"]]
    assert all(b < a for a, b in zip(seps, seps[1:]))
    thr = [p.throughput_bps for p in result["reset"]]
    assert all(b < a for a, b in zip(thr, thr[1:]))
    rll_seps = [p.min_separation_tsc for p in result["rll"]]
    assert rll_seps[0] < rll_seps[-1]
