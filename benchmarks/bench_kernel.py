"""Batch kernel vs scalar engine: the deferral fast path must stay a win.

Runs the same covert transfer with ``SystemOptions(kernel="off")``
(scalar reference) and ``kernel="auto"`` (batch kernel) and asserts the
kernel path is at least as fast, with identical simulation results.
The measured ratio plus the kernel's own counters land in
``extra_info`` so the benchmark gate artifact records how much of the
run was actually batched.

The headline sweep speedups come from the kernel *and* the memoization
layers together (see docs/KERNEL.md for the measured numbers); this
benchmark pins the kernel's own contribution so a regression in the
deferral path cannot hide behind the caches.
"""

import time

from repro import System, SystemOptions, cannon_lake_i3_8121u
from repro.core import IccThreadCovert

PAYLOAD = b"\x5a\xc3\x0f\x3c"


def _transfer(mode):
    system = System(cannon_lake_i3_8121u(),
                    options=SystemOptions(kernel=mode))
    report = IccThreadCovert(system).transfer(PAYLOAD)
    return system, report


def _best_of(mode, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _transfer(mode)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_kernel(benchmark):
    system, report = benchmark.pedantic(
        lambda: _transfer("auto"), rounds=5, iterations=1)
    assert system.kernel_active
    assert report.ber == 0.0

    stats = system.kernel_stats()
    benchmark.extra_info["captures"] = stats["captures"]
    benchmark.extra_info["flushes"] = stats["flushes"]
    benchmark.extra_info["max_batch"] = stats["max_batch"]
    benchmark.extra_info["events"] = system.engine.events_run

    # Warmed best-of-N comparison against the scalar path on the same
    # workload: identical results, kernel no slower.  The margin is
    # deliberately loose (the kernel's solo win is a few percent; the
    # bench gate medians guard the combined speedup).
    scalar_s = _best_of("off")
    kernel_s = _best_of("auto")
    benchmark.extra_info["scalar_ms"] = round(scalar_s * 1e3, 2)
    benchmark.extra_info["kernel_ms"] = round(kernel_s * 1e3, 2)
    benchmark.extra_info["ratio"] = round(scalar_s / kernel_s, 3)
    assert kernel_s < scalar_s * 1.10

    scalar_system, scalar_report = _transfer("off")
    assert scalar_report.received == report.received
    assert scalar_system.engine.events_run == system.engine.events_run
