"""Ablations of the load-bearing design decisions (DESIGN.md section).

Each ablation removes one modelled mechanism and shows the corresponding
paper effect disappear:

1. serialized PMU transition queue / shared rail -> per-core VRs kill
   the cross-core level signal;
2. slow MBVR slew -> LDO rails collapse the level ladder below
   decodability;
3. 650 us hysteresis -> slots shorter than the reset-time suffer
   inter-symbol interference.
"""

from conftest import banner

from repro import IClass, Loop, System, SystemOptions
from repro.analysis.figures import format_table
from repro.core import ChannelConfig, IccThreadCovert
from repro.errors import CalibrationError
from repro.soc.config import cannon_lake_i3_8121u
from repro.units import us_to_ns


def _cross_core_tp(options, sender_class):
    system = System(cannon_lake_i3_8121u(), options=options)
    sink = []

    def sender():
        yield system.until(us_to_ns(5.0))
        yield system.execute(system.thread_on(0, 0), Loop(sender_class, 40))

    def receiver():
        yield system.until(us_to_ns(5.0) + 200.0)
        sink.append((yield system.execute(system.thread_on(1, 0),
                                          Loop(IClass.HEAVY_128, 40))))

    system.spawn(sender())
    system.spawn(receiver())
    system.run_until(us_to_ns(600.0))
    return sink[0].throttled_ns / 1000.0  # us


def run_ablations():
    """Run all three ablations; returns a dict of observations."""
    shared = {
        c: _cross_core_tp(SystemOptions(), c)
        for c in (IClass.HEAVY_128, IClass.HEAVY_512)
    }
    split = {
        c: _cross_core_tp(SystemOptions(per_core_vr=True, ldo_rails=False), c)
        for c in (IClass.HEAVY_128, IClass.HEAVY_512)
    }

    ldo_collapses = False
    try:
        system = System(cannon_lake_i3_8121u(),
                        options=SystemOptions(per_core_vr=True, ldo_rails=True))
        IccThreadCovert(system,
                        ChannelConfig(min_level_gap_tsc=2000.0)).calibrate()
    except CalibrationError:
        ldo_collapses = True

    system = System(cannon_lake_i3_8121u())
    short_cfg = ChannelConfig(slot_us=200.0, min_level_gap_tsc=0.0,
                              adaptive_slot=False)
    channel = IccThreadCovert(system, short_cfg)
    channel.calibrate()
    decoded_short = channel.calibrator.decode_all(
        channel.run_symbols([3, 2, 1, 0]))

    system2 = System(cannon_lake_i3_8121u())
    channel2 = IccThreadCovert(system2)
    channel2.calibrate()
    decoded_long = channel2.calibrator.decode_all(
        channel2.run_symbols([3, 2, 1, 0]))

    return {
        "shared": shared,
        "split": split,
        "ldo_collapses": ldo_collapses,
        "decoded_short": decoded_short,
        "decoded_long": decoded_long,
    }


def test_bench_ablation(benchmark):
    result = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    banner("Ablation 1: shared rail + serialized queue vs per-core VRs")
    rows = []
    for iclass in (IClass.HEAVY_128, IClass.HEAVY_512):
        rows.append([iclass.label, f"{result['shared'][iclass]:.1f} us",
                     f"{result['split'][iclass]:.1f} us"])
    print(format_table(["sender class", "receiver TP (shared VR)",
                        "receiver TP (per-core VR)"], rows))
    print("-> the cross-core level signal exists only with the shared rail")

    banner("Ablation 2: LDO slew rate")
    print(f"IccThreadCovert calibration with a 2K-cycle gap requirement on "
          f"LDO rails collapses: {result['ldo_collapses']}")

    banner("Ablation 3: hysteresis / reset-time")
    print(f"symbols [3,2,1,0] with 200 us slots -> {result['decoded_short']} "
          f"(inter-symbol interference)")
    print(f"symbols [3,2,1,0] with 750 us slots -> {result['decoded_long']} "
          f"(clean)")

    spread_shared = result["shared"][IClass.HEAVY_512] - result["shared"][IClass.HEAVY_128]
    spread_split = abs(result["split"][IClass.HEAVY_512]
                       - result["split"][IClass.HEAVY_128])
    benchmark.extra_info["cross_core_spread_shared_us"] = round(spread_shared, 2)
    benchmark.extra_info["cross_core_spread_percore_us"] = round(spread_split, 2)
    assert spread_shared > 5.0
    assert spread_split < 0.2
    assert result["ldo_collapses"]
    assert result["decoded_short"] != [3, 2, 1, 0]
    assert result["decoded_long"] == [3, 2, 1, 0]


def run_droop_ablation():
    """Ablation 4: why throttling exists — Vcc_min emergencies."""
    from repro.isa import IClass as IC

    def emergencies(options):
        system = System(cannon_lake_i3_8121u(), options=options)
        sink = []

        def program():
            yield system.until(us_to_ns(5.0))
            sink.append((yield system.execute(0, Loop(IC.HEAVY_512, 40))))

        system.spawn(program())
        system.run_until(us_to_ns(500.0))
        return len(system.voltage_emergencies)

    return {
        "with_throttling": emergencies(SystemOptions()),
        "without_throttling": emergencies(SystemOptions(disable_throttling=True)),
        "secure_mode_unthrottled": emergencies(
            SystemOptions(secure_mode=True, disable_throttling=True)),
    }


def test_bench_ablation_droop(benchmark):
    result = benchmark.pedantic(run_droop_ablation, rounds=1, iterations=1)

    banner("Ablation 4: voltage emergencies when the throttle is removed")
    print(format_table(
        ["configuration", "Vcc_min violations"],
        [["normal (throttling active)", result["with_throttling"]],
         ["throttling ablated", result["without_throttling"]],
         ["secure mode, throttling ablated", result["secure_mode_unthrottled"]]]))
    print("-> the throttle exists to prevent exactly these di/dt emergencies"
          " (Key Conclusion 1); secure mode's pre-applied guardband also"
          " prevents them")

    benchmark.extra_info.update(result)
    assert result["with_throttling"] == 0
    assert result["without_throttling"] >= 1
    assert result["secure_mode_unthrottled"] == 0
