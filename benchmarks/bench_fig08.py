"""Figure 8 — throttling-period distributions and power-gate wake deltas.

Paper claims regenerated here:
* AVX2 throttling periods cluster at 12-15 us on the MBVR parts (Coffee
  Lake, Cannon Lake) and shorter (~9 us) on FIVR Haswell;
* on Coffee Lake only the *first* loop iteration is 8-15 ns longer (the
  staggered AVX power-gate wake); Haswell iterations are flat because it
  has no AVX power gate — so power gating explains ~0.1 % of the
  throttling period, not the throttling itself (Key Conclusion 3).
"""

import numpy as np
from conftest import banner, runner_from_env

from repro.analysis.experiments import fig8_throttling
from repro.analysis.figures import histogram_text


def test_bench_fig08(benchmark):
    result = benchmark.pedantic(fig8_throttling, kwargs={"trials": 20,
                                        "runner": runner_from_env()},
                                rounds=1, iterations=1)

    banner("Figure 8(a): AVX2 throttling-period distribution per part")
    for part, samples in result.tp_us_by_part.items():
        median = float(np.median(samples))
        print(f"\n{part}: median {median:.1f} us "
              f"(paper: ~9 us Haswell, 12-15 us Coffee/Cannon Lake)")
        print(histogram_text(samples, bins=8, unit="us"))

    banner("Figure 8(b/c): per-iteration execution-time delta vs steady state")
    for part, deltas in result.iteration_deltas_ns.items():
        formatted = ", ".join(f"{d:+.1f} ns" for d in deltas)
        print(f"{part}: iterations 1..3 = [{formatted}]")
    print("(paper: first Coffee Lake iteration +8..15 ns; Haswell flat)")

    cfl_median = float(np.median(result.tp_us_by_part["Coffee Lake"]))
    hsw_median = float(np.median(result.tp_us_by_part["Haswell"]))
    benchmark.extra_info["cfl_tp_us_median"] = round(cfl_median, 2)
    benchmark.extra_info["hsw_tp_us_median"] = round(hsw_median, 2)
    benchmark.extra_info["cfl_first_iter_wake_ns"] = round(
        result.iteration_deltas_ns["Coffee Lake"][0], 1)
    assert 10.0 <= cfl_median <= 16.0
    assert hsw_median < cfl_median
    assert 8.0 <= result.iteration_deltas_ns["Coffee Lake"][0] <= 15.0
    assert abs(result.iteration_deltas_ns["Haswell"][0]) < 1.0
