"""Static-analysis throughput: the full-tree run must stay interactive.

Not a paper artifact — a regression guard on the staticcheck driver.
The CI gate and the pre-commit habit both depend on ``python -m
repro.staticcheck src/repro`` finishing in interactive time; a pass
that accidentally goes quadratic in module count (say, rebuilding the
project signature table per module) would show up here long before it
makes CI miserable.
"""

import time

from repro.staticcheck import analyze_paths
from repro.staticcheck.runner import default_root


def full_tree_run():
    """One complete analysis of the installed repro package."""
    return analyze_paths(paths=[default_root()])


def test_bench_staticcheck(benchmark):
    start = time.perf_counter()
    report = benchmark.pedantic(full_tree_run, rounds=3, iterations=1)
    elapsed_s = time.perf_counter() - start
    benchmark.extra_info["files_analyzed"] = report.files_analyzed
    benchmark.extra_info["live_findings"] = len(report.findings)
    benchmark.extra_info["waived"] = len(report.waived)
    assert report.files_analyzed > 50  # really swept the whole package
    # The committed tree analyses clean under the committed waivers.
    assert report.ok, [f.render() for f in report.findings]
    # Hard interactivity budget: a full-tree run (all three timed
    # rounds included) stays well under ten seconds.
    assert elapsed_s < 10.0, f"staticcheck full tree took {elapsed_s:.1f}s"
