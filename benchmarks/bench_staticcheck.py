"""Static-analysis throughput: the full-tree run must stay interactive.

Not a paper artifact — a regression guard on the staticcheck driver.
The CI gate and the pre-commit habit both depend on ``python -m
repro.staticcheck src/repro`` finishing in interactive time; a pass
that accidentally goes quadratic in module count (say, rebuilding the
project signature table per module) would show up here long before it
makes CI miserable.

The second benchmark guards the incremental cache's reason to exist:
a warm (all-hits) run must beat the cold run by a wide margin, or the
CI cache plumbing is dead weight.
"""

import time
from pathlib import Path

from repro.staticcheck import analyze_paths
from repro.staticcheck.runner import default_root

#: The committed ratchet baseline — the full tree is only "clean"
#: modulo these reviewed entries, exactly as the CI gate runs it.
BASELINE = (Path(__file__).resolve().parent.parent
            / "tests" / "staticcheck_baseline.json")


def full_tree_run(cache_dir=None):
    """One complete analysis of the installed repro package."""
    return analyze_paths(paths=[default_root()], baseline_path=BASELINE,
                         cache_dir=cache_dir)


def test_bench_staticcheck(benchmark):
    start = time.perf_counter()
    report = benchmark.pedantic(full_tree_run, rounds=3, iterations=1)
    elapsed_s = time.perf_counter() - start
    benchmark.extra_info["files_analyzed"] = report.files_analyzed
    benchmark.extra_info["live_findings"] = len(report.findings)
    benchmark.extra_info["waived"] = len(report.waived)
    assert report.files_analyzed > 50  # really swept the whole package
    # The committed tree analyses clean under the committed waivers
    # and ratchet baseline.
    assert report.ok, [f.render() for f in report.findings]
    # Hard interactivity budget: a full-tree run (all three timed
    # rounds included) stays well under ten seconds.
    assert elapsed_s < 10.0, f"staticcheck full tree took {elapsed_s:.1f}s"


def test_bench_staticcheck_warm_cache(benchmark, tmp_path):
    cache_dir = tmp_path / "cache"
    cold_start = time.perf_counter()
    cold = full_tree_run(cache_dir)
    cold_s = time.perf_counter() - cold_start
    assert cold.cache is not None and cold.cache.stored > 0

    warm_start = time.perf_counter()
    warm = benchmark.pedantic(full_tree_run, args=(cache_dir,),
                              rounds=1, iterations=1)
    warm_s = time.perf_counter() - warm_start
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["cache_hits"] = warm.cache.hits

    # The warm run must be a pure replay: every finding set cached...
    assert warm.cache.misses == 0
    assert warm.cache.hits == cold.cache.stored
    # ...bit-identical to the cold analysis...
    assert warm.findings == cold.findings
    assert warm.ok
    # ...and at least 3x faster, or the incremental engine isn't
    # earning its complexity.  (Measured locally: ~8x.)
    assert warm_s * 3.0 < cold_s, \
        f"warm cache run {warm_s:.2f}s vs cold {cold_s:.2f}s (< 3x)"
