"""Figure 6 — supply-voltage steps while cores start/stop AVX2.

Paper claims regenerated here:
* core 1 starting AVX2 raises the shared rail by ~8 mV; core 0 joining
  adds ~9 mV more; stopping returns the rail to its start (788 mV);
* core frequency stays at 2 GHz throughout (no limit binds there);
* 454.calculix's AVX2 phases move the rail up and down the same way.
"""

from conftest import banner

from repro.analysis.experiments import fig6_voltage_steps
from repro.analysis.figures import ascii_series


def test_bench_fig06(benchmark):
    result = benchmark.pedantic(fig6_voltage_steps, rounds=1, iterations=1)

    banner("Figure 6(a): Vcc steps as two Coffee Lake cores run AVX2 @ 2 GHz")
    print(f"baseline Vcc        : {result.vcc_start_mv:8.1f} mV  (paper: 788 mV)")
    print(f"core 1 joins AVX2   : +{result.step_core1_mv:7.1f} mV  (paper: ~8 mV)")
    print(f"core 0 joins AVX2   : +{result.step_core0_mv:7.1f} mV  (paper: ~9 mV)")
    print(f"after both stop     : {result.return_mv:+8.1f} mV  (paper: back to start)")
    print(f"frequency           : {result.freq_ghz_start:.1f} -> "
          f"{result.freq_ghz_end:.1f} GHz (paper: flat at 2 GHz)")
    delta = result.vcc_samples.delta_from_start()
    print(ascii_series(delta.times_ns, delta.values * 1000.0,
                       label="Vcc delta (mV) vs time"))

    banner("Figure 6(b): Vcc tracking calculix-like AVX2 phases")
    calc = result.calculix_vcc.delta_from_start()
    print(ascii_series(calc.times_ns, calc.values * 1000.0,
                       label=f"Vcc delta (mV), {result.calculix_phases} phases"))

    benchmark.extra_info["step_core1_mv"] = round(result.step_core1_mv, 2)
    benchmark.extra_info["step_core0_mv"] = round(result.step_core0_mv, 2)
    assert 5.0 < result.step_core1_mv < 12.0
    assert 5.0 < result.step_core0_mv < 12.0
    assert abs(result.return_mv) < 1.0
