"""Figure 12 — throughput of IChannels vs the four baselines.

Paper claims regenerated here (all channels and baselines run on the
same simulated Cannon Lake, so the ratios are measured, not quoted):
* IccThreadCovert ~= 2x NetSpectre (two bits per transaction vs one);
* IccSMTcovert/IccCoresCovert ~= 145x DFScovert, 47x TurboCC and
  24x POWERT (paper: 2899/20, 2899/61, 2899/122).
"""

from conftest import banner

from repro.analysis.experiments import fig12_throughput
from repro.analysis.figures import ascii_bars


def test_bench_fig12(benchmark):
    result = benchmark.pedantic(fig12_throughput, rounds=1, iterations=1)

    banner("Figure 12: measured channel throughputs (bit/s)")
    bars = sorted(result.throughput_bps.items(), key=lambda kv: -kv[1])
    print(ascii_bars(bars, unit=" bps"))

    print("\nRatios (ours / baseline):")
    rows = [
        ("IccThreadCovert / NetSpectre",
         result.ratio("IccThreadCovert", "NetSpectre"), 2.0),
        ("IccSMTcovert / TurboCC",
         result.ratio("IccSMTcovert", "TurboCC"), 47.0),
        ("IccSMTcovert / DFScovert",
         result.ratio("IccSMTcovert", "DFScovert"), 145.0),
        ("IccSMTcovert / POWERT",
         result.ratio("IccSMTcovert", "POWERT"), 24.0),
    ]
    for label, measured, paper in rows:
        print(f"  {label:32s} measured {measured:6.1f}x   paper {paper:5.1f}x")

    for name, bps in result.throughput_bps.items():
        benchmark.extra_info[name] = round(bps, 1)
    assert abs(result.ratio("IccThreadCovert", "NetSpectre") - 2.0) < 0.6
    assert result.ratio("IccSMTcovert", "TurboCC") > 30.0
    assert result.ratio("IccSMTcovert", "DFScovert") > 100.0
    assert result.ratio("IccSMTcovert", "POWERT") > 20.0
    assert all(ber == 0.0 for ber in result.ber.values())
