"""Resilience — BER/goodput vs fault intensity, per mitigation stack.

Beyond-paper experiment over the :mod:`repro.faults` default suite
(rail jitter, sample dropout, grant-queue interference, thermal drift,
receiver clock skew, slot-schedule jitter).  The claim demonstrated:

* with faults off, every stack delivers and the bare channel is the
  fastest — the adaptive machinery costs nothing when unused;
* at the default suite's nominal intensity (1.0) the plain ARQ session
  is left with residual BER above 1e-1, while the adaptive session
  (windowed-BER re-calibration, exponential backoff, two-level
  degradation) still delivers the payload intact (residual <= 1e-2);
* past nominal intensity the adaptive session degrades to two-level
  robust signalling and keeps delivering.
"""

from conftest import banner, runner_from_env

from repro.analysis.experiments import resilience_sweep
from repro.analysis.figures import ascii_bars


def test_bench_resilience(benchmark):
    result = benchmark.pedantic(
        resilience_sweep,
        kwargs={"runner": runner_from_env(), "trials": 2},
        rounds=1, iterations=1)

    for mitigation in result.mitigations:
        banner(f"Residual BER vs fault intensity — {mitigation}")
        rows = [(f"x={p.intensity:3.1f}  good={p.goodput_bps:7.1f} b/s  "
                 f"att={p.attempts:4.1f} recal={p.recalibrations:3.1f} "
                 f"degr={p.degraded_fraction:3.1f}", p.residual_ber)
                for p in result.points
                if p.channel == "cores" and p.mitigation == mitigation]
        print(ascii_bars(rows))

    clean_arq = result.cell("cores", 0.0, "arq")
    clean_adaptive = result.cell("cores", 0.0, "adaptive")
    faulty_arq = result.cell("cores", 1.0, "arq")
    faulty_adaptive = result.cell("cores", 1.0, "adaptive")

    benchmark.extra_info["arq_residual_at_1"] = round(
        faulty_arq.residual_ber, 4)
    benchmark.extra_info["adaptive_residual_at_1"] = round(
        faulty_adaptive.residual_ber, 4)
    benchmark.extra_info["adaptive_recal_at_1"] = round(
        faulty_adaptive.recalibrations, 2)

    # Faults off: both session stacks deliver, nothing degrades.
    assert clean_arq.delivered_fraction == 1.0
    assert clean_adaptive.delivered_fraction == 1.0
    assert clean_adaptive.degraded_fraction == 0.0
    assert clean_adaptive.residual_ber == 0.0
    # The acceptance criterion: at nominal fault intensity the adaptive
    # session holds residual BER <= 1e-2 where plain ARQ exceeds 1e-1.
    assert faulty_arq.residual_ber > 1e-1
    assert faulty_adaptive.residual_ber <= 1e-2
    # Adaptation actually engaged (re-calibration and/or degradation).
    assert (faulty_adaptive.recalibrations > 0
            or faulty_adaptive.degraded_fraction > 0)
