"""Service throughput: queue drain rate and single-flight dedup.

Not a paper artifact — a regression guard on the `repro.service` layer.
Two shapes are pinned:

* **drain rate** — the scheduler must push thousands of queued no-op
  tasks per second through the worker fleet with streaming enabled; a
  per-task overhead regression (extra event-loop hops, accidental
  serialisation on the queue) shows up here directly;
* **dedup efficiency** — a sweep whose tasks all share one content
  address must execute exactly once via the single-flight table plus
  the artifact store, so the service's "identical work runs once"
  promise is benchmarked, not just unit-tested.
"""

import asyncio

from conftest import banner

from repro.service import ArtifactStore, ChannelLabService, ServiceConfig

#: Queued no-op tasks per drain round (benchmark workload size).
DRAIN_TASKS = 2000

#: Positions in the dedup sweep (all resolve to one content address).
DEDUP_TASKS = 200


def _drain_once():
    """Submit and fully stream DRAIN_TASKS no-op tasks; completions."""
    async def body():
        config = ServiceConfig(workers=4, batch_size=64,
                               record_events=False)
        async with ChannelLabService(config) as lab:
            job = await lab.submit(
                "noop", [{"i": i} for i in range(DRAIN_TASKS)])
            streamed = 0
            async for _ in job.stream():
                streamed += 1
            await job.wait()
            return streamed, job.state

    return asyncio.run(body())


def _identity_task(x):
    """Module-level no-op task for the dedup sweep."""
    return {"x": x}


def _dedup_once(tmp_path):
    """Run a same-key sweep through the store; (values, store stats)."""
    async def body():
        store = ArtifactStore(root=tmp_path / "store")
        config = ServiceConfig(workers=2, batch_size=16, store=store,
                               record_events=False)
        async with ChannelLabService(config) as lab:
            job = await lab.submit(_identity_task,
                                   [{"x": 7}] * DEDUP_TASKS)
            await job.wait()
            return job.values(), store.stats

    return asyncio.run(body())


def test_bench_service_drain(benchmark):
    """Queue drain throughput with live streaming."""
    streamed, state = benchmark.pedantic(_drain_once, rounds=3,
                                         iterations=1)
    banner(f"service drain: {streamed} tasks streamed, job {state}")
    benchmark.extra_info["tasks"] = DRAIN_TASKS
    benchmark.extra_info["streamed"] = streamed
    assert state == "done"
    assert streamed == DRAIN_TASKS


def test_bench_service_dedup(benchmark, tmp_path):
    """Single-flight + store dedup: one execution for N identical tasks."""
    values, stats = benchmark.pedantic(
        _dedup_once, args=(tmp_path,), rounds=1, iterations=1)
    banner(f"service dedup: {len(values)} positions, "
           f"{stats.stores} execution(s) stored")
    benchmark.extra_info["positions"] = DEDUP_TASKS
    benchmark.extra_info["stores"] = stats.stores
    assert values == [{"x": 7}] * DEDUP_TASKS
    # The whole sweep resolves from a single stored execution.
    assert stats.stores == 1
