"""Section 6.5 — the side-channel variant, quantified.

The paper states the covert-channel PoCs demonstrate, with minimal
changes, a synthetic side channel that leaks a victim's instruction
classes, and leaves extraction of real secrets to future work.  This
bench measures both halves on the simulator: per-class inference
accuracy (with the full confusion matrix), and end-to-end key recovery
from a victim whose code path depends on key bits.
"""

from conftest import banner

from repro.analysis.experiments import side_channel_inference
from repro.analysis.figures import format_table


def test_bench_sidechannel(benchmark):
    result = benchmark.pedantic(side_channel_inference, rounds=1, iterations=1)

    banner("Section 6.5: instruction-class inference accuracy")
    for location, accuracy in result.accuracy.items():
        print(f"\n{location}: {accuracy * 100:.0f}% of victim phases "
              f"classified correctly")
        matrix = result.confusion[location]
        wrong = [(a, b, n) for (a, b), n in matrix.items() if a != b]
        if wrong:
            print(format_table(["victim ran", "spy inferred", "count"],
                               [[a, b, n] for a, b, n in wrong]))
        else:
            print("  (no confusions)")

    banner("Key recovery from key-dependent code paths")
    for location, bits in result.key_bits_recovered.items():
        print(f"{location}: {bits}/{result.key_bits_total} key bits recovered")

    for location, accuracy in result.accuracy.items():
        benchmark.extra_info[f"accuracy_{location}"] = round(accuracy, 3)
        assert accuracy >= 0.8, location
    for location, bits in result.key_bits_recovered.items():
        assert bits >= result.key_bits_total - 1, location
