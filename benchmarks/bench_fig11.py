"""Figure 11 — the IDQ undelivered-uop signature of throttling.

Paper claims regenerated here: during throttled iterations the IDQ
delivers no uops in ~75 % of cycles even though the back-end is not
stalled; in unthrottled iterations the undelivered fraction is ~0.
This is Key Conclusion 5 — the throttle blocks the front-end-to-back-end
interface for 3 of every 4 cycles, for the whole core.
"""

import numpy as np
from conftest import banner

from repro.analysis.experiments import fig11_idq_signature
from repro.analysis.figures import histogram_text


def test_bench_fig11(benchmark):
    result = benchmark.pedantic(fig11_idq_signature,
                                kwargs={"iterations": 300},
                                rounds=1, iterations=1)

    banner("Figure 11(a): normalized IDQ_UOPS_NOT_DELIVERED per iteration")
    throttled_mean = float(np.mean(result.throttled))
    unthrottled_mean = float(np.mean(result.unthrottled))
    print(f"\nThrottled iterations (mean {throttled_mean:.3f}, paper ~0.75):")
    print(histogram_text(result.throttled, bins=6))
    print(f"\nUnthrottled iterations (mean {unthrottled_mean:.3f}, paper ~0):")
    print(histogram_text(result.unthrottled, bins=6))

    benchmark.extra_info["throttled_mean"] = round(throttled_mean, 4)
    benchmark.extra_info["unthrottled_mean"] = round(unthrottled_mean, 4)
    assert abs(throttled_mean - 0.75) < 0.03
    assert unthrottled_mean < 0.05
