"""Beyond-paper extensions: burst pairing and broadcasting.

Not paper artifacts — protocol improvements that follow from the paper's
own observations:

* **Burst pairing** (``IccSMTBurst``): ascending symbol pairs share one
  reset window, because upward guardband transitions need no hysteresis
  to expire first.  ~1.3-1.6x the paper protocol's throughput on random
  payloads at zero BER.
* **Broadcast** (``IccBroadcast``): a single PHI loop co-throttles the
  SMT sibling *and* queues against the other core's transition, so one
  transaction reaches two receivers.
"""

import numpy as np
from conftest import banner

from repro import System
from repro.analysis.figures import format_table
from repro.core import IccBroadcast, IccSMTcovert
from repro.core.burst_channel import IccSMTBurst
from repro.soc.config import cannon_lake_i3_8121u


def run_extensions():
    rng = np.random.default_rng(2021)
    payload = bytes(int(b) for b in rng.integers(0, 256, 24))

    base = IccSMTcovert(System(cannon_lake_i3_8121u()))
    base_report = base.transfer(payload)

    burst = IccSMTBurst(System(cannon_lake_i3_8121u()))
    burst_report = burst.transfer(payload)

    broadcast = IccBroadcast(System(cannon_lake_i3_8121u()))
    broadcast_report = broadcast.transfer(payload)
    aggregate_bits = 2 * broadcast_report.bits_delivered if hasattr(
        broadcast_report, "bits_delivered") else 2 * 8 * len(payload)
    broadcast_elapsed = broadcast_report.end_ns - broadcast_report.start_ns

    return {
        "payload": payload,
        "base": base_report,
        "burst": burst_report,
        "broadcast": broadcast_report,
        "broadcast_agg_bps": aggregate_bits * 1e9 / broadcast_elapsed,
    }


def test_bench_extension(benchmark):
    result = benchmark.pedantic(run_extensions, rounds=1, iterations=1)

    base, burst = result["base"], result["burst"]
    broadcast = result["broadcast"]
    banner("Extension 1: burst pairing (IccSMTBurst) vs the paper protocol")
    print(format_table(
        ["protocol", "throughput", "BER", "symbols/slot"],
        [["IccSMTcovert (paper)", f"{base.throughput_bps:.0f} b/s",
          f"{base.ber:.3f}", "1.00"],
         ["IccSMTBurst (ours)", f"{burst.throughput_bps:.0f} b/s",
          f"{burst.ber:.3f}", f"{burst.symbols_per_slot:.2f}"]]))
    speedup = burst.throughput_bps / base.throughput_bps
    print(f"speedup: {speedup:.2f}x on a random payload")

    banner("Extension 2: broadcast (one sender, two receivers)")
    for location in IccBroadcast.LOCATIONS:
        ok = broadcast.received[location] == result["payload"]
        print(f"  {location.value:14s}: BER={broadcast.ber(location):.3f} "
              f"[{'OK' if ok else 'CORRUPTED'}]")
    print(f"aggregate delivered bandwidth: {result['broadcast_agg_bps']:.0f} "
          f"b/s across both receivers")

    benchmark.extra_info["burst_speedup"] = round(speedup, 2)
    benchmark.extra_info["burst_bps"] = round(burst.throughput_bps)
    assert burst.ber == 0.0
    assert speedup > 1.2
    for location in IccBroadcast.LOCATIONS:
        assert broadcast.ber(location) == 0.0


def run_five_level():
    from repro.core import FiveLevelThreadChannel, IccThreadCovert

    payload = bytes(range(21))
    five = FiveLevelThreadChannel(System(cannon_lake_i3_8121u()))
    four = IccThreadCovert(System(cannon_lake_i3_8121u()))
    return five.transfer(payload), four.transfer(payload)


def test_bench_five_level(benchmark):
    five, four = benchmark.pedantic(run_five_level, rounds=1, iterations=1)

    banner("Extension 3: five-level coding (all of Figure 10's levels)")
    print(format_table(
        ["protocol", "levels", "bits/transaction", "throughput", "errors"],
        [["IccThreadCovert (paper)", "4", "2.00",
          f"{four.throughput_bps:.0f} b/s", f"{four.ber:.3f}"],
         ["FiveLevelThreadChannel", "5 (incl. quiet)", "2.32",
          f"{five.throughput_bps:.0f} b/s",
          f"{five.digit_error_rate:.3f}"]]))
    gain = five.throughput_bps / four.throughput_bps
    print(f"rate gain: {gain:.3f}x (ideal log2(5)/2 = 1.161x minus "
          f"base-5 block padding)")

    benchmark.extra_info["five_level_bps"] = round(five.throughput_bps)
    benchmark.extra_info["gain"] = round(gain, 3)
    assert five.digit_error_rate == 0.0
    assert gain > 1.05
