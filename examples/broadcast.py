#!/usr/bin/env python
"""Broadcast: one sender feeding two receivers per transaction.

A single PHI loop triggers all the paper's side effects at once: the
sender's voltage transition co-throttles its SMT sibling
(Multi-Throttling-SMT) *and* serialises against the other core's
transition (Multi-Throttling-Cores).  One transaction therefore carries
the same two bits to a receiver on the sibling hardware thread and a
receiver on the other physical core simultaneously — doubling the
audience at zero extra sender cost.

Run::

    python examples/broadcast.py
"""

import _pathfix  # noqa: F401  (sys.path setup for uninstalled runs)

from repro import System, cannon_lake_i3_8121u
from repro.core import ChannelLocation, IccBroadcast

MESSAGE = b"multicast"


def main() -> None:
    system = System(cannon_lake_i3_8121u())
    broadcast = IccBroadcast(system, sender_core=0, cross_core=1)

    print(f"message: {MESSAGE!r} ({len(MESSAGE) * 8} bits)")
    print("sender  : core 0, SMT slot 0")
    print("receiver A: core 0, SMT slot 1 (co-throttled sibling)")
    print("receiver B: core 1 (transition queued behind the sender's)\n")

    report = broadcast.transfer(MESSAGE)
    for location in IccBroadcast.LOCATIONS:
        received = report.received[location]
        status = "OK" if received == MESSAGE else "CORRUPTED"
        print(f"{location.value:14s}: {received!r}  "
              f"BER={report.ber(location):.3f}  [{status}]")

    slots = len(report.symbols_sent)
    wall_ms = (report.end_ns - report.start_ns) / 1e6
    print(f"\n{slots} transactions in {wall_ms:.1f} ms simulated — both "
          f"receivers decoded from the SAME sender loops.")


if __name__ == "__main__":
    main()
