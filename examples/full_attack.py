#!/usr/bin/env python
"""The complete kill chain, end to end, on one simulated machine.

Walks every stage an IChannels attacker (and the defender) goes
through:

1. **Reconnaissance** — feasibility analysis from the part's electrical
   description: which channels can work here at all?
2. **Side-channel phase** — a spy on the victim's SMT sibling steals an
   access key from key-dependent code paths (§6.5).
3. **Covert exfiltration** — the stolen key is shipped across physical
   cores through a reliable session (framing + SECDED + CRC ARQ +
   quiet-period sensing) while OS noise and a compressor run.
4. **Defence** — a software monitor flags the channel's clocked
   throttle train; the attacker re-runs with slot jitter and evades it;
   finally, secure mode removes the channel outright.

Run::

    python examples/full_attack.py
"""

import _pathfix  # noqa: F401  (sys.path setup for uninstalled runs)

from repro import System, SystemOptions, cannon_lake_i3_8121u
from repro.core import (
    ChannelConfig,
    ChannelLocation,
    IccCoresCovert,
    IccThreadCovert,
    InstructionClassSpy,
    KeyDependentVictim,
)
from repro.core.session import CovertSession, SessionConfig
from repro.errors import CalibrationError
from repro.isa.workload import sevenzip_like_trace
from repro.mitigations import ThrottleAnomalyDetector
from repro.soc import analyze_feasibility
from repro.soc.noise import NoiseConfig, attach_system_noise, attach_trace
from repro.units import ms_to_ns


def stage1_recon() -> None:
    """Feasibility from the datasheet-level description alone."""
    print("=== stage 1: reconnaissance (no code executed yet) ===")
    report = analyze_feasibility(cannon_lake_i3_8121u())
    for verdict in report.channels:
        status = "feasible" if verdict.feasible else "infeasible"
        print(f"  {verdict.location.value:14s}: {status} "
              f"(level gap {verdict.min_level_gap_tsc:.0f} TSC cycles)")


def stage2_steal_key() -> "list[int]":
    """SMT-sibling spy against key-dependent code paths."""
    print("\n=== stage 2: steal the key via the SMT side channel ===")
    system = System(cannon_lake_i3_8121u())
    spy = InstructionClassSpy(system, ChannelLocation.ACROSS_SMT)
    key = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1]
    stolen = spy.steal_key(KeyDependentVictim(), key)
    hits = sum(1 for a, b in zip(key, stolen) if a == b)
    print(f"  victim key : {''.join(map(str, key))}")
    print(f"  stolen key : {''.join(map(str, stolen))}  ({hits}/{len(key)})")
    return stolen


def stage3_exfiltrate(key_bits: "list[int]") -> None:
    """Ship the key across cores through a noisy, shared machine."""
    print("\n=== stage 3: exfiltrate across cores, reliably, in noise ===")
    payload = bytes(
        int("".join(map(str, key_bits[i:i + 8])), 2)
        for i in range(0, len(key_bits), 8)
    )
    system = System(cannon_lake_i3_8121u(), seed=1234)
    attach_system_noise(
        system, [system.thread_on(0, 0), system.thread_on(1, 0)],
        NoiseConfig(), horizon_ns=ms_to_ns(300.0), seed=1234)
    attach_trace(system, system.thread_on(1, 1),
                 sevenzip_like_trace(total_ms=300.0, seed=5,
                                     mean_scalar_us=20_000.0))
    session = CovertSession(
        IccCoresCovert(system),
        SessionConfig(frame_bytes=2, wait_for_quiet=True))
    report = session.send(payload)
    print(f"  delivered  : {'YES' if report.ok else 'NO'} "
          f"({report.delivered.hex() if report.delivered else '-'})")
    print(f"  frames     : {len(report.frames)} "
          f"(+{report.retransmissions} retransmissions, "
          f"{sum(f.quiet_senses for f in report.frames)} quiet senses)")
    print(f"  goodput    : {report.goodput_bps:,.0f} bit/s")


def stage4_defend() -> None:
    """Detection, evasion, and the hardware endgame."""
    print("\n=== stage 4: the defender's options ===")
    detector = ThrottleAnomalyDetector()

    clocked = System(cannon_lake_i3_8121u())
    IccThreadCovert(clocked).transfer(b"exfil!")
    print(f"  monitor vs clocked channel : flagged="
          f"{detector.any_flagged(clocked)}")

    stealthy = System(cannon_lake_i3_8121u())
    IccThreadCovert(stealthy,
                    ChannelConfig(slot_jitter_us=400.0)).transfer(b"exfil!")
    print(f"  monitor vs jittered channel: flagged="
          f"{detector.any_flagged(stealthy)} (attacker evades, slower)")

    secure = System(cannon_lake_i3_8121u(),
                    options=SystemOptions(secure_mode=True))
    try:
        IccThreadCovert(secure).calibrate()
        outcome = "channel still works (!)"
    except CalibrationError:
        outcome = "channel dead"
    print(f"  secure mode                : {outcome} "
          f"(hardware endgame, 4-11% power)")


def main() -> None:
    stage1_recon()
    stolen = stage2_steal_key()
    stage3_exfiltrate(stolen)
    stage4_defend()


if __name__ == "__main__":
    main()
