#!/usr/bin/env python
"""Side-channel variant (Section 6.5): spying on a victim's instructions.

An attacker thread co-located with a victim — on the sibling SMT thread,
or on another physical core — times its own loop while the victim runs
and classifies the stretching against calibrated per-class signatures.
The spy recovers *which vector width and weight* the victim executes
(64-bit scalar vs 128/256/512-bit light/heavy), the leak primitive the
paper identifies; turning it into application secrets is future work in
the paper too.

Run::

    python examples/smt_spy.py
"""

import _pathfix  # noqa: F401  (sys.path setup for uninstalled runs)

from repro import IClass, System, cannon_lake_i3_8121u
from repro.core import ChannelLocation, InstructionClassSpy

# A victim alternating between bookkeeping and vectorised kernels, e.g.
# a crypto library switching between scalar control flow and AVX paths.
VICTIM_PHASES = [
    IClass.SCALAR_64,
    IClass.HEAVY_256,
    IClass.HEAVY_256,
    IClass.SCALAR_64,
    IClass.HEAVY_512,
    IClass.LIGHT_128,
    IClass.HEAVY_128,
    IClass.SCALAR_64,
]


def run_spy(location: ChannelLocation) -> None:
    system = System(cannon_lake_i3_8121u())
    spy = InstructionClassSpy(system, location)
    spy.calibrate()
    report = spy.spy(VICTIM_PHASES)

    print(f"\n=== spy location: {location.value} ===")
    print(f"{'victim executed':>18s}   {'spy inferred':>18s}   hit")
    for actual, inferred in zip(report.victim_classes,
                                report.inferred_classes):
        mark = "yes" if actual == inferred else " - "
        print(f"{actual.label:>18s}   {inferred.label:>18s}   {mark}")
    print(f"classification accuracy: {report.accuracy * 100:.0f}%")


def steal_key_demo() -> None:
    """Key recovery from a victim with key-dependent code paths."""
    from repro.core.side_channel import KeyDependentVictim

    system = System(cannon_lake_i3_8121u())
    spy = InstructionClassSpy(system, ChannelLocation.ACROSS_SMT)
    victim = KeyDependentVictim()  # AVX2 path for 1-bits, scalar for 0-bits
    key = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1]
    stolen = spy.steal_key(victim, key)

    print("\n=== key recovery from key-dependent code paths ===")
    print("victim takes the AVX2 path when a key bit is 1, scalar when 0")
    print(f"actual key : {''.join(map(str, key))}")
    print(f"stolen key : {''.join(map(str, stolen))}")
    hits = sum(1 for a, b in zip(key, stolen) if a == b)
    print(f"recovered  : {hits}/{len(key)} bits")


def main() -> None:
    print("Victim phase classification via throttling side effects")
    run_spy(ChannelLocation.ACROSS_SMT)
    run_spy(ChannelLocation.ACROSS_CORES)
    steal_key_demo()


if __name__ == "__main__":
    main()
