"""Make ``python examples/<name>.py`` work without installing the package.

Each example starts with ``import _pathfix`` (this module lives next to
them, so the script directory on ``sys.path`` finds it).  If ``repro``
is already importable — installed via ``pip install -e .`` or exposed
through ``PYTHONPATH`` — this is a no-op; otherwise the repository's
``src/`` directory is prepended to ``sys.path``.
"""

import os
import sys

try:
    import repro  # noqa: F401  (probe only)
except ModuleNotFoundError:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    sys.path.insert(0, _SRC)
