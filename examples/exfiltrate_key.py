#!/usr/bin/env python
"""Cross-core exfiltration of an AES key under realistic noise.

The scenario of Section 4's attacker model: a sender process that can
read a 128-bit key but has no overt channel, and a receiver on another
physical core.  The system is noisy — OS interrupts and context switches
hit both parties, and a 7-zip-like compressor shares the sender's core
sibling thread.  The payload is protected the way Section 6.3 suggests:
Hamming(8,4) SECDED for correction, a block interleaver so a symbol
error cannot hit one block twice, and a CRC-8 for end-to-end integrity.

Run::

    python examples/exfiltrate_key.py
"""

import _pathfix  # noqa: F401  (sys.path setup for uninstalled runs)

from repro import System, cannon_lake_i3_8121u
from repro.core import CRC8, Hamming74, IccCoresCovert
from repro.core.ecc import deinterleave, interleave
from repro.core.encoding import bits_to_bytes, bytes_to_bits
from repro.isa.workload import sevenzip_like_trace
from repro.soc.noise import NoiseConfig, attach_system_noise, attach_trace
from repro.units import ms_to_ns

AES_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def protect(payload: bytes) -> bytes:
    """CRC-frame, Hamming-encode and interleave a payload for the wire."""
    framed = CRC8().append(payload)
    code = Hamming74()
    coded = code.encode(bytes_to_bits(framed))
    return bits_to_bytes(interleave(coded, depth=code.block_bits))


def recover(wire: bytes, payload_len: int) -> "tuple[bytes, bool]":
    """Invert :func:`protect`; returns (payload, crc_ok)."""
    code = Hamming74()
    coded = deinterleave(bytes_to_bits(wire), depth=code.block_bits)
    framed = bits_to_bytes(code.decode(coded))
    return framed[:payload_len], CRC8().verify(framed[:payload_len + 1])


def main() -> None:
    system = System(cannon_lake_i3_8121u(), seed=42)

    # OS noise on both communicating threads for the whole session.
    horizon = ms_to_ns(400.0)
    attach_system_noise(
        system,
        [system.thread_on(0, 0), system.thread_on(1, 0)],
        NoiseConfig(interrupt_rate_per_s=500.0, ctx_switch_rate_per_s=100.0),
        horizon_ns=horizon,
        seed=42,
    )
    # A lightly-loaded 7-zip-like compressor on the receiver core's
    # sibling SMT thread: its sparse AVX2 bursts perturb the shared rail
    # and occasionally mask whole transactions.  (On this 2-core part a
    # heavily-loaded compressor would mask ~20% of slots — the paper's
    # answer for that regime is to wait for a quiet period, Section 6.3.)
    attach_trace(system, system.thread_on(1, 1),
                 sevenzip_like_trace(total_ms=400.0, seed=7,
                                     mean_scalar_us=20_000.0))

    wire = protect(AES_KEY)
    print(f"key            : {AES_KEY.hex()}")
    print(f"wire payload   : {len(wire)} bytes "
          f"({len(wire) * 8} channel bits after SECDED + CRC)")

    channel = IccCoresCovert(system, sender_core=0, receiver_core=1)

    # Section 6.3's noise strategy: detect residual corruption with the
    # CRC and retransmit until a frame survives.
    for attempt in range(1, 6):
        report = channel.transfer(wire)
        recovered, crc_ok = recover(report.received, len(AES_KEY))
        print(f"attempt {attempt}: raw BER {report.ber:.4f} "
              f"({report.bit_errors}/{report.bits} bits), "
              f"CRC {'PASS' if crc_ok else 'FAIL'}")
        if crc_ok:
            break

    print(f"recovered key  : {recovered.hex()}")
    print(f"key match      : {'YES' if recovered == AES_KEY else 'NO'}")
    print(f"throughput     : {report.throughput_bps:,.0f} bit/s on the wire, "
          f"{report.throughput_bps * 0.5:,.0f} bit/s of key material "
          f"(rate-1/2 code)")

    session_demo()


def session_demo() -> None:
    """The same exfiltration through the high-level session transport.

    :class:`~repro.core.session.CovertSession` packages the framing, FEC,
    interleaving and CRC-driven retransmission above into one call.
    """
    from repro.core.session import CovertSession, SessionConfig

    print("\n--- same attack via CovertSession (framing + FEC + ARQ) ---")
    system = System(cannon_lake_i3_8121u(), seed=43)
    attach_system_noise(
        system,
        [system.thread_on(0, 0), system.thread_on(1, 0)],
        NoiseConfig(interrupt_rate_per_s=500.0, ctx_switch_rate_per_s=100.0),
        horizon_ns=ms_to_ns(600.0),
        seed=43,
    )
    attach_trace(system, system.thread_on(1, 1),
                 sevenzip_like_trace(total_ms=600.0, seed=7,
                                     mean_scalar_us=20_000.0))
    channel = IccCoresCovert(system, sender_core=0, receiver_core=1)
    session = CovertSession(channel, SessionConfig(frame_bytes=8))
    report = session.send(AES_KEY)
    print(f"delivered      : {'YES' if report.ok else 'NO'} "
          f"({report.delivered.hex() if report.delivered else '-'})")
    print(f"frames         : {len(report.frames)} "
          f"(+{report.retransmissions} retransmissions)")
    print(f"goodput        : {report.goodput_bps:,.0f} bit/s of key material")


if __name__ == "__main__":
    main()
