#!/usr/bin/env python
"""Re-run the paper's Section 5 characterisation on the simulator.

Walks the same sequence of experiments the authors ran on real hardware:

1. voltage-emergency avoidance — per-core AVX2 guardband steps (Fig. 6);
2. Icc/Vcc limit protection — frequency drops at turbo, not thermal
   (Fig. 7);
3. power gating is NOT the cause — nanosecond wake vs microsecond TP
   (Fig. 8/9);
4. multi-level throttling — TP ladder over classes and core counts
   (Fig. 10);
5. SMT co-throttling — the 75 % IDQ-blocked signature (Fig. 11).

Run::

    python examples/characterize.py
"""

import numpy as np

import _pathfix  # noqa: F401  (sys.path setup for uninstalled runs)

from repro.analysis import experiments as ex
from repro.isa import IClass


def main() -> None:
    print("[1/5] Voltage emergency (di/dt) avoidance")
    fig6 = ex.fig6_voltage_steps()
    print(f"    per-core AVX2 guardband steps: "
          f"+{fig6.step_core1_mv:.1f} mV, +{fig6.step_core0_mv:.1f} mV "
          f"(paper: ~8, ~9 mV); frequency flat at "
          f"{fig6.freq_ghz_end:.1f} GHz")

    print("[2/5] Icc_max / Vcc_max limit protection")
    fig7 = ex.fig7_limit_protection()
    for p in fig7.points:
        if p.vcc_violation or p.icc_violation:
            which = "Vcc_max" if p.vcc_violation else "Icc_max"
            print(f"    {p.system} {p.workload} @ {p.freq_req_ghz} GHz "
                  f"violates {which} -> runs at {p.freq_realized_ghz:.2f} GHz")
    print(f"    junction temperature peaked at {fig7.temp_max_c:.0f} C "
          f"(Tj_max {fig7.tj_max_c:.0f} C): not thermal")

    print("[3/5] Power gating is not the cause of throttling")
    fig8 = ex.fig8_throttling(trials=10)
    wake = fig8.iteration_deltas_ns["Coffee Lake"][0]
    tp = float(np.median(fig8.tp_us_by_part["Coffee Lake"]))
    print(f"    PG wake {wake:.0f} ns vs TP {tp:.1f} us -> "
          f"{wake / (tp * 1000) * 100:.2f}% of the throttling period")
    print(f"    Haswell (no AVX PG) iteration deltas: "
          f"{[round(d, 1) for d in fig8.iteration_deltas_ns['Haswell']]}")

    print("[4/5] Multi-level throttling")
    fig10 = ex.fig10_multilevel()
    for iclass in sorted(IClass):
        one = fig10.sweep[(iclass.label, 1.0, 1)]
        two = fig10.sweep[(iclass.label, 1.0, 2)]
        print(f"    {iclass.label:12s} TP @1GHz: {one:5.1f} us (1 core)  "
              f"{two:5.1f} us (2 cores)")
    print(f"    distinct levels in the preceded-by sweep: "
          f"{sorted(set(fig10.levels.values()))}")

    print("[5/5] SMT co-throttling signature")
    fig11 = ex.fig11_idq_signature(iterations=100)
    print(f"    normalized IDQ_UOPS_NOT_DELIVERED: "
          f"{np.mean(fig11.throttled):.3f} throttled vs "
          f"{np.mean(fig11.unthrottled):.3f} unthrottled (paper: 0.75 vs ~0)")


if __name__ == "__main__":
    main()
