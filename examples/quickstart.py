#!/usr/bin/env python
"""Quickstart: send a secret over each of the three IChannels.

Builds a simulated Cannon Lake (i3-8121U) system, establishes the three
covert channels the paper demonstrates — same hardware thread, across
SMT threads, and across physical cores — and transfers a short secret
over each, printing the decoded payload, bit error rate and throughput.

Run::

    python examples/quickstart.py
"""

import _pathfix  # noqa: F401  (sys.path setup for uninstalled runs)

from repro import System, cannon_lake_i3_8121u
from repro.core import IccCoresCovert, IccSMTcovert, IccThreadCovert

SECRET = b"IChannels!"


def main() -> None:
    channels = [
        ("IccThreadCovert (same hardware thread)", IccThreadCovert),
        ("IccSMTcovert    (across SMT threads)", IccSMTcovert),
        ("IccCoresCovert  (across physical cores)", IccCoresCovert),
    ]
    print(f"secret: {SECRET!r} ({len(SECRET) * 8} bits)\n")
    for label, channel_cls in channels:
        # Each channel gets its own freshly booted machine; the first
        # transfer auto-calibrates by sending known training symbols.
        system = System(cannon_lake_i3_8121u())
        channel = channel_cls(system)
        report = channel.transfer(SECRET)
        status = "OK" if report.received == SECRET else "CORRUPTED"
        print(f"{label}")
        print(f"  received   : {report.received!r}  [{status}]")
        print(f"  bit errors : {report.bit_errors}/{report.bits} "
              f"(BER {report.ber:.3f})")
        print(f"  throughput : {report.throughput_bps:,.0f} bit/s "
              f"(paper reports ~2.9 kbit/s)")
        print(f"  wall time  : {report.elapsed_ns / 1e6:.2f} ms simulated\n")


if __name__ == "__main__":
    main()
