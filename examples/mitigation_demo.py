#!/usr/bin/env python
"""The three mitigations of Section 7, attacked one by one.

For every (channel, mitigation) pair this demo boots a mitigated
machine, lets the attacker calibrate as hard as it can (no minimum
cluster separation), and reports whether the channel still carries
data — reproducing Table 1 — together with the cost column: the
secure-mode power overhead is measured from the simulated rail, the
others quoted from the paper.

Run::

    python examples/mitigation_demo.py
"""

import _pathfix  # noqa: F401  (sys.path setup for uninstalled runs)

from repro.mitigations import Mitigation, evaluate_all
from repro.soc.config import cannon_lake_i3_8121u

VERDICT_TEXT = {
    "OPEN": "channel still works",
    "PARTIAL": "decodable only in a noise-free world",
    "MITIGATED": "channel dead",
}


def main() -> None:
    config = cannon_lake_i3_8121u()
    print(f"evaluating mitigations on {config.codename} ({config.name})\n")
    report = evaluate_all(config)

    mitigations = [Mitigation.PER_CORE_VR, Mitigation.IMPROVED_THROTTLING,
                   Mitigation.SECURE_MODE]
    channels = ["IccThreadCovert", "IccSMTcovert", "IccCoresCovert"]
    for mitigation in mitigations:
        print(f"--- {mitigation.value} "
              f"(overhead: {report.overhead_notes[mitigation]}) ---")
        for channel in channels:
            outcome = next(o for o in report.outcomes
                           if o.channel == channel
                           and o.mitigation == mitigation)
            print(f"  {channel:16s} {outcome.verdict:10s} "
                  f"BER={outcome.ber:.2f}  level separation="
                  f"{outcome.min_separation_tsc:6.0f} cycles   "
                  f"({VERDICT_TEXT[outcome.verdict]})")
        print()

    print(f"secure-mode power overhead (measured): "
          f"{report.secure_mode_power_overhead * 100:.1f}% "
          f"(paper: 4-11%)")
    print("\nPaper's Table 1, for comparison:")
    print("  per-core VR         : Partially / Partially / mitigated")
    print("  improved throttling : open      / mitigated / open")
    print("  secure mode         : mitigated / mitigated / mitigated")

    detection_demo()


def detection_demo() -> None:
    """Software-only defence on today's hardware: pattern detection.

    A defender watching the front-end-stall PMCs can flag the channels'
    clocked throttle trains — and the attacker can answer with slot
    jitter, at a throughput cost.
    """
    from repro import System
    from repro.core import IccThreadCovert
    from repro.core.channel import ChannelConfig
    from repro.mitigations import ThrottleAnomalyDetector

    print("\n--- software detection on unmitigated hardware ---")
    detector = ThrottleAnomalyDetector()

    clocked = System(cannon_lake_i3_8121u())
    plain = IccThreadCovert(clocked).transfer(bytes(range(8)))
    verdict = detector.analyze_system(clocked)[0]
    print(f"clocked channel : periodicity={verdict.periodicity:.2f} "
          f"flagged={verdict.flagged}  "
          f"({plain.throughput_bps:,.0f} bit/s)")

    stealthy = System(cannon_lake_i3_8121u())
    jittered = IccThreadCovert(
        stealthy, ChannelConfig(slot_jitter_us=400.0)
    ).transfer(bytes(range(8)))
    verdict = detector.analyze_system(stealthy)[0]
    print(f"jittered channel: periodicity={verdict.periodicity:.2f} "
          f"flagged={verdict.flagged}  "
          f"({jittered.throughput_bps:,.0f} bit/s, BER "
          f"{jittered.ber:.3f})")
    print("-> detection forces the attacker to trade throughput for "
          "stealth; the hardware mitigations above remove the channel "
          "entirely.")


if __name__ == "__main__":
    main()
