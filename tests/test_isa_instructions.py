"""Instruction classes and the concrete instruction table."""

import pytest

from repro.errors import ConfigError
from repro.isa import (
    IClass,
    INSTRUCTIONS,
    Instruction,
    PHI_CLASSES,
    instruction,
    instructions_in_class,
)


class TestIClassOrdering:
    def test_seven_classes(self):
        assert len(list(IClass)) == 7

    def test_enum_order_matches_intensity(self):
        ordered = sorted(IClass)
        assert ordered[0] == IClass.SCALAR_64
        assert ordered[-1] == IClass.HEAVY_512

    def test_cdyn_strictly_increases_with_intensity(self):
        classes = sorted(IClass)
        cdyns = [c.cdyn_nf for c in classes]
        assert all(b > a for a, b in zip(cdyns, cdyns[1:]))

    def test_scalar_has_highest_ipc(self):
        assert IClass.SCALAR_64.ipc >= max(c.ipc for c in IClass)

    def test_heavy_512_is_most_intense(self):
        assert max(IClass, key=lambda c: c.cdyn_nf) == IClass.HEAVY_512


class TestIClassProperties:
    def test_scalar_width(self):
        assert IClass.SCALAR_64.width_bits == 64

    def test_heavy_flags(self):
        assert IClass.HEAVY_256.heavy
        assert not IClass.LIGHT_256.heavy

    def test_avx256_unit_usage(self):
        assert IClass.LIGHT_256.uses_avx256_unit
        assert IClass.HEAVY_512.uses_avx256_unit
        assert not IClass.HEAVY_128.uses_avx256_unit

    def test_avx512_unit_usage(self):
        assert IClass.HEAVY_512.uses_avx512_unit
        assert not IClass.HEAVY_256.uses_avx512_unit

    def test_phi_split_matches_paper(self):
        # The paper's PHIs are the classes that trigger guardband bumps.
        assert IClass.HEAVY_128.is_phi
        assert not IClass.SCALAR_64.is_phi
        assert not IClass.LIGHT_128.is_phi

    def test_phi_classes_tuple(self):
        assert set(PHI_CLASSES) == {c for c in IClass if c.is_phi}
        assert len(PHI_CLASSES) == 5


class TestLabels:
    def test_scalar_label(self):
        assert IClass.SCALAR_64.label == "64b"

    def test_heavy_label(self):
        assert IClass.HEAVY_256.label == "256b_Heavy"

    def test_light_label(self):
        assert IClass.LIGHT_512.label == "512b_Light"

    def test_from_label_roundtrip(self):
        for iclass in IClass:
            assert IClass.from_label(iclass.label) == iclass

    def test_from_label_case_insensitive(self):
        assert IClass.from_label("256B_heavy") == IClass.HEAVY_256

    def test_from_label_unknown_raises(self):
        with pytest.raises(ConfigError):
            IClass.from_label("1024b_Heavy")


class TestInstructionTable:
    def test_lookup_known_mnemonic(self):
        inst = instruction("VMULPD256")
        assert inst.iclass == IClass.HEAVY_256

    def test_lookup_case_insensitive(self):
        assert instruction("vmulpd512").iclass == IClass.HEAVY_512

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError):
            instruction("NOPE")

    def test_every_class_has_instructions(self):
        for iclass in IClass:
            assert instructions_in_class(iclass), f"{iclass.label} has no entries"

    def test_heavy_instructions_are_in_heavy_classes(self):
        # Multiplies and FP adds (the paper's 'Heavy' definition).
        for mnemonic in ("VMULPD128", "VADDPD256", "VFMADD231PD512"):
            assert INSTRUCTIONS[mnemonic].iclass.heavy

    def test_light_instructions_are_in_light_classes(self):
        for mnemonic in ("VPOR128", "VORPD256", "VPORQ512"):
            assert not INSTRUCTIONS[mnemonic].iclass.heavy

    def test_uops_positive(self):
        assert all(inst.uops >= 1 for inst in INSTRUCTIONS.values())

    def test_invalid_uops_rejected(self):
        with pytest.raises(ConfigError):
            Instruction("BAD", IClass.SCALAR_64, 0, "broken")

    def test_vorpd256_is_the_papers_light_example(self):
        # Paper: VORPD-256 throttles less than VMULPD-512.
        vorpd = instruction("VORPD256")
        vmulpd = instruction("VMULPD512")
        assert vorpd.iclass.cdyn_nf < vmulpd.iclass.cdyn_nf
