"""Icc_max / Vcc_max limit protection policy."""

import pytest

from repro.errors import ConfigError
from repro.isa import IClass
from repro.pdn import GuardbandModel, LoadLine
from repro.pmu import LimitPolicy, VFCurve
from repro.pmu.dvfs import pstate_ladder
from repro.soc.config import cannon_lake_i3_8121u, coffee_lake_i7_9700k


def policy_for(config):
    curve = config.vf_curve()
    guardband = GuardbandModel(LoadLine(config.r_ll_mohm / 1000.0))
    return LimitPolicy(curve, guardband, config.vcc_max, config.icc_max), curve


class TestEvaluate:
    def test_desktop_avx2_at_49_violates_vcc_only(self):
        # Figure 7(a): i7-9700K AVX2 at 4.9 GHz crosses Vcc_max = 1.27 V
        # while Icc stays under 100 A.
        policy, _ = policy_for(coffee_lake_i7_9700k())
        verdict = policy.evaluate(4.9, [IClass.HEAVY_256])
        assert verdict.vcc_violation
        assert not verdict.icc_violation

    def test_desktop_avx2_at_48_fits(self):
        policy, _ = policy_for(coffee_lake_i7_9700k())
        assert policy.evaluate(4.8, [IClass.HEAVY_256]).ok

    def test_mobile_avx2_two_cores_at_31_violates_icc_only(self):
        # Figure 7(a): i3-8121U, 2 cores AVX2 at 3.1 GHz crosses
        # Icc_max = 29 A while Vcc stays well under 1.15 V.
        policy, _ = policy_for(cannon_lake_i3_8121u())
        verdict = policy.evaluate(3.1, [IClass.HEAVY_256] * 2)
        assert verdict.icc_violation
        assert not verdict.vcc_violation

    def test_mobile_avx2_two_cores_at_22_fits(self):
        policy, _ = policy_for(cannon_lake_i3_8121u())
        assert policy.evaluate(2.2, [IClass.HEAVY_256] * 2).ok

    def test_mobile_nonavx_at_31_fits(self):
        policy, _ = policy_for(cannon_lake_i3_8121u())
        assert policy.evaluate(3.1, [IClass.SCALAR_64] * 2).ok

    def test_current_projection_grows_with_class(self):
        policy, _ = policy_for(cannon_lake_i3_8121u())
        scalar = policy.evaluate(2.2, [IClass.SCALAR_64]).icc_projected
        heavy = policy.evaluate(2.2, [IClass.HEAVY_512]).icc_projected
        assert heavy > scalar

    def test_vcc_target_includes_guardband(self):
        policy, curve = policy_for(cannon_lake_i3_8121u())
        verdict = policy.evaluate(2.2, [IClass.HEAVY_512])
        assert verdict.vcc_target > curve.vcc_for(2.2)

    def test_rejects_nonpositive_limits(self):
        policy, curve = policy_for(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            LimitPolicy(curve, policy.guardband, 0.0, 29.0)


class TestMaxAllowed:
    def test_drops_frequency_until_limits_fit(self):
        config = cannon_lake_i3_8121u()
        policy, curve = policy_for(config)
        ladder = pstate_ladder(curve, config.min_freq_ghz, config.max_turbo_ghz)
        state = policy.max_allowed(3.1, [IClass.HEAVY_256] * 2, ladder)
        assert state.freq_ghz < 3.1
        assert policy.evaluate(state.freq_ghz, [IClass.HEAVY_256] * 2).ok

    def test_keeps_requested_when_fitting(self):
        config = cannon_lake_i3_8121u()
        policy, curve = policy_for(config)
        ladder = pstate_ladder(curve, config.min_freq_ghz, config.max_turbo_ghz)
        state = policy.max_allowed(2.2, [IClass.SCALAR_64] * 2, ladder)
        assert state.freq_ghz == pytest.approx(2.2)

    def test_no_active_classes_returns_requested(self):
        config = cannon_lake_i3_8121u()
        policy, curve = policy_for(config)
        ladder = pstate_ladder(curve, config.min_freq_ghz, config.max_turbo_ghz)
        assert policy.max_allowed(3.0, [], ladder).freq_ghz == pytest.approx(3.0)

    def test_rejects_empty_ladder(self):
        policy, _ = policy_for(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            policy.max_allowed(2.0, [IClass.SCALAR_64], [])
