"""Package entry point (`python -m repro`)."""

from repro.__main__ import main


class TestMainDemo:
    def test_demo_runs_clean(self, capsys):
        assert main() == 0
        out = capsys.readouterr().out
        assert "IChannels demo" in out
        assert out.count("[OK]") == 3
        assert "[FAILED]" not in out
