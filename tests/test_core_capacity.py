"""Capacity and throughput accounting."""

import math

import pytest

from repro.core import (
    binary_symmetric_capacity,
    effective_throughput_bps,
    symbol_channel_capacity_bps,
)
from repro.core.capacity import (
    mean_ber,
    raw_symbol_rate_bps,
    symmetric_symbol_capacity,
)
from repro.errors import ProtocolError


class TestRawRate:
    def test_paper_headline_rate(self):
        # 2 bits per <=690 us cycle -> ~2.9 kbps (Section 6.2).
        assert raw_symbol_rate_bps(2, 690.0) == pytest.approx(2898.55, rel=1e-3)

    def test_one_bit_channel_half_rate(self):
        assert raw_symbol_rate_bps(1, 690.0) == pytest.approx(
            raw_symbol_rate_bps(2, 690.0) / 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ProtocolError):
            raw_symbol_rate_bps(0, 690.0)
        with pytest.raises(ProtocolError):
            raw_symbol_rate_bps(2, 0.0)


class TestBSC:
    def test_perfect_channel_capacity_one(self):
        assert binary_symmetric_capacity(0.0) == 1.0

    def test_coin_flip_channel_capacity_zero(self):
        assert binary_symmetric_capacity(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_symmetric_in_error(self):
        assert binary_symmetric_capacity(0.1) == pytest.approx(
            binary_symmetric_capacity(0.9))

    def test_rejects_out_of_range(self):
        with pytest.raises(ProtocolError):
            binary_symmetric_capacity(1.5)


class TestSymbolCapacity:
    def test_error_free_four_symbols_two_bits(self):
        assert symmetric_symbol_capacity(4, 0.0) == pytest.approx(2.0)

    def test_capacity_decreases_with_error(self):
        caps = [symmetric_symbol_capacity(4, p) for p in (0.0, 0.05, 0.2, 0.5)]
        assert all(b < a for a, b in zip(caps, caps[1:]))

    def test_uniform_error_capacity_zero(self):
        # p = (m-1)/m makes the output independent of the input.
        assert symmetric_symbol_capacity(4, 0.75) == pytest.approx(0.0, abs=1e-12)

    def test_bps_scales_with_cycle(self):
        fast = symbol_channel_capacity_bps(690.0, 0.0)
        slow = symbol_channel_capacity_bps(1380.0, 0.0)
        assert fast == pytest.approx(2 * slow)

    def test_rejects_tiny_alphabet(self):
        with pytest.raises(ProtocolError):
            symmetric_symbol_capacity(1, 0.0)


class TestEffectiveThroughput:
    def test_identity_when_clean(self):
        assert effective_throughput_bps(2899.0, 0.0) == pytest.approx(2899.0)

    def test_code_rate_discount(self):
        assert effective_throughput_bps(1000.0, 0.0, code_rate=0.5) == 500.0

    def test_duty_cycle_discount(self):
        assert effective_throughput_bps(1000.0, 0.0, duty_cycle=0.8) == 800.0

    def test_ber_discount(self):
        assert effective_throughput_bps(1000.0, 0.1) == pytest.approx(900.0)

    def test_all_discounts_compose(self):
        result = effective_throughput_bps(1000.0, 0.1, code_rate=0.5,
                                          duty_cycle=0.5)
        assert result == pytest.approx(1000.0 * 0.5 * 0.5 * 0.9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ProtocolError):
            effective_throughput_bps(-1.0, 0.0)
        with pytest.raises(ProtocolError):
            effective_throughput_bps(1.0, 2.0)
        with pytest.raises(ProtocolError):
            effective_throughput_bps(1.0, 0.0, code_rate=0.0)
        with pytest.raises(ProtocolError):
            effective_throughput_bps(1.0, 0.0, duty_cycle=1.5)


class TestMeanBER:
    def test_average(self):
        assert mean_ber([0.0, 0.1, 0.2]) == pytest.approx(0.1)

    def test_rejects_empty(self):
        with pytest.raises(ProtocolError):
            mean_ber([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ProtocolError):
            mean_ber([0.5, 1.5])


class TestEmpiricalCapacity:
    def test_confusion_matrix_counts(self):
        from repro.core.capacity import confusion_matrix

        counts = confusion_matrix([0, 1, 1, 3], [0, 1, 2, 3])
        assert counts[0][0] == 1
        assert counts[1][1] == 1
        assert counts[1][2] == 1
        assert counts[3][3] == 1

    def test_confusion_matrix_validation(self):
        from repro.core.capacity import confusion_matrix

        with pytest.raises(ProtocolError):
            confusion_matrix([0], [0, 1])
        with pytest.raises(ProtocolError):
            confusion_matrix([], [])
        with pytest.raises(ProtocolError):
            confusion_matrix([4], [0])

    def test_perfect_transfer_carries_two_bits(self):
        from repro.core.capacity import (
            confusion_matrix,
            empirical_mutual_information,
        )

        sent = [0, 1, 2, 3] * 8
        info = empirical_mutual_information(confusion_matrix(sent, sent))
        assert info == pytest.approx(2.0)

    def test_random_decoding_carries_nothing(self):
        from repro.core.capacity import (
            confusion_matrix,
            empirical_mutual_information,
        )

        sent = [0, 1, 2, 3] * 8
        received = [2] * len(sent)  # decoder stuck on one symbol
        info = empirical_mutual_information(confusion_matrix(sent, received))
        assert info == pytest.approx(0.0, abs=1e-9)

    def test_partial_confusion_between_bounds(self):
        from repro.core.capacity import (
            confusion_matrix,
            empirical_mutual_information,
        )

        sent = [0, 1, 2, 3] * 8
        received = list(sent)
        received[0] = 1  # one confused symbol
        info = empirical_mutual_information(confusion_matrix(sent, received))
        assert 1.5 < info < 2.0

    def test_empirical_capacity_bps(self):
        from repro.core.capacity import empirical_capacity_bps

        sent = [0, 1, 2, 3] * 4
        bps = empirical_capacity_bps(sent, sent, elapsed_ns=1e9)
        assert bps == pytest.approx(2.0 * len(sent))

    def test_empirical_capacity_rejects_bad_elapsed(self):
        from repro.core.capacity import empirical_capacity_bps

        with pytest.raises(ProtocolError):
            empirical_capacity_bps([0], [0], elapsed_ns=0.0)
