"""Vectorized trace sampling: grids, signal sources, path equivalence."""

import math

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.measure import (
    DAQCard,
    PiecewiseConstantSignal,
    PiecewiseLinearSignal,
    TraceSampler,
    sample_grid,
)
from repro.measure.trace import StepTrace
from repro.soc.config import cannon_lake_i3_8121u, coffee_lake_i7_9700k
from repro.soc.system import System
from repro.units import NS_PER_S, us_to_ns


def _avx_system(config=None, freq=2.2, iterations=60,
                horizon_us=250.0) -> System:
    """A system with a non-trivial rail history (AVX2 loop + throttling)."""
    system = System(config or cannon_lake_i3_8121u(), governor_freq_ghz=freq)

    def program():
        yield system.until(us_to_ns(10.0))
        yield system.execute(system.thread_on(0),
                             Loop(IClass.HEAVY_256, iterations))
        return None

    system.spawn(program(), name="avx")
    system.run_until(us_to_ns(horizon_us))
    return system


class TestSampleGrid:
    # (rate, span): float ``span / period`` rounds UP across an integer,
    # so the naive ``int(span/period) + 1`` grid ends past ``t1``.
    AWKWARD = [
        (3.5e6, 15714.285714285714),
        (4.8e6, 3541.6666666666665),
        (1.7e6, 24117.647058823528),
        (3.3e6, 9999.999999999998),
        (6376.0, 3607277.2898368877),
    ]

    @pytest.mark.parametrize("rate,span", AWKWARD)
    def test_last_sample_never_past_t1(self, rate, span):
        times = sample_grid(0.0, span, rate)
        assert times[-1] <= span
        # The naive count would overshoot: one more period exceeds span.
        period = NS_PER_S / rate
        assert int(span / period) * period > span  # the rounding hazard
        assert (len(times)) * period > span  # grid still covers the span

    @pytest.mark.parametrize("rate,span", AWKWARD)
    def test_grid_is_uniform_from_t0(self, rate, span):
        t0 = 123.456
        times = sample_grid(t0, t0 + span, rate)
        period = NS_PER_S / rate
        expected = t0 + np.arange(len(times)) * period
        # All but a possibly clamped last sample sit exactly on the grid.
        assert np.array_equal(times[:-1], expected[:-1])
        assert times[0] == t0
        assert times[-1] <= t0 + span
        assert times[-1] >= expected[-1] - period * 1e-9

    def test_plain_case_matches_closed_form(self):
        times = sample_grid(0.0, 1000.0, 1e7)  # period = 100 ns
        assert np.array_equal(times, np.arange(11) * 100.0)

    def test_bad_inputs_rejected(self):
        with pytest.raises(MeasurementError):
            sample_grid(0.0, 100.0, 0.0)
        with pytest.raises(MeasurementError):
            sample_grid(100.0, 100.0, 1e6)
        with pytest.raises(MeasurementError):
            sample_grid(100.0, 50.0, 1e6)

    def test_random_rates_hold_invariants(self):
        rng = np.random.default_rng(63)
        for _ in range(200):
            rate = float(rng.uniform(1e3, 3.5e6))
            t0 = float(rng.uniform(0.0, 1e6))
            span = float(rng.uniform(10.0, 1e6))
            times = sample_grid(t0, t0 + span, rate)
            period = NS_PER_S / rate
            assert times[0] == t0
            assert times[-1] <= t0 + span + 1e-9
            assert (len(times)) * period > span


class TestPiecewiseLinearSignal:
    def test_scalar_matches_vectorized(self):
        signal = PiecewiseLinearSignal(
            np.array([0.0, 10.0, 20.0]), np.array([1.0, 2.0, 0.5]))
        grid = np.linspace(-5.0, 25.0, 301)
        vec = signal.sample(grid)
        scalar = np.array([signal(float(t)) for t in grid])
        assert np.array_equal(vec, scalar)

    def test_clamps_outside_span(self):
        signal = PiecewiseLinearSignal(
            np.array([10.0, 20.0]), np.array([1.0, 2.0]))
        assert signal(0.0) == 1.0
        assert signal(100.0) == 2.0

    def test_jump_encoding_is_right_continuous(self):
        # A jump is two breakpoints at the same time; np.interp takes
        # the later (right) value exactly at the jump.
        signal = PiecewiseLinearSignal(
            np.array([0.0, 10.0, 10.0, 20.0]),
            np.array([1.0, 1.0, 5.0, 5.0]))
        assert signal(10.0) == 5.0
        assert signal(math.nextafter(10.0, 0.0)) == 1.0

    def test_from_pairs_drops_duplicates(self):
        signal = PiecewiseLinearSignal.from_pairs(
            [(0.0, 1.0), (0.0, 1.0), (5.0, 2.0), (5.0, 2.0), (9.0, 2.0)])
        assert len(signal.times_ns) == 3

    def test_validation(self):
        with pytest.raises(MeasurementError):
            PiecewiseLinearSignal(np.array([]), np.array([]))
        with pytest.raises(MeasurementError):
            PiecewiseLinearSignal(np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(MeasurementError):
            PiecewiseLinearSignal(np.array([1.0, 0.0]), np.array([1.0, 2.0]))


class TestPiecewiseConstantSignal:
    def test_right_continuous_with_initial(self):
        signal = PiecewiseConstantSignal(
            np.array([10.0, 20.0]), np.array([1.0, 2.0]), initial=0.5)
        assert signal(0.0) == 0.5
        assert signal(10.0) == 1.0
        assert signal(19.999) == 1.0
        assert signal(20.0) == 2.0
        assert signal(1e9) == 2.0

    def test_left_limit_lookup(self):
        signal = PiecewiseConstantSignal(
            np.array([10.0, 20.0]), np.array([1.0, 2.0]), initial=0.5)
        left = signal.sample(np.array([10.0, 20.0, 25.0]), inclusive=False)
        assert list(left) == [0.5, 1.0, 2.0]

    def test_matches_step_trace(self):
        trace = StepTrace(name="freq")
        trace.record(10.0, 1.0)
        trace.record(20.0, 2.0)
        trace.record(20.0, 3.0)  # same-time overwrite: latest wins
        signal = trace.signal(default=0.25)
        grid = np.array([0.0, 9.999, 10.0, 15.0, 20.0, 30.0])
        vec = trace.values_at(grid, default=0.25)
        scalar = np.array([trace.value_at(float(t), default=0.25)
                           for t in grid])
        assert np.array_equal(vec, scalar)
        assert np.array_equal(signal.sample(grid), scalar)


class TestTraceSampler:
    def test_path_selection_and_counters(self):
        sampler = TraceSampler()
        signal = PiecewiseLinearSignal(
            np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert TraceSampler.path_for(signal) == "vectorized"
        assert TraceSampler.path_for(lambda t: t) == "scalar"
        grid = np.linspace(0.0, 1.0, 11)
        sampler.evaluate(signal, grid)
        sampler.evaluate(lambda t: 2.0 * t, grid)
        assert sampler.vectorized_calls == 1
        assert sampler.scalar_calls == 1

    def test_scalar_fallback_matches_fast_path(self):
        sampler = TraceSampler()
        signal = PiecewiseLinearSignal(
            np.array([0.0, 10.0, 30.0]), np.array([1.0, 3.0, 0.0]))
        grid = np.linspace(-1.0, 31.0, 100)
        fast = sampler.evaluate(signal, grid)
        slow = sampler.evaluate(lambda t: signal(t), grid)
        assert np.array_equal(fast, slow)

    def test_non_signal_rejected(self):
        with pytest.raises(MeasurementError):
            TraceSampler().evaluate(object(), np.array([0.0]))


class TestSystemSignals:
    """The signal exports must agree with the scalar accessors to 1e-12."""

    @pytest.mark.parametrize("config,freq,rate", [
        (cannon_lake_i3_8121u, 2.2, 3.5e6),   # fig9(a)-style trace
        (coffee_lake_i7_9700k, 2.0, 2e6),     # fig6-style trace
    ])
    def test_vcc_signal_matches_vcc_at(self, config, freq, rate):
        system = _avx_system(config(), freq=freq)
        times = sample_grid(0.0, system.now, rate)
        vec = system.vcc_signal().sample(times)
        scalar = np.array([system.vcc_at(float(t)) for t in times])
        assert float(np.max(np.abs(vec - scalar))) <= 1e-12

    def test_freq_signal_matches_trace(self):
        system = _avx_system(freq=3.1)
        times = sample_grid(0.0, system.now, 1e6)
        vec = system.freq_signal().sample(times)
        scalar = np.array([
            system.freq_trace.value_at(float(t), default=system.pmu.freq_ghz)
            for t in times])
        assert np.array_equal(vec, scalar)

    def test_icc_signal_matches_icc_at(self):
        system = _avx_system(freq=2.2)
        times = sample_grid(0.0, system.now, 3.5e6)
        vec = system.icc_signal().sample(times)
        scalar = np.array([system.icc_at(float(t)) for t in times])
        assert float(np.max(np.abs(vec - scalar))) <= 1e-12

    def test_rail_breakpoints_well_formed(self):
        system = _avx_system()
        times, volts = system.pmu.rail_of(0).breakpoints()
        assert len(times) == len(volts) > 1
        assert np.all(np.diff(times) >= 0)
        # No consecutive duplicate (time, value) points.
        dup = (np.diff(times) == 0) & (np.diff(volts) == 0)
        assert not np.any(dup)

    def test_daq_paths_produce_identical_series(self):
        system = _avx_system()
        horizon = us_to_ns(100.0)
        fast = DAQCard(seed=7).sample(system.vcc_signal(), 0.0, horizon,
                                      sample_rate_hz=3.5e6, name="vcc")
        slow = DAQCard(seed=7).sample(lambda t: system.vcc_at(t), 0.0,
                                      horizon, sample_rate_hz=3.5e6,
                                      name="vcc")
        assert np.array_equal(fast.times_ns, slow.times_ns)
        assert float(np.max(np.abs(fast.values - slow.values))) <= 1e-12
