"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Calibrator, Hamming74, RepetitionCode
from repro.core.encoding import (
    bits_to_bytes,
    bits_to_symbols,
    bytes_to_bits,
    bytes_to_symbols,
    symbols_to_bits,
    symbols_to_bytes,
)
from repro.isa import IClass
from repro.measure import StepTrace
from repro.pdn import GuardbandModel, LoadLine
from repro.pdn.regulator import VoltageRegulator, mbvr_spec
from repro.soc import Engine

bits_lists = st.lists(st.integers(0, 1), min_size=4, max_size=64).filter(
    lambda b: len(b) % 4 == 0)


class TestEncodingProperties:
    @given(st.binary(min_size=1, max_size=64))
    def test_bytes_bits_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_bytes_symbols_roundtrip(self, data):
        assert symbols_to_bytes(bytes_to_symbols(data)) == data

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=64))
    def test_symbols_bits_roundtrip(self, symbols):
        assert bits_to_symbols(symbols_to_bits(symbols)) == symbols

    @given(st.binary(min_size=1, max_size=32))
    def test_symbol_count_is_four_per_byte(self, data):
        assert len(bytes_to_symbols(data)) == 4 * len(data)


class TestEccProperties:
    @given(bits_lists)
    def test_hamming_roundtrip_clean(self, bits):
        code = Hamming74()
        assert code.decode(code.encode(bits)) == bits

    @given(bits_lists, st.data())
    def test_hamming_corrects_one_error_per_block(self, bits, data):
        code = Hamming74()
        coded = code.encode(bits)
        n_blocks = len(coded) // code.block_bits
        corrupted = list(coded)
        for block in range(n_blocks):
            flip = data.draw(st.integers(0, code.block_bits - 1))
            corrupted[block * code.block_bits + flip] ^= 1
        assert code.decode(corrupted) == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=32),
           st.sampled_from([3, 5, 7]))
    def test_repetition_roundtrip(self, bits, n):
        code = RepetitionCode(n)
        assert code.decode(code.encode(bits)) == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=16), st.data())
    def test_repetition_corrects_minority_errors(self, bits, data):
        code = RepetitionCode(5)
        coded = code.encode(bits)
        corrupted = list(coded)
        for i in range(len(bits)):
            flips = data.draw(st.sets(st.integers(0, 4), max_size=2))
            for f in flips:
                corrupted[i * 5 + f] ^= 1
        assert code.decode(corrupted) == bits


class TestCalibratorProperties:
    @given(st.lists(st.floats(0.0, 1e6), min_size=2, max_size=4, unique=True))
    def test_decode_picks_nearest_center(self, centers):
        centers = sorted(centers)
        if min(b - a for a, b in zip(centers, centers[1:])) < 1.0:
            return  # degenerate clusters
        training = [(i, c) for i, c in enumerate(centers)]
        cal = Calibrator(training)
        for i, center in enumerate(centers):
            assert cal.decode(center) == i

    @given(st.lists(st.floats(0.0, 1e6), min_size=2, max_size=4, unique=True))
    def test_training_points_decode_to_their_label(self, centers):
        centers = sorted(centers)
        if min(b - a for a, b in zip(centers, centers[1:])) < 1.0:
            return
        cal = Calibrator([(i, c) for i, c in enumerate(centers)])
        # Thresholds are strictly between adjacent centers.
        for threshold, (a, b) in zip(cal.thresholds,
                                     zip(centers, centers[1:])):
            assert a < threshold < b


class TestGuardbandProperties:
    @given(st.floats(0.5, 1.3), st.floats(0.5, 5.0),
           st.sampled_from(list(IClass)))
    def test_delta_v_nonnegative(self, vcc, freq, iclass):
        model = GuardbandModel(LoadLine(0.0018))
        assert model.delta_v(iclass, vcc, freq) >= 0.0

    @given(st.floats(0.5, 1.3), st.floats(0.5, 5.0),
           st.lists(st.sampled_from(list(IClass)), max_size=8))
    def test_target_at_least_baseline(self, vcc, freq, classes):
        model = GuardbandModel(LoadLine(0.0018))
        assert model.target_vcc(vcc, classes, freq) >= vcc

    @given(st.floats(0.5, 1.3), st.floats(0.5, 5.0),
           st.lists(st.sampled_from(list(IClass)), min_size=1, max_size=4))
    def test_adding_a_core_never_lowers_target(self, vcc, freq, classes):
        model = GuardbandModel(LoadLine(0.0018))
        smaller = model.target_vcc(vcc, classes[:-1], freq)
        larger = model.target_vcc(vcc, classes, freq)
        assert larger >= smaller


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=40))
    def test_events_always_run_in_nondecreasing_time(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestStepTraceProperties:
    @given(st.lists(st.tuples(st.floats(0.0, 1e6), st.integers(-5, 5)),
                    min_size=1, max_size=40))
    def test_value_at_returns_last_record_before_query(self, points):
        points = sorted(points, key=lambda p: p[0])
        trace = StepTrace("p")
        for t, v in points:
            trace.record(t, v)
        # Query just after every breakpoint: must see that record (or a
        # later same-time overwrite).
        for t, _ in points:
            applicable = [v for (pt, v) in points if pt <= t + 0.5]
            assert trace.value_at(t + 0.5) == applicable[-1]


class TestRegulatorProperties:
    @given(st.lists(st.floats(0.6, 1.1), min_size=1, max_size=10))
    def test_sequential_commands_reach_quantized_targets(self, targets):
        spec = mbvr_spec(vcc_max=1.2, icc_max=50.0)
        vr = VoltageRegulator(spec, 0.8)
        now = 0.0
        for target in targets:
            settle = vr.command(now, target)
            now = settle + 1.0
            expected = min(spec.quantize_vid(target), spec.vcc_max)
            assert abs(vr.voltage_at(now) - expected) < 1e-9

    @given(st.floats(0.6, 1.1), st.floats(0.6, 1.1))
    def test_voltage_bounded_by_endpoints_during_ramp(self, start, target):
        spec = mbvr_spec(vcc_max=1.2, icc_max=50.0)
        vr = VoltageRegulator(spec, start)
        settle = vr.command(0.0, target)
        lo = min(start, vr.settled_voltage()) - 1e-9
        hi = max(start, vr.settled_voltage()) + 1e-9
        for frac in np.linspace(0.0, 1.0, 7):
            v = vr.voltage_at(frac * settle)
            assert lo <= v <= hi


class TestBurstPackingProperties:
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=64))
    def test_pack_unpack_roundtrip(self, symbols):
        from repro.core.burst_channel import pack_pairs, unpack_pairs

        assert unpack_pairs(pack_pairs(symbols)) == symbols

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=64))
    def test_pairs_are_strictly_ascending(self, symbols):
        from repro.core.burst_channel import pack_pairs

        for first, second in pack_pairs(symbols):
            if second is not None:
                assert second > first

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=64))
    def test_slot_count_bounds(self, symbols):
        from repro.core.burst_channel import pack_pairs

        slots = pack_pairs(symbols)
        assert len(symbols) / 2 <= len(slots) <= len(symbols)


class TestBase5Properties:
    @given(st.binary(min_size=1, max_size=40))
    def test_codec_roundtrip(self, data):
        from repro.core.base5 import bytes_to_digits, digits_to_bytes

        assert digits_to_bytes(bytes_to_digits(data), len(data)) == data

    @given(st.binary(min_size=1, max_size=40))
    def test_digits_always_in_alphabet(self, data):
        from repro.core.base5 import BASE, bytes_to_digits

        assert all(0 <= d < BASE for d in bytes_to_digits(data))

    @given(st.binary(min_size=1, max_size=40))
    def test_digit_count_beats_bit_pairs(self, data):
        # log2(5) > 2: base-5 never needs more transactions than the
        # paper's two-bit symbols.
        from repro.core.base5 import bytes_to_digits

        assert len(bytes_to_digits(data)) <= len(data) * 4


class TestInterleaverProperties:
    @given(st.lists(st.integers(0, 1), min_size=8, max_size=64).filter(
        lambda b: len(b) % 8 == 0))
    def test_interleave_roundtrip(self, bits):
        from repro.core.ecc import deinterleave, interleave

        assert deinterleave(interleave(bits, 8), 8) == bits

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=64).filter(
        lambda b: len(b) % 8 == 0))
    def test_interleave_is_a_permutation(self, bits):
        from repro.core.ecc import interleave

        assert sorted(interleave(bits, 8)) == sorted(bits)
