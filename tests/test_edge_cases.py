"""Edge-case coverage across modules: branches the main suites skip."""

import pytest

from repro import IClass, Loop, System, SystemOptions
from repro.errors import (
    ConfigError,
    ProtocolError,
    SimulationError,
)
from repro.soc.config import cannon_lake_i3_8121u
from repro.units import us_to_ns


class TestRegulatorEdges:
    def test_force_level_refused_after_commands(self):
        from repro.pdn.regulator import VoltageRegulator, mbvr_spec

        vr = VoltageRegulator(mbvr_spec(1.2, 50.0), 0.8)
        vr.command(0.0, 0.85)
        with pytest.raises(SimulationError):
            vr.force_level(0.9)

    def test_force_level_respects_vcc_max(self):
        from repro.pdn.regulator import VoltageRegulator, mbvr_spec

        vr = VoltageRegulator(mbvr_spec(1.0, 50.0), 0.8)
        vr.force_level(2.0)
        assert vr.voltage_at(0.0) == pytest.approx(1.0)

    def test_command_time_regression_rejected(self):
        from repro.pdn.regulator import VoltageRegulator, mbvr_spec

        vr = VoltageRegulator(mbvr_spec(1.2, 50.0), 0.8)
        settle = vr.command(1_000.0, 0.85)
        with pytest.raises(SimulationError):
            vr.command(settle - 2_000.0, 0.9)


class TestDroopEdges:
    def test_filter_boundary_is_inclusive(self):
        from repro.pdn.droop import DroopModel, DroopSpec

        model = DroopModel(DroopSpec(filter_step_a=1.0), 0.0018)
        at_boundary = model.load_voltage_min(1.0, 10.0, 11.0)
        just_above = model.load_voltage_min(1.0, 10.0, 11.001)
        assert at_boundary > just_above  # transient kicks in past the filter

    def test_downward_steps_never_add_transient(self):
        from repro.pdn.droop import DroopModel, DroopSpec

        model = DroopModel(DroopSpec(), 0.0018)
        v = model.load_voltage_min(1.0, 30.0, 10.0)
        assert v == pytest.approx(1.0 - 0.0018 * 10.0)


class TestSystemEdges:
    def test_run_to_completion_drains_programs(self):
        system = System(cannon_lake_i3_8121u())
        done = []

        def program():
            yield system.sleep(100.0)
            done.append(True)

        system.spawn(program())
        system.run_to_completion()
        assert done == [True]

    def test_double_execute_on_thread_rejected(self):
        system = System(cannon_lake_i3_8121u())

        def a():
            yield system.execute(0, Loop(IClass.SCALAR_64, 1000))

        def b():
            yield system.sleep(10.0)
            yield system.execute(0, Loop(IClass.SCALAR_64, 10))

        system.spawn(a())
        system.spawn(b())
        with pytest.raises(SimulationError):
            system.run_until(us_to_ns(100.0))

    def test_unknown_request_object_rejected(self):
        system = System(cannon_lake_i3_8121u())

        def program():
            yield "not a request"

        system.spawn(program())
        with pytest.raises(SimulationError):
            system.run_until(1_000.0)

    def test_negative_sleep_rejected(self):
        system = System(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            system.sleep(-1.0)

    def test_thread_on_validates_slot(self):
        system = System(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            system.thread_on(0, 5)

    def test_disable_throttling_keeps_timing_baseline(self):
        # With the throttle ablated, a PHI loop runs at full rate.
        system = System(cannon_lake_i3_8121u(),
                        options=SystemOptions(disable_throttling=True))
        sink = []

        def program():
            sink.append((yield system.execute(0, Loop(IClass.HEAVY_512, 30))))

        system.spawn(program())
        system.run_until(us_to_ns(300.0))
        expected = Loop(IClass.HEAVY_512, 30).unthrottled_ns(2.2)
        assert sink[0].elapsed_ns == pytest.approx(expected + 24.0, rel=0.02)


class TestChannelEdges:
    def test_transfer_report_goodput_discounts_errors(self):
        from repro.core.channel import TransferReport
        from repro.core.levels import ChannelLocation

        report = TransferReport(
            sent=b"\x00", received=b"\xff",
            symbols_sent=[0, 0, 0, 0], symbols_received=[3, 3, 3, 3],
            measurements_tsc=[1.0] * 4, start_ns=0.0, end_ns=1e9,
            location=ChannelLocation.SAME_THREAD)
        assert report.ber == 1.0
        assert report.goodput_bps == 0.0

    def test_calibrator_exposed_before_and_after(self):
        from repro.core import IccThreadCovert

        channel = IccThreadCovert(System(cannon_lake_i3_8121u()))
        assert channel.calibrator is None
        channel.calibrate()
        assert channel.calibrator is not None

    def test_levels_have_paper_names(self):
        from repro.core.levels import LEVEL_NAMES

        assert LEVEL_NAMES == {0: "L1", 1: "L2", 2: "L3", 3: "L4"}


class TestTraceEdges:
    def test_time_weighted_mean_before_first_record(self):
        from repro.measure import StepTrace

        trace = StepTrace("x")
        trace.record(50.0, 10.0)
        # First half of the window predates any record: counts as 0.
        assert trace.time_weighted_mean(0.0, 100.0) == pytest.approx(5.0)

    def test_sample_series_empty_stats_rejected(self):
        import numpy as np

        from repro.errors import MeasurementError
        from repro.measure import SampleSeries

        empty = SampleSeries(np.array([]), np.array([]))
        with pytest.raises(MeasurementError):
            empty.mean()
        with pytest.raises(MeasurementError):
            empty.minmax()
        with pytest.raises(MeasurementError):
            empty.delta_from_start()


class TestLocalPmuEdges:
    def test_requirement_with_only_old_history(self):
        from repro.pdn.powergate import skylake_gate
        from repro.pmu import LocalPMU

        local = LocalPMU(0, us_to_ns(650.0), skylake_gate(), skylake_gate())
        local.note_execute(IClass.HEAVY_512, 0.0)
        assert local.next_expiry_ns(us_to_ns(700.0)) is None

    def test_gate_wake_sequencing_512(self):
        # The 512-bit unit wakes after the 256-bit one: latencies add.
        from repro.pdn.powergate import skylake_gate
        from repro.pmu import LocalPMU

        local = LocalPMU(0, us_to_ns(650.0), skylake_gate(), skylake_gate())
        total = local.gate_wake_latency(IClass.HEAVY_512, 0.0)
        assert total == pytest.approx(24.0)


class TestSessionEdges:
    def test_frame_parse_rejects_garbage(self):
        from repro.core import IccThreadCovert
        from repro.core.session import CovertSession

        session = CovertSession(IccThreadCovert(System(cannon_lake_i3_8121u())))
        assert session._parse_frame(b"\x00") is None
        assert session._parse_frame(b"\xff\x00\x00\x00") is None

    def test_frame_roundtrip(self):
        from repro.core import IccThreadCovert
        from repro.core.session import CovertSession

        session = CovertSession(IccThreadCovert(System(cannon_lake_i3_8121u())))
        framed = session._frame(7, b"data")
        assert session._parse_frame(framed) == (7, b"data")
