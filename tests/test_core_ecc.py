"""Error detection and correction codes."""

import pytest

from repro.core import CRC8, Hamming74, RepetitionCode
from repro.errors import ProtocolError


class TestRepetition:
    def test_encode_repeats(self):
        assert RepetitionCode(3).encode([1, 0]) == [1, 1, 1, 0, 0, 0]

    def test_decode_majority(self):
        code = RepetitionCode(3)
        assert code.decode([1, 0, 1, 0, 0, 1]) == [1, 0]

    def test_corrects_one_error_per_group(self):
        code = RepetitionCode(3)
        coded = code.encode([1, 0, 1, 1])
        coded[0] ^= 1
        coded[4] ^= 1
        assert code.decode(coded) == [1, 0, 1, 1]

    def test_rate(self):
        assert RepetitionCode(5).rate == pytest.approx(0.2)

    def test_even_factor_rejected(self):
        with pytest.raises(ProtocolError):
            RepetitionCode(2)

    def test_partial_group_rejected(self):
        with pytest.raises(ProtocolError):
            RepetitionCode(3).decode([1, 0])

    def test_non_bits_rejected(self):
        with pytest.raises(ProtocolError):
            RepetitionCode(3).encode([2])


class TestHamming74:
    def test_block_roundtrip(self):
        code = Hamming74(extended=False)
        for value in range(16):
            data = [(value >> i) & 1 for i in range(4)]
            block = code.encode_block(data)
            decoded, corrected, bad = code.decode_block(block)
            assert decoded == data
            assert not corrected and not bad

    def test_corrects_every_single_bit_error(self):
        code = Hamming74(extended=False)
        data = [1, 0, 1, 1]
        clean = code.encode_block(data)
        for position in range(7):
            block = list(clean)
            block[position] ^= 1
            decoded, corrected, bad = code.decode_block(block)
            assert decoded == data, f"failed at position {position}"
            assert corrected
            assert not bad

    def test_extended_corrects_single_and_detects_double(self):
        code = Hamming74(extended=True)
        data = [0, 1, 1, 0]
        clean = code.encode_block(data)
        # Single-bit error in any of the 8 positions: corrected.
        for position in range(8):
            block = list(clean)
            block[position] ^= 1
            decoded, corrected, bad = code.decode_block(block)
            assert not bad
            assert decoded == data
        # Double-bit error: detected as uncorrectable.
        block = list(clean)
        block[0] ^= 1
        block[3] ^= 1
        _, _, bad = code.decode_block(block)
        assert bad

    def test_stream_roundtrip(self):
        code = Hamming74()
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert code.decode(code.encode(bits)) == bits

    def test_stream_length_validation(self):
        code = Hamming74()
        with pytest.raises(ProtocolError):
            code.encode([1, 0, 1])
        with pytest.raises(ProtocolError):
            code.decode([0] * 7)  # extended blocks are 8 bits

    def test_rates(self):
        assert Hamming74(extended=False).rate == pytest.approx(4 / 7)
        assert Hamming74(extended=True).rate == pytest.approx(0.5)

    def test_wrong_block_size_rejected(self):
        with pytest.raises(ProtocolError):
            Hamming74().encode_block([1, 0, 1])


class TestHammingAdversarial:
    """SECDED pushed to its limits (adversarial positions, not samples)."""

    def test_every_double_bit_error_in_a_block_is_detected(self):
        # Any two flipped bits in an extended block leave an even overall
        # parity with a non-zero syndrome: always flagged, never miscorrected
        # into accepted-but-wrong data.
        code = Hamming74(extended=True)
        clean = code.encode_block([1, 0, 0, 1])
        for first in range(8):
            for second in range(first + 1, 8):
                block = list(clean)
                block[first] ^= 1
                block[second] ^= 1
                _, _, bad = code.decode_block(block)
                assert bad, f"double error at ({first}, {second}) undetected"

    def test_adjacent_wire_bit_errors_survive_the_interleaver(self):
        # A two-bit symbol error flips two *adjacent* wire bits.  The
        # session's interleaver must spread every such pair across two
        # blocks so SECDED sees one (correctable) error each — for every
        # possible wire position, not just a lucky one.
        from repro.core.ecc import deinterleave, interleave

        code = Hamming74(extended=True)
        data = [1, 0, 1, 1, 0, 1, 0, 0] * 4  # 8 blocks of 4 data bits
        coded = code.encode(data)
        wire = interleave(coded, depth=code.block_bits)
        for position in range(len(wire) - 1):
            corrupted = list(wire)
            corrupted[position] ^= 1
            corrupted[position + 1] ^= 1
            decoded = code.decode(
                deinterleave(corrupted, depth=code.block_bits))
            assert decoded == data, f"pair at wire position {position}"


class TestCRC8:
    def test_checksum_deterministic(self):
        crc = CRC8()
        assert crc.checksum(b"hello") == crc.checksum(b"hello")

    def test_verify_accepts_clean_frame(self):
        crc = CRC8()
        assert crc.verify(crc.append(b"payload"))

    def test_verify_rejects_corruption(self):
        crc = CRC8()
        framed = bytearray(crc.append(b"payload"))
        framed[2] ^= 0x10
        assert not crc.verify(bytes(framed))

    def test_detects_single_bit_flip_anywhere(self):
        crc = CRC8()
        framed = crc.append(b"\x12\x34\x56")
        for byte_index in range(len(framed)):
            for bit in range(8):
                corrupted = bytearray(framed)
                corrupted[byte_index] ^= (1 << bit)
                assert not crc.verify(bytes(corrupted))

    def test_short_frame_rejected(self):
        with pytest.raises(ProtocolError):
            CRC8().verify(b"\x00")

    def test_empty_payload_checksums(self):
        assert CRC8().checksum(b"") == 0


class TestInterleaver:
    def test_roundtrip(self):
        from repro.core.ecc import deinterleave, interleave

        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 0, 1]
        assert deinterleave(interleave(bits, 8), 8) == bits

    def test_adjacent_channel_bits_map_to_distinct_blocks(self):
        from repro.core.ecc import interleave

        # Tag each bit with its block id; after interleaving, adjacent
        # channel positions must carry different block ids.
        block_bits = 8
        n_blocks = 4
        tags = [i // block_bits for i in range(block_bits * n_blocks)]
        shuffled = interleave(tags, depth=block_bits)
        assert all(a != b for a, b in zip(shuffled, shuffled[1:]))

    def test_depth_must_divide_length(self):
        from repro.core.ecc import interleave

        with pytest.raises(ProtocolError):
            interleave([1, 0, 1], 2)

    def test_bad_depth_rejected(self):
        from repro.core.ecc import deinterleave

        with pytest.raises(ProtocolError):
            deinterleave([1, 0], 0)
