"""Core idle states (C-states)."""

import pytest

from repro import IClass, Loop, System
from repro.errors import ConfigError
from repro.pmu.cstates import CState, CStateSpec, CStateTracker
from repro.soc.config import cannon_lake_i3_8121u
from repro.units import us_to_ns


class TestSpec:
    def test_defaults_ordered(self):
        spec = CStateSpec()
        assert spec.c1_entry_us < spec.c6_entry_us
        assert spec.c1_exit_ns < spec.c6_exit_ns

    def test_validation(self):
        with pytest.raises(ConfigError):
            CStateSpec(c1_entry_us=100.0, c6_entry_us=50.0)
        with pytest.raises(ConfigError):
            CStateSpec(c1_exit_ns=5_000.0, c6_exit_ns=1_000.0)
        with pytest.raises(ConfigError):
            CStateSpec(c6_idle_cdyn_nf=-1.0)


class TestTracker:
    @pytest.fixture
    def tracker(self):
        return CStateTracker(CStateSpec(), n_cores=2)

    def test_busy_core_is_c0(self, tracker):
        tracker.note_busy(0)
        assert tracker.state_at(0, us_to_ns(1000.0)) == CState.C0

    def test_idle_progression_c0_c1_c6(self, tracker):
        tracker.note_idle(0, 0.0)
        assert tracker.state_at(0, us_to_ns(1.0)) == CState.C0
        assert tracker.state_at(0, us_to_ns(10.0)) == CState.C1
        assert tracker.state_at(0, us_to_ns(100.0)) == CState.C6

    def test_wake_latency_by_depth(self, tracker):
        tracker.note_idle(0, 0.0)
        assert tracker.wake_latency_ns(0, us_to_ns(1.0)) == 0.0
        assert tracker.wake_latency_ns(0, us_to_ns(10.0)) == pytest.approx(1_000.0)
        assert tracker.wake_latency_ns(0, us_to_ns(100.0)) == pytest.approx(30_000.0)

    def test_idle_cdyn_shrinks_with_depth(self, tracker):
        tracker.note_idle(0, 0.0)
        c1 = tracker.idle_cdyn_nf(0, us_to_ns(10.0))
        c6 = tracker.idle_cdyn_nf(0, us_to_ns(100.0))
        assert c6 < c1

    def test_per_core_independence(self, tracker):
        tracker.note_idle(0, 0.0)
        tracker.note_busy(1)
        assert tracker.state_at(0, us_to_ns(100.0)) == CState.C6
        assert tracker.state_at(1, us_to_ns(100.0)) == CState.C0

    def test_unknown_core_rejected(self, tracker):
        with pytest.raises(ConfigError):
            tracker.state_at(5, 0.0)


class TestSystemIntegration:
    def _run_two_loops(self, gap_us, cstates=True):
        config = cannon_lake_i3_8121u().with_overrides(cstates_enabled=cstates)
        system = System(config)
        results = []

        def program():
            results.append((yield system.execute(0, Loop(IClass.SCALAR_64, 5))))
            yield system.sleep(us_to_ns(gap_us))
            results.append((yield system.execute(0, Loop(IClass.SCALAR_64, 5))))

        system.spawn(program())
        system.run_until(us_to_ns(gap_us + 500.0))
        return system, results

    def test_c6_wake_latency_after_long_idle(self):
        _, results = self._run_two_loops(gap_us=200.0)
        short = results[0].elapsed_ns
        # The second loop paid the C6 exit latency (~30 us).
        assert results[1].elapsed_ns == pytest.approx(short + 30_000.0,
                                                      rel=0.05)

    def test_no_penalty_within_c1_threshold(self):
        _, results = self._run_two_loops(gap_us=2.0)
        assert results[1].elapsed_ns == pytest.approx(results[0].elapsed_ns,
                                                      rel=0.05)

    def test_disabled_by_default(self):
        _, results = self._run_two_loops(gap_us=200.0, cstates=False)
        assert results[1].elapsed_ns == pytest.approx(results[0].elapsed_ns,
                                                      rel=0.05)

    def test_idle_power_lower_with_cstates(self):
        config_on = cannon_lake_i3_8121u().with_overrides(cstates_enabled=True)
        system_on = System(config_on)
        system_off = System(cannon_lake_i3_8121u())
        for system in (system_on, system_off):
            def program(s=system):
                yield s.execute(s.thread_on(0), Loop(IClass.SCALAR_64, 5))
            system.spawn(program())
            system.run_until(us_to_ns(500.0))
        # Long after the work finished, the C-state machine has power-
        # gated the idle cores.
        assert (system_on.power_at(us_to_ns(400.0))
                < system_off.power_at(us_to_ns(400.0)))

    def test_channels_survive_cstates(self):
        # The wake latency is constant per slot, so calibration absorbs
        # it and the covert channel works unchanged.
        from repro.core import IccThreadCovert

        config = cannon_lake_i3_8121u().with_overrides(cstates_enabled=True)
        system = System(config)
        report = IccThreadCovert(system).transfer(b"\x7e\x81")
        assert report.received == b"\x7e\x81"
        assert report.ber == 0.0
