"""Adaptive voltage guardband (Equation 1)."""

import pytest

from repro.errors import ConfigError
from repro.isa import IClass
from repro.pdn import GuardbandModel, LoadLine


@pytest.fixture
def model():
    return GuardbandModel(LoadLine(0.0018))


class TestDeltaV:
    def test_scalar_reference_has_zero_guardband(self, model):
        assert model.delta_v(IClass.SCALAR_64, 0.8, 2.0) == 0.0

    def test_equation1_value(self, model):
        # dV = (Cdyn2 - Cdyn1) * Vcc * F * R_LL
        expected = (IClass.HEAVY_256.cdyn_nf - IClass.SCALAR_64.cdyn_nf) \
            * 0.8 * 2.0 * 0.0018
        assert model.delta_v(IClass.HEAVY_256, 0.8, 2.0) == pytest.approx(expected)

    def test_linear_in_frequency(self, model):
        dv1 = model.delta_v(IClass.HEAVY_256, 0.8, 1.0)
        dv2 = model.delta_v(IClass.HEAVY_256, 0.8, 2.0)
        assert dv2 == pytest.approx(2 * dv1)

    def test_linear_in_voltage(self, model):
        dv1 = model.delta_v(IClass.HEAVY_256, 0.4, 2.0)
        dv2 = model.delta_v(IClass.HEAVY_256, 0.8, 2.0)
        assert dv2 == pytest.approx(2 * dv1)

    def test_monotone_in_intensity(self, model):
        dvs = [model.delta_v(c, 0.8, 2.0) for c in sorted(IClass)]
        assert all(b >= a for a, b in zip(dvs, dvs[1:]))
        assert dvs[-1] > dvs[0]

    def test_rejects_nonpositive_inputs(self, model):
        with pytest.raises(ConfigError):
            model.delta_v(IClass.HEAVY_256, 0.0, 2.0)
        with pytest.raises(ConfigError):
            model.delta_v(IClass.HEAVY_256, 0.8, 0.0)


class TestTargetVcc:
    def test_no_active_classes_keeps_baseline(self, model):
        assert model.target_vcc(0.8, [], 2.0) == pytest.approx(0.8)

    def test_per_core_contributions_add(self, model):
        one = model.target_vcc(0.8, [IClass.HEAVY_256], 2.0)
        two = model.target_vcc(0.8, [IClass.HEAVY_256, IClass.HEAVY_256], 2.0)
        assert two - 0.8 == pytest.approx(2 * (one - 0.8))

    def test_figure6_staggered_steps(self, model):
        # Each core joining AVX2 at 2 GHz adds its own ~8-9 mV step.
        base = 0.788
        one = model.target_vcc(base, [IClass.HEAVY_256], 2.0)
        step_mv = (one - base) * 1000
        assert 7.0 < step_mv < 10.0

    def test_scalar_cores_contribute_nothing(self, model):
        mixed = model.target_vcc(0.8, [IClass.HEAVY_512, IClass.SCALAR_64], 2.0)
        single = model.target_vcc(0.8, [IClass.HEAVY_512], 2.0)
        assert mixed == pytest.approx(single)


class TestWorstCase:
    def test_worst_case_covers_any_state(self, model):
        worst = model.worst_case_vcc(0.8, n_cores=2, freq_ghz=2.0)
        for iclass in IClass:
            assert worst >= model.target_vcc(0.8, [iclass, iclass], 2.0) - 1e-12

    def test_rejects_zero_cores(self, model):
        with pytest.raises(ConfigError):
            model.worst_case_vcc(0.8, n_cores=0, freq_ghz=2.0)


class TestLadder:
    def test_ladder_covers_all_classes(self, model):
        ladder = model.level_ladder(0.8, 2.0)
        assert set(ladder) == set(IClass)

    def test_ladder_monotone(self, model):
        ladder = model.level_ladder(0.8, 2.0)
        values = [ladder[c] for c in sorted(IClass)]
        assert all(b >= a for a, b in zip(values, values[1:]))
