"""Determinism auditor: variation checks and report semantics."""

from repro.verify.audit import AuditCheck, AuditReport, audit_scenario
from repro.verify.scenarios import compute_digest


class TestAuditChecks:
    def test_runner_variations_reproduce_baseline(self):
        """jobs=2 and cache cold/warm must all match the serial digest."""
        checks = audit_scenario("fig8_slice", subprocess_checks=False)
        variations = {check.variation for check in checks}
        assert variations == {"jobs=2", "cache=cold", "cache=warm"}
        for check in checks:
            assert check.ok, check.render()

    def test_serial_scenario_has_no_runner_variations(self):
        checks = audit_scenario("fig6_slice", subprocess_checks=False)
        assert checks == []

    def test_supplied_baseline_is_trusted(self):
        """A wrong baseline must surface as a divergence, not pass."""
        checks = audit_scenario("fig8_slice", baseline="0" * 64,
                                subprocess_checks=False)
        assert checks and all(not check.ok for check in checks)

    def test_hashseed_variation_via_subprocess(self):
        """One fresh-interpreter run, pinned to the cheapest scenario."""
        checks = audit_scenario("fig6_slice",
                                baseline=compute_digest("fig6_slice"))
        hashseed = [c for c in checks if c.variation.startswith("hashseed=")]
        assert len(hashseed) == 2
        for check in hashseed:
            assert check.ok, check.render()


class TestAuditReport:
    def test_report_aggregation_and_rendering(self):
        good = AuditCheck("s", "jobs=2", "a" * 64, "a" * 64)
        bad = AuditCheck("s", "cache=warm", "b" * 64, "a" * 64)
        report = AuditReport(checks=[good, bad])
        assert not report.ok
        assert report.divergences == [bad]
        assert "DIVERGED" in report.render()
        assert "ok" in good.render()

    def test_empty_report_is_ok(self):
        assert AuditReport().ok
