"""Voltage regulator models: spec validation, commands, histories."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.pdn import VRKind, VRSpec, VoltageRegulator
from repro.pdn.regulator import fivr_spec, ldo_spec, mbvr_spec


def make_spec(**overrides):
    base = dict(kind=VRKind.MBVR, slew_mv_per_us=1.25,
                command_latency_ns=1500.0, vid_step_mv=2.5,
                vcc_max=1.2, icc_max=50.0)
    base.update(overrides)
    return VRSpec(**base)


class TestVRSpec:
    def test_rejects_nonpositive_slew(self):
        with pytest.raises(ConfigError):
            make_spec(slew_mv_per_us=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            make_spec(command_latency_ns=-1.0)

    def test_rejects_nonpositive_vid_step(self):
        with pytest.raises(ConfigError):
            make_spec(vid_step_mv=0.0)

    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ConfigError):
            make_spec(vcc_max=0.0)
        with pytest.raises(ConfigError):
            make_spec(icc_max=-1.0)

    def test_quantize_rounds_up(self):
        spec = make_spec(vid_step_mv=5.0)
        assert spec.quantize_vid(0.8001) == pytest.approx(0.805)

    def test_quantize_exact_value_unchanged(self):
        spec = make_spec(vid_step_mv=5.0)
        assert spec.quantize_vid(0.805) == pytest.approx(0.805)

    def test_transition_ns_includes_latency_and_slew(self):
        spec = make_spec(slew_mv_per_us=1.0, command_latency_ns=1000.0)
        # 10 mV at 1 mV/us = 10 us slew + 1 us latency.
        assert spec.transition_ns(0.800, 0.810) == pytest.approx(11_000.0)

    def test_transition_symmetric_up_down(self):
        spec = make_spec()
        assert spec.transition_ns(0.8, 0.9) == pytest.approx(
            spec.transition_ns(0.9, 0.8))


class TestFactories:
    def test_mbvr_is_slowest(self):
        mbvr = mbvr_spec(1.2, 50.0)
        fivr = fivr_spec(1.2, 50.0)
        ldo = ldo_spec(1.2, 50.0)
        assert mbvr.slew_mv_per_us < fivr.slew_mv_per_us < ldo.slew_mv_per_us

    def test_ldo_transitions_under_half_microsecond(self):
        # The Section 7 mitigation claim: LDO transitions < 0.5 us.
        ldo = ldo_spec(1.2, 50.0)
        assert ldo.transition_ns(0.800, 0.840) < 500.0

    def test_kinds(self):
        assert mbvr_spec(1.2, 50.0).kind == VRKind.MBVR
        assert fivr_spec(1.2, 50.0).kind == VRKind.FIVR
        assert ldo_spec(1.2, 50.0).kind == VRKind.LDO


class TestVoltageRegulator:
    def test_initial_voltage(self):
        vr = VoltageRegulator(make_spec(), 0.8)
        assert vr.voltage_at(0.0) == pytest.approx(0.8)

    def test_command_reaches_target_after_settle(self):
        vr = VoltageRegulator(make_spec(vid_step_mv=5.0), 0.8)
        settle = vr.command(0.0, 0.82)
        assert vr.voltage_at(settle) == pytest.approx(0.82)

    def test_command_returns_settle_time(self):
        spec = make_spec(slew_mv_per_us=1.0, command_latency_ns=1000.0,
                         vid_step_mv=5.0)
        vr = VoltageRegulator(spec, 0.8)
        settle = vr.command(0.0, 0.810)
        assert settle == pytest.approx(11_000.0)

    def test_voltage_ramps_linearly(self):
        spec = make_spec(slew_mv_per_us=1.0, command_latency_ns=0.0,
                         vid_step_mv=5.0)
        vr = VoltageRegulator(spec, 0.8)
        vr.command(0.0, 0.810)
        assert vr.voltage_at(5_000.0) == pytest.approx(0.805)

    def test_voltage_flat_during_command_latency(self):
        spec = make_spec(slew_mv_per_us=1.0, command_latency_ns=2_000.0,
                         vid_step_mv=5.0)
        vr = VoltageRegulator(spec, 0.8)
        vr.command(0.0, 0.810)
        assert vr.voltage_at(1_000.0) == pytest.approx(0.8)

    def test_busy_until_command_settles(self):
        vr = VoltageRegulator(make_spec(), 0.8)
        settle = vr.command(0.0, 0.85)
        assert vr.is_busy(settle / 2)
        assert not vr.is_busy(settle)

    def test_command_while_busy_raises(self):
        vr = VoltageRegulator(make_spec(), 0.8)
        vr.command(0.0, 0.85)
        with pytest.raises(SimulationError):
            vr.command(10.0, 0.9)

    def test_noop_command_settles_immediately(self):
        vr = VoltageRegulator(make_spec(vid_step_mv=5.0), 0.805)
        settle = vr.command(100.0, 0.805)
        assert settle == pytest.approx(100.0)
        assert not vr.is_busy(100.0)

    def test_target_clamped_to_vcc_max(self):
        vr = VoltageRegulator(make_spec(vcc_max=0.9), 0.8)
        settle = vr.command(0.0, 1.5)
        assert vr.voltage_at(settle) == pytest.approx(0.9)

    def test_settled_voltage_is_latest_target(self):
        vr = VoltageRegulator(make_spec(vid_step_mv=5.0), 0.8)
        settle = vr.command(0.0, 0.82)
        assert vr.settled_voltage() == pytest.approx(0.82)
        vr.command(settle + 1.0, 0.8)
        assert vr.settled_voltage() == pytest.approx(0.8)

    def test_down_transition_supported(self):
        vr = VoltageRegulator(make_spec(vid_step_mv=5.0), 0.9)
        settle = vr.command(0.0, 0.8)
        assert vr.voltage_at(settle) == pytest.approx(0.8)
        assert vr.voltage_at(settle / 2) < 0.9

    def test_history_breakpoints_nondecreasing_time(self):
        vr = VoltageRegulator(make_spec(), 0.8)
        settle = vr.command(0.0, 0.85)
        vr.command(settle + 5.0, 0.8)
        times = [t for t, _ in vr.history()]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_rejects_nonpositive_initial_voltage(self):
        with pytest.raises(ConfigError):
            VoltageRegulator(make_spec(), 0.0)


class TestVoltagesAtVectorized:
    def _driven_vr(self):
        vr = VoltageRegulator(make_spec(vid_step_mv=5.0), 0.8)
        t = 0.0
        for target in (0.85, 0.81, 0.9, 0.8, 0.87):
            t = vr.command(t + 100.0, target) + 50.0
        return vr, t

    def test_bitwise_equal_to_scalar(self):
        import numpy as np

        vr, end = self._driven_vr()
        times = np.unique(np.concatenate([
            np.linspace(-5.0, end + 1_000.0, 4096),
            np.asarray([t for t, _ in vr.history()]),
        ]))
        vectorized = vr.voltages_at(times)
        scalar = np.asarray([vr.voltage_at(float(t)) for t in times])
        assert np.array_equal(vectorized, scalar)

    def test_history_append_keeps_past_lookups_invariant(self):
        import numpy as np

        vr, end = self._driven_vr()
        times = np.linspace(0.0, end, 257)
        before = vr.voltages_at(times)
        vr.command(end + 10.0, 0.82)  # later command must not move the past
        assert np.array_equal(vr.voltages_at(times), before)

    def test_empty_and_single_sample(self):
        import numpy as np

        vr, _ = self._driven_vr()
        assert vr.voltages_at(np.asarray([], dtype=float)).size == 0
        single = vr.voltages_at(np.asarray([0.0]))
        assert float(single[0]) == vr.voltage_at(0.0)
