"""Tests for repro.service.http — the stdlib HTTP front end."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

from repro.service import ChannelLabService, ServiceConfig, ServiceHTTP


def _with_server(client_fn, config=None):
    """Run ``client_fn(base_url)`` on a thread against a live server.

    The service + HTTP front end run on this thread's event loop; the
    blocking urllib client runs on a helper thread so the loop stays
    free to serve it.  Returns whatever ``client_fn`` returns.
    """
    async def body():
        service = await ChannelLabService(
            config if config is not None else ServiceConfig(workers=2)
        ).start()
        front = await ServiceHTTP(service).start(port=0)
        base = f"http://127.0.0.1:{front.port}"
        box = {}

        def client():
            try:
                box["result"] = client_fn(base)
            except BaseException as exc:  # pragma: no cover - fails test
                box["error"] = exc

        thread = threading.Thread(target=client)
        thread.start()
        while thread.is_alive():
            await asyncio.sleep(0.01)
        thread.join()
        await front.stop()
        await service.stop(drain=False)
        if "error" in box:
            raise box["error"]
        return box.get("result")

    return asyncio.run(body())


def _get(url):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode())


def _post(url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else b""
    request = urllib.request.Request(
        url, data=data, method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode())


class TestEndpoints:
    def test_health_and_tasks(self):
        def client(base):
            assert _get(f"{base}/health") == {"ok": True}
            names = _get(f"{base}/tasks")["tasks"]
            assert "noop" in names and "square" in names
        _with_server(client)

    def test_submit_wait_results(self):
        def client(base):
            job = _post(f"{base}/jobs", {
                "task": "square",
                "kwargs_list": [{"x": i} for i in range(12)]})
            assert job["tasks"] == 12
            document = _get(f"{base}/jobs/{job['id']}/results?wait=1")
            assert document["state"] == "done"
            values = [record["value"] for record in document["results"]]
            assert values == [i * i for i in range(12)]
        _with_server(client)

    def test_stream_is_ndjson_partials_then_summary(self):
        def client(base):
            job = _post(f"{base}/jobs", {
                "task": "noop",
                "kwargs_list": [{"i": i} for i in range(9)]})
            lines = []
            with urllib.request.urlopen(
                    f"{base}/jobs/{job['id']}/stream") as response:
                assert response.headers["Content-Type"] == (
                    "application/x-ndjson")
                for raw in response:
                    lines.append(json.loads(raw))
            assert len(lines) == 10
            assert sorted(line["index"] for line in lines[:-1]) == list(
                range(9))
            assert lines[-1]["state"] == "done"
        _with_server(client)

    def test_job_listing_and_status(self):
        def client(base):
            job = _post(f"{base}/jobs", {
                "task": "noop", "kwargs_list": [{}]})
            _get(f"{base}/jobs/{job['id']}/results?wait=1")
            listing = _get(f"{base}/jobs")["jobs"]
            assert [item["id"] for item in listing] == [job["id"]]
            status = _get(f"{base}/jobs/{job['id']}")
            assert status["state"] == "done"
        _with_server(client)

    def test_cancel_over_http(self):
        def client(base):
            job = _post(f"{base}/jobs", {
                "task": "noop",
                "kwargs_list": [{"i": i} for i in range(1000)]})
            response = _post(f"{base}/jobs/{job['id']}/cancel")
            # Either the cancel landed while work remained, or the tiny
            # job already drained; both are well-formed answers.
            assert response["cancelled"] in (True, False)
            status = _get(f"{base}/jobs/{job['id']}")
            assert status["state"] in ("cancelled", "done")
        _with_server(client, ServiceConfig(workers=1, batch_size=4))

    def test_metrics_includes_store_summary(self, tmp_path):
        from repro.service import ArtifactStore

        store = ArtifactStore(root=tmp_path / "store")

        def client(base):
            document = _get(f"{base}/metrics")
            assert "utilization" in document
            assert document["store"]["entries"] == 0
        _with_server(client, ServiceConfig(workers=1, store=store))


class TestErrorHandling:
    def test_unknown_endpoint_is_404(self):
        def client(base):
            try:
                _get(f"{base}/nope")
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
                return
            raise AssertionError("expected a 404")
        _with_server(client)

    def test_unknown_job_is_404(self):
        def client(base):
            try:
                _get(f"{base}/jobs/job-999999")
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
                return
            raise AssertionError("expected a 404")
        _with_server(client)

    def test_bad_submit_bodies_are_400(self):
        def client(base):
            for payload in (
                    {"task": "noop"},                      # no kwargs_list
                    {"task": "noop", "kwargs_list": []},   # empty
                    {"task": "noop", "kwargs_list": [1]},  # not objects
                    {"task": 7, "kwargs_list": [{}]},      # bad task type
                    {"task": "missing", "kwargs_list": [{}]},  # unknown
            ):
                try:
                    _post(f"{base}/jobs", payload)
                except urllib.error.HTTPError as exc:
                    assert exc.code == 400, payload
                else:
                    raise AssertionError(f"expected 400 for {payload}")
        _with_server(client)

    def test_wrong_method_is_405(self):
        def client(base):
            try:
                _post(f"{base}/tasks")
            except urllib.error.HTTPError as exc:
                assert exc.code == 405
                return
            raise AssertionError("expected a 405")
        _with_server(client)
