"""SARIF 2.1.0 output: structure, schema validation, fingerprints."""

import json
import textwrap

import pytest

from repro.staticcheck import analyze_source, to_sarif
from repro.staticcheck.model import Report
from repro.staticcheck.reporters import SARIF_VERSION, TOOL_NAME

#: A vendored subset of the SARIF 2.1.0 schema covering everything the
#: GitHub code-scanning ingestion requires of our output.  The official
#: schema is ~4000 lines and network-fetched; this captures the
#: constraints that actually gate upload: versioning, the tool driver,
#: rule metadata, and per-result location/fingerprint shape.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {"enum": [
                                                            "none", "note",
                                                            "warning",
                                                            "error"]},
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer",
                                              "minimum": 0},
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string",
                                                 "minLength": 1},
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                    "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {
                                        "type": "string"},
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

BAD_MODULE = textwrap.dedent("""
    \"\"\"Fixture tripping dimensional and determinism rules.\"\"\"
    import heapq


    def schedule(heap, time_ns: float, handle: object, idle_us: float) -> float:
        \"\"\"Mixes units and pushes an untiebroken heap entry.\"\"\"
        heapq.heappush(heap, (time_ns, handle))
        return time_ns + idle_us
""")


def sarif_of(source, path="repro/core/example_mod.py"):
    """The SARIF log of one analysed snippet."""
    findings = analyze_source(textwrap.dedent(source), path)
    return to_sarif(Report(findings=findings, files_analyzed=1))


class TestSarifStructure:
    def test_log_shape(self):
        log = sarif_of(BAD_MODULE)
        assert log["version"] == SARIF_VERSION
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == TOOL_NAME
        assert len(run["results"]) >= 2

    def test_rule_catalog_covers_results(self):
        log = sarif_of(BAD_MODULE)
        run = log["runs"][0]
        catalog = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert result["ruleId"] in catalog
            assert catalog[result["ruleIndex"]] == result["ruleId"]

    def test_locations_and_levels(self):
        log = sarif_of(BAD_MODULE)
        for result in log["runs"][0]["results"]:
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(".py")
            assert location["region"]["startLine"] >= 1
            assert result["level"] in ("note", "warning", "error")

    def test_fingerprints_are_stable_across_line_shifts(self):
        log_a = sarif_of(BAD_MODULE)
        log_b = sarif_of("\n\n\n" + BAD_MODULE)

        def prints(log):
            return sorted(
                r["partialFingerprints"]["repro/staticcheck/v1"]
                for r in log["runs"][0]["results"])

        assert prints(log_a) == prints(log_b)

    def test_serialises_to_json(self):
        json.dumps(sarif_of(BAD_MODULE))

    def test_empty_report_is_valid(self):
        log = to_sarif(Report(files_analyzed=0))
        assert log["runs"][0]["results"] == []


class TestSarifInvocationAndTiming:
    """Execution status + per-pass timing surfaced for CI dashboards."""

    def _cached_log(self, tmp_path):
        from repro.staticcheck import analyze_paths

        src = tmp_path / "bad_mod.py"
        src.write_text(BAD_MODULE, encoding="utf-8")
        report = analyze_paths(paths=[src], waivers=[],
                               cache_dir=tmp_path / "cache")
        return to_sarif(report)

    def test_invocation_reports_execution_success(self):
        failing = sarif_of(BAD_MODULE)
        assert failing["runs"][0]["invocations"][0][
            "executionSuccessful"] is False
        clean = to_sarif(Report(files_analyzed=3))
        assert clean["runs"][0]["invocations"][0][
            "executionSuccessful"] is True

    def test_run_properties_carry_cache_and_timings(self, tmp_path):
        run = self._cached_log(tmp_path)["runs"][0]
        properties = run["properties"]
        assert properties["filesAnalyzed"] == 1
        assert properties["changedOnly"] is False
        assert properties["cache"]["misses"] > 0
        timing_passes = {t["pass"] for t in properties["timings"]}
        assert {"dimensional", "determinism", "asyncsafety",
                "goldenflow"} <= timing_passes
        for timing in properties["timings"]:
            assert timing["wallMs"] >= 0.0
            assert timing["modules"] >= 0

    def test_rules_carry_owning_pass_and_wall_time(self, tmp_path):
        run = self._cached_log(tmp_path)["runs"][0]
        by_id = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert by_id["unit-mix"]["properties"]["pass"] == "dimensional"
        assert by_id["heap-tiebreak"]["properties"]["pass"] == "determinism"
        for rule in by_id.values():
            assert rule["properties"]["passWallMs"] >= 0.0

    def test_enriched_log_still_validates(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(self._cached_log(tmp_path), SARIF_SUBSET_SCHEMA)


class TestSarifSchema:
    def test_validates_against_sarif_subset_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(sarif_of(BAD_MODULE), SARIF_SUBSET_SCHEMA)

    def test_empty_log_validates(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(to_sarif(Report(files_analyzed=0)),
                            SARIF_SUBSET_SCHEMA)
