"""Per-core local PMU: hysteresis window and gate wiring."""

import pytest

from repro.errors import ConfigError
from repro.isa import IClass
from repro.pdn.powergate import haswell_gate, skylake_gate
from repro.pmu import LocalPMU
from repro.units import us_to_ns


def make_local(reset_us=650.0, gates="skylake"):
    factory = skylake_gate if gates == "skylake" else haswell_gate
    return LocalPMU(core_id=0, reset_time_ns=us_to_ns(reset_us),
                    avx256_gate=factory("g256"), avx512_gate=factory("g512"))


class TestRequirement:
    def test_fresh_core_needs_scalar_only(self):
        local = make_local()
        assert local.requirement(0.0) == IClass.SCALAR_64

    def test_recent_phi_raises_requirement(self):
        local = make_local()
        local.note_execute(IClass.HEAVY_256, 1000.0)
        assert local.requirement(2000.0) == IClass.HEAVY_256

    def test_requirement_is_max_of_recent_classes(self):
        local = make_local()
        local.note_execute(IClass.HEAVY_512, 1000.0)
        local.note_execute(IClass.HEAVY_128, 2000.0)
        assert local.requirement(3000.0) == IClass.HEAVY_512

    def test_requirement_decays_after_reset_time(self):
        # The 650 us hysteresis of Section 4.1.2.
        local = make_local(reset_us=650.0)
        local.note_execute(IClass.HEAVY_512, 0.0)
        assert local.requirement(us_to_ns(600.0)) == IClass.HEAVY_512
        assert local.requirement(us_to_ns(651.0)) == IClass.SCALAR_64

    def test_staged_decay_through_levels(self):
        local = make_local(reset_us=650.0)
        local.note_execute(IClass.HEAVY_512, 0.0)
        local.note_execute(IClass.HEAVY_128, us_to_ns(300.0))
        # After 651 us the 512 window expired but the 128 one has not.
        assert local.requirement(us_to_ns(700.0)) == IClass.HEAVY_128
        assert local.requirement(us_to_ns(951.0)) == IClass.SCALAR_64

    def test_note_execute_keeps_latest_time(self):
        local = make_local()
        local.note_execute(IClass.HEAVY_256, 5000.0)
        local.note_execute(IClass.HEAVY_256, 1000.0)  # stale, ignored
        assert local.requirement(5000.0 + us_to_ns(600.0)) == IClass.HEAVY_256


class TestExpiry:
    def test_no_expiry_when_scalar_only(self):
        local = make_local()
        local.note_execute(IClass.SCALAR_64, 0.0)
        assert local.next_expiry_ns(100.0) is None

    def test_expiry_matches_reset_time(self):
        local = make_local(reset_us=650.0)
        local.note_execute(IClass.HEAVY_256, 1000.0)
        assert local.next_expiry_ns(2000.0) == pytest.approx(
            1000.0 + us_to_ns(650.0))

    def test_expiry_is_earliest_among_classes(self):
        local = make_local(reset_us=650.0)
        local.note_execute(IClass.HEAVY_512, 0.0)
        local.note_execute(IClass.HEAVY_128, us_to_ns(100.0))
        assert local.next_expiry_ns(us_to_ns(200.0)) == pytest.approx(
            us_to_ns(650.0))


class TestGates:
    def test_scalar_pays_no_wake(self):
        local = make_local()
        assert local.gate_wake_latency(IClass.SCALAR_64, 0.0) == 0.0

    def test_avx256_pays_one_gate(self):
        local = make_local()
        assert local.gate_wake_latency(IClass.HEAVY_256, 0.0) == pytest.approx(12.0)

    def test_avx512_pays_both_gates(self):
        local = make_local()
        assert local.gate_wake_latency(IClass.HEAVY_512, 0.0) == pytest.approx(24.0)

    def test_second_access_free(self):
        local = make_local()
        local.gate_wake_latency(IClass.HEAVY_256, 0.0)
        assert local.gate_wake_latency(IClass.HEAVY_256, 100.0) == 0.0

    def test_haswell_gates_never_charge(self):
        local = make_local(gates="haswell")
        assert local.gate_wake_latency(IClass.HEAVY_256, 0.0) == 0.0

    def test_rejects_nonpositive_reset_time(self):
        with pytest.raises(ConfigError):
            LocalPMU(0, 0.0, skylake_gate(), skylake_gate())
