"""Tests for repro.service.scheduler — the async channel-lab service."""

import asyncio
import json
from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.service.scheduler as scheduler_mod
from repro.errors import ConfigError
from repro.service import ArtifactStore, ChannelLabService, ServiceConfig
from repro.service.scheduler import _execute_batch
from repro.runner import SweepRunner


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coro)


def _identify(x):
    return {"x": x}


def _boom(x):
    raise ValueError(f"boom {x}")


def _fail_until_marker(x, marker_dir):
    """Fails on the first attempt; succeeds once the marker exists."""
    from pathlib import Path

    marker = Path(marker_dir) / f"marker-{x}"
    if marker.exists():
        return {"retried": x}
    marker.write_text("seen")
    raise ValueError(f"first attempt {x}")


def _slow_identify(x, delay_s=0.05):
    import time

    time.sleep(delay_s)
    return {"x": x}


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            ServiceConfig(workers=0)
        with pytest.raises(ConfigError):
            ServiceConfig(runner_jobs=0)
        with pytest.raises(ConfigError):
            ServiceConfig(batch_size=0)
        with pytest.raises(ConfigError):
            ServiceConfig(max_retries=-1)
        with pytest.raises(ConfigError):
            ServiceConfig(backoff_base_s=-0.1)


class TestSubmitAndComplete:
    def test_results_in_input_order(self):
        async def body():
            async with ChannelLabService(ServiceConfig(workers=3)) as lab:
                job = await lab.submit(
                    _identify, [{"x": i} for i in range(40)])
                await job.wait()
                assert job.state == "done"
                assert job.values() == [{"x": i} for i in range(40)]
                assert job.completed == 40
        run(body())

    def test_submit_by_registered_name(self):
        async def body():
            async with ChannelLabService() as lab:
                job = await lab.submit("square", [{"x": 7}])
                await job.wait()
                assert job.values() == [49]
                assert job.name == "square"
        run(body())

    def test_submit_requires_started_service(self):
        async def body():
            lab = ChannelLabService()
            with pytest.raises(ConfigError):
                await lab.submit(_identify, [{"x": 1}])
        run(body())

    def test_empty_job_rejected(self):
        async def body():
            async with ChannelLabService() as lab:
                with pytest.raises(ConfigError):
                    await lab.submit(_identify, [])
        run(body())

    def test_unknown_job_id(self):
        async def body():
            async with ChannelLabService() as lab:
                with pytest.raises(ConfigError):
                    lab.job("job-999999")
        run(body())


class TestPriorityAndFairness:
    def test_higher_priority_runs_first(self):
        """With one worker, a high-priority job overtakes queued work."""
        async def body():
            order = []
            config = ServiceConfig(workers=1, batch_size=1)
            async with ChannelLabService(config) as lab:
                low = await lab.submit(
                    _slow_identify,
                    [{"x": i, "delay_s": 0.01} for i in range(8)],
                    priority=0)
                high = await lab.submit(
                    _slow_identify, [{"x": 100, "delay_s": 0.01}],
                    priority=10)
                async def watch(job, tag):
                    async for _ in job.stream():
                        order.append(tag)
                await asyncio.gather(watch(low, "low"), watch(high, "high"))
                # The single high-priority task cannot be last: it beat
                # at least the tail of the low-priority batch.
                assert "high" in order
                assert order.index("high") < len(order) - 1
        run(body())


class TestStreaming:
    def test_stream_sees_every_completion(self):
        async def body():
            async with ChannelLabService(ServiceConfig(workers=2)) as lab:
                job = await lab.submit(
                    _identify, [{"x": i} for i in range(25)])
                seen = []
                async for record in job.stream():
                    seen.append(record)
                assert len(seen) == 25
                assert all(record.ok for record in seen)
                assert sorted(r.index for r in seen) == list(range(25))
        run(body())

    def test_late_subscriber_replays_from_start(self):
        async def body():
            async with ChannelLabService() as lab:
                job = await lab.submit(
                    _identify, [{"x": i} for i in range(10)])
                await job.wait()
                replayed = [record async for record in job.stream()]
                assert len(replayed) == 10
        run(body())

    def test_jsonl_sink_mirrors_stream(self, tmp_path):
        async def body():
            sink = tmp_path / "partials.jsonl"
            async with ChannelLabService() as lab:
                job = await lab.submit(
                    _identify, [{"x": i} for i in range(6)],
                    sink=str(sink))
                await job.wait()
            lines = [json.loads(line)
                     for line in sink.read_text().splitlines()]
            # 6 completion records plus the final job summary line.
            assert len(lines) == 7
            assert lines[-1]["state"] == "done"
            assert sorted(line["index"] for line in lines[:-1]) == list(
                range(6))
        run(body())


class TestFailuresAndRetry:
    def test_permanent_failure_fails_the_job(self):
        async def body():
            config = ServiceConfig(workers=1, max_retries=1,
                                   backoff_base_s=0.0)
            async with ChannelLabService(config) as lab:
                job = await lab.submit(_boom, [{"x": 1}])
                await job.wait()
                assert job.state == "failed"
                record = job.results[0]
                assert not record.ok
                assert "boom" in record.error
                assert record.attempts == 2  # first try + one retry
                with pytest.raises(ValueError):
                    job.values()
        run(body())

    def test_retry_recovers_a_flaky_task(self, tmp_path):
        async def body():
            config = ServiceConfig(workers=1, max_retries=2,
                                   backoff_base_s=0.0)
            async with ChannelLabService(config) as lab:
                job = await lab.submit(
                    _fail_until_marker,
                    [{"x": 5, "marker_dir": str(tmp_path)}])
                await job.wait()
                assert job.state == "done"
                assert job.values() == [{"retried": 5}]
                assert job.results[0].attempts == 2
                retries = lab.tracer.metrics.counter(
                    "service.retries").value
                assert retries == 1
        run(body())

    def test_failure_annotates_task_identity(self):
        async def body():
            config = ServiceConfig(max_retries=0)
            async with ChannelLabService(config) as lab:
                job = await lab.submit(
                    _boom, [{"x": 42}])
                await job.wait()
                assert job.error.task_kwargs == {"x": 42}
        run(body())


class TestCancel:
    def test_cancel_queued_job(self):
        async def body():
            config = ServiceConfig(workers=1, batch_size=1)
            async with ChannelLabService(config) as lab:
                blocker = await lab.submit(
                    _slow_identify, [{"x": 0, "delay_s": 0.2}])
                victim = await lab.submit(
                    _identify, [{"x": i} for i in range(50)])
                assert await lab.cancel(victim.id)
                await victim.wait()
                assert victim.state == "cancelled"
                with pytest.raises(ConfigError):
                    victim.values()
                await blocker.wait()
                assert blocker.state == "done"
        run(body())

    def test_cancel_finished_job_returns_false(self):
        async def body():
            async with ChannelLabService() as lab:
                job = await lab.submit(_identify, [{"x": 1}])
                await job.wait()
                assert not await lab.cancel(job.id)
        run(body())


class TestSingleFlightDedup:
    def test_identical_tasks_across_jobs_execute_once(self, tmp_path):
        """With a store, N jobs of the same task resolve one execution."""
        async def body():
            store = ArtifactStore(root=tmp_path / "store")
            config = ServiceConfig(workers=2, store=store)
            async with ChannelLabService(config) as lab:
                jobs = [await lab.submit(_identify, [{"x": 9}])
                        for _ in range(4)]
                for job in jobs:
                    await job.wait()
                for job in jobs:
                    assert job.values() == [{"x": 9}]
            # One execution total: one store write, every other
            # resolution is an in-flight follow or a store hit.
            assert store.stats.stores == 1
        run(body())

    def test_duplicates_within_one_job(self, tmp_path):
        async def body():
            store = ArtifactStore(root=tmp_path / "store")
            config = ServiceConfig(workers=1, store=store)
            async with ChannelLabService(config) as lab:
                job = await lab.submit(_identify, [{"x": 3}] * 5)
                await job.wait()
                assert job.values() == [{"x": 3}] * 5
            assert store.stats.stores == 1
        run(body())


class TestWorkerLossSalvage:
    def test_broken_pool_respawns_and_requeues(self, monkeypatch):
        """A BrokenProcessPool dispatch re-queues the batch on a fresh
        runner and the job still completes."""
        real = _execute_batch
        state = {"raised": 0}

        def flaky(runner, fn, kwargs_seq):
            if state["raised"] < 1:
                state["raised"] += 1
                raise BrokenProcessPool("pool died")
            return real(runner, fn, kwargs_seq)

        monkeypatch.setattr(scheduler_mod, "_execute_batch", flaky)

        async def body():
            config = ServiceConfig(workers=1, max_salvages=2)
            async with ChannelLabService(config) as lab:
                job = await lab.submit(
                    _identify, [{"x": i} for i in range(4)])
                await job.wait()
                assert job.state == "done"
                assert job.values() == [{"x": i} for i in range(4)]
                respawns = lab.tracer.metrics.counter(
                    "service.worker_respawns").value
                assert respawns == 1
                salvaged = lab.tracer.metrics.counter(
                    "service.salvaged_tasks").value
                assert salvaged >= 1
        run(body())

    def test_salvage_budget_exhaustion_fails_the_job(self, monkeypatch):
        def always_broken(runner, fn, kwargs_seq):
            raise BrokenProcessPool("pool died")

        monkeypatch.setattr(scheduler_mod, "_execute_batch", always_broken)

        async def body():
            config = ServiceConfig(workers=1, max_salvages=1)
            async with ChannelLabService(config) as lab:
                job = await lab.submit(_identify, [{"x": 1}])
                await job.wait()
                assert job.state == "failed"
                assert "pool lost" in job.results[0].error
        run(body())


class TestExecuteBatchSalvage:
    def test_sibling_results_survive_a_mid_batch_failure(self, tmp_path):
        """One failing task in a batch does not discard its siblings."""
        store = ArtifactStore(root=tmp_path / "store")
        runner = SweepRunner(cache=store)
        outcomes, stats = _execute_batch(
            runner, _boom_on_two,
            [{"x": 1}, {"x": 2}, {"x": 3}])
        assert [ok for ok, _, _ in outcomes] == [True, False, True]
        assert outcomes[0][1] == 1 and outcomes[2][1] == 3
        assert isinstance(outcomes[1][2], ValueError)
        assert stats.tasks >= 3


def _boom_on_two(x):
    if x == 2:
        raise ValueError("two is right out")
    return x


class TestObservability:
    def test_utilization_reports_every_worker(self):
        async def body():
            config = ServiceConfig(workers=3)
            async with ChannelLabService(config) as lab:
                job = await lab.submit(
                    _identify, [{"x": i} for i in range(30)])
                await job.wait()
                report = lab.utilization()
                assert len(report["workers"]) == 3
                total = sum(worker["tasks"]
                            for worker in report["workers"])
                assert total == 30
                assert report["queue_depth"] == 0
        run(body())

    def test_trace_and_metrics_export(self, tmp_path):
        async def body():
            async with ChannelLabService() as lab:
                job = await lab.submit(_identify, [{"x": 1}])
                await job.wait()
                trace_path = tmp_path / "trace.json"
                metrics_path = tmp_path / "metrics.json"
                lab.export_chrome_trace(str(trace_path))
                lab.export_metrics(str(metrics_path))
                trace = json.loads(trace_path.read_text())
                names = {event["name"]
                         for event in trace["traceEvents"]}
                assert "service.batch" in names
                metrics = json.loads(metrics_path.read_text())
                assert metrics["counters"]["service.tasks_completed"] == 1
        run(body())

    def test_job_describe_is_json_ready(self):
        async def body():
            async with ChannelLabService() as lab:
                job = await lab.submit(_identify, [{"x": 1}])
                await job.wait()
                document = json.loads(json.dumps(job.describe()))
                assert document["state"] == "done"
                assert document["tasks"] == 1
                assert document["ok"] == 1
        run(body())
