"""AVX power gates with staggered wake-up."""

import pytest

from repro.errors import ConfigError
from repro.pdn import PowerGate, PowerGateSpec
from repro.pdn.powergate import haswell_gate, skylake_gate
from repro.units import us_to_ns


class TestSpec:
    def test_rejects_negative_wake(self):
        with pytest.raises(ConfigError):
            PowerGateSpec(wake_ns=-1.0)

    def test_rejects_nonpositive_idle_close(self):
        with pytest.raises(ConfigError):
            PowerGateSpec(idle_close_us=0.0)

    def test_default_wake_in_measured_range(self):
        # The paper measures 8-15 ns of staggered wake (Figure 8b).
        assert 8.0 <= PowerGateSpec().wake_ns <= 15.0


class TestGateBehaviour:
    def test_first_access_pays_wake(self):
        gate = skylake_gate()
        assert gate.access(0.0) == pytest.approx(12.0)

    def test_second_access_free(self):
        gate = skylake_gate()
        gate.access(0.0)
        assert gate.access(100.0) == 0.0

    def test_gate_closes_after_idle_timeout(self):
        gate = PowerGate(PowerGateSpec(idle_close_us=10.0))
        gate.access(0.0)
        assert gate.access(us_to_ns(11.0) + 13.0) > 0.0

    def test_gate_stays_open_within_timeout(self):
        gate = PowerGate(PowerGateSpec(idle_close_us=10.0))
        gate.access(0.0)
        assert gate.access(us_to_ns(5.0)) == 0.0

    def test_touch_refreshes_idle_timer(self):
        gate = PowerGate(PowerGateSpec(idle_close_us=10.0))
        gate.access(0.0)
        gate.touch(us_to_ns(8.0))
        # 8 us of touches + 8 more us stays within the 10 us window of
        # the last touch.
        assert gate.access(us_to_ns(16.0)) == 0.0

    def test_is_open_applies_lazy_close(self):
        gate = PowerGate(PowerGateSpec(idle_close_us=10.0))
        gate.access(0.0)
        assert gate.is_open(us_to_ns(5.0))
        assert not gate.is_open(us_to_ns(30.0))

    def test_open_events_counted(self):
        gate = PowerGate(PowerGateSpec(idle_close_us=10.0))
        gate.access(0.0)
        gate.access(us_to_ns(30.0))  # reopens
        assert gate.open_events == 2


class TestHaswell:
    def test_no_gate_means_no_wake_latency(self):
        # Pre-Skylake parts have no AVX power gate (Key Conclusion 3 /
        # Figure 8c: flat iteration latencies on Haswell).
        gate = haswell_gate()
        assert gate.access(0.0) == 0.0
        assert gate.access(us_to_ns(1000.0)) == 0.0

    def test_always_open(self):
        gate = haswell_gate()
        assert gate.is_open(0.0)
        assert gate.open_events == 0


class TestWakeShareOfThrottling:
    def test_wake_is_tiny_fraction_of_throttling_period(self):
        # Key Conclusion 3: ~12 ns wake vs 12-15 us TP -> ~0.1 %.
        wake = skylake_gate().spec.wake_ns
        tp_ns = 13_000.0
        assert wake / tp_ns < 0.002
