"""Differential checks: fast-path equivalences hold, and would fail."""

import numpy as np

from repro.measure.sampler import PiecewiseLinearSignal, TraceSampler
from repro.verify.differential import (
    DiffCheck,
    check_adaptive_plain_equivalence,
    check_kernel_scalar_equivalence,
    check_sampler_bitwise,
    check_service_inline_equivalence,
    run_all,
)
from repro.verify.digest import diff_documents


class TestSamplerBitwise:
    def test_vectorized_matches_scalar_on_real_traces(self):
        check = check_sampler_bitwise()
        assert check.ok, check.render()

    def test_a_broken_fast_path_would_be_caught(self):
        """Sanity-check the method: a signal whose vectorized path
        disagrees with its scalar path by one ULP must not compare
        equal under the bitwise comparison the check uses."""
        signal = PiecewiseLinearSignal(np.array([0.0, 10.0]),
                                       np.array([1.0, 2.0]))
        grid = np.linspace(0.0, 10.0, 64)
        sampler = TraceSampler()
        fast = sampler.evaluate(signal, grid) * (1.0 + 2**-52)
        reference = sampler.evaluate(lambda t: signal(t), grid)
        assert not np.array_equal(fast, reference)


class TestAdaptiveEquivalence:
    def test_adaptive_session_is_inert_without_faults(self):
        check = check_adaptive_plain_equivalence()
        assert check.ok, check.render()

    def test_differences_would_be_reported_leafwise(self):
        plain = {"frames": [{"attempts": 1}], "end_ns": 100.0}
        adaptive = {"frames": [{"attempts": 2}], "end_ns": 130.0}
        lines = diff_documents(plain, adaptive)
        assert any("frames[0].attempts: 1 -> 2" in line for line in lines)


class TestKernelScalarEquivalence:
    def test_goldens_identical_under_both_engines(self):
        check = check_kernel_scalar_equivalence(names=("demo_transfer",))
        assert check.ok, check.render()


class TestServiceInlineEquivalence:
    def test_service_path_matches_inline_and_golden(self):
        check = check_service_inline_equivalence()
        assert check.ok, check.render()


class TestRunAll:
    def test_run_all_names_and_order(self):
        checks = run_all()
        assert [check.name for check in checks] == [
            "sampler-bitwise", "adaptive-plain-equivalence",
            "kernel-scalar-equivalence", "service-inline-equivalence"]
        assert all(check.ok for check in checks)

    def test_render_shows_detail_on_mismatch(self):
        check = DiffCheck(name="x", ok=False, detail=["a -> b"])
        rendered = check.render()
        assert "MISMATCH" in rendered and "a -> b" in rendered
