"""``python -m repro.verify`` CLI behaviour."""

import os
import subprocess
import sys

from repro.verify.__main__ import main
from repro.verify.scenarios import compute_digest, scenario_names


def run_cli(*argv, env_extra=None):
    """Run the verify CLI in a subprocess; returns (code, stdout, stderr)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.update(env_extra or {})
    proc = subprocess.run(
        [sys.executable, "-m", "repro.verify", *argv],
        env=env, capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


class TestModes:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_compute_mode_prints_exactly_name_and_digest(self):
        """The audit's subprocess probe parses this output verbatim."""
        code, out, _ = run_cli("--compute", "fig6_slice")
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 1
        name, digest = lines[0].split()
        assert name == "fig6_slice"
        assert digest == compute_digest("fig6_slice")

    def test_update_goldens_round_trip(self, tmp_path, capsys):
        """--update-goldens then a goldens-only check passes."""
        assert main(["--update-goldens", "--scenario", "fig6_slice",
                     "--goldens-dir", str(tmp_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["--scenario", "fig6_slice",
                     "--goldens-dir", str(tmp_path),
                     "--skip-lint", "--skip-differential",
                     "--skip-audit"]) == 0
        assert "ok       fig6_slice" in capsys.readouterr().out

    def test_missing_golden_fails_the_gate(self, tmp_path, capsys):
        code = main(["--scenario", "fig6_slice",
                     "--goldens-dir", str(tmp_path),
                     "--skip-lint", "--skip-differential", "--skip-audit"])
        assert code == 1
        assert "MISSING" in capsys.readouterr().out

    def test_fast_full_gate_passes(self, capsys):
        """Lint + differential + fast-scenario goldens + in-process audit."""
        code = main(["--scenario", "fig6_slice", "--scenario", "fig8_slice",
                     "--no-subprocess-audit"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "all stages passed" in out
        assert "lint clean" in out
