"""Processor presets."""

import pytest

from repro.errors import ConfigError
from repro.pdn.regulator import VRKind
from repro.soc import (
    PRESETS,
    cannon_lake_i3_8121u,
    coffee_lake_i7_9700k,
    haswell_i7_4770k,
    preset,
)


class TestPresetLookup:
    def test_all_presets_resolve(self):
        for name in PRESETS:
            assert preset(name).n_cores >= 2

    def test_lookup_case_insensitive(self):
        assert preset("Cannon_Lake").codename == "Cannon Lake"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            preset("ice_lake")


class TestHaswell:
    def test_fivr_and_no_avx_pg(self):
        config = haswell_i7_4770k()
        assert config.vr_kind == VRKind.FIVR
        assert not config.avx_pg_present  # pre-Skylake: no AVX gating

    def test_four_cores_with_smt(self):
        config = haswell_i7_4770k()
        assert config.n_cores == 4
        assert config.supports_smt
        assert config.n_threads == 8

    def test_no_avx512(self):
        assert haswell_i7_4770k().max_vector_bits == 256


class TestCoffeeLake:
    def test_mbvr_with_avx_pg(self):
        config = coffee_lake_i7_9700k()
        assert config.vr_kind == VRKind.MBVR
        assert config.avx_pg_present

    def test_eight_cores_no_smt(self):
        config = coffee_lake_i7_9700k()
        assert config.n_cores == 8
        assert not config.supports_smt

    def test_paper_limits(self):
        config = coffee_lake_i7_9700k()
        assert config.vcc_max == pytest.approx(1.27)
        assert config.icc_max == pytest.approx(100.0)

    def test_vf_curve_through_measured_point(self):
        # Figure 6: 788 mV at 2 GHz.
        assert coffee_lake_i7_9700k().vf_curve().vcc_for(2.0) == pytest.approx(
            0.788)


class TestCannonLake:
    def test_two_cores_with_smt_and_avx512(self):
        config = cannon_lake_i3_8121u()
        assert config.n_cores == 2
        assert config.supports_smt
        assert config.max_vector_bits == 512

    def test_paper_limits(self):
        config = cannon_lake_i3_8121u()
        assert config.vcc_max == pytest.approx(1.15)
        assert config.icc_max == pytest.approx(29.0)

    def test_reset_time_is_650us(self):
        assert cannon_lake_i3_8121u().reset_time_us == pytest.approx(650.0)


class TestValidationAndOverrides:
    def test_with_overrides_replaces_fields(self):
        config = cannon_lake_i3_8121u().with_overrides(n_cores=4)
        assert config.n_cores == 4
        assert config.codename == "Cannon Lake"

    def test_disordered_frequencies_rejected(self):
        with pytest.raises(ConfigError):
            cannon_lake_i3_8121u().with_overrides(min_freq_ghz=5.0)

    def test_bad_smt_rejected(self):
        with pytest.raises(ConfigError):
            cannon_lake_i3_8121u().with_overrides(smt_per_core=4)

    def test_bad_vector_width_rejected(self):
        with pytest.raises(ConfigError):
            cannon_lake_i3_8121u().with_overrides(max_vector_bits=128)

    def test_license_table_builds(self):
        table = cannon_lake_i3_8121u().license_table()
        assert table.package_ceiling.__call__ is not None
        assert table.max_freq is not None

    def test_vr_spec_matches_fields(self):
        config = cannon_lake_i3_8121u()
        spec = config.vr_spec()
        assert spec.vcc_max == config.vcc_max
        assert spec.slew_mv_per_us == config.vr_slew_mv_per_us
