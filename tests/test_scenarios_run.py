"""Scenario materialisation and the N-tenant runner, CLI, service task."""

import json

import pytest

from repro.errors import ConfigError
from repro.isa import IClass
from repro.runner import SweepRunner
from repro.scenarios import (
    NoiseSpec,
    PMUSpec,
    ScenarioSpec,
    TenantSpec,
    WorkloadSpec,
    all_specs,
    build_system,
    get_spec,
    interference_spec,
    interference_sweep,
    run_document,
    run_scenario,
    scenario_document,
    scenario_names,
    tenant_thread_ids,
)
from repro.verify.digest import content_digest

#: A cheap two-tenant spec reused across tests (fast protocol, 1 byte).
CHEAP_PAIRS = ScenarioSpec(
    name="cheap_pairs", description="two pairs for tests",
    preset="coffee_lake",
    protocol=(("training_rounds", 1),),
    tenants=(TenantSpec("cores", 0, 1),
             TenantSpec("cores", 2, 3, offset_fraction=0.5)),
    payload_hex="43",
)


class TestRegistry:
    def test_names_and_specs_align(self):
        names = scenario_names()
        assert len(names) >= 10
        assert [s.name for s in all_specs()] == names

    def test_get_spec_typo_lists_names(self):
        with pytest.raises(ConfigError, match="baseline_thread"):
            get_spec("baseline_threads")

    def test_interference_spec_tiles_offsets(self):
        spec = interference_spec(4)
        offsets = [t.offset_fraction for t in spec.tenants]
        assert offsets == [0.0, 0.25, 0.5, 0.75]
        assert all(t.channel == "cores" for t in spec.tenants)

    def test_registered_specs_are_mapping_stable(self):
        for spec in all_specs():
            assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec


class TestBuildSystem:
    def test_pmu_knobs_reach_the_system(self):
        spec = ScenarioSpec(
            name="knobs", description="d", preset="coffee_lake",
            pmu=PMUSpec(queue_depth=2, grant_policy="coalesced"),
            tenants=(TenantSpec("cores", 0, 1),))
        system = build_system(spec)
        assert system.pmu.config.queue_depth == 2
        assert system.pmu.config.grant_policy == "coalesced"

    def test_overrides_reach_the_processor(self):
        spec = ScenarioSpec(
            name="ov", description="d", preset="coffee_lake",
            overrides=(("n_cores", 4), ("vid_step_mv", 10.0)),
            tenants=(TenantSpec("cores", 0, 1),))
        system = build_system(spec)
        assert system.config.n_cores == 4
        assert system.config.vid_step_mv == 10.0

    def test_faults_attached(self):
        spec = ScenarioSpec(
            name="flt", description="d",
            faults="rail-jitter:sigma_mv=1.0,seed=5",
            tenants=(TenantSpec("thread", 0, 0),))
        system = build_system(spec)
        assert system.faults is not None

    def test_no_faults_by_default(self):
        assert build_system(CHEAP_PAIRS).faults is None

    def test_tenant_thread_ids_in_tenant_order(self):
        system = build_system(CHEAP_PAIRS)
        ids = tenant_thread_ids(CHEAP_PAIRS, system)
        # Two cores tenants -> two hardware threads each, all distinct.
        assert len(ids) == 4
        assert len(set(ids)) == 4

    def test_background_replay_respects_vector_cap(self):
        # A 512-bit replay phase is valid data, and build_trace is
        # verbatim for replay; the synthetic kinds cap at the part's
        # width instead.
        workload = WorkloadSpec("power_virus", core=2, duration_ms=2.0)
        trace = workload.build_trace(max_vector_bits=256)
        assert all(p.iclass.width_bits <= 256 for p in trace)


class TestRunScenario:
    def test_single_pair_baseline_is_clean(self):
        run = run_scenario("baseline_thread")
        tenant = run.tenants[0]
        assert tenant.feasible and tenant.ber == 0.0
        assert tenant.symbols_received == tenant.symbols_sent
        assert run.mean_ber == 0.0
        assert run.aggregate_goodput_bps > 0

    def test_two_tenants_share_one_slot_clock(self):
        run = run_scenario(CHEAP_PAIRS)
        assert len(run.tenants) == 2
        assert all(t.feasible for t in run.tenants)
        assert run.slot_ns > 0
        assert run.aggregate_goodput_bps > max(
            t.goodput_bps for t in run.tenants)

    def test_infeasible_topology_is_a_result_not_an_error(self):
        run = run_scenario("ldo_cores")
        tenant = run.tenants[0]
        assert not tenant.feasible
        assert tenant.ber == 1.0
        assert tenant.bit_errors == tenant.bits
        assert run.aggregate_goodput_bps == 0.0

    def test_accepts_spec_or_name(self):
        by_name = run_document("baseline_thread")
        by_spec = run_document(get_spec("baseline_thread"))
        assert content_digest(by_name) == content_digest(by_spec)

    def test_document_is_json_round_trippable(self):
        document = run_document(CHEAP_PAIRS)
        wire = json.loads(json.dumps(document))
        assert wire["spec"]["name"] == "cheap_pairs"
        assert len(wire["tenants"]) == 2
        assert wire["mean_ber"] == document["mean_ber"]

    def test_every_registered_scenario_is_digest_stable(self):
        # Two fresh runs of each registered scenario must produce the
        # same content digest — the property the goldens rely on.
        for name in scenario_names():
            first = content_digest(run_document(name))
            second = content_digest(run_document(name))
            assert first == second, f"{name} is not deterministic"


class TestInterferenceSweep:
    def test_per_tenant_ladder_shape(self):
        result = interference_sweep(pair_counts=(1, 2))
        assert [p.n_pairs for p in result.points] == [1, 2]
        assert len(result.points[0].per_tenant_ber) == 1
        assert len(result.points[1].per_tenant_ber) == 2
        assert len(result.points[1].per_tenant_capacity_bps) == 2

    def test_runner_path_matches_inline(self):
        inline = interference_sweep(pair_counts=(1, 2))
        pooled = interference_sweep(pair_counts=(1, 2),
                                    runner=SweepRunner(jobs=2))
        assert pooled.to_mapping() == inline.to_mapping()

    def test_contention_is_visible_at_scale(self):
        result = interference_sweep(pair_counts=(1, 4))
        solo, crowded = result.points
        assert solo.mean_ber <= crowded.mean_ber
        assert min(crowded.per_tenant_capacity_bps) < max(
            solo.per_tenant_capacity_bps) + 1e-9


class TestEntryPoints:
    def test_scenarios_cli_list_show_run(self, capsys):
        from repro.scenarios.__main__ import main
        assert main(["list"]) == 0
        assert "baseline_thread" in capsys.readouterr().out
        assert main(["show", "baseline_cores"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["name"] == "baseline_cores"
        assert main(["run", "baseline_thread"]) == 0
        assert "BER=0.000" in capsys.readouterr().out
        assert main(["show", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_demo_cli_scenario_flag(self, capsys):
        from repro.__main__ import main
        assert main(["--scenario", "baseline_thread"]) == 0
        out = capsys.readouterr().out
        assert "scenario: baseline_thread" in out
        assert "mean BER" in out

    def test_service_task_matches_inline_digest(self):
        from repro.service.tasks import get_task
        answer = get_task("scenario_run")(name="baseline_cores")
        assert answer["scenario"] == "baseline_cores"
        assert answer["per_tenant_ber"] == [0.0]
        assert answer["digest"] == content_digest(
            run_document("baseline_cores"))

    def test_scenario_document_task_is_picklable(self):
        documents = SweepRunner(jobs=2).map(
            scenario_document,
            [dict(name="baseline_thread"), dict(name="baseline_cores")])
        assert [d["spec"]["name"] for d in documents] == [
            "baseline_thread", "baseline_cores"]


class TestScenarioPhysics:
    def test_noise_and_background_change_the_run(self):
        quiet = ScenarioSpec(
            name="quiet", description="d", preset="cannon_lake",
            tenants=(TenantSpec("cores", 0, 1),), payload_hex="43")
        noisy = ScenarioSpec(
            name="noisy", description="d", preset="cannon_lake",
            tenants=(TenantSpec("cores", 0, 1),), payload_hex="43",
            noise=NoiseSpec(horizon_ms=40.0),
            background=(WorkloadSpec("sevenzip", core=0, smt_slot=1,
                                     duration_ms=40.0),))
        assert content_digest(run_document(quiet)) != \
            content_digest(run_document(noisy))

    def test_secure_mode_defeats_the_channel(self):
        run = run_scenario("secure_mode")
        assert not run.tenants[0].feasible
        assert sum(run.transitions_issued) == 0

    def test_trace_replay_background_executes(self):
        spec = get_spec("trace_replay")
        workload = spec.background[0]
        assert workload.kind == "replay"
        trace = workload.build_trace()
        assert trace.duration_ns > 0
        assert any(p.iclass is IClass.HEAVY_256 for p in trace)
        run = run_scenario(spec)
        assert run.tenants[0].feasible
