"""API quality gates: docstrings and export hygiene across the package."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.isa", "repro.pdn", "repro.pmu", "repro.microarch",
    "repro.soc", "repro.measure", "repro.core", "repro.core.baselines",
    "repro.mitigations", "repro.analysis", "repro.runner", "repro.faults",
    "repro.obs", "repro.verify", "repro.service",
]


def iter_modules():
    """Every module in the package, imported."""
    seen = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        seen.append(package)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                name = f"{package_name}.{info.name}"
                if not info.ispkg:
                    seen.append(importlib.import_module(name))
    return seen


def public_members(module):
    """Public classes and functions defined in (not imported into) a module."""
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue
        yield name, member


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        for module in iter_modules():
            assert module.__doc__ and module.__doc__.strip(), module.__name__

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not (member.__doc__ and member.__doc__.strip()):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public API: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in iter_modules():
            for _, member in public_members(module):
                if not inspect.isclass(member):
                    continue
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not (inspect.isfunction(method)
                            or isinstance(method, property)):
                        continue
                    target = method.fget if isinstance(method, property) else method
                    if target is None:
                        continue
                    if not (target.__doc__ and target.__doc__.strip()):
                        missing.append(
                            f"{module.__name__}.{member.__name__}.{method_name}"
                        )
        assert not missing, f"undocumented public methods: {missing}"


class TestExports:
    def test_all_lists_resolve(self):
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            exported = getattr(package, "__all__", [])
            for name in exported:
                assert hasattr(package, name), f"{package_name}.{name}"

    def test_top_level_version(self):
        assert repro.__version__ == "1.0.0"
