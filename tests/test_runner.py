"""Sweep runner: content-addressed cache + parallel execution."""

import dataclasses
import threading

import numpy as np
import pytest

from repro.analysis.experiments import fig8_throttling
from repro.errors import ConfigError
from repro.runner import (
    ResultCache,
    SweepRunner,
    code_version,
    reset_code_version,
    task_key,
)
from repro.soc.config import cannon_lake_i3_8121u, coffee_lake_i7_9700k


def _square(x):
    """Module-level so it pickles into pool workers."""
    return x * x


def _count_calls(x, counter_dir):
    """Task that records each execution as a file (pool-visible)."""
    import os
    import tempfile

    fd, _ = tempfile.mkstemp(dir=counter_dir, prefix=f"call-{x}-")
    os.close(fd)
    return x * x


def _fail_on_three(x):
    """Module-level task that dies on exactly one input."""
    if x == 3:
        raise ValueError("task three always fails")
    return x * x


def _config_probe(config, scale):
    """A task taking a ProcessorConfig, for canonicalisation tests."""
    return config.vcc_max * scale


class TestTaskKey:
    def test_kwarg_order_irrelevant(self):
        a = task_key(_config_probe,
                     {"config": cannon_lake_i3_8121u(), "scale": 2.0})
        b = task_key(_config_probe,
                     {"scale": 2.0, "config": cannon_lake_i3_8121u()})
        assert a == b

    def test_equal_configs_hash_equal(self):
        assert (task_key(_config_probe,
                         {"config": cannon_lake_i3_8121u(), "scale": 1.0})
                == task_key(_config_probe,
                            {"config": cannon_lake_i3_8121u(), "scale": 1.0}))

    def test_config_change_changes_key(self):
        base = cannon_lake_i3_8121u()
        tweaked = dataclasses.replace(base, icc_max=base.icc_max + 1.0)
        assert (task_key(_config_probe, {"config": base, "scale": 1.0})
                != task_key(_config_probe, {"config": tweaked, "scale": 1.0}))

    def test_different_function_changes_key(self):
        assert (task_key(_square, {"x": 2})
                != task_key(_config_probe, {"x": 2}))

    def test_version_changes_key(self):
        kwargs = {"x": 2}
        assert (task_key(_square, kwargs, version="aaaa")
                != task_key(_square, kwargs, version="bbbb"))
        assert (task_key(_square, kwargs)
                == task_key(_square, kwargs, version=code_version()))

    def test_numpy_scalars_canonicalise_to_python(self):
        assert (task_key(_square, {"x": np.float64(2.5)})
                == task_key(_square, {"x": 2.5}))
        assert (task_key(_square, {"x": np.int64(3)})
                == task_key(_square, {"x": 3}))

    def test_payload_types_supported(self):
        # bytes, tuples, sets and nested mappings must all canonicalise.
        kwargs = {"payload": b"\xa5\x3c", "rates": (1.0, 2.0),
                  "flags": {"b", "a"}, "nested": {"k": [1, 2]}}
        assert task_key(_square, kwargs) == task_key(_square, dict(kwargs))


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.key_for(_square, {"x": 4})
        assert cache.get(key) == (False, None)
        cache.put(key, 16)
        assert cache.get(key) == (True, 16)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_is_unlinked(self, tmp_path):
        # Regression: a corrupt entry used to stay on disk forever —
        # re-read and re-missed on every lookup while __len__ kept
        # counting it as a valid entry.
        cache = ResultCache(root=tmp_path)
        key = cache.key_for(_square, {"x": 4})
        cache.put(key, 16)
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get(key)
        assert not hit
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert not path.exists()
        assert len(cache) == 0
        # The follow-up lookup is a plain miss, not another corruption.
        assert cache.get(key) == (False, None)
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 2

    def test_truncated_pickle_is_also_corrupt(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.key_for(_square, {"x": 5})
        cache.put(key, 25)
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:-3])  # torn write
        assert cache.get(key) == (False, None)
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_version_isolates_entries(self, tmp_path):
        old = ResultCache(root=tmp_path, version="v-old")
        old.put(old.key_for(_square, {"x": 4}), 16)
        new = ResultCache(root=tmp_path, version="v-new")
        hit, _ = new.get(new.key_for(_square, {"x": 4}))
        assert not hit  # a code change invalidates prior results

    def test_clear_and_evict(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        keys = [cache.key_for(_square, {"x": x}) for x in range(5)]
        for x, key in enumerate(keys):
            cache.put(key, x)
        assert len(cache) == 5
        assert cache.evict(max_entries=2) == 3
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        with pytest.raises(ConfigError):
            cache.evict(max_entries=-1)


class TestSweepRunner:
    def test_jobs_validated(self):
        with pytest.raises(ConfigError):
            SweepRunner(jobs=0)

    def test_serial_map_preserves_order(self):
        runner = SweepRunner()
        out = runner.map(_square, [{"x": x} for x in range(10)])
        assert out == [x * x for x in range(10)]
        assert runner.last_run.executed == 10
        assert runner.last_run.cache_hits == 0

    def test_parallel_map_matches_serial(self):
        tasks = [{"x": x} for x in range(9)]
        serial = SweepRunner(jobs=1).map(_square, tasks)
        parallel = SweepRunner(jobs=3).map(_square, tasks)
        assert serial == parallel

    def test_call_single_task(self):
        assert SweepRunner().call(_square, x=7) == 49

    def test_cache_skips_execution_on_rerun(self, tmp_path):
        tasks = [{"x": x} for x in range(6)]
        cold = SweepRunner(cache=ResultCache(root=tmp_path))
        first = cold.map(_square, tasks)
        assert cold.last_run.executed == 6
        warm = SweepRunner(cache=ResultCache(root=tmp_path))
        second = warm.map(_square, tasks)
        assert warm.last_run.executed == 0
        assert warm.last_run.cache_hits == 6
        assert first == second

    def test_parallel_with_cache(self, tmp_path):
        tasks = [{"x": x} for x in range(8)]
        runner = SweepRunner(jobs=4, cache=ResultCache(root=tmp_path))
        assert runner.map(_square, tasks) == [x * x for x in range(8)]
        rerun = SweepRunner(jobs=4, cache=ResultCache(root=tmp_path))
        assert rerun.map(_square, tasks) == [x * x for x in range(8)]
        assert rerun.last_run.executed == 0

    def test_partial_cache_only_runs_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        seeded = SweepRunner(cache=cache)
        seeded.map(_square, [{"x": x} for x in range(3)])
        runner = SweepRunner(cache=ResultCache(root=tmp_path))
        out = runner.map(_square, [{"x": x} for x in range(6)])
        assert out == [x * x for x in range(6)]
        assert runner.last_run.cache_hits == 3
        assert runner.last_run.executed == 3


class TestInCallDeduplication:
    """Duplicate tasks within one map call must execute exactly once."""

    def test_duplicates_execute_once_with_cache(self, tmp_path):
        # Regression: duplicates within one call each missed (the first
        # had not been stored yet) and each executed.
        counter_dir = tmp_path / "calls"
        counter_dir.mkdir()
        runner = SweepRunner(cache=ResultCache(root=tmp_path / "cache"))
        tasks = [{"x": 7, "counter_dir": str(counter_dir)}] * 5
        out = runner.map(_count_calls, tasks)
        assert out == [49] * 5
        assert runner.last_run.executed == 1
        assert runner.last_run.deduped == 4
        assert len(list(counter_dir.iterdir())) == 1

    def test_duplicates_of_a_cache_hit_are_copies(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        SweepRunner(cache=cache).map(_square, [{"x": 3}])
        runner = SweepRunner(cache=ResultCache(root=tmp_path))
        out = runner.map(_square, [{"x": 3}, {"x": 3}, {"x": 2}])
        assert out == [9, 9, 4]
        assert runner.last_run.cache_hits == 1
        assert runner.last_run.deduped == 1
        assert runner.last_run.executed == 1

    def test_mixed_duplicates_parallel(self, tmp_path):
        runner = SweepRunner(jobs=3, cache=ResultCache(root=tmp_path))
        tasks = [{"x": x} for x in (1, 2, 1, 3, 2, 1)]
        assert runner.map(_square, tasks) == [1, 4, 1, 9, 4, 1]
        assert runner.last_run.executed == 3
        assert runner.last_run.deduped == 3

    def test_no_cache_means_no_dedup(self, tmp_path):
        # Without a cache there are no content addresses; behaviour is
        # unchanged (each duplicate runs).
        counter_dir = tmp_path / "calls"
        counter_dir.mkdir()
        runner = SweepRunner()
        tasks = [{"x": 7, "counter_dir": str(counter_dir)}] * 3
        assert runner.map(_count_calls, tasks) == [49] * 3
        assert runner.last_run.executed == 3
        assert runner.last_run.deduped == 0
        assert len(list(counter_dir.iterdir())) == 3


class TestCodeVersionReset:
    """The memoized source digest must be resettable and thread-safe."""

    def test_reset_recomputes_same_digest_for_same_sources(self):
        first = code_version()
        reset_code_version()
        assert code_version() == first

    def test_concurrent_first_computation_is_consistent(self):
        reset_code_version()
        results = []
        lock = threading.Lock()

        def probe():
            value = code_version()
            with lock:
                results.append(value)

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == 1
        assert results[0] == code_version()


class TestSweepFailureSemantics:
    """A crashed sweep must not discard or forget its siblings' work."""

    def test_serial_failure_identifies_the_task(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(root=tmp_path))
        tasks = [{"x": x} for x in range(6)]
        with pytest.raises(ValueError) as excinfo:
            runner.map(_fail_on_three, tasks)
        assert excinfo.value.task_index == 3
        assert excinfo.value.task_kwargs == {"x": 3}

    def test_serial_failure_caches_completed_predecessors(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(root=tmp_path))
        with pytest.raises(ValueError):
            runner.map(_fail_on_three, [{"x": x} for x in range(6)])
        # Tasks 0..2 finished before the crash; a resume must not replay
        # them.
        resumed = SweepRunner(cache=ResultCache(root=tmp_path))
        assert resumed.map(_fail_on_three,
                           [{"x": x} for x in range(3)]) == [0, 1, 4]
        assert resumed.last_run.cache_hits == 3
        assert resumed.last_run.executed == 0

    def test_parallel_failure_caches_all_completed_siblings(self, tmp_path):
        # Regression: one failing future used to abandon every sibling
        # result — even the ones that had already completed successfully.
        runner = SweepRunner(jobs=3, cache=ResultCache(root=tmp_path))
        tasks = [{"x": x} for x in range(6)]
        with pytest.raises(ValueError) as excinfo:
            runner.map(_fail_on_three, tasks)
        assert excinfo.value.task_index == 3
        assert excinfo.value.task_kwargs == {"x": 3}
        survivors = [{"x": x} for x in (0, 1, 2, 4, 5)]
        resumed = SweepRunner(cache=ResultCache(root=tmp_path))
        assert resumed.map(_fail_on_three,
                           survivors) == [0, 1, 4, 16, 25]
        assert resumed.last_run.cache_hits == 5
        assert resumed.last_run.executed == 0

    def test_failure_without_cache_still_annotates(self):
        with pytest.raises(ValueError) as excinfo:
            SweepRunner().map(_fail_on_three, [{"x": 3}])
        assert excinfo.value.task_index == 0
        assert excinfo.value.task_kwargs == {"x": 3}

    def test_executed_counts_completions_not_pending(self):
        # Regression: executed was set to len(pending) before anything
        # ran, so a sweep that died on task 0 of N reported N executed.
        runner = SweepRunner()
        with pytest.raises(ValueError):
            runner.map(_fail_on_three, [{"x": 3}] + [{"x": x}
                                                     for x in range(10)])
        assert runner.last_run.tasks == 11
        assert runner.last_run.executed == 0
        assert runner.total.executed == 0

    def test_stats_consistent_on_serial_failure_path(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(root=tmp_path))
        with pytest.raises(ValueError):
            runner.map(_fail_on_three, [{"x": x} for x in range(6)])
        # Tasks 0..2 completed before the crash on task 3.
        assert runner.last_run.tasks == 6
        assert runner.last_run.executed == 3
        assert runner.total.tasks == 6
        assert runner.total.executed == 3

    def test_stats_consistent_on_parallel_failure_path(self, tmp_path):
        runner = SweepRunner(jobs=3, cache=ResultCache(root=tmp_path))
        with pytest.raises(ValueError):
            runner.map(_fail_on_three, [{"x": x} for x in range(6)])
        # Five of six futures complete; the sixth is the failure.
        assert runner.last_run.executed == 5
        assert runner.total.executed == 5


class TestExperimentDeterminism:
    """Parallelism and caching must not change experiment results."""

    def test_fig8_parallel_equals_serial(self):
        serial = fig8_throttling(trials=3, runner=SweepRunner(jobs=1))
        parallel = fig8_throttling(trials=3, runner=SweepRunner(jobs=4))
        assert serial == parallel

    def test_fig8_warm_cache_executes_nothing(self, tmp_path):
        cold_runner = SweepRunner(cache=ResultCache(root=tmp_path))
        cold = fig8_throttling(trials=3, runner=cold_runner)
        assert cold_runner.total.executed > 0
        warm_runner = SweepRunner(cache=ResultCache(root=tmp_path))
        warm = fig8_throttling(trials=3, runner=warm_runner)
        assert warm_runner.total.executed == 0
        assert warm_runner.total.cache_hits == warm_runner.total.tasks
        assert cold == warm

    def test_fig8_default_runner_unchanged(self):
        # No runner argument is the legacy serial path.
        assert fig8_throttling(trials=2) == fig8_throttling(
            trials=2, runner=SweepRunner())
