"""Benchmark regression gate: comparison, tolerance, CLI, summary."""

import json

import pytest

from repro.errors import ConfigError
from repro.verify.bench_gate import (
    compare,
    collect_medians,
    load_baseline,
    load_benchmark_medians,
    main,
    write_baseline,
)


def bench_json(tmp_path, name, medians):
    """Write a minimal pytest-benchmark JSON artifact."""
    path = tmp_path / name
    path.write_text(json.dumps({
        "benchmarks": [{"name": bench, "stats": {"median": median}}
                       for bench, median in medians.items()],
    }))
    return path


class TestComparison:
    def test_within_tolerance_passes(self):
        report = compare({"a": 1.0}, {"a": 1.2}, tolerance=0.25)
        assert report.ok
        assert report.deltas[0].status == "ok"

    def test_regression_beyond_tolerance_fails(self):
        report = compare({"a": 1.0}, {"a": 1.3}, tolerance=0.25)
        assert not report.ok
        assert report.regressions[0].name == "a"

    def test_speedup_never_fails(self):
        report = compare({"a": 1.0}, {"a": 0.1}, tolerance=0.25)
        assert report.ok

    def test_new_benchmark_is_reported_not_failed(self):
        report = compare({}, {"fresh": 0.5})
        assert report.ok
        assert report.deltas[0].status == "new"
        assert report.deltas[0].ratio is None

    def test_markdown_table_contents(self):
        report = compare({"a": 1.0, "b": 1.0}, {"a": 2.0, "b": 1.0})
        table = report.markdown()
        assert "REGRESSION" in table
        assert "| `a` |" in table and "| `b` |" in table
        assert "+100.0%" in table


class TestArtifacts:
    def test_load_and_collect(self, tmp_path):
        one = bench_json(tmp_path, "one.json", {"a": 1.0})
        two = bench_json(tmp_path, "two.json", {"b": 2.0})
        assert load_benchmark_medians(one) == {"a": 1.0}
        assert collect_medians([one, two]) == {"a": 1.0, "b": 2.0}

    def test_duplicate_names_rejected(self, tmp_path):
        one = bench_json(tmp_path, "one.json", {"a": 1.0})
        two = bench_json(tmp_path, "two.json", {"a": 2.0})
        with pytest.raises(ConfigError, match="more than one"):
            collect_medians([one, two])

    def test_not_a_benchmark_json_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ConfigError, match="pytest-benchmark"):
            load_benchmark_medians(path)

    def test_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, {"a": 1.5, "b": 0.25})
        assert load_baseline(path) == {"a": 1.5, "b": 0.25}

    def test_baseline_schema_mismatch(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "medians": {}}))
        with pytest.raises(ConfigError, match="schema"):
            load_baseline(path)


class TestCli:
    def test_update_then_gate_passes(self, tmp_path, capsys):
        artifact = bench_json(tmp_path, "bench.json", {"a": 1.0})
        baseline = tmp_path / "baseline.json"
        assert main([str(artifact), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main([str(artifact), "--baseline", str(baseline)]) == 0
        assert "passed" in capsys.readouterr().out

    def test_regression_exits_nonzero_and_writes_summary(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, {"a": 1.0})
        artifact = bench_json(tmp_path, "bench.json", {"a": 2.0})
        summary = tmp_path / "summary.md"
        code = main([str(artifact), "--baseline", str(baseline),
                     "--summary", str(summary)])
        assert code == 1
        assert "REGRESSION" in summary.read_text()

    def test_custom_tolerance(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, {"a": 1.0})
        artifact = bench_json(tmp_path, "bench.json", {"a": 1.4})
        assert main([str(artifact), "--baseline", str(baseline)]) == 1
        assert main([str(artifact), "--baseline", str(baseline),
                     "--tolerance", "0.5"]) == 0

    def test_missing_baseline_is_actionable(self, tmp_path, capsys):
        artifact = bench_json(tmp_path, "bench.json", {"a": 1.0})
        code = main([str(artifact), "--baseline",
                     str(tmp_path / "absent.json")])
        assert code == 2
        assert "--update-baseline" in capsys.readouterr().err

    def test_committed_baseline_loads(self):
        from repro.verify.bench_gate import default_baseline_path

        medians = load_baseline(default_baseline_path())
        assert medians, "benchmarks/BENCH_baseline.json must be committed"
