"""System-level behaviour: the three throttling side effects and more."""

import pytest

from repro import IClass, Loop, System, SystemOptions
from repro.errors import ConfigError, SimulationError
from repro.soc.config import (
    cannon_lake_i3_8121u,
    coffee_lake_i7_9700k,
    haswell_i7_4770k,
)
from repro.units import us_to_ns


def run_single_loop(system, thread_id, loop, start_us=5.0, horizon_us=500.0):
    """Run one loop on one thread; return its ExecResult."""
    sink = []

    def program():
        yield system.until(us_to_ns(start_us))
        result = yield system.execute(thread_id, loop)
        sink.append(result)
        return None

    system.spawn(program())
    system.run_until(us_to_ns(horizon_us))
    assert sink, "loop did not finish within the horizon"
    return sink[0]


def fresh(governor=2.2, options=SystemOptions(), config=None):
    return System(config or cannon_lake_i3_8121u(), options=options,
                  governor_freq_ghz=governor)


class TestExecution:
    def test_scalar_loop_runs_unthrottled(self):
        system = fresh()
        result = run_single_loop(system, 0, Loop(IClass.SCALAR_64, 30))
        assert result.throttled_ns == 0.0
        expected = Loop(IClass.SCALAR_64, 30).unthrottled_ns(2.2)
        assert result.elapsed_ns == pytest.approx(expected, rel=0.01)

    def test_phi_loop_is_throttled_during_ramp(self):
        system = fresh()
        result = run_single_loop(system, 0, Loop(IClass.HEAVY_256, 30))
        assert result.throttled_ns > us_to_ns(2.0)

    def test_tsc_matches_elapsed(self):
        system = fresh()
        result = run_single_loop(system, 0, Loop(IClass.SCALAR_64, 30))
        assert result.elapsed_tsc == pytest.approx(
            result.elapsed_ns * system.config.base_freq_ghz, abs=2)

    def test_result_reports_instruction_counts(self):
        system = fresh()
        loop = Loop(IClass.SCALAR_64, 10, block_instructions=200)
        result = run_single_loop(system, 0, loop)
        assert result.instructions == 2000
        assert result.iterations == 10

    def test_two_loops_sequential_on_same_thread(self):
        system = fresh()
        results = []

        def program():
            yield system.until(us_to_ns(5.0))
            results.append((yield system.execute(0, Loop(IClass.SCALAR_64, 10))))
            results.append((yield system.execute(0, Loop(IClass.SCALAR_64, 10))))
            return None

        system.spawn(program())
        system.run_until(us_to_ns(200.0))
        assert len(results) == 2
        assert results[1].start_ns >= results[0].end_ns

    def test_avx512_rejected_on_parts_without_it(self):
        system = fresh(governor=3.0, config=coffee_lake_i7_9700k())
        with pytest.raises(ConfigError):
            system.execute(0, Loop(IClass.HEAVY_512, 10))

    def test_unknown_thread_rejected(self):
        system = fresh()
        with pytest.raises(ConfigError):
            system.execute(99, Loop(IClass.SCALAR_64, 1))

    def test_governor_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            fresh(governor=9.0)


class TestMultiThrottlingThread:
    """Observation 1: multi-level TP proportional to intensity."""

    def test_tp_increases_with_computational_intensity(self):
        tps = {}
        for iclass in (IClass.HEAVY_128, IClass.LIGHT_256, IClass.HEAVY_256,
                       IClass.HEAVY_512):
            system = fresh()
            result = run_single_loop(system, 0, Loop(iclass, 40))
            tps[iclass] = result.throttled_ns
        ordered = [tps[c] for c in sorted(tps)]
        assert all(b > a for a, b in zip(ordered, ordered[1:]))

    def test_probe_tp_shrinks_after_heavier_sender(self):
        # Figure 10(b): the 512b_Heavy probe is throttled less when the
        # preceding loop was more intense.
        def probe_tp_after(iclass):
            system = fresh()
            sink = []

            def program():
                yield system.until(us_to_ns(5.0))
                yield system.execute(0, Loop(iclass, 40))
                sink.append((yield system.execute(0, Loop(IClass.HEAVY_512, 40))))
                return None

            system.spawn(program())
            system.run_until(us_to_ns(600.0))
            return sink[0].throttled_ns

        weak = probe_tp_after(IClass.HEAVY_128)
        strong = probe_tp_after(IClass.HEAVY_256)
        strongest = probe_tp_after(IClass.HEAVY_512)
        assert weak > strong > strongest

    def test_repeat_of_same_class_not_throttled_within_hysteresis(self):
        system = fresh()
        results = []

        def program():
            yield system.until(us_to_ns(5.0))
            results.append((yield system.execute(0, Loop(IClass.HEAVY_256, 30))))
            yield system.sleep(us_to_ns(50.0))  # well inside the 650 us window
            results.append((yield system.execute(0, Loop(IClass.HEAVY_256, 30))))
            return None

        system.spawn(program())
        system.run_until(us_to_ns(500.0))
        assert results[0].throttled_ns > 0
        assert results[1].throttled_ns == 0.0

    def test_reset_time_restores_throttling(self):
        # After ~650 us of quiet the guardband drops and the next PHI
        # throttles again (Section 4.1.2).
        system = fresh()
        results = []

        def program():
            yield system.until(us_to_ns(5.0))
            results.append((yield system.execute(0, Loop(IClass.HEAVY_256, 30))))
            yield system.sleep(us_to_ns(750.0))
            results.append((yield system.execute(0, Loop(IClass.HEAVY_256, 30))))
            return None

        system.spawn(program())
        system.run_until(us_to_ns(1600.0))
        assert results[1].throttled_ns > 0
        assert results[1].throttled_ns == pytest.approx(
            results[0].throttled_ns, rel=0.2)


class TestMultiThrottlingSMT:
    """Observation 2: co-located SMT threads are throttled together."""

    def test_sibling_scalar_loop_stretched_by_sender_phi(self):
        def sibling_elapsed(sender_class):
            system = fresh()
            sink = []

            def sender():
                yield system.until(us_to_ns(5.0))
                yield system.execute(system.thread_on(0, 0),
                                     Loop(sender_class, 40))

            def receiver():
                yield system.until(us_to_ns(5.0))
                sink.append((yield system.execute(
                    system.thread_on(0, 1), Loop(IClass.SCALAR_64, 40))))

            system.spawn(sender())
            system.spawn(receiver())
            system.run_until(us_to_ns(600.0))
            return sink[0].elapsed_ns

        baseline = sibling_elapsed(IClass.SCALAR_64)
        l1 = sibling_elapsed(IClass.HEAVY_128)
        l4 = sibling_elapsed(IClass.HEAVY_512)
        assert l1 > baseline
        assert l4 > l1

    def test_smt_sharing_halves_scalar_throughput(self):
        system = fresh()
        solo = run_single_loop(system, system.thread_on(0, 0),
                               Loop(IClass.SCALAR_64, 40))
        system2 = fresh()
        sink = []

        def worker(slot):
            def program():
                yield system2.until(us_to_ns(5.0))
                sink.append((yield system2.execute(
                    system2.thread_on(0, slot), Loop(IClass.SCALAR_64, 40))))
            return program()

        system2.spawn(worker(0))
        system2.spawn(worker(1))
        system2.run_until(us_to_ns(300.0))
        assert sink[0].elapsed_ns == pytest.approx(2 * solo.elapsed_ns, rel=0.05)

    def test_improved_throttling_spares_sibling(self):
        def sibling_elapsed(options):
            system = fresh(options=options)
            sink = []

            def sender():
                yield system.until(us_to_ns(5.0))
                yield system.execute(system.thread_on(0, 0),
                                     Loop(IClass.HEAVY_512, 40))

            def receiver():
                yield system.until(us_to_ns(5.0))
                sink.append((yield system.execute(
                    system.thread_on(0, 1), Loop(IClass.SCALAR_64, 40))))

            system.spawn(sender())
            system.spawn(receiver())
            system.run_until(us_to_ns(600.0))
            return sink[0]

        vanilla = sibling_elapsed(SystemOptions())
        improved = sibling_elapsed(SystemOptions(improved_throttling=True))
        assert improved.throttled_ns == 0.0
        assert improved.elapsed_ns < vanilla.elapsed_ns


class TestMultiThrottlingCores:
    """Observation 3: cross-core TP exacerbation via the shared VR."""

    def _receiver_tp(self, sender_class, options=SystemOptions(),
                     delay_ns=200.0):
        system = fresh(options=options)
        sink = []

        def sender():
            yield system.until(us_to_ns(5.0))
            yield system.execute(system.thread_on(0, 0),
                                 Loop(sender_class, 40))

        def receiver():
            yield system.until(us_to_ns(5.0) + delay_ns)
            sink.append((yield system.execute(
                system.thread_on(1, 0), Loop(IClass.HEAVY_128, 40))))

        system.spawn(sender())
        system.spawn(receiver())
        system.run_until(us_to_ns(600.0))
        return sink[0].throttled_ns

    def test_receiver_tp_grows_with_sender_intensity(self):
        tps = [self._receiver_tp(c) for c in
               (IClass.SCALAR_64, IClass.HEAVY_128, IClass.HEAVY_256,
                IClass.HEAVY_512)]
        assert all(b > a for a, b in zip(tps, tps[1:]))

    def test_exacerbation_requires_temporal_proximity(self):
        # Starting the receiver long after the sender's transition is
        # over removes the queueing effect.
        near = self._receiver_tp(IClass.HEAVY_512, delay_ns=200.0)
        far = self._receiver_tp(IClass.HEAVY_512, delay_ns=us_to_ns(100.0))
        assert near > far

    def test_per_core_vr_removes_cross_core_effect(self):
        options = SystemOptions(per_core_vr=True)
        scalar = self._receiver_tp(IClass.SCALAR_64, options=options)
        heavy = self._receiver_tp(IClass.HEAVY_512, options=options)
        assert heavy == pytest.approx(scalar, abs=100.0)


class TestSecureMode:
    def test_no_throttling_at_all(self):
        system = fresh(options=SystemOptions(secure_mode=True))
        result = run_single_loop(system, 0, Loop(IClass.HEAVY_512, 40))
        assert result.throttled_ns == 0.0

    def test_rail_starts_at_worst_case(self):
        secure = fresh(options=SystemOptions(secure_mode=True))
        baseline = secure.pmu.curve.vcc_for(secure.pmu.freq_ghz)
        assert secure.vcc_at(0.0) > baseline  # guardband pre-applied

    def test_secure_mode_clamps_frequency_for_the_envelope(self):
        secure = fresh(options=SystemOptions(secure_mode=True))
        verdict = secure.limits.evaluate(
            secure.pmu.freq_ghz,
            [IClass.HEAVY_512] * secure.config.n_cores)
        assert verdict.ok


class TestSuspension:
    def test_suspend_stretches_execution(self):
        system = fresh()
        sink = []

        def program():
            yield system.until(us_to_ns(5.0))
            sink.append((yield system.execute(0, Loop(IClass.SCALAR_64, 40))))
            return None

        def interrupter():
            yield system.until(us_to_ns(7.0))
            system.suspend_thread(0)
            yield system.sleep(us_to_ns(10.0))
            system.resume_thread(0)
            return None

        system.spawn(program())
        system.spawn(interrupter())
        system.run_until(us_to_ns(300.0))
        expected = Loop(IClass.SCALAR_64, 40).unthrottled_ns(2.2)
        assert sink[0].elapsed_ns == pytest.approx(
            expected + us_to_ns(10.0), rel=0.05)

    def test_resume_without_suspend_rejected(self):
        system = fresh()
        with pytest.raises(SimulationError):
            system.resume_thread(0)

    def test_nested_suspensions(self):
        system = fresh()
        system.suspend_thread(0)
        system.suspend_thread(0)
        system.resume_thread(0)
        system.resume_thread(0)


class TestPowerGatesInSystem:
    def test_first_avx_loop_pays_wake_on_gated_parts(self):
        system = fresh()
        result = run_single_loop(system, 0, Loop(IClass.HEAVY_256, 5))
        assert result.gate_wake_ns == pytest.approx(12.0)

    def test_haswell_pays_no_wake(self):
        system = fresh(governor=3.0, config=haswell_i7_4770k())
        result = run_single_loop(system, 0, Loop(IClass.HEAVY_256, 5))
        assert result.gate_wake_ns == 0.0

    def test_haswell_tp_shorter_than_mbvr_parts(self):
        # Footnote 10: the FIVR part has a shorter throttling period.
        hsw = fresh(governor=3.0, config=haswell_i7_4770k())
        cfl = fresh(governor=3.0, config=coffee_lake_i7_9700k())
        tp_hsw = run_single_loop(hsw, 0, Loop(IClass.HEAVY_256, 60)).throttled_ns
        tp_cfl = run_single_loop(cfl, 0, Loop(IClass.HEAVY_256, 60)).throttled_ns
        assert tp_hsw < tp_cfl


class TestTraces:
    def test_throttle_trace_records_episode(self):
        system = fresh()
        run_single_loop(system, 0, Loop(IClass.HEAVY_256, 40))
        values = [v for _, v in system.throttle_traces[0].breakpoints()]
        assert 1 in values and 0 in values

    def test_icc_rises_with_activity(self):
        system = fresh()
        run_single_loop(system, 0, Loop(IClass.HEAVY_512, 40),
                        start_us=10.0, horizon_us=400.0)
        idle_icc = system.icc_at(us_to_ns(2.0))
        busy_icc = system.icc_at(us_to_ns(30.0))
        assert busy_icc > idle_icc

    def test_power_is_icc_times_vcc(self):
        system = fresh()
        run_single_loop(system, 0, Loop(IClass.HEAVY_256, 40))
        t = us_to_ns(20.0)
        assert system.power_at(t) == pytest.approx(
            system.icc_at(t) * system.vcc_at(t))

    def test_temperature_stays_far_below_tjmax(self):
        # Validates the 'not thermal' conclusion at this time scale.
        system = fresh()
        run_single_loop(system, 0, Loop(IClass.HEAVY_512, 60))
        temps = [v for _, v in system.temp_trace.breakpoints()]
        assert max(temps) < system.config.thermal.tj_max_c - 30.0


class TestGovernorsAndChannels:
    @pytest.mark.parametrize("freq", [1.0, 2.2, 3.0])
    def test_throttling_persists_across_frequencies(self, freq):
        # Section 5.7: the mechanism exists at any frequency / governor.
        system = fresh(governor=freq)
        result = run_single_loop(system, 0, Loop(IClass.HEAVY_256, 40))
        assert result.throttled_ns > us_to_ns(1.0)


class TestTraceProgram:
    def test_trace_program_runs_phases(self):
        from repro.isa.workload import PhaseTrace

        system = fresh()
        trace = PhaseTrace().append(IClass.SCALAR_64, us_to_ns(20.0)).append(
            IClass.HEAVY_256, us_to_ns(20.0))
        system.spawn(system.trace_program(0, trace))
        system.run_until(us_to_ns(400.0))
        labels = [v for _, v in system.activity_traces[0].breakpoints()]
        assert "64b" in labels and "256b_Heavy" in labels


class TestGovernorIntegration:
    def test_system_accepts_governor_object(self):
        from repro.pmu import Governor, GovernorKind

        config = cannon_lake_i3_8121u()
        gov = Governor(GovernorKind.POWERSAVE, config.min_freq_ghz,
                       config.max_turbo_ghz)
        system = System(config, governor=gov)
        assert system.pmu.requested_freq_ghz == pytest.approx(
            config.min_freq_ghz)

    def test_governor_and_freq_are_mutually_exclusive(self):
        from repro.pmu import Governor, GovernorKind

        config = cannon_lake_i3_8121u()
        gov = Governor(GovernorKind.PERFORMANCE, config.min_freq_ghz,
                       config.max_turbo_ghz)
        with pytest.raises(ConfigError):
            System(config, governor=gov, governor_freq_ghz=2.2)

    def test_apply_governor_at_runtime(self):
        from repro.pmu import Governor, GovernorKind

        config = cannon_lake_i3_8121u()
        system = fresh()
        gov = Governor(GovernorKind.PERFORMANCE, config.min_freq_ghz,
                       config.max_turbo_ghz)
        system.apply_governor(gov)
        system.run_until(us_to_ns(20.0))
        assert system.pmu.freq_ghz == pytest.approx(config.max_turbo_ghz)

    def test_throttling_mechanism_survives_every_governor(self):
        # Section 5.7: no software policy disables the hardware throttle.
        from repro.pmu import Governor, GovernorKind

        config = cannon_lake_i3_8121u()
        governors = [
            Governor(GovernorKind.PERFORMANCE, config.min_freq_ghz,
                     config.max_turbo_ghz),
            Governor(GovernorKind.POWERSAVE, config.min_freq_ghz,
                     config.max_turbo_ghz),
            Governor(GovernorKind.USERSPACE, config.min_freq_ghz,
                     config.max_turbo_ghz, userspace_ghz=2.2),
        ]
        for gov in governors:
            system = System(config, governor=gov)
            result = run_single_loop(system, 0, Loop(IClass.HEAVY_256, 60))
            assert result.throttled_ns > us_to_ns(1.0), gov.kind
