"""End-to-end covert channel tests."""

import pytest

from repro import System, SystemOptions
from repro.core import (
    ChannelConfig,
    IccCoresCovert,
    IccSMTcovert,
    IccThreadCovert,
)
from repro.errors import ConfigError, ProtocolError
from repro.soc.config import (
    cannon_lake_i3_8121u,
    coffee_lake_i7_9700k,
    haswell_i7_4770k,
)


def make_channel(cls, config=None, **kwargs):
    system = System(config or cannon_lake_i3_8121u())
    return cls(system, **kwargs)


PAYLOAD = b"\x00\x55\xaa\xff4Vx"


class TestIccThreadCovert:
    def test_transfers_payload_error_free(self):
        channel = make_channel(IccThreadCovert)
        report = channel.transfer(PAYLOAD)
        assert report.received == PAYLOAD
        assert report.ber == 0.0

    def test_throughput_in_paper_ballpark(self):
        # Paper: ~2.9 kbps; our slot is 750 us so ~2.5 kbps.
        channel = make_channel(IccThreadCovert)
        report = channel.transfer(PAYLOAD)
        assert 2000.0 < report.throughput_bps < 3000.0

    def test_works_on_parts_without_avx512(self):
        for config in (coffee_lake_i7_9700k(), haswell_i7_4770k()):
            system = System(config, governor_freq_ghz=config.base_freq_ghz)
            channel = IccThreadCovert(system)
            report = channel.transfer(b"\x2a\x91")
            assert report.received == b"\x2a\x91"

    def test_probe_direction_inverted(self):
        # Higher sender level leaves less ramp for the probe, so the L4
        # cluster center must be the smallest.
        channel = make_channel(IccThreadCovert)
        calibrator = channel.calibrate()
        centers = {s: st.center for s, st in calibrator.stats.items()}
        assert centers[3] < centers[0]

    def test_sequential_transfers_on_one_system(self):
        channel = make_channel(IccThreadCovert)
        first = channel.transfer(b"\x11\x22")
        second = channel.transfer(b"\x33\x44")
        assert first.received == b"\x11\x22"
        assert second.received == b"\x33\x44"
        assert second.start_ns >= first.end_ns

    def test_calibration_reused_across_transfers(self):
        channel = make_channel(IccThreadCovert)
        first = channel.transfer(b"\x11")
        second = channel.transfer(b"\x22")
        assert first.retraining
        assert not second.retraining

    def test_empty_payload_rejected(self):
        channel = make_channel(IccThreadCovert)
        with pytest.raises(ProtocolError):
            channel.transfer(b"")

    def test_unknown_core_rejected(self):
        with pytest.raises(ConfigError):
            make_channel(IccThreadCovert, core=9)

    def test_report_accounting(self):
        channel = make_channel(IccThreadCovert)
        report = channel.transfer(b"\xff")
        assert report.bits == 8
        assert len(report.symbols_sent) == 4
        assert len(report.measurements_tsc) == 4
        assert report.goodput_bps == pytest.approx(report.throughput_bps)


class TestIccSMTcovert:
    def test_transfers_payload_error_free(self):
        channel = make_channel(IccSMTcovert)
        report = channel.transfer(PAYLOAD)
        assert report.received == PAYLOAD
        assert report.ber == 0.0

    def test_probe_direction_normal(self):
        # Higher sender level -> longer co-throttling of the sibling.
        channel = make_channel(IccSMTcovert)
        calibrator = channel.calibrate()
        centers = {s: st.center for s, st in calibrator.stats.items()}
        assert centers[3] > centers[0]

    def test_rejected_on_parts_without_smt(self):
        # The paper evaluates IccSMTcovert only on Cannon Lake because
        # the i7-9700K has no SMT.
        system = System(coffee_lake_i7_9700k())
        with pytest.raises(ConfigError):
            IccSMTcovert(system)

    def test_works_on_haswell_smt(self):
        system = System(haswell_i7_4770k())
        channel = IccSMTcovert(system)
        report = channel.transfer(b"\x5c")
        assert report.received == b"\x5c"

    def test_sender_and_receiver_share_a_core(self):
        channel = make_channel(IccSMTcovert)
        system = channel.system
        assert (system.threads[channel.sender_thread].core_id
                == system.threads[channel.receiver_thread].core_id)


class TestIccCoresCovert:
    def test_transfers_payload_error_free(self):
        channel = make_channel(IccCoresCovert)
        report = channel.transfer(PAYLOAD)
        assert report.received == PAYLOAD
        assert report.ber == 0.0

    def test_same_core_rejected(self):
        system = System(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            IccCoresCovert(system, sender_core=0, receiver_core=0)

    def test_works_across_coffee_lake_cores(self):
        system = System(coffee_lake_i7_9700k())
        channel = IccCoresCovert(system, sender_core=2, receiver_core=5)
        report = channel.transfer(b"\x3d")
        assert report.received == b"\x3d"

    def test_probe_direction_normal(self):
        channel = make_channel(IccCoresCovert)
        calibrator = channel.calibrate()
        centers = {s: st.center for s, st in calibrator.stats.items()}
        assert centers[3] > centers[0]


class TestTransferReportAccounting:
    """BER arithmetic of :class:`TransferReport` (regression).

    A receiver that loses slots used to report a *lower* BER than one
    that decoded everything wrong, because ``zip`` silently dropped the
    missing tail.  Missing or surplus symbols now count as fully errored.
    """

    def _report(self, sent, received):
        from repro.core import ChannelLocation, TransferReport

        return TransferReport(
            sent=b"", received=b"", symbols_sent=sent,
            symbols_received=received, measurements_tsc=[],
            start_ns=0.0, end_ns=1.0,
            location=ChannelLocation.SAME_THREAD)

    def test_equal_length_counts_symbol_xor_bits(self):
        report = self._report([0b00, 0b01, 0b11], [0b00, 0b11, 0b00])
        assert report.bit_errors == 3  # 0 + 1 + 2 wrong bits
        assert report.ber == pytest.approx(3 / 6)

    def test_missing_tail_counts_as_fully_errored(self):
        report = self._report([1, 2, 3, 0], [1, 2])
        assert report.bit_errors == 4  # two lost symbols x 2 bits
        assert report.ber == pytest.approx(4 / 8)

    def test_surplus_symbols_count_too(self):
        report = self._report([1, 2], [1, 2, 3])
        assert report.bit_errors == 2

    def test_everything_lost_is_total_loss(self):
        report = self._report([0, 1, 2, 3], [])
        assert report.ber == 1.0


class TestChannelConfig:
    def test_bad_slot_rejected(self):
        with pytest.raises(ProtocolError):
            ChannelConfig(slot_us=0.0)

    def test_bad_iterations_rejected(self):
        with pytest.raises(ProtocolError):
            ChannelConfig(sender_iterations=0)

    def test_too_short_slot_detected_at_runtime(self):
        # With the adaptive slot disabled, a slot shorter than the send
        # window cannot produce measurements for every transaction.
        system = System(cannon_lake_i3_8121u())
        channel = IccThreadCovert(
            system, ChannelConfig(slot_us=20.0, adaptive_slot=False))
        with pytest.raises(ProtocolError):
            channel.transfer(b"\x12\x34")

    def test_adaptive_slot_grows_for_slow_parts(self):
        # A 20 us request is silently grown past the reset-time when the
        # adaptive slot is on (the default).
        system = System(cannon_lake_i3_8121u())
        channel = IccThreadCovert(system, ChannelConfig(slot_us=20.0))
        assert channel.slot_ns > 650_000.0
        report = channel.transfer(b"\x12\x34")
        assert report.received == b"\x12\x34"


class TestSymbolLoops:
    def test_sender_loop_class_matches_symbol(self):
        channel = make_channel(IccThreadCovert)
        for symbol in range(4):
            assert channel.sender_loop(symbol).iclass == channel.symbol_class(symbol)

    def test_bad_symbol_rejected(self):
        channel = make_channel(IccThreadCovert)
        with pytest.raises(ProtocolError):
            channel.sender_loop(4)

    def test_run_symbols_rejects_empty(self):
        channel = make_channel(IccThreadCovert)
        with pytest.raises(ProtocolError):
            channel.run_symbols([])
