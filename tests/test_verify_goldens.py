"""Golden round-trip, drift detection, and the perturbation demo."""

import json

import pytest

from repro.errors import ConfigError
from repro.pdn.loadline import LoadLine
from repro.verify.goldens import (
    check_all,
    check_scenario,
    golden_path,
    load_golden,
    update_goldens,
    write_golden,
)
from repro.verify.scenarios import compute_document, scenario_names


class TestRoundTrip:
    def test_update_then_check_is_ok(self, tmp_path):
        """--update-goldens followed by a check passes for every scenario."""
        update_goldens(["fig6_slice"], goldens_dir=tmp_path)
        check = check_scenario("fig6_slice", goldens_dir=tmp_path)
        assert check.ok, check.render()
        assert check.expected_digest == check.actual_digest

    def test_written_golden_is_reviewable_json(self, tmp_path):
        update_goldens(["fig6_slice"], goldens_dir=tmp_path)
        payload = json.loads(golden_path(
            "fig6_slice", tmp_path).read_text())
        assert payload["schema"] == 1
        assert payload["scenario"] == "fig6_slice"
        assert set(payload["sections"]) == set(payload["document"])

    def test_missing_golden_reported_not_crashed(self, tmp_path):
        check = check_scenario("fig6_slice", goldens_dir=tmp_path)
        assert check.status == "missing"
        assert not check.ok
        assert "--update-goldens" in check.render()

    def test_schema_mismatch_raises(self, tmp_path):
        path = write_golden("fig6_slice",
                            compute_document("fig6_slice"), tmp_path)
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError, match="schema"):
            load_golden("fig6_slice", tmp_path)


class TestCommittedGoldens:
    def test_every_scenario_has_a_committed_golden(self):
        for name in scenario_names():
            assert load_golden(name) is not None, (
                f"tests/goldens/{name}.json missing; run "
                f"python -m repro.verify --update-goldens")

    def test_fast_scenarios_match_committed_goldens(self):
        """The cheap scenarios are re-verified inside the tier-1 suite.

        (The full set, including the slower sweep slices, runs in the CI
        verify job via ``python -m repro.verify``.)
        """
        for check in check_all(["fig6_slice", "fig8_slice"]):
            assert check.ok, check.render()


class TestPerturbationDemo:
    def test_perturbed_loadline_is_caught(self, monkeypatch):
        """The demonstration the harness exists for: nudge one physical
        constant (load-line droop, +10%) and the golden check must fail
        with a diagnosable section-level drift report.

        ``fig8_slice`` is the sentinel: the inflated droop moves the
        guardband transitions, which shifts the throttling windows the
        TP distributions measure.  (``fig6_slice`` would need a larger
        nudge — its document pins VID-quantised rail plateaus, so a
        sub-step change is genuinely absorbed by the regulator model.)
        """
        original = LoadLine.droop

        def inflated(self, icc):
            return original(self, icc) * 1.10

        monkeypatch.setattr(LoadLine, "droop", inflated)
        check = check_scenario("fig8_slice")
        assert check.status == "mismatch"
        assert check.drifted_sections, check.render()
        rendered = check.render()
        assert "DRIFT" in rendered
        assert any("->" in line for line in check.diff_lines)

    def test_unperturbed_check_still_ok(self):
        """Control for the demo above: without the nudge, it passes."""
        assert check_scenario("fig8_slice").ok
