"""Workload loops and phase traces."""

import pytest

from repro.errors import ConfigError
from repro.isa import IClass, Loop, PhaseTrace
from repro.isa.workload import (
    avx2_phase_program,
    calculix_like_trace,
    power_virus,
    random_phi_schedule,
    sevenzip_like_trace,
    uniform_loop,
)
from repro.units import ms_to_ns, us_to_ns


class TestLoop:
    def test_total_instructions(self):
        loop = Loop(IClass.HEAVY_256, iterations=10, block_instructions=300)
        assert loop.total_instructions == 3000

    def test_unthrottled_cycles_uses_class_ipc(self):
        loop = Loop(IClass.SCALAR_64, 10)  # ipc 2
        assert loop.unthrottled_cycles() == pytest.approx(1500.0)

    def test_unthrottled_ns_at_one_ghz_equals_cycles(self):
        loop = Loop(IClass.HEAVY_256, 10)
        assert loop.unthrottled_ns(1.0) == pytest.approx(loop.unthrottled_cycles())

    def test_unthrottled_ns_scales_inversely_with_freq(self):
        loop = Loop(IClass.HEAVY_256, 10)
        assert loop.unthrottled_ns(2.0) == pytest.approx(loop.unthrottled_ns(1.0) / 2)

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigError):
            Loop(IClass.HEAVY_256, 0)

    def test_zero_block_rejected(self):
        with pytest.raises(ConfigError):
            Loop(IClass.HEAVY_256, 1, block_instructions=0)


class TestUniformLoop:
    def test_sized_to_duration(self):
        loop = uniform_loop(IClass.HEAVY_256, duration_us=100.0, freq_ghz=2.0)
        assert loop.unthrottled_ns(2.0) == pytest.approx(us_to_ns(100.0), rel=0.02)

    def test_scalar_loop_packs_more_instructions(self):
        scalar = uniform_loop(IClass.SCALAR_64, 100.0, 2.0)
        heavy = uniform_loop(IClass.HEAVY_256, 100.0, 2.0)
        assert scalar.total_instructions > heavy.total_instructions

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigError):
            uniform_loop(IClass.HEAVY_256, 0.0, 2.0)

    def test_minimum_one_iteration(self):
        loop = uniform_loop(IClass.HEAVY_256, 0.001, 1.0)
        assert loop.iterations >= 1


class TestPhaseTrace:
    def test_append_chains(self):
        trace = PhaseTrace().append(IClass.SCALAR_64, 10.0).append(
            IClass.HEAVY_256, 20.0)
        assert len(trace) == 2

    def test_duration_sums_phases(self):
        trace = PhaseTrace().append(IClass.SCALAR_64, 10.0).append(
            IClass.HEAVY_256, 20.0)
        assert trace.duration_ns == pytest.approx(30.0)

    def test_class_at_picks_the_right_phase(self):
        trace = PhaseTrace().append(IClass.SCALAR_64, 10.0).append(
            IClass.HEAVY_256, 20.0)
        assert trace.class_at(5.0) == IClass.SCALAR_64
        assert trace.class_at(15.0) == IClass.HEAVY_256

    def test_class_at_past_end_is_none(self):
        trace = PhaseTrace().append(IClass.SCALAR_64, 10.0)
        assert trace.class_at(11.0) is None

    def test_zero_duration_phase_rejected(self):
        with pytest.raises(ConfigError):
            PhaseTrace().append(IClass.SCALAR_64, 0.0)


class TestGenerators:
    def test_avx2_phase_program_shape(self):
        trace = avx2_phase_program()
        classes = [p.iclass for p in trace]
        assert classes == [IClass.SCALAR_64, IClass.HEAVY_256, IClass.SCALAR_64]

    def test_calculix_trace_alternates_and_fills_duration(self):
        trace = calculix_like_trace(total_ms=5.0)
        assert trace.duration_ns == pytest.approx(ms_to_ns(5.0), rel=1e-6)
        used = {p.iclass for p in trace}
        assert IClass.HEAVY_256 in used and IClass.SCALAR_64 in used

    def test_calculix_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            calculix_like_trace(avx_fraction=1.5)

    def test_calculix_deterministic_per_seed(self):
        a = calculix_like_trace(total_ms=2.0, seed=7)
        b = calculix_like_trace(total_ms=2.0, seed=7)
        assert [(p.iclass, p.duration_ns) for p in a] == [
            (p.iclass, p.duration_ns) for p in b]

    def test_sevenzip_uses_avx2_but_never_avx512(self):
        trace = sevenzip_like_trace(total_ms=20.0)
        widths = {p.iclass.width_bits for p in trace}
        assert 512 not in widths
        assert 256 in widths

    def test_sevenzip_mostly_scalar(self):
        trace = sevenzip_like_trace(total_ms=20.0)
        scalar = sum(p.duration_ns for p in trace if p.iclass == IClass.SCALAR_64)
        assert scalar / trace.duration_ns > 0.8

    def test_power_virus_is_single_heavy_phase(self):
        trace = power_virus(duration_ms=1.0, width_bits=512)
        assert len(trace) == 1
        assert trace.phases[0].iclass == IClass.HEAVY_512

    def test_power_virus_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            power_virus(width_bits=64)

    def test_random_phi_schedule_rate_zero_is_pure_scalar(self):
        trace = random_phi_schedule(total_ms=1.0, events_per_second=0.0)
        assert all(p.iclass == IClass.SCALAR_64 for p in trace)

    def test_random_phi_schedule_has_bursts_at_high_rate(self):
        trace = random_phi_schedule(total_ms=10.0, events_per_second=5000.0)
        bursts = [p for p in trace if p.iclass.is_phi]
        assert len(bursts) > 10

    def test_random_phi_schedule_rejects_negative_rate(self):
        with pytest.raises(ConfigError):
            random_phi_schedule(total_ms=1.0, events_per_second=-1.0)

    def test_random_phi_burst_levels_come_from_requested_classes(self):
        classes = (IClass.HEAVY_128, IClass.HEAVY_512)
        trace = random_phi_schedule(total_ms=10.0, events_per_second=2000.0,
                                    classes=classes)
        burst_classes = {p.iclass for p in trace if p.iclass.is_phi}
        assert burst_classes <= set(classes)


class TestWorkloadZoo:
    def test_browser_is_mostly_scalar_with_light_simd(self):
        from repro.isa.workload import browser_like_trace

        trace = browser_like_trace(total_ms=50.0)
        classes = {p.iclass for p in trace}
        assert classes <= {IClass.SCALAR_64, IClass.LIGHT_128}
        scalar = sum(p.duration_ns for p in trace
                     if p.iclass == IClass.SCALAR_64)
        assert scalar / trace.duration_ns > 0.9

    def test_ml_inference_runs_heavy_512_bursts(self):
        from repro.isa.workload import ml_inference_like_trace

        trace = ml_inference_like_trace(total_ms=100.0)
        burst_classes = {p.iclass for p in trace if p.iclass.is_phi}
        assert burst_classes == {IClass.HEAVY_512}
        heavy = sum(p.duration_ns for p in trace if p.iclass.is_phi)
        assert 0.3 < heavy / trace.duration_ns < 0.7

    def test_ml_inference_width_fallback(self):
        from repro.isa.workload import ml_inference_like_trace

        trace = ml_inference_like_trace(total_ms=50.0, width_bits=256)
        burst_classes = {p.iclass for p in trace if p.iclass.is_phi}
        assert burst_classes == {IClass.HEAVY_256}

    def test_ml_inference_validates_period(self):
        from repro.isa.workload import ml_inference_like_trace

        with pytest.raises(ConfigError):
            ml_inference_like_trace(period_ms=5.0, burst_ms=6.0)

    def test_video_codec_clocks_at_frame_rate(self):
        from repro.isa.workload import video_codec_like_trace

        trace = video_codec_like_trace(total_ms=500.0, fps=30.0)
        encodes = [p for p in trace if p.iclass == IClass.HEAVY_256]
        # ~15 frames in 500 ms at 30 fps.
        assert 12 <= len(encodes) <= 18

    def test_video_codec_validates_share(self):
        from repro.isa.workload import video_codec_like_trace

        with pytest.raises(ConfigError):
            video_codec_like_trace(encode_share=1.5)

    def test_zoo_traces_fill_requested_duration(self):
        from repro.isa.workload import (
            browser_like_trace,
            ml_inference_like_trace,
            video_codec_like_trace,
        )
        from repro.units import ms_to_ns

        for factory in (browser_like_trace, ml_inference_like_trace,
                        video_codec_like_trace):
            trace = factory(total_ms=40.0)
            assert trace.duration_ns == pytest.approx(ms_to_ns(40.0),
                                                      rel=1e-6)
