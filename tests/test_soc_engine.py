"""Discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.soc import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(20.0, lambda: order.append("b"))
        engine.schedule(10.0, lambda: order.append("a"))
        engine.schedule(30.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = Engine()
        order = []
        for tag in "abc":
            engine.schedule(10.0, order.append, tag)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(42.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42.0]

    def test_schedule_with_args(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda a, b: seen.append(a + b), 2, 3)
        engine.run()
        assert seen == [5]

    def test_schedule_in_past_rejected(self):
        engine = Engine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(15.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [15.0]

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_nested_scheduling(self):
        engine = Engine()
        order = []

        def outer():
            order.append("outer")
            engine.schedule(5.0, lambda: order.append("inner"))

        engine.schedule(10.0, outer)
        engine.run()
        assert order == ["outer", "inner"]
        assert engine.now == 15.0


class TestCancel:
    def test_cancelled_event_does_not_run(self):
        engine = Engine()
        seen = []
        handle = engine.schedule(10.0, lambda: seen.append(1))
        handle.cancel()
        engine.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()

    def test_peek_skips_cancelled(self):
        engine = Engine()
        first = engine.schedule(10.0, lambda: None)
        engine.schedule(20.0, lambda: None)
        first.cancel()
        assert engine.peek_time() == 20.0


class TestCompaction:
    def test_mass_cancel_compacts_heap(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(200)]
        for i, handle in enumerate(handles):
            if i % 4 != 0:
                handle.cancel()
        # 150 of 200 entries cancelled: the heap must have been rebuilt
        # rather than left to carry the dead entries until pop time.
        assert len(engine._heap) < 100

    def test_survivors_fire_in_order_after_compaction(self):
        engine = Engine()
        seen = []
        handles = []
        for i in range(200):
            handles.append(engine.schedule(float(i + 1), seen.append, i))
        for i, handle in enumerate(handles):
            if i % 4 != 0:
                handle.cancel()
        engine.run()
        assert seen == [i for i in range(200) if i % 4 == 0]
        assert engine.events_run == 50

    def test_cancel_after_fire_is_harmless(self):
        engine = Engine()
        seen = []
        handle = engine.schedule(1.0, seen.append, "x")
        engine.run()
        handle.cancel()
        handle.cancel()
        assert seen == ["x"]
        engine.schedule(1.0, seen.append, "y")
        engine.run()
        assert seen == ["x", "y"]

    def test_small_heaps_skip_compaction(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the compaction threshold the heap is left to drain lazily.
        assert len(engine._heap) == 10
        engine.run()
        assert engine.events_run == 0


class TestRunUntil:
    def test_run_until_stops_at_horizon(self):
        engine = Engine()
        seen = []
        engine.schedule(10.0, lambda: seen.append("early"))
        engine.schedule(100.0, lambda: seen.append("late"))
        engine.run_until(50.0)
        assert seen == ["early"]
        assert engine.now == 50.0

    def test_run_until_includes_boundary(self):
        engine = Engine()
        seen = []
        engine.schedule(50.0, lambda: seen.append("x"))
        engine.run_until(50.0)
        assert seen == ["x"]

    def test_run_until_backwards_rejected(self):
        engine = Engine()
        engine.run_until(100.0)
        with pytest.raises(SimulationError):
            engine.run_until(50.0)

    def test_clock_ends_at_horizon_even_if_queue_empty(self):
        engine = Engine()
        engine.run_until(123.0)
        assert engine.now == 123.0


class TestRunaway:
    def test_run_bounded_by_max_events(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_events_run_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_run == 5
