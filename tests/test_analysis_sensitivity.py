"""Sensitivity sweeps (beyond-paper design-space study)."""

import pytest

from repro.analysis.sensitivity import (
    summarize,
    sweep_load_line,
    sweep_reset_time,
    sweep_vr_slew,
    theoretical_reset_limited_bps,
)


class TestSlewSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_vr_slew(slews_mv_per_us=(0.625, 1.25, 5.0, 100.0))

    def test_separation_shrinks_with_slew(self, points):
        seps = [p.min_separation_tsc for p in points]
        assert all(b < a for a, b in zip(seps, seps[1:]))

    def test_mbvr_usable_ldo_not(self, points):
        by_param = {p.parameter: p for p in points}
        assert by_param[1.25].usable        # MBVR-class slew
        assert not by_param[100.0].usable   # LDO-class slew

    def test_separation_roughly_inverse_in_slew(self, points):
        by_param = {p.parameter: p for p in points}
        ratio = (by_param[0.625].min_separation_tsc
                 / by_param[1.25].min_separation_tsc)
        assert ratio == pytest.approx(2.0, rel=0.2)


class TestResetSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_reset_time(reset_times_us=(100.0, 650.0, 2600.0))

    def test_throughput_falls_with_reset_time(self, points):
        thr = [p.throughput_bps for p in points]
        assert all(b < a for a, b in zip(thr, thr[1:]))

    def test_separation_unaffected(self, points):
        seps = {p.min_separation_tsc for p in points}
        assert len(seps) == 1  # the level physics does not change

    def test_throughput_tracks_theory(self, points):
        for p in points:
            bound = theoretical_reset_limited_bps(p.parameter)
            assert 0.3 * bound <= p.throughput_bps <= bound * 1.05


class TestLoadLineSweep:
    def test_separation_scales_with_rll(self):
        points = sweep_load_line(r_ll_mohms=(0.9, 1.8, 3.6))
        seps = [p.min_separation_tsc for p in points]
        assert seps[0] < seps[1] < seps[2]

    def test_stiff_pdn_mitigates(self):
        points = sweep_load_line(r_ll_mohms=(0.45, 1.8))
        assert not points[0].usable
        assert points[1].usable


class TestSummarize:
    def test_columns_align(self):
        points = sweep_load_line(r_ll_mohms=(1.8,))
        table = summarize(points)
        assert table["parameter"] == [1.8]
        assert len(table["throughput_bps"]) == 1
