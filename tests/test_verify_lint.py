"""Lint rules on fixture snippets, waiver semantics, repo cleanliness."""

import textwrap

import pytest

from repro.errors import ConfigError
from repro.verify.lint import (
    Waiver,
    lint_paths,
    lint_source,
    parse_waivers,
)


def lint(source, path="repro/core/example.py"):
    """Lint a dedented snippet under a given virtual path."""
    return lint_source(textwrap.dedent(source), path)


def rules_of(findings):
    """The set of rule names among findings."""
    return {f.rule for f in findings}


class TestUnseededRng:
    def test_flags_unseeded_default_rng(self):
        findings = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert rules_of(findings) == {"unseeded-rng"}

    def test_accepts_seeded_default_rng(self):
        findings = lint("""
            import numpy as np
            rng = np.random.default_rng(1234)
            rng2 = np.random.default_rng(seed=(1, 2, 3))
        """)
        assert findings == []

    def test_flags_unseeded_random_random(self):
        findings = lint("""
            import random
            r = random.Random()
        """)
        assert rules_of(findings) == {"unseeded-rng"}


class TestGlobalRng:
    def test_flags_legacy_global_calls(self):
        findings = lint("""
            import numpy as np
            x = np.random.uniform(0, 1)
            np.random.seed(3)
        """)
        assert [f.rule for f in findings] == ["global-rng", "global-rng"]

    def test_accepts_generator_constructors(self):
        findings = lint("""
            import numpy as np
            rng = np.random.default_rng(7)
            ss = np.random.SeedSequence(9)
        """)
        assert findings == []


class TestWallClock:
    def test_flags_time_calls_in_core(self):
        source = """
            import time
            def now():
                return time.time()
        """
        findings = lint(source, path="repro/pdn/example.py")
        assert rules_of(findings) == {"wall-clock"}

    def test_flags_from_import_usage(self):
        source = """
            from time import perf_counter
            def now():
                return perf_counter()
        """
        findings = lint(source, path="repro/soc/example.py")
        assert rules_of(findings) == {"wall-clock"}

    def test_flags_datetime_now(self):
        source = """
            import datetime
            stamp = datetime.datetime.now()
        """
        findings = lint(source, path="repro/pmu/example.py")
        assert rules_of(findings) == {"wall-clock"}

    def test_allowed_outside_core(self):
        source = """
            import time
            def now():
                return time.time()
        """
        assert lint(source, path="repro/runner/example.py") == []
        assert lint(source, path="repro/obs/example.py") == []


class TestFloatEq:
    def test_flags_physical_vs_float_literal(self):
        findings = lint("""
            def check(vcc_mv):
                return vcc_mv == 0.0
        """)
        assert rules_of(findings) == {"float-eq"}

    def test_flags_two_physical_sides(self):
        findings = lint("""
            def check(t_start_ns, t_end_ns):
                return t_start_ns != t_end_ns
        """)
        assert rules_of(findings) == {"float-eq"}

    def test_accepts_epsilon_comparison(self):
        findings = lint("""
            def check(vcc_mv):
                return abs(vcc_mv) < 1e-12
        """)
        assert findings == []

    def test_accepts_non_physical_equality(self):
        findings = lint("""
            def check(p, count):
                return p == 0.0 or count == 3
        """)
        assert findings == []

    def test_accepts_integer_literal_on_counter(self):
        findings = lint("""
            def check(retries):
                return retries == 0
        """)
        assert findings == []


class TestMutableDefault:
    def test_flags_list_and_dict_defaults(self):
        findings = lint("""
            def f(items=[], table={}):
                return items, table
        """)
        assert [f.rule for f in findings] == ["mutable-default"] * 2

    def test_flags_constructor_defaults(self):
        findings = lint("""
            def f(items=list()):
                return items
        """)
        assert rules_of(findings) == {"mutable-default"}

    def test_accepts_none_and_tuples(self):
        findings = lint("""
            def f(items=None, pair=(1, 2), name="x"):
                return items, pair, name
        """)
        assert findings == []


class TestWaivers:
    def test_parse_and_match(self):
        waivers = parse_waivers(
            "# comment\n"
            "float-eq repro/measure/sampler.py t == times[-1]\n"
            "wall-clock repro/pdn/*.py\n")
        assert len(waivers) == 2
        assert waivers[0].substring == "t == times[-1]"
        assert waivers[1].substring is None

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError, match="unknown rule"):
            parse_waivers("not-a-rule repro/x.py\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigError, match="expected"):
            parse_waivers("float-eq\n")

    def test_waiver_requires_matching_substring(self):
        findings = lint("""
            def check(vcc_mv):
                return vcc_mv == 0.0
        """)
        hit = Waiver("float-eq", "repro/core/example.py", "vcc_mv == 0.0")
        miss = Waiver("float-eq", "repro/core/example.py", "unrelated text")
        assert hit.matches(findings[0])
        assert not miss.matches(findings[0])

    def test_waiver_requires_matching_rule_and_path(self):
        findings = lint("""
            def check(vcc_mv):
                return vcc_mv == 0.0
        """)
        assert not Waiver("wall-clock", "repro/core/example.py").matches(
            findings[0])
        assert not Waiver("float-eq", "repro/pdn/other.py").matches(
            findings[0])


class TestRepoLint:
    def test_repo_is_clean_under_committed_waivers(self):
        """src/repro has no unwaived violations and no stale waivers."""
        report = lint_paths()
        assert report.ok, report.render()
        assert report.unused_waivers == [], report.render()

    def test_repo_waivers_are_exercised(self):
        """Every committed waiver still covers a real finding."""
        report = lint_paths()
        assert len(report.waived) >= 3

    def test_syntax_error_raises_config_error(self):
        with pytest.raises(ConfigError, match="cannot parse"):
            lint_source("def broken(:\n", "repro/x.py")
