"""Execution-port model consistency."""

import pytest

from repro.errors import ConfigError
from repro.isa import IClass
from repro.microarch.ports import (
    CLASS_MIXES,
    PORT_COUNTS,
    PortGroup,
    UopMix,
    bottleneck,
    sustained_ipc,
)


class TestConsistency:
    @pytest.mark.parametrize("iclass", list(IClass))
    def test_port_model_matches_timing_model(self, iclass):
        # The load-bearing check: the IPC the event simulator uses for
        # every class is exactly the port-model bottleneck.
        assert sustained_ipc(iclass) == pytest.approx(iclass.ipc)

    def test_every_class_has_a_mix(self):
        assert set(CLASS_MIXES) == set(IClass)

    def test_scalar_bound_by_alu(self):
        assert bottleneck(IClass.SCALAR_64) == PortGroup.SCALAR_ALU

    def test_heavy_classes_bound_by_fma_units(self):
        assert bottleneck(IClass.HEAVY_128) == PortGroup.FP_MUL
        assert bottleneck(IClass.HEAVY_256) == PortGroup.FP_MUL
        assert bottleneck(IClass.HEAVY_512) == PortGroup.FP_MUL_512

    def test_light_vector_bound_by_vector_alus(self):
        assert bottleneck(IClass.LIGHT_256) == PortGroup.VECTOR_ALU

    def test_512_fma_is_the_fused_pair(self):
        # One fused 512-bit unit = the two 256-bit FMA ports combined.
        assert PORT_COUNTS[PortGroup.FP_MUL_512] == 1
        assert PORT_COUNTS[PortGroup.FP_MUL] == 2

    def test_no_class_exceeds_delivery_width(self):
        for iclass in IClass:
            assert sustained_ipc(iclass) <= 4.0


class TestUopMix:
    def test_total_uops(self):
        mix = UopMix({PortGroup.SCALAR_ALU: 1.5, PortGroup.BRANCH: 0.5})
        assert mix.total_uops == pytest.approx(2.0)

    def test_negative_uops_rejected(self):
        with pytest.raises(ConfigError):
            UopMix({PortGroup.SCALAR_ALU: -1.0})

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            UopMix({PortGroup.SCALAR_ALU: 0.0})
