"""Baseline covert channels and their paper-documented limitations."""

import pytest

from repro import System
from repro.core.baselines import (
    DFSCovert,
    NetSpectreGadget,
    PowerT,
    TurboCC,
)
from repro.core.baselines.powert import PowerBudgetController
from repro.errors import CalibrationError, ConfigError, ProtocolError
from repro.soc.config import cannon_lake_i3_8121u, coffee_lake_i7_9700k

BITS = [1, 0, 1, 1, 0, 0, 1, 0]


class TestNetSpectre:
    def test_transfers_bits(self):
        gadget = NetSpectreGadget(System(cannon_lake_i3_8121u()))
        report = gadget.transfer_bits(BITS)
        assert report.bits_received == BITS
        assert report.ber == 0.0

    def test_one_bit_per_transaction_half_of_ichannels(self):
        # The Figure 12(a) claim: IccThreadCovert is 2x NetSpectre,
        # purely because NetSpectre wastes the multi-level signal.
        from repro.core import IccThreadCovert

        gadget = NetSpectreGadget(System(cannon_lake_i3_8121u()))
        gadget_report = gadget.transfer_bits(BITS)
        channel = IccThreadCovert(System(cannon_lake_i3_8121u()))
        channel_report = channel.transfer(b"\xb2")
        ratio = channel_report.throughput_bps / gadget_report.throughput_bps
        assert ratio == pytest.approx(2.0, rel=0.25)

    def test_rejects_non_bits(self):
        gadget = NetSpectreGadget(System(cannon_lake_i3_8121u()))
        with pytest.raises(ProtocolError):
            gadget.transfer_bits([2])

    def test_rejects_empty(self):
        gadget = NetSpectreGadget(System(cannon_lake_i3_8121u()))
        with pytest.raises(ProtocolError):
            gadget.transfer_bits([])


class TestTurboCC:
    def test_transfers_bits_at_turbo(self):
        system = System(cannon_lake_i3_8121u(), governor_freq_ghz=3.1)
        turbo = TurboCC(system)
        report = turbo.transfer_bits(BITS)
        assert report.bits_received == BITS

    def test_silent_below_turbo(self):
        # The paper's critique: TurboCC only works at turbo frequencies.
        # At 2.2 GHz the license never binds, so both bit values look
        # identical and calibration collapses.
        system = System(cannon_lake_i3_8121u(), governor_freq_ghz=2.2)
        turbo = TurboCC(system)
        with pytest.raises(CalibrationError):
            turbo.calibrate()

    def test_orders_of_magnitude_slower_than_ichannels(self):
        system = System(cannon_lake_i3_8121u(), governor_freq_ghz=3.1)
        report = TurboCC(system).transfer_bits(BITS)
        assert report.throughput_bps < 100.0

    def test_needs_two_cores(self):
        single = cannon_lake_i3_8121u().with_overrides(n_cores=1)
        with pytest.raises(ConfigError):
            TurboCC(System(single))

    def test_same_core_rejected(self):
        with pytest.raises(ConfigError):
            TurboCC(System(cannon_lake_i3_8121u()), sender_core=0,
                    receiver_core=0)


class TestDFSCovert:
    def test_transfers_bits(self):
        system = System(cannon_lake_i3_8121u(), governor_freq_ghz=3.2)
        dfs = DFSCovert(system)
        report = dfs.transfer_bits(BITS)
        assert report.bits_received == BITS

    def test_slowest_of_the_baselines(self):
        system = System(cannon_lake_i3_8121u(), governor_freq_ghz=3.2)
        report = DFSCovert(system).transfer_bits(BITS)
        assert report.throughput_bps < 25.0

    def test_works_on_coffee_lake(self):
        system = System(coffee_lake_i7_9700k(), governor_freq_ghz=4.9)
        report = DFSCovert(system).transfer_bits([1, 0, 1])
        assert report.bits_received == [1, 0, 1]


class TestPowerT:
    def test_transfers_bits(self):
        system = System(cannon_lake_i3_8121u(), governor_freq_ghz=2.2)
        powert = PowerT(system)
        report = powert.transfer_bits(BITS)
        assert report.bits_received == BITS

    def test_throughput_near_reported_122bps(self):
        system = System(cannon_lake_i3_8121u(), governor_freq_ghz=2.2)
        report = PowerT(system).transfer_bits(BITS)
        assert 60.0 < report.throughput_bps < 130.0

    def test_controller_drops_frequency_over_budget(self):
        system = System(cannon_lake_i3_8121u(), governor_freq_ghz=2.2)
        controller = PowerBudgetController(system, pl1_watts=7.0)
        from repro.isa import IClass, Loop
        from repro.units import ms_to_ns, us_to_ns

        def burner():
            yield system.until(us_to_ns(10.0))
            for _ in range(40):
                yield system.execute(0, Loop(IClass.HEAVY_256, 800))

        system.spawn(controller.process(ms_to_ns(6.0)))
        system.spawn(burner())
        system.run_until(ms_to_ns(6.0))
        freqs = [v for _, v in system.freq_trace.breakpoints()]
        assert min(freqs) < 2.2

    def test_controller_validates_config(self):
        system = System(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            PowerBudgetController(system, pl1_watts=0.0)
        with pytest.raises(ConfigError):
            PowerBudgetController(system, pl1_watts=5.0, ewma_alpha=0.0)


class TestReport:
    def test_ber_counts_differences(self):
        from repro.core.baselines.base import BaselineReport

        report = BaselineReport("x", [1, 0, 1, 1], [1, 1, 1, 0],
                                start_ns=0.0, end_ns=1e9)
        assert report.bit_errors == 2
        assert report.ber == 0.5
        assert report.throughput_bps == pytest.approx(4.0)
