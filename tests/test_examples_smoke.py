"""Every example runs standalone: ``python examples/<name>.py``.

Regression test for the documented invocation in README.md.  The
examples must work without the package installed and without
``PYTHONPATH`` (they carry ``import _pathfix`` for that), so each runs
in a clean subprocess from the repository root with ``PYTHONPATH``
stripped.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR)
    if name.endswith(".py") and not name.startswith("_")
)


def test_examples_discovered():
    """The listing finds the documented examples (guards the glob)."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_standalone(name):
    """``python examples/<name>.py`` exits 0 and prints something."""
    env = dict(os.environ)
    env.pop("PYTHONPATH", None)
    result = subprocess.run(
        [sys.executable, os.path.join("examples", name)],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}")
    assert result.stdout.strip(), f"{name} printed nothing"
