"""Broadcast channel: one sender, SMT + cross-core receivers."""

import pytest

from repro import System, SystemOptions
from repro.core import ChannelLocation, IccBroadcast
from repro.core.channel import ChannelConfig
from repro.errors import CalibrationError, ConfigError, ProtocolError
from repro.soc.config import (
    cannon_lake_i3_8121u,
    coffee_lake_i7_9700k,
    haswell_i7_4770k,
)

PAYLOAD = b"\x4d\xb2\x0f"


class TestBroadcast:
    def test_both_receivers_decode_the_same_payload(self):
        broadcast = IccBroadcast(System(cannon_lake_i3_8121u()))
        report = broadcast.transfer(PAYLOAD)
        assert report.received[ChannelLocation.ACROSS_SMT] == PAYLOAD
        assert report.received[ChannelLocation.ACROSS_CORES] == PAYLOAD
        assert report.ber(ChannelLocation.ACROSS_SMT) == 0.0
        assert report.ber(ChannelLocation.ACROSS_CORES) == 0.0

    def test_single_transaction_feeds_both_receivers(self):
        # The point of broadcasting: both receivers decode from the SAME
        # sender transactions, so wall time matches a single transfer.
        broadcast = IccBroadcast(System(cannon_lake_i3_8121u()))
        report = broadcast.transfer(PAYLOAD)
        slots = len(report.symbols_sent)
        # Leading quiet slot + payload slots + trailing drain slot.
        assert report.end_ns - report.start_ns <= (slots + 2) * broadcast.slot_ns

    def test_works_on_haswell(self):
        broadcast = IccBroadcast(System(haswell_i7_4770k()))
        report = broadcast.transfer(b"\x99")
        assert report.received[ChannelLocation.ACROSS_SMT] == b"\x99"
        assert report.received[ChannelLocation.ACROSS_CORES] == b"\x99"

    def test_needs_smt(self):
        with pytest.raises(ConfigError):
            IccBroadcast(System(coffee_lake_i7_9700k()))

    def test_needs_distinct_cores(self):
        with pytest.raises(ConfigError):
            IccBroadcast(System(cannon_lake_i3_8121u()), sender_core=0,
                         cross_core=0)

    def test_empty_payload_rejected(self):
        broadcast = IccBroadcast(System(cannon_lake_i3_8121u()))
        with pytest.raises(ProtocolError):
            broadcast.transfer(b"")

    def test_calibrators_fitted_per_receiver(self):
        broadcast = IccBroadcast(System(cannon_lake_i3_8121u()))
        calibrators = broadcast.calibrate()
        assert set(calibrators) == set(IccBroadcast.LOCATIONS)
        # SMT and cross-core receivers see different cluster scales.
        smt_centers = sorted(s.center for s in
                             calibrators[ChannelLocation.ACROSS_SMT].stats.values())
        cross_centers = sorted(s.center for s in
                               calibrators[ChannelLocation.ACROSS_CORES].stats.values())
        assert smt_centers != cross_centers

    def test_secure_mode_kills_the_broadcast(self):
        system = System(cannon_lake_i3_8121u(),
                        options=SystemOptions(secure_mode=True))
        broadcast = IccBroadcast(system, ChannelConfig(min_level_gap_tsc=500.0))
        with pytest.raises(CalibrationError):
            broadcast.calibrate()
