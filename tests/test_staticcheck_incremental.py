"""The incremental parallel engine: cache, invalidation, --changed, CLI.

The cache-correctness property under test everywhere: a cached run must
produce byte-identical reports to a cold run, under every invalidation
trigger (source edit, pass-version bump, cross-module project change).
"""

import json
import subprocess
import textwrap

import pytest

from repro.staticcheck import (
    AnalysisCache,
    analyze_paths,
    module_facts,
    pass_version,
    source_hash,
)
from repro.staticcheck.__main__ import main
from repro.staticcheck.context import ModuleContext, ProjectContext
from repro.staticcheck.model import Finding
from repro.staticcheck.registry import all_passes, expand_selection

BAD_MODULE = textwrap.dedent("""
    \"\"\"Fixture with dimensional and determinism findings.\"\"\"
    import heapq


    def schedule(heap, time_ns: float, handle: object, idle_us: float) -> float:
        \"\"\"Mixes units and pushes an untiebroken heap entry.\"\"\"
        heapq.heappush(heap, (time_ns, handle))
        return time_ns + idle_us
""")

CLEAN_MODULE = '"""Clean module."""\n\n\nVALUE = 3\n'


def make_tree(tmp_path, n_clean=3):
    """A small analysable tree with one bad module."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "bad_mod.py").write_text(BAD_MODULE, encoding="utf-8")
    for index in range(n_clean):
        (root / f"clean_{index}.py").write_text(CLEAN_MODULE,
                                                encoding="utf-8")
    return root


def run(root, cache_dir, **kwargs):
    """One cached analysis run over ``root``."""
    return analyze_paths(paths=[root], waivers=[], cache_dir=cache_dir,
                         **kwargs)


class TestFindingsCache:
    def test_warm_run_is_all_hits_and_identical(self, tmp_path):
        root = make_tree(tmp_path)
        cache = tmp_path / "cache"
        cold = run(root, cache)
        assert cold.cache is not None
        assert cold.cache.hits == 0 and cold.cache.misses > 0
        assert cold.cache.stored == cold.cache.misses
        warm = run(root, cache)
        assert warm.cache.misses == 0 and warm.cache.stored == 0
        assert warm.cache.hits == cold.cache.misses
        assert warm.findings == cold.findings

    def test_body_edit_invalidates_only_the_touched_module(self, tmp_path):
        root = make_tree(tmp_path, n_clean=3)
        cache = tmp_path / "cache"
        run(root, cache)
        # A body-only edit: same signatures, so the project digest is
        # unchanged and other modules stay cached.
        (root / "clean_0.py").write_text(
            '"""Clean module."""\n\n\nVALUE = 4\n', encoding="utf-8")
        second = run(root, cache)
        n_passes = len(all_passes())
        assert second.cache.misses == n_passes
        assert second.cache.hits == 3 * n_passes

    def test_signature_change_invalidates_every_module(self, tmp_path):
        root = make_tree(tmp_path, n_clean=2)
        cache = tmp_path / "cache"
        run(root, cache)
        # A new top-level def changes the cross-module signature table,
        # so every module's cached findings become unsound.
        (root / "clean_0.py").write_text(
            CLEAN_MODULE + '\n\ndef fresh_helper(x: int) -> int:\n'
                           '    """New signature."""\n    return x\n',
            encoding="utf-8")
        second = run(root, cache)
        assert second.cache.hits == 0
        assert second.cache.misses == 3 * len(all_passes())

    def test_pass_version_invalidates_that_pass_only(self, tmp_path,
                                                     monkeypatch):
        root = make_tree(tmp_path, n_clean=1)
        cache = tmp_path / "cache"
        run(root, cache)
        target = next(p for p in all_passes() if p.name == "determinism")
        assert pass_version(target) == 1
        monkeypatch.setattr(type(target), "version", 99, raising=False)
        second = run(root, cache)
        assert second.cache.misses == 2  # two modules, one bumped pass
        assert second.cache.hits == 2 * (len(all_passes()) - 1)

    def test_findings_survive_the_round_trip_exactly(self, tmp_path):
        root = make_tree(tmp_path)
        cold = run(root, tmp_path / "cache")
        warm = run(root, tmp_path / "cache")
        for before, after in zip(cold.findings, warm.findings):
            assert isinstance(after, Finding)
            assert before == after


class TestCacheStore:
    def test_corrupt_entry_is_unlinked_and_misses(self, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        key = cache.findings_key("m.py", "hash", "determinism", 1, "digest")
        cache.put_findings(key, [])
        entry = cache._entry_path(key)
        entry.write_text("{not json", encoding="utf-8")
        assert cache.get_findings(key) is None
        assert not entry.exists()

    def test_facts_round_trip(self, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        module = ModuleContext.from_source(BAD_MODULE, "pkg/bad_mod.py")
        facts = module_facts(module)
        key = cache.facts_key("pkg/bad_mod.py", source_hash(BAD_MODULE), 1)
        assert cache.get_facts(key) is None
        cache.put_facts(key, facts)
        assert cache.get_facts(key) == facts

    def test_project_digest_is_deterministic(self):
        modules = [ModuleContext.from_source(BAD_MODULE, "pkg/bad_mod.py"),
                   ModuleContext.from_source(CLEAN_MODULE, "pkg/clean.py")]
        first = ProjectContext.build(modules).digest()
        second = ProjectContext.build(modules).digest()
        assert first == second
        shifted = [ModuleContext.from_source(
            BAD_MODULE.replace("idle_us", "idle_ms"), "pkg/bad_mod.py")]
        assert ProjectContext.build(shifted).digest() != first


class TestParallelExecution:
    def test_pooled_run_matches_inline_run(self, tmp_path):
        root = make_tree(tmp_path, n_clean=4)
        inline = analyze_paths(paths=[root], waivers=[], jobs=1)
        pooled = analyze_paths(paths=[root], waivers=[], jobs=3)
        assert pooled.findings == inline.findings
        assert pooled.files_analyzed == inline.files_analyzed

    def test_pooled_run_with_cache(self, tmp_path):
        root = make_tree(tmp_path, n_clean=4)
        cache = tmp_path / "cache"
        cold = run(root, cache, jobs=3)
        warm = run(root, cache, jobs=3)
        assert warm.cache.misses == 0
        assert warm.findings == cold.findings


class TestChangedMode:
    def _git(self, cwd, *args):
        subprocess.run(["git", *args], cwd=cwd, check=True,
                       capture_output=True)

    @pytest.fixture
    def git_tree(self, tmp_path):
        root = make_tree(tmp_path, n_clean=2)
        (root / "dependent.py").write_text(
            '"""Uses the bad module."""\n\nfrom pkg.bad_mod import '
            'schedule\n\n\nHOOK = schedule\n', encoding="utf-8")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
                  "add", ".")
        self._git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
                  "commit", "-qm", "seed")
        return root

    def test_clean_checkout_analyses_nothing(self, git_tree):
        report = analyze_paths(paths=[git_tree], waivers=[],
                               changed_only=True)
        assert report.changed_only
        assert report.files_analyzed == 0
        assert report.findings == []

    def test_touched_module_and_dependents_selected(self, git_tree):
        (git_tree / "bad_mod.py").write_text(
            BAD_MODULE + "\n\nEXTRA = 1\n", encoding="utf-8")
        report = analyze_paths(paths=[git_tree], waivers=[],
                               changed_only=True)
        # bad_mod itself plus dependent.py (mentions `schedule`); the
        # clean_* modules share no identifiers with it.
        assert report.files_analyzed == 2
        assert {f.path for f in report.findings} == {"pkg/bad_mod.py"}

    def test_outside_git_falls_back_to_everything(self, tmp_path):
        root = make_tree(tmp_path)
        probe = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                               cwd=root, capture_output=True, text=True)
        if probe.returncode == 0:
            pytest.skip("tmp_path is inside a git work tree")
        report = analyze_paths(paths=[root], waivers=[], changed_only=True)
        assert report.files_analyzed == 4


class TestSelectionExpansion:
    def test_pass_name_expands_to_its_rules(self):
        rules = expand_selection(["asyncsafety"])
        assert "async-blocking-call" in rules
        assert "async-unawaited" in rules

    def test_mixed_selection_dedupes(self):
        rules = expand_selection(["asyncsafety", "async-unawaited"])
        assert rules.count("async-unawaited") == 1

    def test_unknown_name_lists_both_namespaces(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="valid passes"):
            expand_selection(["no-such-thing"])


class TestCliIncrementalFlags:
    def test_cache_dir_and_stats_json(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        stats_file = tmp_path / "stats.json"
        argv = [str(root), "--no-waivers", "--cache-dir",
                str(tmp_path / "cache"), "--stats-json", str(stats_file)]
        assert main(argv) == 1  # bad_mod findings
        capsys.readouterr()
        cold = json.loads(stats_file.read_text(encoding="utf-8"))
        assert cold["cache"]["hits"] == 0 and cold["cache"]["misses"] > 0
        assert main(argv) == 1
        capsys.readouterr()
        warm = json.loads(stats_file.read_text(encoding="utf-8"))
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hits"] == cold["cache"]["misses"]
        assert {t["pass"] for t in warm["timings"]} \
            == {p.name for p in all_passes()}

    def test_jobs_flag(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        assert main([str(root), "--no-waivers", "--jobs", "2"]) == 1
        assert "[unit-mix]" in capsys.readouterr().out

    def test_stale_baseline_message_names_rule_path_and_command(
            self, tmp_path, capsys):
        src = tmp_path / "bad_mod.py"
        src.write_text(BAD_MODULE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main([str(src), "--no-waivers",
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        src.write_text(CLEAN_MODULE, encoding="utf-8")
        assert main([str(src), "--no-waivers",
                     "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "unit-mix" in out and "bad_mod.py" in out
        assert f"--write-baseline {baseline}" in out

    def test_json_report_carries_timings_and_cache(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        assert main([str(root), "--no-waivers", "--format", "json",
                     "--cache-dir", str(tmp_path / "cache")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["misses"] > 0
        assert {t["pass"] for t in payload["timings"]} \
            == {p.name for p in all_passes()}
        assert payload["changed_only"] is False
