"""Experiment runners: each figure's shape claims, at reduced scale."""

import numpy as np
import pytest

from repro.analysis import experiments as ex
from repro.isa import IClass


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig6_voltage_steps(phase_scale_us=200.0)

    def test_per_core_steps_in_measured_range(self, result):
        # Paper: ~8 mV then ~9 mV (core 1 then core 0).
        assert 5.0 < result.step_core1_mv < 12.0
        assert 5.0 < result.step_core0_mv < 12.0

    def test_voltage_returns_to_baseline(self, result):
        assert abs(result.return_mv) < 1.0

    def test_frequency_flat_at_2ghz(self, result):
        # Fifth observation of Fig. 6: frequency unaffected at 2 GHz.
        assert result.freq_ghz_start == pytest.approx(2.0)
        assert result.freq_ghz_end == pytest.approx(2.0)

    def test_baseline_near_788mv(self, result):
        assert result.vcc_start_mv == pytest.approx(788.0, abs=8.0)

    def test_calculix_voltage_varies_with_phases(self, result):
        lo, hi = result.calculix_vcc.minmax()
        assert (hi - lo) * 1000 > 5.0  # phases move the rail
        assert result.calculix_phases > 2


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig7_limit_protection(phase_us=300.0)

    def _point(self, result, system, freq, workload):
        for p in result.points:
            if (p.system == system and p.freq_req_ghz == freq
                    and p.workload == workload):
                return p
        raise AssertionError("missing operating point")

    def test_desktop_49_avx2_vcc_violation(self, result):
        p = self._point(result, "Coffee Lake", 4.9, "AVX2")
        assert p.vcc_violation and not p.icc_violation
        assert p.freq_realized_ghz < 4.9

    def test_desktop_48_avx2_fits(self, result):
        p = self._point(result, "Coffee Lake", 4.8, "AVX2")
        assert not p.vcc_violation and not p.icc_violation

    def test_mobile_31_avx2_icc_violation(self, result):
        p = self._point(result, "Cannon Lake", 3.1, "AVX2")
        assert p.icc_violation and not p.vcc_violation
        assert p.freq_realized_ghz < 3.1

    def test_mobile_22_avx2_fits(self, result):
        p = self._point(result, "Cannon Lake", 2.2, "AVX2")
        assert not p.icc_violation
        assert p.freq_realized_ghz == pytest.approx(2.2)

    def test_nonavx_never_violates(self, result):
        for p in result.points:
            if p.workload == "Non-AVX":
                assert not p.vcc_violation and not p.icc_violation

    def test_timeline_frequency_steps_down_through_phases(self, result):
        freqs = [f for _, f in result.timeline_freq]
        assert min(freqs) < 2.0  # AVX512 phase forces a deep drop
        assert freqs[0] == pytest.approx(3.1)

    def test_temperature_never_near_tjmax(self, result):
        # Key Conclusion 2: the drops are not thermal.
        assert result.temp_max_c < result.tj_max_c - 30.0


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig8_throttling(trials=8)

    def test_mbvr_parts_in_12_15us_band(self, result):
        for part in ("Coffee Lake", "Cannon Lake"):
            median = float(np.median(result.tp_us_by_part[part]))
            assert 10.0 <= median <= 16.0, part

    def test_haswell_shorter_than_mbvr_parts(self, result):
        hsw = float(np.median(result.tp_us_by_part["Haswell"]))
        cfl = float(np.median(result.tp_us_by_part["Coffee Lake"]))
        assert hsw < cfl
        assert 5.0 <= hsw <= 10.0

    def test_coffee_lake_first_iteration_pays_wake(self, result):
        deltas = result.iteration_deltas_ns["Coffee Lake"]
        assert 8.0 <= deltas[0] <= 15.0  # the paper's 8-15 ns
        assert deltas[1] == pytest.approx(0.0, abs=1.0)

    def test_haswell_iterations_flat(self, result):
        deltas = result.iteration_deltas_ns["Haswell"]
        assert all(abs(d) < 1.0 for d in deltas)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig9_timeline()

    def test_didt_case_ramps_voltage_without_freq_change(self, result):
        lo, hi = result.didt_vcc.minmax()
        assert hi > lo  # guardband ramp visible

    def test_gate_wake_is_nanoseconds_tp_is_microseconds(self, result):
        # Key Conclusion 3 in one assertion.
        assert result.didt_wake_ns <= 20.0
        assert result.didt_tp_us > 5.0
        assert result.didt_wake_ns / (result.didt_tp_us * 1000) < 0.005

    def test_limit_case_drops_frequency(self, result):
        freqs = [f for _, f in result.limit_freq]
        assert min(freqs) < 3.1


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig10_multilevel(freqs=(1.0, 1.4), iterations=50)

    def test_tp_monotone_in_intensity(self, result):
        # Monotone up to VID-quantisation ties (the paper, too, observes
        # only ~5 distinct levels across the 7 classes) and the ~12 ns
        # power-gate wake offset.
        for freq in (1.0, 1.4):
            tps = [result.sweep[(c.label, freq, 1)] for c in sorted(IClass)]
            assert all(b >= a - 0.05 for a, b in zip(tps, tps[1:]))
            assert tps[-1] > tps[0]

    def test_tp_grows_with_frequency(self, result):
        for iclass in (IClass.HEAVY_256, IClass.HEAVY_512):
            assert (result.sweep[(iclass.label, 1.4, 1)]
                    >= result.sweep[(iclass.label, 1.0, 1)])

    def test_two_cores_longer_than_one(self, result):
        for iclass in (IClass.HEAVY_256, IClass.HEAVY_512):
            assert (result.sweep[(iclass.label, 1.0, 2)]
                    > result.sweep[(iclass.label, 1.0, 1)])

    def test_paper_anchor_256heavy_at_1ghz(self, result):
        # Paper: ~5 us on one core, ~9 us on two cores.
        one = result.sweep[("256b_Heavy", 1.0, 1)]
        two = result.sweep[("256b_Heavy", 1.0, 2)]
        assert 3.5 <= one <= 7.0
        assert 7.0 <= two <= 11.0

    def test_preceded_tp_decreases_with_preceding_intensity(self, result):
        tps = [result.preceded[c.label] for c in sorted(IClass)]
        assert all(b <= a + 0.05 for a, b in zip(tps, tps[1:]))
        assert tps[-1] < tps[0]

    def test_at_least_five_levels(self, result):
        # Figure 10(b): L1..L5.
        assert len(set(result.levels.values())) >= 5


class TestFig11:
    def test_throttled_three_quarters_unthrottled_near_zero(self):
        result = ex.fig11_idq_signature(iterations=60)
        assert np.mean(result.throttled) == pytest.approx(0.75, abs=0.03)
        assert np.mean(result.unthrottled) < 0.05


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig12_throughput()

    def test_all_channels_error_free(self, result):
        for name, ber in result.ber.items():
            assert ber == 0.0, name

    def test_icc_thread_twice_netspectre(self, result):
        assert result.ratio("IccThreadCovert", "NetSpectre") == pytest.approx(
            2.0, rel=0.3)

    def test_ratio_vs_turbocc_near_47x(self, result):
        assert result.ratio("IccSMTcovert", "TurboCC") == pytest.approx(
            47.0, rel=0.35)

    def test_ratio_vs_dfscovert_near_145x(self, result):
        assert result.ratio("IccSMTcovert", "DFScovert") == pytest.approx(
            145.0, rel=0.35)

    def test_ratio_vs_powert_above_24x(self, result):
        assert result.ratio("IccSMTcovert", "POWERT") >= 20.0

    def test_ichannels_throughput_kbps_scale(self, result):
        for name in ("IccThreadCovert", "IccSMTcovert", "IccCoresCovert"):
            assert result.throughput_bps[name] > 2000.0


class TestFig13:
    def test_four_levels_with_2k_cycle_gaps(self):
        result = ex.fig13_level_distribution(symbols_per_level=6)
        assert len(result.samples_by_symbol) == 4
        assert all(result.samples_by_symbol[s] for s in range(4))
        # Paper: adjacent ranges separated by > 2K cycles.
        assert result.min_gap_cycles > 2000.0
        assert len(result.thresholds) == 3


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig14_noise_sensitivity(
            payload=b"\x5a\x0f\xc3\x3c",
            event_rates=(500.0, 10000.0),
            phi_rates=(10.0, 10000.0),
            trials=2,
        )

    def test_ber_low_under_system_events(self, result):
        # Paper: BER low even in a highly noisy system (Fig. 14a).
        for rate, ber in result.ber_vs_event_rate.items():
            assert ber < 0.15, f"rate {rate}"

    def test_ber_rises_with_phi_rate(self, result):
        assert (result.ber_vs_phi_rate[10000.0]
                >= result.ber_vs_phi_rate[10.0])

    def test_sevenzip_ber_below_paper_bound(self, result):
        # Paper: < 0.07 with 7-zip running concurrently.
        assert result.sevenzip_ber < 0.07


class TestTables:
    def test_table2_rows(self):
        fig12 = ex.fig12_throughput()
        rows = ex.table2_comparison(fig12)
        by_name = {r.proposal: r for r in rows}
        ichannels = by_name["IChannels"]
        assert ichannels.same_core and ichannels.cross_smt and ichannels.cross_core
        assert ichannels.turbo_independent and ichannels.root_cause_identified
        netspectre = by_name["NetSpectre"]
        assert netspectre.same_core and not netspectre.cross_core
        turbocc = by_name["TurboCC"]
        assert turbocc.cross_core and not turbocc.turbo_independent
        assert ichannels.bw_bps > netspectre.bw_bps > turbocc.bw_bps


class TestSideChannelExperiment:
    def test_inference_accuracy_and_key_recovery(self):
        result = ex.side_channel_inference(rounds=2)
        for location, accuracy in result.accuracy.items():
            assert accuracy >= 0.8, location
        for location, bits in result.key_bits_recovered.items():
            assert bits >= result.key_bits_total - 1, location

    def test_confusion_matrix_diagonal_dominates(self):
        result = ex.side_channel_inference(rounds=2)
        for location, matrix in result.confusion.items():
            diagonal = sum(n for (a, b), n in matrix.items() if a == b)
            total = sum(matrix.values())
            assert diagonal / total >= 0.8, location


class TestMultiPairInterference:
    def test_aligned_pairs_jam_offset_pairs_coexist(self):
        result = ex.multi_pair_interference()
        assert result.ber_solo == 0.0
        assert min(result.ber_aligned) > 0.2
        assert max(result.ber_offset) < 0.05
