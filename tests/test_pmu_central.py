"""Central PMU: serialised transitions, collective release, limits."""

import pytest

from repro.errors import ConfigError
from repro.isa import IClass
from repro.pdn import GuardbandModel, LoadLine, VoltageRegulator
from repro.pmu import CentralPMU, LimitPolicy, PMUConfig
from repro.pmu.dvfs import pstate_ladder
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.engine import Engine


def build_pmu(n_cores=2, per_core_vr=False, secure=False, freq=2.2):
    config = cannon_lake_i3_8121u()
    engine = Engine()
    curve = config.vf_curve()
    guardband = GuardbandModel(LoadLine(config.r_ll_mohm / 1000.0))
    limits = LimitPolicy(curve, guardband, config.vcc_max, config.icc_max)
    ladder = pstate_ladder(curve, config.min_freq_ghz, config.max_turbo_ghz)
    spec = config.vr_spec()
    v0 = spec.quantize_vid(curve.vcc_for(freq))
    if per_core_vr:
        rails = [VoltageRegulator(spec, v0, name=f"vr{i}") for i in range(n_cores)]
        rail_of_core = list(range(n_cores))
    else:
        rails = [VoltageRegulator(spec, v0, name="vr")]
        rail_of_core = [0] * n_cores
    pmu = CentralPMU(engine, rails, rail_of_core, guardband, curve, limits,
                     ladder, config.license_table(), requested_freq_ghz=freq,
                     config=PMUConfig(secure_mode=secure))
    return engine, pmu


class TestRequestUp:
    def test_scalar_never_queues(self):
        _, pmu = build_pmu()
        assert not pmu.request_up(0, IClass.SCALAR_64)
        assert not pmu.is_core_throttled(0)

    def test_phi_request_throttles_core(self):
        _, pmu = build_pmu()
        assert pmu.request_up(0, IClass.HEAVY_256)
        assert pmu.is_core_throttled(0)

    def test_release_after_settle(self):
        engine, pmu = build_pmu()
        pmu.request_up(0, IClass.HEAVY_256)
        engine.run()
        assert not pmu.is_core_throttled(0)
        assert pmu.granted[0] == IClass.HEAVY_256

    def test_rail_voltage_rises_for_grant(self):
        engine, pmu = build_pmu()
        before = pmu.core_voltage(0)
        pmu.request_up(0, IClass.HEAVY_512)
        engine.run()
        assert pmu.core_voltage(0, engine.now) > before

    def test_covered_request_does_not_throttle(self):
        engine, pmu = build_pmu()
        pmu.request_up(0, IClass.HEAVY_512)
        engine.run()
        assert not pmu.request_up(0, IClass.HEAVY_256)
        assert not pmu.is_core_throttled(0)

    def test_duplicate_pending_request_not_requeued(self):
        engine, pmu = build_pmu()
        pmu.request_up(0, IClass.HEAVY_256)
        pmu.request_up(0, IClass.HEAVY_256)
        engine.run()
        assert pmu.transitions_issued[0] == 1

    def test_escalation_while_pending_queues_higher_level(self):
        engine, pmu = build_pmu()
        pmu.request_up(0, IClass.HEAVY_128)
        pmu.request_up(0, IClass.HEAVY_512)
        engine.run()
        assert pmu.granted[0] == IClass.HEAVY_512

    def test_unknown_core_rejected(self):
        _, pmu = build_pmu()
        with pytest.raises(ConfigError):
            pmu.request_up(7, IClass.HEAVY_256)


class TestSerialization:
    def test_two_cores_serialise_on_shared_rail(self):
        # Multi-Throttling-Cores root cause: one transition at a time.
        engine, pmu = build_pmu()
        release_times = {}

        def watch():
            for core in range(2):
                if core not in release_times and not pmu.is_core_throttled(core):
                    if pmu.granted[core] != IClass.SCALAR_64:
                        release_times[core] = engine.now

        pmu.on_state_change = watch
        pmu.request_up(0, IClass.HEAVY_256)
        engine.schedule(200.0, lambda: pmu.request_up(1, IClass.HEAVY_256))
        engine.run()
        assert pmu.transitions_issued[0] == 2  # one per core, serialised

    def test_collective_release_when_queue_drains(self):
        # Both cores stay throttled until the rail settles for everyone.
        engine, pmu = build_pmu()
        pmu.request_up(0, IClass.HEAVY_256)
        pmu.request_up(1, IClass.HEAVY_256)
        assert pmu.is_core_throttled(0) and pmu.is_core_throttled(1)
        # Run until the first transition settles but not the second.
        first_settle = pmu.rails[0].busy_until
        engine.run_until(first_settle + 1.0)
        assert pmu.is_core_throttled(0), "core 0 released before rail finished"
        engine.run()
        assert not pmu.is_core_throttled(0)
        assert not pmu.is_core_throttled(1)

    def test_second_core_transition_takes_longer(self):
        engine, pmu = build_pmu()
        pmu.request_up(0, IClass.HEAVY_256)
        engine.run()
        t_single = engine.now

        engine2, pmu2 = build_pmu()
        pmu2.request_up(0, IClass.HEAVY_256)
        pmu2.request_up(1, IClass.HEAVY_256)
        engine2.run()
        assert engine2.now > t_single * 1.5

    def test_per_core_rails_do_not_serialise(self):
        engine, pmu = build_pmu(per_core_vr=True)
        pmu.request_up(0, IClass.HEAVY_256)
        pmu.request_up(1, IClass.HEAVY_256)
        # Both rails transition concurrently: each issues exactly one.
        engine.run()
        assert pmu.transitions_issued == [1, 1]

    def test_per_core_rail_target_excludes_other_cores(self):
        engine, pmu = build_pmu(per_core_vr=True)
        pmu.request_up(0, IClass.HEAVY_512)
        pmu.request_up(1, IClass.HEAVY_128)
        engine.run()
        v0 = pmu.core_voltage(0, engine.now)
        v1 = pmu.core_voltage(1, engine.now)
        assert v0 > v1  # core 1's rail unaffected by core 0's big guardband


class TestRequestDown:
    def test_down_lowers_rail_without_throttling(self):
        engine, pmu = build_pmu()
        pmu.request_up(0, IClass.HEAVY_512)
        engine.run()
        high = pmu.core_voltage(0, engine.now)
        pmu.request_down(0, IClass.SCALAR_64)
        assert not pmu.is_core_throttled(0)
        engine.run()
        assert pmu.core_voltage(0, engine.now) < high
        assert pmu.granted[0] == IClass.SCALAR_64

    def test_down_to_same_or_higher_ignored(self):
        engine, pmu = build_pmu()
        pmu.request_down(0, IClass.SCALAR_64)
        engine.run()
        assert pmu.transitions_issued[0] == 0


class TestFrequencyProtection:
    def test_icc_limit_drops_frequency(self):
        # Two mobile cores of AVX2 at 3.1 GHz exceed Icc_max (Fig. 7).
        engine, pmu = build_pmu(freq=3.1)
        pmu.set_core_active(0, True)
        pmu.set_core_active(1, True)
        pmu.request_up(0, IClass.HEAVY_256)
        pmu.request_up(1, IClass.HEAVY_256)
        engine.run()
        assert pmu.freq_ghz < 3.1

    def test_frequency_restores_after_down(self):
        engine, pmu = build_pmu(freq=3.1)
        pmu.set_core_active(0, True)
        pmu.set_core_active(1, True)
        pmu.request_up(0, IClass.HEAVY_256)
        pmu.request_up(1, IClass.HEAVY_256)
        engine.run()
        assert pmu.freq_ghz < 3.1
        pmu.request_down(0, IClass.SCALAR_64)
        pmu.request_down(1, IClass.SCALAR_64)
        engine.run()
        pmu.set_core_active(0, False)
        pmu.set_core_active(1, False)
        engine.run()
        assert pmu.freq_ghz == pytest.approx(3.1)

    def test_no_drop_at_low_frequency(self):
        # Key paper point: voltage-transition throttling happens at any
        # frequency, but the frequency itself only drops at turbo.
        engine, pmu = build_pmu(freq=1.4)
        pmu.set_core_active(0, True)
        pmu.request_up(0, IClass.HEAVY_512)
        engine.run()
        assert pmu.freq_ghz == pytest.approx(1.4)

    def test_idle_cores_do_not_count(self):
        engine, pmu = build_pmu(freq=3.1)
        pmu.set_core_active(0, True)
        pmu.request_up(0, IClass.SCALAR_64)
        engine.run()
        assert pmu.freq_ghz == pytest.approx(3.1)


class TestSecureMode:
    def test_no_request_ever_queues(self):
        engine, pmu = build_pmu(secure=True)
        assert not pmu.request_up(0, IClass.HEAVY_512)
        assert not pmu.is_core_throttled(0)
        engine.run()
        assert pmu.transitions_issued[0] == 0

    def test_rail_pinned_at_worst_case(self):
        _, pmu = build_pmu(secure=True)
        # The rail carries the full worst-case guardband above the
        # baseline of the (possibly clamped) secure frequency.
        baseline = pmu.curve.vcc_for(pmu.freq_ghz)
        worst = pmu.guardband.worst_case_vcc(baseline, pmu.n_cores,
                                             pmu.freq_ghz)
        assert pmu.core_voltage(0, 0.0) >= worst - 0.005  # VID clamping

    def test_secure_frequency_fits_worst_case_envelope(self):
        # Running everything at the power-virus guardband can force a
        # lower fixed frequency — a real cost of secure mode.
        _, pmu = build_pmu(secure=True, freq=3.1)
        verdict = pmu.limits.evaluate(pmu.freq_ghz,
                                      [IClass.HEAVY_512] * pmu.n_cores)
        assert verdict.ok
        assert pmu.freq_ghz < 3.1

    def test_power_overhead_in_paper_range(self):
        # Section 7: 4-11 % additional power.
        _, pmu = build_pmu(secure=True)
        overhead = pmu.secure_mode_power_overhead(IClass.SCALAR_64)
        assert 0.04 <= overhead <= 0.11


class TestTurboLicenseLimit:
    """The turbo-license-limit defender switch on the central PMU.

    With the limit on, the package ceiling is computed as if every
    core ran the power-virus class, so guardband traffic above base
    frequency stops producing PLL-relock frequency changes — the
    defender trades standing turbo headroom for a quieter frequency
    observable.
    """

    def _run(self, limit):
        import dataclasses
        from repro.scenarios.build import build_system
        from repro.scenarios.registry import get_spec
        from repro.scenarios.run import run_scenario
        from repro.scenarios.spec import OptionsSpec
        spec = dataclasses.replace(
            get_spec("baseline_cores"), name="probe_turbo",
            overrides=(("base_freq_ghz", 3.0),),
            options=OptionsSpec(turbo_license_limit=limit))
        run = run_scenario(spec)
        return run.document()["system"]

    def test_limit_clamps_to_the_worst_case_ceiling(self):
        limited = self._run(True)
        assert limited["freq_ghz_final"] == pytest.approx(2.6)

    def test_limit_quiets_the_frequency_observable(self):
        baseline = self._run(False)
        limited = self._run(True)
        assert baseline["freq_ghz_final"] == pytest.approx(3.0)
        assert (sum(limited["transitions_issued"])
                < sum(baseline["transitions_issued"]))
