"""Report generator and text rendering."""

import pytest

from repro.analysis.figures import (
    ascii_bars,
    ascii_series,
    format_table,
    histogram_text,
)
from repro.errors import MeasurementError


class TestFigureRendering:
    def test_ascii_bars_scale_to_max(self):
        text = ascii_bars([("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_ascii_bars_rejects_empty(self):
        with pytest.raises(MeasurementError):
            ascii_bars([])

    def test_ascii_series_has_requested_height(self):
        text = ascii_series([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0],
                            height=5, label="ramp")
        assert len(text.splitlines()) == 6  # label + 5 rows

    def test_ascii_series_rejects_mismatch(self):
        with pytest.raises(MeasurementError):
            ascii_series([1.0], [1.0, 2.0])

    def test_format_table_aligns_columns(self):
        text = format_table(["name", "v"], [["long-name", 1], ["x", 22]])
        lines = text.splitlines()
        assert len({line.index("1") if "1" in line else None
                    for line in lines[2:]}) >= 1
        assert lines[1].startswith("----")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(MeasurementError):
            format_table(["a", "b"], [["only-one"]])

    def test_histogram_text_bins(self):
        text = histogram_text([1.0, 1.1, 5.0, 9.9], bins=3, width=10)
        assert len(text.splitlines()) == 3

    def test_histogram_text_rejects_empty(self):
        with pytest.raises(MeasurementError):
            histogram_text([])


class TestReportGenerator:
    def test_quick_report_contains_every_artifact(self):
        from repro.analysis.report import generate_report

        report = generate_report(quick=True)
        for heading in ("Figure 6", "Figure 7", "Figure 8", "Figure 9",
                        "Figure 10", "Figure 11", "Figure 12", "Figure 13",
                        "Figure 14", "Table 1", "Table 2"):
            assert heading in report, heading

    def test_cli_writes_file(self, tmp_path):
        from repro.analysis.report import main

        target = tmp_path / "report.md"
        assert main(["--quick", "-o", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("# IChannels reproduction report")
        assert "Table 2" in content
