"""Channels on other processor generations (Sections 6.4, 7).

The paper claims every Intel client/server part from Sandy Bridge (2010)
onward is affected by at least one channel, and that naively porting
IChannels to recent AMD parts fails.  These tests run the actual
channels on the corresponding presets.
"""

import pytest

from repro import IClass, Loop, System
from repro.core import (
    ChannelConfig,
    IccCoresCovert,
    IccSMTcovert,
    IccThreadCovert,
)
from repro.errors import CalibrationError
from repro.soc.config import (
    amd_zen2_like,
    preset,
    sandy_bridge_i7_2600k,
    skylake_sp_xeon_8160,
)
from repro.units import us_to_ns

PAYLOAD = b"\x3c\xa5"


class TestSandyBridge:
    """The oldest affected client part (2010)."""

    def test_thread_channel_works(self):
        channel = IccThreadCovert(System(sandy_bridge_i7_2600k()))
        report = channel.transfer(PAYLOAD)
        assert report.received == PAYLOAD

    def test_smt_channel_works(self):
        channel = IccSMTcovert(System(sandy_bridge_i7_2600k()))
        report = channel.transfer(PAYLOAD)
        assert report.received == PAYLOAD

    def test_cores_channel_works(self):
        channel = IccCoresCovert(System(sandy_bridge_i7_2600k()))
        report = channel.transfer(PAYLOAD)
        assert report.received == PAYLOAD

    def test_no_avx_power_gate(self):
        # Pre-Skylake: the first AVX loop pays no wake latency.
        system = System(sandy_bridge_i7_2600k())
        sink = []

        def program():
            yield system.until(us_to_ns(5.0))
            sink.append((yield system.execute(0, Loop(IClass.HEAVY_256, 10))))

        system.spawn(program())
        system.run_until(us_to_ns(300.0))
        assert sink[0].gate_wake_ns == 0.0


class TestSkylakeSPServer:
    """Server parts share the client core's machinery (Section 6.4)."""

    def test_thread_channel_works(self):
        config = skylake_sp_xeon_8160()
        system = System(config, governor_freq_ghz=config.base_freq_ghz)
        report = IccThreadCovert(system).transfer(PAYLOAD)
        assert report.received == PAYLOAD

    def test_cores_channel_works_on_far_cores(self):
        config = skylake_sp_xeon_8160()
        system = System(config, governor_freq_ghz=config.base_freq_ghz)
        channel = IccCoresCovert(system, sender_core=3, receiver_core=17)
        report = channel.transfer(PAYLOAD)
        assert report.received == PAYLOAD

    def test_smt_channel_works(self):
        config = skylake_sp_xeon_8160()
        system = System(config, governor_freq_ghz=config.base_freq_ghz)
        report = IccSMTcovert(system, core=5).transfer(PAYLOAD)
        assert report.received == PAYLOAD

    def test_avx512_available(self):
        assert skylake_sp_xeon_8160().max_vector_bits == 512


class TestAmdZenLike:
    """Per-core LDOs: the porting failure the paper reports (Section 7)."""

    def test_cross_core_channel_fails(self):
        system = System(amd_zen2_like())
        channel = IccCoresCovert(system)
        with pytest.raises(CalibrationError):
            channel.calibrate()

    def test_same_core_levels_below_reliable_separation(self):
        # The fast LDO ramp leaves level separations far below the
        # 2K-cycle spacing threshold decoding needs.
        system = System(amd_zen2_like())
        channel = IccThreadCovert(
            system, ChannelConfig(min_level_gap_tsc=2000.0))
        with pytest.raises(CalibrationError):
            channel.calibrate()

    def test_rails_are_per_core_by_construction(self):
        system = System(amd_zen2_like())
        assert len(system.pmu.rails) == system.config.n_cores

    def test_preset_lookup(self):
        assert preset("amd_zen2").codename == "Zen2-like"
        assert preset("skylake_sp").n_cores == 24
        assert preset("sandy_bridge").codename == "Sandy Bridge"
