"""Framework mechanics: registry, waivers, baseline, reporters, CLI."""

import json
import textwrap

import pytest

from repro.errors import ConfigError
from repro.staticcheck import (
    Finding,
    Severity,
    all_passes,
    all_rules,
    analyze_paths,
    analyze_source,
    parse_waivers,
    rule_ids,
    save_baseline,
)
from repro.staticcheck.baseline import apply_baseline, load_baseline
from repro.staticcheck.__main__ import main
from repro.staticcheck.registry import passes_for, validate_rules
from repro.staticcheck.reporters import render_text, to_json

BAD_MODULE = textwrap.dedent("""
    \"\"\"Fixture with one finding per pass.\"\"\"
    import heapq


    def schedule(heap, time_ns: float, handle: object, idle_us: float) -> float:
        \"\"\"Mixes units and pushes an untiebroken heap entry.\"\"\"
        heapq.heappush(heap, (time_ns, handle))
        return time_ns + idle_us
""")


class TestRegistry:
    def test_builtin_passes_registered(self):
        names = {p.name for p in all_passes()}
        assert names == {"dimensional", "determinism", "poolsafety",
                         "hygiene", "kernelsafety", "asyncsafety",
                         "goldenflow"}

    def test_every_rule_has_unique_owner(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids))
        assert "unit-mix" in ids and "pool-callable" in ids

    def test_rules_carry_severity_and_fix_hint(self):
        for rule in all_rules().values():
            assert isinstance(rule.default_severity, Severity)
            assert rule.summary

    def test_passes_for_selects_owning_pass_only(self):
        chosen = passes_for(["heap-tiebreak"])
        assert [p.name for p in chosen] == ["determinism"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError, match="unknown rule"):
            validate_rules(["no-such-rule"])


class TestWaiverIntegration:
    def test_new_rule_ids_are_valid_in_waiver_files(self):
        waivers = parse_waivers("unit-mix repro/pdn/*.py\n"
                                "pool-callable repro/runner/sweep.py\n")
        assert [w.rule for w in waivers] == ["unit-mix", "pool-callable"]

    def test_waiver_suppresses_finding(self, tmp_path):
        src = tmp_path / "example_mod.py"
        src.write_text(BAD_MODULE, encoding="utf-8")
        waivers = parse_waivers("heap-tiebreak example_mod.py\n")
        report = analyze_paths(paths=[src], rules=["heap-tiebreak"],
                               waivers=waivers)
        assert report.findings == []
        assert [f.rule for f in report.waived] == ["heap-tiebreak"]
        assert report.unused_waivers == []

    def test_unused_waiver_reported(self, tmp_path):
        src = tmp_path / "clean_mod.py"
        src.write_text('"""Clean."""\n', encoding="utf-8")
        waivers = parse_waivers("unit-mix clean_mod.py\n")
        report = analyze_paths(paths=[src], waivers=waivers)
        assert len(report.unused_waivers) == 1
        assert "unused waiver" in render_text(report)


class TestWaiverGrammarEdgeCases:
    """The corners of the ``rule path-glob [substring]`` grammar."""

    def test_second_rule_id_on_a_line_becomes_the_path_glob(self):
        """One line waives ONE rule; a second id is read as the glob."""
        waivers = parse_waivers("float-eq unit-mix\n")
        assert len(waivers) == 1
        assert waivers[0].rule == "float-eq"
        assert waivers[0].path_glob == "unit-mix"
        finding = Finding(rule="unit-mix", path="repro/core/mod.py",
                          line=1, message="m", source="s")
        assert not waivers[0].matches(finding)

    def test_substring_keeps_internal_whitespace(self):
        waivers = parse_waivers(
            "float-eq repro/x.py if times and t == times[-1]\n")
        assert waivers[0].substring == "if times and t == times[-1]"

    def test_unknown_rule_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown rule"):
            parse_waivers("no-such-rule repro/x.py\n")

    def test_single_field_line_is_a_config_error(self):
        with pytest.raises(ConfigError, match="expected 'rule"):
            parse_waivers("float-eq\n")

    def test_waiver_on_a_multi_finding_line_is_rule_scoped(self, tmp_path):
        """Two rules fire on one line; waiving one leaves the other."""
        src = tmp_path / "example_mod.py"
        src.write_text(textwrap.dedent('''
            """Doc."""


            def check(vcc_v: float, vdd_v: float,
                      idle_ns: float, close_us: float) -> bool:
                """Doc."""
                return vcc_v == vdd_v or idle_ns > close_us
        '''), encoding="utf-8")
        waivers = parse_waivers("float-eq example_mod.py\n")
        report = analyze_paths(paths=[src], waivers=waivers,
                               rules=["float-eq", "unit-compare"])
        assert [f.rule for f in report.findings] == ["unit-compare"]
        assert [f.rule for f in report.waived] == ["float-eq"]
        assert report.findings[0].line == report.waived[0].line
        assert report.unused_waivers == []

    def test_never_matching_waiver_is_reported_unused(self, tmp_path):
        src = tmp_path / "bad_mod.py"
        src.write_text(BAD_MODULE, encoding="utf-8")
        # Right rule, right file, but a substring that appears nowhere.
        waivers = parse_waivers(
            "unit-mix bad_mod.py no_such_source_fragment\n")
        report = analyze_paths(paths=[src], rules=["unit-mix"],
                               waivers=waivers)
        assert [f.rule for f in report.findings] == ["unit-mix"]
        assert report.waived == []
        assert len(report.unused_waivers) == 1

    def test_committed_waiver_file_round_trips(self):
        """parse → render → reparse of tests/lint_waivers.txt is stable."""
        from repro.staticcheck.waivers import default_waivers_path

        path = default_waivers_path()
        assert path is not None, "tests/lint_waivers.txt missing"
        first = parse_waivers(path.read_text(encoding="utf-8"))
        assert first, "committed waiver file should not be empty"
        rendered = "\n".join(w.render() for w in first) + "\n"
        assert parse_waivers(rendered) == first


class TestBaseline:
    def _findings(self):
        return analyze_source(BAD_MODULE, "repro/core/example_mod.py")

    def test_round_trip_suppresses_known_findings(self, tmp_path):
        findings = self._findings()
        assert findings  # the fixture must actually trip rules
        path = tmp_path / "baseline.json"
        count = save_baseline(findings, path)
        assert count == len(load_baseline(path))
        new, covered, unused = apply_baseline(findings, load_baseline(path))
        assert new == [] and unused == []
        assert len(covered) == len(findings)

    def test_baseline_matching_is_line_number_independent(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        save_baseline(findings, path)
        shifted = [
            Finding(rule=f.rule, path=f.path, line=f.line + 40,
                    message=f.message, source=f.source,
                    severity=f.severity, fix_hint=f.fix_hint)
            for f in findings
        ]
        new, covered, unused = apply_baseline(shifted, load_baseline(path))
        assert new == [] and unused == []

    def test_stale_entries_are_reported(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        save_baseline(findings, path)
        new, covered, unused = apply_baseline([], load_baseline(path))
        assert len(unused) == len(findings)

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ConfigError, match="entries"):
            load_baseline(path)

    def test_committed_baseline_has_no_stale_entries(self, tmp_path):
        """The repo tree must use every committed baseline entry."""
        from repro.staticcheck.runner import default_root

        repo_baseline = (default_root().parent.parent
                         / "tests" / "staticcheck_baseline.json")
        report = analyze_paths(baseline_path=repo_baseline)
        assert report.unused_baseline == [], report.unused_baseline
        assert report.ok, render_text(report)


class TestReporters:
    def test_text_summary_counts_by_rule(self):
        findings = analyze_source(BAD_MODULE, "repro/core/example_mod.py")
        from repro.staticcheck.model import Report

        text = render_text(Report(findings=findings, files_analyzed=1))
        assert "unit-mix: 1" in text and "heap-tiebreak: 1" in text

    def test_json_payload_is_complete(self):
        from repro.staticcheck.model import Report

        findings = analyze_source(BAD_MODULE, "repro/core/example_mod.py")
        payload = to_json(Report(findings=findings, files_analyzed=1))
        assert payload["tool"] == "repro.staticcheck"
        assert payload["ok"] is False
        first = payload["findings"][0]
        assert {"rule", "path", "line", "message", "source", "severity",
                "fix_hint"} <= set(first)
        json.dumps(payload)  # must be serialisable as-is


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        src = tmp_path / "clean_mod.py"
        src.write_text('"""Clean."""\n', encoding="utf-8")
        assert main([str(src), "--no-waivers"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        src = tmp_path / "bad_mod.py"
        src.write_text(BAD_MODULE, encoding="utf-8")
        assert main([str(src), "--no-waivers"]) == 1
        out = capsys.readouterr().out
        assert "[unit-mix]" in out and "[heap-tiebreak]" in out

    def test_rule_filter(self, tmp_path, capsys):
        src = tmp_path / "bad_mod.py"
        src.write_text(BAD_MODULE, encoding="utf-8")
        assert main([str(src), "--no-waivers", "--rule", "unit-mix"]) == 1
        out = capsys.readouterr().out
        assert "[unit-mix]" in out and "heap-tiebreak" not in out

    def test_baseline_flow_end_to_end(self, tmp_path, capsys):
        src = tmp_path / "bad_mod.py"
        src.write_text(BAD_MODULE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main([str(src), "--no-waivers",
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        # With the baseline applied the same tree is green...
        assert main([str(src), "--no-waivers",
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # ...and once the file is fixed, the stale entries fail the run.
        src.write_text('"""Clean now."""\n', encoding="utf-8")
        assert main([str(src), "--no-waivers",
                     "--baseline", str(baseline)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("unit-mix", "heap-tiebreak", "pool-callable",
                        "float-eq"):
            assert rule_id in out

    def test_output_file(self, tmp_path):
        src = tmp_path / "clean_mod.py"
        src.write_text('"""Clean."""\n', encoding="utf-8")
        out_file = tmp_path / "report.txt"
        assert main([str(src), "--no-waivers",
                     "--output", str(out_file)]) == 0
        assert "0 finding(s)" in out_file.read_text(encoding="utf-8")
