"""Documentation stays true: fenced Python runs, intra-repo links resolve.

Two gates over the curated markdown set (README, DESIGN, CONTRIBUTING,
EXPERIMENTS and ``docs/``):

* every ```` ```python ```` fenced block executes cleanly in a fresh
  namespace (from a temporary working directory, so blocks that write
  artifacts like ``trace.json`` don't litter the repository);
* every relative markdown link points at a file or directory that
  exists, so renames (``bench_fig6.py`` → ``bench_fig06.py``) can't
  silently strand the docs.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = sorted(
    ["README.md", "DESIGN.md", "CONTRIBUTING.md", "EXPERIMENTS.md"]
    + [os.path.join("docs", name)
       for name in os.listdir(os.path.join(REPO_ROOT, "docs"))
       if name.endswith(".md")]
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def python_blocks():
    """(doc, index, source) for every fenced python block."""
    found = []
    for doc in DOC_FILES:
        text = open(os.path.join(REPO_ROOT, doc), encoding="utf-8").read()
        for i, match in enumerate(_FENCE.finditer(text)):
            found.append((doc, i, match.group(1)))
    return found


BLOCKS = python_blocks()


def test_docs_have_python_examples():
    """The extractor finds the documented examples (guards the regex)."""
    docs_with_blocks = {doc for doc, _, _ in BLOCKS}
    assert "README.md" in docs_with_blocks
    assert os.path.join("docs", "OBSERVABILITY.md") in docs_with_blocks


@pytest.mark.parametrize(
    "doc,index,source",
    BLOCKS,
    ids=[f"{doc}#{index}" for doc, index, _ in BLOCKS])
def test_python_block_executes(doc, index, source, tmp_path, monkeypatch):
    """The block runs top to bottom without raising."""
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": f"doctest_{index}"}
    exec(compile(source, f"{doc}[block {index}]", "exec"), namespace)


def relative_links():
    """(doc, target) for every relative link in the curated docs."""
    found = []
    for doc in DOC_FILES:
        text = open(os.path.join(REPO_ROOT, doc), encoding="utf-8").read()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            found.append((doc, target.split("#")[0]))
    return found


def test_docs_have_relative_links():
    """The link scanner finds the known cross-references."""
    assert ("README.md", "docs/FAULTS.md") in relative_links()


@pytest.mark.parametrize(
    "doc,target",
    sorted(set(relative_links())),
    ids=[f"{doc}->{target}" for doc, target in sorted(set(relative_links()))])
def test_relative_link_resolves(doc, target):
    """A relative markdown link names an existing file or directory."""
    base = os.path.dirname(os.path.join(REPO_ROOT, doc))
    resolved = os.path.normpath(os.path.join(base, target))
    assert os.path.exists(resolved), (
        f"{doc} links to {target!r}, which does not exist")
