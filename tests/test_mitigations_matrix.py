"""Tests for the attacker-vs-defender mitigation matrix.

Covers the registries, the cell runner, the report exports, the cost
harness, and the acceptance properties the matrix exists to pin:

* secure mode defeats all three channel families at every tier;
* improved throttling defeats only IccSMTcovert;
* the adaptive tier strictly out-carries plain ARQ wherever ARQ lives;
* undefended plain cells are bit-identical to the committed scenario
  goldens.
"""

import json
import os

import pytest

from repro.errors import ConfigError
from repro.mitigations.matrix import (
    ATTACKERS,
    DEFENDERS,
    MatrixCell,
    MitigationMatrixReport,
    attacker_names,
    cell_spec,
    defender_cost,
    defender_names,
    run_cell,
    run_matrix,
    smoke_matrix,
)
from repro.mitigations.matrix.attackers import get_attacker, session_config
from repro.mitigations.matrix.cells import (
    DEFEAT_BER,
    OPEN_BER,
    cell_from_mapping,
)
from repro.mitigations.matrix.defenders import get_defender
from repro.runner import SweepRunner

GOLDENS_DIR = os.path.join(os.path.dirname(__file__), "goldens")


@pytest.fixture(scope="module")
def full_report():
    """One full 9x7 matrix run shared by the acceptance tests."""
    return run_matrix(include_costs=False)


class TestRegistries:
    def test_attacker_axis_is_protocols_x_channels(self):
        assert len(ATTACKERS) == 9
        assert attacker_names()[0] == "plain_thread"
        for name, attacker in ATTACKERS.items():
            assert name == f"{attacker.protocol}_{attacker.channel}"

    def test_defender_axis_has_paper_and_literature_recipes(self):
        assert defender_names() == [
            "none", "per_core_ldo", "improved_throttling", "secure_mode",
            "noise_injection", "turbo_license_limit", "state_flush"]

    def test_unknown_names_raise_with_choices(self):
        with pytest.raises(ConfigError, match="plain_thread"):
            get_attacker("plain_threads")
        with pytest.raises(ConfigError, match="secure_mode"):
            get_defender("secure")

    def test_literature_defenders_source_registered_scenarios(self):
        assert DEFENDERS["state_flush"].scenario == "matrix_state_flush"
        assert "state-flush" in DEFENDERS["state_flush"].faults
        assert DEFENDERS["turbo_license_limit"].options.turbo_license_limit
        assert DEFENDERS["turbo_license_limit"].overrides == (
            ("base_freq_ghz", 3.0),)

    def test_session_config_tiers(self):
        assert session_config("arq").adaptive is None
        assert session_config("adaptive").adaptive is not None
        with pytest.raises(ConfigError, match="plain"):
            session_config("plain")


class TestCellSpec:
    def test_none_defender_returns_the_baseline_spec_object(self):
        from repro.scenarios.registry import get_spec
        assert cell_spec("cores", DEFENDERS["none"]) is get_spec(
            "baseline_cores")

    def test_literature_defender_on_cores_uses_registered_scenario(self):
        spec = cell_spec("cores", DEFENDERS["state_flush"])
        assert spec.name == "matrix_state_flush"

    def test_derived_cells_graft_defender_knobs(self):
        spec = cell_spec("thread", DEFENDERS["secure_mode"])
        assert spec.name == "matrix_secure_mode_thread"
        assert spec.options.secure_mode
        spec = cell_spec("smt", DEFENDERS["turbo_license_limit"])
        assert spec.options.turbo_license_limit
        assert dict(spec.overrides)["base_freq_ghz"] == 3.0


class TestVerdicts:
    def _cell(self, **kwargs):
        base = dict(attacker="plain_cores", defender="none",
                    protocol="plain", channel="cores",
                    scenario="baseline_cores", feasible=True,
                    residual_ber=0.0, residual_capacity_bps=100.0,
                    elapsed_ns=1.0, attempts=1, recalibrations=0,
                    degraded=False)
        base.update(kwargs)
        return MatrixCell(**base)

    def test_open_below_threshold(self):
        assert self._cell(residual_ber=OPEN_BER - 1e-9).verdict == "open"

    def test_degraded_between_thresholds(self):
        assert self._cell(residual_ber=OPEN_BER).verdict == "degraded"

    def test_defeated_at_decode_wall(self):
        assert self._cell(residual_ber=DEFEAT_BER).verdict == "defeated"

    def test_defeated_when_infeasible_or_capacityless(self):
        assert self._cell(feasible=False).verdict == "defeated"
        assert self._cell(residual_capacity_bps=0.0).verdict == "defeated"

    def test_mapping_round_trip_preserves_verdict(self):
        cell = self._cell(residual_ber=0.1)
        mapping = cell.to_mapping()
        assert mapping["verdict"] == "degraded"
        assert cell_from_mapping(mapping) == cell


class TestRunCell:
    def test_blank_names_rejected(self):
        with pytest.raises(ConfigError, match="attacker"):
            run_cell()

    def test_undefended_plain_cell_matches_committed_golden(self):
        cell = run_cell(attacker="plain_cores", defender="none")
        with open(os.path.join(GOLDENS_DIR,
                               "scenario_baseline_cores.json")) as handle:
            golden = json.load(handle)
        assert cell["document_digest"] == golden["digest"]

    def test_session_cells_have_no_document_digest(self):
        cell = run_cell(attacker="arq_cores", defender="none")
        assert cell["document_digest"] == ""
        assert cell["attempts"] >= 3  # three 8-byte frames


class TestAcceptance:
    def test_secure_mode_defeats_every_channel(self, full_report):
        assert full_report.channels_defeated("secure_mode") == {
            "thread", "smt", "cores"}

    def test_improved_throttling_defeats_only_smt(self, full_report):
        assert full_report.channels_defeated("improved_throttling") == {
            "smt"}

    def test_per_core_ldo_defeats_the_cross_core_channel(self, full_report):
        assert "cores" in full_report.channels_defeated("per_core_ldo")

    def test_adaptive_strictly_dominates_arq(self, full_report):
        assert full_report.adaptive_shortfalls() == []

    def test_undefended_cells_all_open(self, full_report):
        for attacker in full_report.attackers:
            assert full_report.cell(attacker, "none").verdict == "open"

    def test_defeated_cells_report_zero_capacity(self, full_report):
        for cell in full_report.cells:
            if cell.verdict == "defeated":
                assert cell.residual_capacity_bps == 0.0


class TestReport:
    def test_missing_cell_and_cost_raise(self, full_report):
        with pytest.raises(ConfigError, match="no cell"):
            full_report.cell("plain_cores", "nonexistent")
        with pytest.raises(ConfigError, match="no cost"):
            full_report.cost("secure_mode")

    def test_document_round_trip(self, full_report):
        rebuilt = MitigationMatrixReport.from_document(
            full_report.document())
        assert rebuilt == full_report

    def test_csv_has_one_row_per_cell(self, full_report):
        lines = full_report.to_csv_text().strip().split("\n")
        assert len(lines) == 1 + len(full_report.cells)
        assert lines[0].startswith("attacker,defender,protocol")

    def test_markdown_grid_covers_both_axes(self, full_report):
        table = full_report.markdown_table()
        for attacker in full_report.attackers:
            assert f"`{attacker}`" in table
        for defender in full_report.defenders:
            assert defender in table

    def test_json_text_is_valid_and_canonical(self, full_report):
        parsed = json.loads(full_report.to_json_text())
        assert parsed["attackers"] == list(full_report.attackers)
        assert len(parsed["cells"]) == len(full_report.cells)


class TestSweep:
    def test_unknown_axis_names_rejected_before_running(self):
        with pytest.raises(ConfigError, match="unknown attacker"):
            run_matrix(attackers=("no_such",), defenders=("none",))
        with pytest.raises(ConfigError, match="unknown defender"):
            run_matrix(attackers=("plain_cores",), defenders=("no_such",))

    def test_smoke_matrix_shape(self):
        report = smoke_matrix(include_costs=False)
        assert report.attackers == ("plain_cores", "arq_cores",
                                    "adaptive_cores")
        assert report.defenders == ("none", "secure_mode", "state_flush")
        assert len(report.cells) == 9

    def test_pool_and_serial_agree(self):
        serial = run_matrix(attackers=("plain_cores",),
                            defenders=("none", "secure_mode"),
                            include_costs=False)
        pooled = run_matrix(attackers=("plain_cores",),
                            defenders=("none", "secure_mode"),
                            runner=SweepRunner(jobs=2),
                            include_costs=False)
        assert serial.document() == pooled.document()


class TestCost:
    def test_none_defender_costs_nothing(self):
        cost = defender_cost("none")
        assert cost.runtime_overhead == 0.0
        assert cost.power_overhead == 0.0

    def test_secure_mode_charges_runtime(self):
        cost = defender_cost("secure_mode")
        assert cost.runtime_overhead > 0.05
        assert cost.completion_ns > cost.reference_ns

    def test_mapping_includes_derived_overheads(self):
        mapping = defender_cost("none").to_mapping()
        assert mapping["runtime_overhead"] == 0.0
        assert mapping["power_overhead"] == 0.0
