"""Mitigation recipes and the Table 1 effectiveness matrix."""

import pytest

from repro.errors import ConfigError
from repro.mitigations import (
    Mitigation,
    evaluate_all,
    evaluate_mitigation,
    improved_throttling_options,
    options_for,
    per_core_vr_options,
    secure_mode_options,
)
from repro.soc.config import cannon_lake_i3_8121u


class TestRecipes:
    def test_per_core_vr_options(self):
        options = per_core_vr_options()
        assert options.per_core_vr and options.ldo_rails

    def test_per_core_vr_without_ldo(self):
        options = per_core_vr_options(fast_ldo=False)
        assert options.per_core_vr and not options.ldo_rails

    def test_improved_throttling_options(self):
        assert improved_throttling_options().improved_throttling

    def test_secure_mode_options(self):
        assert secure_mode_options().secure_mode

    def test_options_for_none_is_default(self):
        options = options_for(Mitigation.NONE)
        assert not (options.per_core_vr or options.improved_throttling
                    or options.secure_mode)


class TestSingleEvaluations:
    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigError):
            evaluate_mitigation(cannon_lake_i3_8121u(), "NoSuchChannel",
                                Mitigation.SECURE_MODE)

    def test_baseline_channel_is_open_without_mitigation(self):
        outcome = evaluate_mitigation(cannon_lake_i3_8121u(),
                                      "IccThreadCovert", Mitigation.NONE)
        assert outcome.verdict == "OPEN"
        assert outcome.ber == 0.0


class TestTable1Matrix:
    """The exact Table 1 of the paper, regenerated."""

    @pytest.fixture(scope="class")
    def report(self):
        return evaluate_all(cannon_lake_i3_8121u())

    def test_per_core_vr_row(self, report):
        # Paper: Partially / Partially / mitigated.
        assert report.verdict("IccThreadCovert", Mitigation.PER_CORE_VR) == "PARTIAL"
        assert report.verdict("IccSMTcovert", Mitigation.PER_CORE_VR) == "PARTIAL"
        assert report.verdict("IccCoresCovert", Mitigation.PER_CORE_VR) == "MITIGATED"

    def test_improved_throttling_row(self, report):
        # Paper: open / mitigated / open.
        assert report.verdict("IccThreadCovert",
                              Mitigation.IMPROVED_THROTTLING) == "OPEN"
        assert report.verdict("IccSMTcovert",
                              Mitigation.IMPROVED_THROTTLING) == "MITIGATED"
        assert report.verdict("IccCoresCovert",
                              Mitigation.IMPROVED_THROTTLING) == "OPEN"

    def test_secure_mode_row(self, report):
        # Paper: mitigated / mitigated / mitigated.
        for channel in ("IccThreadCovert", "IccSMTcovert", "IccCoresCovert"):
            assert report.verdict(channel, Mitigation.SECURE_MODE) == "MITIGATED"

    def test_secure_mode_power_overhead_in_paper_range(self, report):
        # Paper: 4 % - 11 % additional power.
        assert 0.04 <= report.secure_mode_power_overhead <= 0.11

    def test_overhead_notes_present(self, report):
        assert "area" in report.overhead_notes[Mitigation.PER_CORE_VR]
        assert "power" in report.overhead_notes[Mitigation.SECURE_MODE]

    def test_unknown_cell_rejected(self, report):
        with pytest.raises(ConfigError):
            report.verdict("IccThreadCovert", Mitigation.NONE)


class TestReportEdgeCases:
    """All-cells-defeated shape and the blocked property."""

    def test_secure_mode_only_matrix_is_all_defeated(self):
        report = evaluate_all(cannon_lake_i3_8121u(),
                              mitigations=[Mitigation.SECURE_MODE])
        assert report.outcomes, "expected one outcome per channel"
        assert all(o.verdict == "MITIGATED" for o in report.outcomes)
        assert all(o.blocked for o in report.outcomes)

    def test_blocked_tracks_the_verdict_string(self):
        report = evaluate_all(cannon_lake_i3_8121u(),
                              mitigations=[Mitigation.IMPROVED_THROTTLING])
        for outcome in report.outcomes:
            assert outcome.blocked == (outcome.verdict == "MITIGATED")

    def test_channel_filter_prunes_rows(self):
        report = evaluate_all(
            cannon_lake_i3_8121u(),
            mitigations=[Mitigation.SECURE_MODE],
            channel_filter=lambda name: name == "IccThreadCovert")
        assert {o.channel for o in report.outcomes} == {"IccThreadCovert"}
        with pytest.raises(ConfigError):
            report.verdict("IccSMTcovert", Mitigation.SECURE_MODE)
