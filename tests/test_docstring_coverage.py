"""Docstring coverage floor, enforced without external tools.

CI's docs job runs ``interrogate``/``pydocstyle`` (configured in
pyproject.toml), but those aren't runtime dependencies, so this module
re-implements the coverage floor with ``ast`` alone: every module,
every public class, and every public function/method under
``src/repro`` must carry a docstring, and overall coverage (counting
private defs too, which the API-quality gate skips) must stay at or
above the same ``fail-under = 98`` floor CI enforces.
"""

import ast
import os

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro")

FAIL_UNDER = 98.0  # keep in sync with [tool.interrogate] in pyproject.toml


def iter_source_files():
    """Every ``.py`` file under ``src/repro``, repo-relative."""
    for dirpath, _, filenames in os.walk(SRC_ROOT):
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def iter_definitions(path):
    """(qualname, node, is_public, is_overload) for docstring targets.

    Targets are the module itself, classes, and functions/methods —
    nested functions (closures) are implementation detail and skipped,
    matching ``ignore-nested-functions`` in the interrogate config.
    """
    tree = ast.parse(open(path, encoding="utf-8").read(), filename=path)
    rel = os.path.relpath(path, SRC_ROOT)
    yield rel, tree, True

    def walk(node, prefix, parent_public):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = f"{prefix}.{child.name}"
                public = parent_public and not child.name.startswith("_")
                yield name, child, public
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, name, public)
                # function bodies are not descended into: closures are
                # not part of the documented surface

    yield from walk(tree, rel, True)


def has_docstring(node):
    """True when the node's first statement is a string literal."""
    return ast.get_docstring(node) is not None


def collect():
    """(total, documented, missing) over the counted (public) surface.

    Mirrors the interrogate config: private defs (and anything nested
    under a private parent), magic methods and ``__init__`` are not
    counted, exactly as ``ignore-private`` / ``ignore-magic`` /
    ``ignore-init-method`` exclude them in CI.
    """
    total = 0
    documented = 0
    missing = []
    for path in iter_source_files():
        for qualname, node, public in iter_definitions(path):
            last = qualname.rsplit(".", 1)[-1]
            if not public or (last.startswith("__") and last.endswith("__")):
                continue
            total += 1
            if has_docstring(node):
                documented += 1
            else:
                missing.append(qualname)
    return total, documented, missing


def test_public_surface_fully_documented():
    """Every public module/class/function under src/repro has a docstring."""
    _, _, missing = collect()
    assert not missing, (
        f"{len(missing)} undocumented public definitions: {missing[:20]}")


def test_coverage_meets_configured_floor():
    """Counted coverage stays at or above pyproject's fail-under floor."""
    total, documented, missing = collect()
    assert total > 500, "AST walk found suspiciously few definitions"
    coverage = 100.0 * documented / total
    assert coverage >= FAIL_UNDER, (
        f"docstring coverage {coverage:.1f}% < {FAIL_UNDER}%; "
        f"missing: {missing[:20]}")
