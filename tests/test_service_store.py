"""Tests for repro.service.store — the shared artifact store."""

import pickle
import threading

import pytest

from repro.errors import ConfigError
from repro.runner import ResultCache
from repro.service.store import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    EntryInfo,
    StoreBudget,
    StoreStats,
)


def _store(tmp_path, **kwargs):
    return ArtifactStore(root=tmp_path / "store", version="v1", **kwargs)


class TestEnvelopeRoundtrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        store.put("aa" * 32, {"x": 1, "values": [1.5, 2.5]})
        hit, value = store.get("aa" * 32)
        assert hit
        assert value == {"x": 1, "values": [1.5, 2.5]}
        assert store.stats.hits == 1
        assert store.stats.stores == 1

    def test_miss_is_a_plain_miss(self, tmp_path):
        store = _store(tmp_path)
        hit, value = store.get("bb" * 32)
        assert not hit and value is None
        assert store.stats.misses == 1
        assert store.stats.stale == 0

    def test_envelope_records_schema_and_code(self, tmp_path):
        store = _store(tmp_path)
        store.put("cc" * 32, 42)
        raw = pickle.loads(store._path("cc" * 32).read_bytes())
        assert raw["__artifact__"] == ARTIFACT_SCHEMA
        assert raw["code"] == "v1"
        assert raw["value"] == 42

    def test_drop_in_for_result_cache(self, tmp_path):
        """A SweepRunner-style get/put cycle works unchanged."""
        store = _store(tmp_path)
        assert isinstance(store, ResultCache)
        key = store.key_for(_square_task, {"x": 3})
        hit, _ = store.get(key)
        assert not hit
        store.put(key, 9)
        hit, value = store.get(key)
        assert hit and value == 9


def _square_task(x):
    return x * x


class TestStaleEntries:
    def test_foreign_pickle_is_stale_not_served(self, tmp_path):
        """A pre-service ResultCache entry is unlinked, never returned."""
        store = _store(tmp_path)
        plain = ResultCache(root=store.root, version="v1")
        plain.put("dd" * 32, {"raw": "unwrapped"})
        hit, value = store.get("dd" * 32)
        assert not hit and value is None
        assert store.stats.stale == 1
        assert store.stats.misses == 1
        assert store.stats.hits == 0
        assert not store._path("dd" * 32).exists()

    def test_future_schema_is_stale(self, tmp_path):
        store = _store(tmp_path)
        alien = {"__artifact__": ARTIFACT_SCHEMA + 1, "value": 1}
        ResultCache(root=store.root, version="v1").put("ee" * 32, alien)
        hit, _ = store.get("ee" * 32)
        assert not hit
        assert store.stats.stale == 1

    def test_corrupt_entry_still_counted_as_corrupt(self, tmp_path):
        store = _store(tmp_path)
        store.put("ff" * 32, 1)
        store._path("ff" * 32).write_bytes(b"not a pickle")
        hit, _ = store.get("ff" * 32)
        assert not hit
        assert store.stats.corrupt == 1
        assert store.stats.stale == 0


class TestInventory:
    def test_entries_oldest_first(self, tmp_path):
        import os

        store = _store(tmp_path)
        for index, key in enumerate(["aa" * 32, "bb" * 32, "cc" * 32]):
            store.put(key, index)
            path = store._path(key)
            os.utime(path, (1000.0 + index, 1000.0 + index))
        inventory = store.entries()
        assert [entry.key for entry in inventory] == [
            "aa" * 32, "bb" * 32, "cc" * 32]
        assert all(isinstance(entry, EntryInfo) for entry in inventory)
        assert store.total_bytes() == sum(
            entry.size_bytes for entry in inventory)

    def test_describe_is_json_ready(self, tmp_path):
        import json

        store = _store(tmp_path, budget=StoreBudget(max_entries=10))
        store.put("aa" * 32, 1)
        document = json.loads(json.dumps(store.describe()))
        assert document["entries"] == 1
        assert document["budget"]["max_entries"] == 10
        assert document["stats"]["stores"] == 1


class TestBudgetEviction:
    def test_no_budget_is_a_noop(self, tmp_path):
        store = _store(tmp_path)
        store.put("aa" * 32, 1)
        assert store.evict_to_budget() == 0
        assert len(store) == 1

    def test_max_entries_drops_oldest(self, tmp_path):
        import os

        store = _store(tmp_path, budget=StoreBudget(max_entries=2))
        for index, key in enumerate(["aa" * 32, "bb" * 32, "cc" * 32]):
            store.put(key, index)
            os.utime(store._path(key), (1000.0 + index, 1000.0 + index))
        assert store.evict_to_budget() == 1
        assert not store._path("aa" * 32).exists()
        assert store._path("bb" * 32).exists()
        assert store.stats.evicted == 1

    def test_max_bytes_drops_oldest_until_under(self, tmp_path):
        import os

        store = _store(tmp_path)
        for index, key in enumerate(["aa" * 32, "bb" * 32, "cc" * 32]):
            store.put(key, list(range(200)))
            os.utime(store._path(key), (1000.0 + index, 1000.0 + index))
        per_entry = store.total_bytes() // 3
        store.budget = StoreBudget(max_bytes=per_entry * 2)
        removed = store.evict_to_budget()
        assert removed == 1
        assert not store._path("aa" * 32).exists()
        assert store.total_bytes() <= per_entry * 2

    def test_max_age_drops_expired(self, tmp_path):
        import os

        store = _store(tmp_path, budget=StoreBudget(max_age_s=100.0))
        store.put("aa" * 32, 1)
        store.put("bb" * 32, 2)
        os.utime(store._path("aa" * 32), (1000.0, 1000.0))
        os.utime(store._path("bb" * 32), (5000.0, 5000.0))
        assert store.evict_to_budget(now=5050.0) == 1
        assert not store._path("aa" * 32).exists()
        assert store._path("bb" * 32).exists()

    def test_budget_validation(self):
        with pytest.raises(ConfigError):
            StoreBudget(max_entries=-1)
        with pytest.raises(ConfigError):
            StoreBudget(max_bytes=-1)
        with pytest.raises(ConfigError):
            StoreBudget(max_age_s=-0.5)


class TestConcurrency:
    def test_evict_racing_put_never_loses_the_new_entry(self, tmp_path):
        """An eviction sweep racing in-flight puts cannot corrupt state.

        Hammers the same keys with puts on several threads while another
        thread runs aggressive budget evictions.  Afterwards every key
        either misses cleanly or returns one of the values some thread
        wrote — never a corrupt or half-written entry.
        """
        store = _store(tmp_path, budget=StoreBudget(max_entries=2))
        keys = [f"{index:02d}" * 32 for index in range(6)]
        stop = threading.Event()
        errors = []

        def writer(seed):
            try:
                for round_index in range(50):
                    for key in keys:
                        store.put(key, {"seed": seed, "round": round_index})
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        def evictor():
            try:
                while not stop.is_set():
                    store.evict_to_budget()
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(seed,))
                   for seed in range(3)]
        sweeper = threading.Thread(target=evictor)
        sweeper.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        sweeper.join()
        assert not errors
        for key in keys:
            hit, value = store.get(key)
            if hit:
                assert set(value) == {"seed", "round"}
        assert store.stats.corrupt == 0
        assert store.stats.stale == 0

    def test_corrupt_entry_unlink_under_parallel_readers(self, tmp_path):
        """Many readers hitting one corrupt entry: every read is a clean
        miss, the entry is unlinked at most once, and nothing raises."""
        store = _store(tmp_path)
        key = "ab" * 32
        store.put(key, 1)
        store._path(key).write_bytes(b"\x80garbage")
        results = []
        errors = []

        def reader():
            try:
                results.append(store.get(key))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(hit is False and value is None
                   for hit, value in results)
        assert not store._path(key).exists()
        assert store.stats.corrupt >= 1

    def test_eviction_leaves_tmp_files_alone(self, tmp_path):
        """In-flight tempfile writes are invisible to the eviction scan."""
        store = _store(tmp_path, budget=StoreBudget(max_entries=0))
        store.put("aa" * 32, 1)
        bucket = store._path("aa" * 32).parent
        tmp_file = bucket / "inflight.tmp"
        tmp_file.write_bytes(b"partial")
        assert store.evict_to_budget() == 1
        assert tmp_file.exists()


class TestStatsType:
    def test_store_stats_extends_cache_stats(self, tmp_path):
        store = _store(tmp_path)
        assert isinstance(store.stats, StoreStats)
        assert store.stats.stale == 0
        assert store.stats.evicted == 0
