"""Traces, the simulated DAQ card, and statistics."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure import (
    DAQCard,
    DAQSpec,
    SampleSeries,
    StepTrace,
    distribution_summary,
    histogram,
    level_separation,
)
from repro.measure.stats import bit_error_rate
from repro.measure.trace import merge_step_traces


class TestStepTrace:
    def test_value_at_returns_latest_breakpoint(self):
        trace = StepTrace("f")
        trace.record(0.0, 1.0)
        trace.record(10.0, 2.0)
        assert trace.value_at(5.0) == 1.0
        assert trace.value_at(10.0) == 2.0
        assert trace.value_at(100.0) == 2.0

    def test_default_before_first_record(self):
        trace = StepTrace("f")
        trace.record(10.0, 2.0)
        assert trace.value_at(5.0, default=-1) == -1

    def test_duplicate_value_compacted(self):
        trace = StepTrace("f")
        trace.record(0.0, 1.0)
        trace.record(10.0, 1.0)
        assert len(trace) == 1

    def test_same_time_overwrites(self):
        trace = StepTrace("f")
        trace.record(10.0, 1.0)
        trace.record(10.0, 2.0)
        assert trace.value_at(10.0) == 2.0
        assert len(trace) == 1

    def test_time_going_backwards_rejected(self):
        trace = StepTrace("f")
        trace.record(10.0, 1.0)
        with pytest.raises(MeasurementError):
            trace.record(5.0, 2.0)

    def test_changes_in_window(self):
        trace = StepTrace("f")
        for t in (0.0, 10.0, 20.0, 30.0):
            trace.record(t, t)
        assert trace.changes_in(10.0, 30.0) == [(10.0, 10.0), (20.0, 20.0)]

    def test_time_weighted_mean(self):
        trace = StepTrace("f")
        trace.record(0.0, 1.0)
        trace.record(50.0, 3.0)
        assert trace.time_weighted_mean(0.0, 100.0) == pytest.approx(2.0)

    def test_time_weighted_mean_empty_interval_rejected(self):
        trace = StepTrace("f")
        trace.record(0.0, 1.0)
        with pytest.raises(MeasurementError):
            trace.time_weighted_mean(10.0, 10.0)

    def test_merge_step_traces(self):
        a = StepTrace("a")
        a.record(0.0, 1)
        a.record(10.0, 2)
        b = StepTrace("b")
        b.record(5.0, 1)
        times = merge_step_traces([a, b], 0.0, 20.0)
        assert times == [0.0, 5.0, 10.0, 20.0]


class TestSampleSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            SampleSeries(np.array([1.0, 2.0]), np.array([1.0]))

    def test_delta_from_start(self):
        series = SampleSeries(np.array([0.0, 1.0]), np.array([5.0, 7.0]))
        delta = series.delta_from_start()
        assert list(delta.values) == [0.0, 2.0]

    def test_window(self):
        series = SampleSeries(np.arange(10.0), np.arange(10.0))
        window = series.window(2.0, 5.0)
        assert list(window.times_ns) == [2.0, 3.0, 4.0, 5.0]

    def test_minmax_and_mean(self):
        series = SampleSeries(np.arange(3.0), np.array([1.0, 5.0, 3.0]))
        assert series.minmax() == (1.0, 5.0)
        assert series.mean() == pytest.approx(3.0)

    def test_duration(self):
        series = SampleSeries(np.array([10.0, 30.0]), np.zeros(2))
        assert series.duration_ns == 20.0


class TestDAQ:
    def test_samples_a_signal(self):
        daq = DAQCard(DAQSpec(max_sample_rate_hz=1e7, accuracy=1.0))
        series = daq.sample(lambda t: 2.0 * t, 0.0, 1000.0, sample_rate_hz=1e7)
        assert len(series) == 11
        assert series.values[5] == pytest.approx(2.0 * series.times_ns[5])

    def test_rate_limited_by_instrument(self):
        daq = DAQCard()
        with pytest.raises(MeasurementError):
            daq.sample(lambda t: 1.0, 0.0, 1000.0, sample_rate_hz=1e9)

    def test_default_rate_is_instrument_max(self):
        daq = DAQCard(DAQSpec(accuracy=1.0))
        series = daq.sample(lambda t: 1.0, 0.0, 1e6)
        # 3.5 MS/s over 1 ms -> ~3500 samples.
        assert 3400 <= len(series) <= 3600

    def test_gain_error_bounded_by_accuracy(self):
        daq = DAQCard(DAQSpec(max_sample_rate_hz=1e7, accuracy=0.9994), seed=1)
        series = daq.sample(lambda t: 1.0, 0.0, 1000.0, sample_rate_hz=1e7)
        assert series.mean() == pytest.approx(1.0, abs=0.01)

    def test_empty_window_rejected(self):
        daq = DAQCard()
        with pytest.raises(MeasurementError):
            daq.sample(lambda t: 1.0, 10.0, 10.0)

    def test_noise_added_when_configured(self):
        daq = DAQCard(DAQSpec(accuracy=1.0, noise_rms=0.1), seed=2)
        series = daq.sample(lambda t: 1.0, 0.0, 1e5, sample_rate_hz=1e6)
        assert float(np.std(series.values)) > 0.01


class TestStats:
    def test_distribution_summary(self):
        summary = distribution_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.median == 3.0
        assert summary.count == 5
        assert summary.minimum == 1.0 and summary.maximum == 5.0

    def test_summary_rejects_empty(self):
        with pytest.raises(MeasurementError):
            distribution_summary([])

    def test_histogram_counts_sum_to_n(self):
        rows = histogram([1.0, 2.0, 2.5, 9.0], bins=4)
        assert sum(count for _, _, count in rows) == 4

    def test_level_separation_positive_for_disjoint_clusters(self):
        gaps = level_separation({0: [1.0, 2.0], 1: [5.0, 6.0]})
        assert gaps == [(0, 1, 3.0)]

    def test_level_separation_negative_for_overlap(self):
        gaps = level_separation({0: [1.0, 5.0], 1: [4.0, 6.0]})
        assert gaps[0][2] < 0

    def test_level_separation_needs_two_levels(self):
        with pytest.raises(MeasurementError):
            level_separation({0: [1.0]})

    def test_bit_error_rate_counts_bits(self):
        # Symbol 0b00 vs 0b11 is two wrong bits.
        assert bit_error_rate([0b00], [0b11]) == 1.0
        assert bit_error_rate([0b00, 0b01], [0b00, 0b00]) == 0.25

    def test_bit_error_rate_length_mismatch(self):
        with pytest.raises(MeasurementError):
            bit_error_rate([0], [0, 1])
