"""Reliable session transport over the covert channels."""

from types import SimpleNamespace

import pytest

from repro import System
from repro.core import ChannelLocation, IccCoresCovert, IccSMTcovert, IccThreadCovert
from repro.core.channel import TransferReport
from repro.core.encoding import bytes_to_symbols
from repro.core.session import (
    CovertSession,
    FecScheme,
    SessionConfig,
    SessionReport,
)
from repro.errors import ProtocolError
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.noise import attach_concurrent_app


def clean_session(channel_cls=IccThreadCovert, **kwargs):
    system = System(cannon_lake_i3_8121u())
    return CovertSession(channel_cls(system), SessionConfig(**kwargs))


class TestSessionConfig:
    def test_code_rates(self):
        assert SessionConfig(fec=FecScheme.NONE).code_rate == 1.0
        assert SessionConfig(fec=FecScheme.HAMMING).code_rate == 0.5
        assert SessionConfig(fec=FecScheme.REPETITION3).code_rate == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ProtocolError):
            SessionConfig(frame_bytes=0)
        with pytest.raises(ProtocolError):
            SessionConfig(frame_bytes=300)
        with pytest.raises(ProtocolError):
            SessionConfig(max_retries=-1)


class TestCleanTransport:
    @pytest.mark.parametrize("fec", list(FecScheme))
    def test_roundtrip_every_fec(self, fec):
        session = clean_session(fec=fec)
        payload = bytes(range(20))
        report = session.send(payload)
        assert report.ok
        assert report.delivered == payload
        assert report.retransmissions == 0

    def test_multi_frame_payload(self):
        session = clean_session(frame_bytes=4)
        payload = bytes(range(15))  # 4 frames, last one short
        report = session.send(payload)
        assert report.ok
        assert len(report.frames) == 4

    def test_single_byte_payload(self):
        report = clean_session().send(b"\x42")
        assert report.ok

    def test_works_over_smt_and_cores_channels(self):
        for channel_cls in (IccSMTcovert, IccCoresCovert):
            report = clean_session(channel_cls).send(b"\x13\x57")
            assert report.ok, channel_cls.__name__

    def test_goodput_positive_when_ok(self):
        report = clean_session().send(bytes(8))
        assert report.goodput_bps > 0

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            clean_session().send(b"")


class TestNoisyTransport:
    def _noisy_session(self, fec, rate=800.0, seed=9):
        system = System(cannon_lake_i3_8121u(), seed=seed)
        attach_concurrent_app(system, system.thread_on(1), rate,
                              duration_ms=800.0, seed=seed)
        return CovertSession(IccThreadCovert(system), SessionConfig(fec=fec))

    def test_hamming_survives_noise_that_kills_uncoded(self):
        coded = self._noisy_session(FecScheme.HAMMING).send(bytes(range(32)))
        uncoded = self._noisy_session(FecScheme.NONE).send(bytes(range(32)))
        assert coded.ok
        assert not uncoded.ok

    def test_retransmissions_recover_residual_errors(self):
        report = self._noisy_session(FecScheme.HAMMING, rate=300.0).send(
            bytes(range(32)))
        assert report.ok
        assert report.retransmissions >= 1

    def test_failed_session_reports_honestly(self):
        report = self._noisy_session(FecScheme.NONE, rate=3000.0).send(
            bytes(range(16)))
        assert not report.ok
        assert report.delivered is None
        assert report.goodput_bps == 0.0
        assert any(not f.delivered for f in report.frames)


class _JammedChannel:
    """A channel whose every transfer arrives fully corrupted.

    Deterministic stand-in for a hopelessly noisy link: received bytes
    are the bitwise complement of what was sent, so no CRC ever passes
    and every retry is spent.  Carries just enough surface for
    :class:`CovertSession` — a ``system.now`` clock and ``transfer``.
    """

    def __init__(self):
        self.system = SimpleNamespace(now=0.0)
        self.transfers = 0

    def transfer(self, payload):
        self.transfers += 1
        start = self.system.now
        self.system.now += 1_000.0
        corrupted = bytes(b ^ 0xFF for b in payload)
        return TransferReport(
            sent=payload,
            received=corrupted,
            symbols_sent=bytes_to_symbols(payload),
            symbols_received=bytes_to_symbols(corrupted),
            measurements_tsc=[],
            start_ns=start,
            end_ns=self.system.now,
            location=ChannelLocation.SAME_THREAD,
        )


class TestRetryExhaustion:
    def test_exhausted_retries_reported_honestly(self):
        channel = _JammedChannel()
        session = CovertSession(
            channel,
            SessionConfig(fec=FecScheme.NONE, max_retries=2, frame_bytes=4))
        report = session.send(bytes(range(8)))  # 2 frames of 4 bytes
        assert not report.ok
        assert report.delivered is None
        assert len(report.frames) == 2
        assert all(not f.delivered for f in report.frames)
        assert all(f.attempts == 3 for f in report.frames)  # 1 + 2 retries
        assert report.total_attempts == 6
        assert report.retransmissions == 4
        assert channel.transfers == 6
        assert report.goodput_bps == 0.0

    def test_zero_retry_budget_means_one_attempt(self):
        channel = _JammedChannel()
        session = CovertSession(
            channel,
            SessionConfig(fec=FecScheme.NONE, max_retries=0, frame_bytes=4))
        report = session.send(b"\xa5\x3c")
        assert not report.ok
        assert report.retransmissions == 0
        assert channel.transfers == 1


class TestSessionReport:
    def test_attempt_accounting(self):
        from repro.core.session import FrameLog

        report = SessionReport(
            payload=b"ab", delivered=b"ab",
            frames=[FrameLog(0, 2, True), FrameLog(1, 1, True)],
            start_ns=0.0, end_ns=1e9)
        assert report.total_attempts == 3
        assert report.retransmissions == 1
        assert report.goodput_bps == pytest.approx(16.0)


class TestQuietSensing:
    """Section 6.3's third strategy: transmit during quiet periods."""

    def test_quiet_system_senses_quiet(self):
        session = clean_session()
        assert session.channel_is_quiet()

    def test_hot_system_senses_busy_sometimes(self):
        system = System(cannon_lake_i3_8121u(), seed=3)
        attach_concurrent_app(system, system.thread_on(1), 5000.0,
                              duration_ms=300.0, seed=3)
        session = CovertSession(IccThreadCovert(system))
        verdicts = [session.channel_is_quiet() for _ in range(12)]
        assert verdicts.count(False) >= 2

    def test_gated_send_records_senses(self):
        session = clean_session(wait_for_quiet=True)
        report = session.send(b"\x42\x43")
        assert report.ok
        assert all(f.quiet_senses >= 1 for f in report.frames)

    def test_patience_validation(self):
        with pytest.raises(ProtocolError):
            SessionConfig(quiet_patience=0)

    def test_gated_send_still_delivers_under_noise(self):
        system = System(cannon_lake_i3_8121u(), seed=21)
        attach_concurrent_app(system, system.thread_on(1), 400.0,
                              duration_ms=900.0, seed=21)
        session = CovertSession(
            IccThreadCovert(system),
            SessionConfig(wait_for_quiet=True, quiet_patience=4))
        report = session.send(bytes(range(16)))
        assert report.ok
