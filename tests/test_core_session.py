"""Reliable session transport over the covert channels."""

from types import SimpleNamespace

import pytest

from repro import System
from repro.core import ChannelLocation, IccCoresCovert, IccSMTcovert, IccThreadCovert
from repro.core.channel import TransferReport
from repro.core.levels import ROBUST_SYMBOLS
from repro.core.encoding import bytes_to_symbols
from repro.core.session import (
    AdaptiveConfig,
    CovertSession,
    FecScheme,
    SessionConfig,
    SessionReport,
)
from repro.errors import ProtocolError
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.noise import attach_concurrent_app


def clean_session(channel_cls=IccThreadCovert, **kwargs):
    system = System(cannon_lake_i3_8121u())
    return CovertSession(channel_cls(system), SessionConfig(**kwargs))


class TestSessionConfig:
    def test_code_rates(self):
        assert SessionConfig(fec=FecScheme.NONE).code_rate == 1.0
        assert SessionConfig(fec=FecScheme.HAMMING).code_rate == 0.5
        assert SessionConfig(fec=FecScheme.REPETITION3).code_rate == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ProtocolError):
            SessionConfig(frame_bytes=0)
        with pytest.raises(ProtocolError):
            SessionConfig(frame_bytes=300)
        with pytest.raises(ProtocolError):
            SessionConfig(max_retries=-1)


class TestCleanTransport:
    @pytest.mark.parametrize("fec", list(FecScheme))
    def test_roundtrip_every_fec(self, fec):
        session = clean_session(fec=fec)
        payload = bytes(range(20))
        report = session.send(payload)
        assert report.ok
        assert report.delivered == payload
        assert report.retransmissions == 0

    def test_multi_frame_payload(self):
        session = clean_session(frame_bytes=4)
        payload = bytes(range(15))  # 4 frames, last one short
        report = session.send(payload)
        assert report.ok
        assert len(report.frames) == 4

    def test_single_byte_payload(self):
        report = clean_session().send(b"\x42")
        assert report.ok

    def test_works_over_smt_and_cores_channels(self):
        for channel_cls in (IccSMTcovert, IccCoresCovert):
            report = clean_session(channel_cls).send(b"\x13\x57")
            assert report.ok, channel_cls.__name__

    def test_goodput_positive_when_ok(self):
        report = clean_session().send(bytes(8))
        assert report.goodput_bps > 0

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            clean_session().send(b"")


class TestNoisyTransport:
    def _noisy_session(self, fec, rate=800.0, seed=9):
        system = System(cannon_lake_i3_8121u(), seed=seed)
        attach_concurrent_app(system, system.thread_on(1), rate,
                              duration_ms=800.0, seed=seed)
        return CovertSession(IccThreadCovert(system), SessionConfig(fec=fec))

    def test_hamming_survives_noise_that_kills_uncoded(self):
        coded = self._noisy_session(FecScheme.HAMMING).send(bytes(range(32)))
        uncoded = self._noisy_session(FecScheme.NONE).send(bytes(range(32)))
        assert coded.ok
        assert not uncoded.ok

    def test_retransmissions_recover_residual_errors(self):
        report = self._noisy_session(FecScheme.HAMMING, rate=300.0).send(
            bytes(range(32)))
        assert report.ok
        assert report.retransmissions >= 1

    def test_failed_session_reports_honestly(self):
        report = self._noisy_session(FecScheme.NONE, rate=3000.0).send(
            bytes(range(16)))
        assert not report.ok
        assert report.delivered is None
        assert report.goodput_bps == 0.0
        assert any(not f.delivered for f in report.frames)


class _JammedChannel:
    """A channel whose every transfer arrives fully corrupted.

    Deterministic stand-in for a hopelessly noisy link: received bytes
    are the bitwise complement of what was sent, so no CRC ever passes
    and every retry is spent.  Carries just enough surface for
    :class:`CovertSession` — a ``system.now`` clock and ``transfer``.
    """

    def __init__(self):
        self.system = SimpleNamespace(now=0.0)
        self.transfers = 0

    def transfer(self, payload):
        self.transfers += 1
        start = self.system.now
        self.system.now += 1_000.0
        corrupted = bytes(b ^ 0xFF for b in payload)
        return TransferReport(
            sent=payload,
            received=corrupted,
            symbols_sent=bytes_to_symbols(payload),
            symbols_received=bytes_to_symbols(corrupted),
            measurements_tsc=[],
            start_ns=start,
            end_ns=self.system.now,
            location=ChannelLocation.SAME_THREAD,
        )


class TestRetryExhaustion:
    def test_exhausted_retries_reported_honestly(self):
        channel = _JammedChannel()
        session = CovertSession(
            channel,
            SessionConfig(fec=FecScheme.NONE, max_retries=2, frame_bytes=4))
        report = session.send(bytes(range(8)))  # 2 frames of 4 bytes
        assert not report.ok
        assert report.delivered is None
        assert len(report.frames) == 2
        assert all(not f.delivered for f in report.frames)
        assert all(f.attempts == 3 for f in report.frames)  # 1 + 2 retries
        assert report.total_attempts == 6
        assert report.retransmissions == 4
        assert channel.transfers == 6
        assert report.goodput_bps == 0.0

    def test_zero_retry_budget_means_one_attempt(self):
        channel = _JammedChannel()
        session = CovertSession(
            channel,
            SessionConfig(fec=FecScheme.NONE, max_retries=0, frame_bytes=4))
        report = session.send(b"\xa5\x3c")
        assert not report.ok
        assert report.retransmissions == 0
        assert channel.transfers == 1


class TestSessionReport:
    def test_attempt_accounting(self):
        from repro.core.session import FrameLog

        report = SessionReport(
            payload=b"ab", delivered=b"ab",
            frames=[FrameLog(0, 2, True), FrameLog(1, 1, True)],
            start_ns=0.0, end_ns=1e9)
        assert report.total_attempts == 3
        assert report.retransmissions == 1
        assert report.goodput_bps == pytest.approx(16.0)


class TestQuietSensing:
    """Section 6.3's third strategy: transmit during quiet periods."""

    def test_quiet_system_senses_quiet(self):
        session = clean_session()
        assert session.channel_is_quiet()

    def test_hot_system_senses_busy_sometimes(self):
        system = System(cannon_lake_i3_8121u(), seed=3)
        attach_concurrent_app(system, system.thread_on(1), 5000.0,
                              duration_ms=300.0, seed=3)
        session = CovertSession(IccThreadCovert(system))
        verdicts = [session.channel_is_quiet() for _ in range(12)]
        assert verdicts.count(False) >= 2

    def test_gated_send_records_senses(self):
        session = clean_session(wait_for_quiet=True)
        report = session.send(b"\x42\x43")
        assert report.ok
        assert all(f.quiet_senses >= 1 for f in report.frames)

    def test_patience_validation(self):
        with pytest.raises(ProtocolError):
            SessionConfig(quiet_patience=0)

    def test_gated_send_still_delivers_under_noise(self):
        system = System(cannon_lake_i3_8121u(), seed=21)
        attach_concurrent_app(system, system.thread_on(1), 400.0,
                              duration_ms=900.0, seed=21)
        session = CovertSession(
            IccThreadCovert(system),
            SessionConfig(wait_for_quiet=True, quiet_patience=4))
        report = session.send(bytes(range(16)))
        assert report.ok


class TestAdaptiveConfigValidation:
    def test_defaults_valid(self):
        config = AdaptiveConfig()
        assert config.ber_window == 6
        assert config.degraded_fec == FecScheme.REPETITION3

    def test_window_and_bound_validated(self):
        with pytest.raises(ProtocolError):
            AdaptiveConfig(ber_window=0)
        with pytest.raises(ProtocolError):
            AdaptiveConfig(ber_bound=0.0)
        with pytest.raises(ProtocolError):
            AdaptiveConfig(ber_bound=1.0)
        with pytest.raises(ProtocolError):
            AdaptiveConfig(recalibration_budget=-1)
        with pytest.raises(ProtocolError):
            AdaptiveConfig(backoff_base_us=100.0, backoff_max_us=50.0)


class TestRobustTransfer:
    def test_round_trip_one_bit_per_symbol(self):
        system = System(cannon_lake_i3_8121u())
        report = IccThreadCovert(system).transfer_robust(b"\x5a\x3c")
        assert report.received == b"\x5a\x3c"
        assert report.bits_per_symbol == 1
        assert len(report.symbols_sent) == 16
        assert report.ber == 0.0

    def test_robust_calibration_uses_two_levels(self):
        system = System(cannon_lake_i3_8121u())
        channel = IccThreadCovert(system)
        channel.transfer_robust(b"\x42")
        assert channel._calibrated_symbols == ROBUST_SYMBOLS


class TestAdaptiveSession:
    def test_clean_channel_never_adapts(self):
        session = clean_session(adaptive=AdaptiveConfig())
        report = session.send(bytes(range(12)))
        assert report.ok
        assert report.recalibrations == 0
        assert not report.degraded
        assert report.backoff_ns == 0.0
        assert report.residual_ber == 0.0

    def test_adaptive_identical_to_plain_when_clean(self):
        plain = clean_session().send(b"\x5a\x3c\xc3\x0f")
        adaptive = clean_session(adaptive=AdaptiveConfig()).send(
            b"\x5a\x3c\xc3\x0f")
        assert plain.delivered == adaptive.delivered
        assert plain.total_attempts == adaptive.total_attempts

    def test_backoff_waits_between_retries(self):
        system = System(cannon_lake_i3_8121u(), seed=5)
        from repro.faults import parse_fault_spec

        parse_fault_spec("slot-jitter:seed=11").attach(system)
        session = CovertSession(
            IccCoresCovert(system),
            SessionConfig(max_retries=8, adaptive=AdaptiveConfig()))
        report = session.send(b"\x5a\x0f\xc3\x3c")
        if report.retransmissions:
            assert report.backoff_ns > 0.0

    def test_degrades_under_persistent_faults(self):
        system = System(cannon_lake_i3_8121u(), seed=5)
        from repro.faults import parse_fault_spec

        parse_fault_spec("slot-jitter:sigma_us=3,seed=11").attach(system)
        session = CovertSession(
            IccCoresCovert(system),
            SessionConfig(max_retries=8, adaptive=AdaptiveConfig(
                ber_window=2, ber_bound=0.02, recalibration_budget=1)))
        report = session.send(b"\x5a\x0f\xc3\x3c\xa5\x69\x96\x0a")
        assert report.degraded
        assert any(f.degraded for f in report.frames)

    def test_adaptive_beats_plain_arq_under_default_suite(self):
        from repro.faults import parse_fault_spec

        payload = b"\x5a\x0f\xc3\x3c\xa5\x69\x96\x0a"

        def run(adaptive):
            system = System(cannon_lake_i3_8121u(), seed=2021)
            parse_fault_spec("default:seed=2701").attach(system)
            config = SessionConfig(
                max_retries=8,
                adaptive=AdaptiveConfig() if adaptive else None)
            return CovertSession(IccCoresCovert(system), config).send(payload)

        plain = run(adaptive=False)
        resilient = run(adaptive=True)
        assert not plain.ok and plain.residual_ber > 1e-1
        assert resilient.ok and resilient.residual_ber <= 1e-2
        assert resilient.recalibrations > 0 or resilient.degraded

    def test_best_effort_assembly_on_failure(self):
        system = System(cannon_lake_i3_8121u(), seed=5)
        from repro.faults import parse_fault_spec

        parse_fault_spec("slot-jitter:sigma_us=4,seed=3").attach(system)
        session = CovertSession(
            IccCoresCovert(system),
            SessionConfig(max_retries=0))
        payload = b"\x5a\x0f\xc3\x3c"
        report = session.send(payload)
        if not report.ok:
            assert len(report.best_effort) == len(payload)
            assert 0.0 < report.residual_ber <= 1.0
