"""System-level property tests: invariants over random schedules."""

from hypothesis import given, settings, strategies as st

from repro import IClass, Loop, System, SystemOptions
from repro.soc.config import cannon_lake_i3_8121u
from repro.units import us_to_ns

# Keep runs small: each example boots a full system.
_SETTINGS = dict(max_examples=15, deadline=None)

classes = st.sampled_from(list(IClass))
schedules = st.lists(
    st.tuples(
        st.integers(0, 3),            # hardware thread
        classes,                      # instruction class
        st.integers(1, 25),           # iterations
        st.floats(0.0, 50_000.0),     # start offset ns
    ),
    min_size=1, max_size=6,
)


def run_schedule(schedule, options=SystemOptions()):
    """Execute a random schedule; returns (system, results)."""
    system = System(cannon_lake_i3_8121u(), options=options)
    results = []

    def program(thread_id, iclass, iterations, start_ns):
        def run():
            yield system.until(start_ns)
            result = yield system.execute(thread_id, Loop(iclass, iterations))
            results.append(result)
        return run()

    for thread_id, iclass, iterations, start_ns in schedule:
        system.spawn(program(thread_id, iclass, iterations, start_ns))
    system.run_until(us_to_ns(4_000.0))
    return system, results


class TestScheduleInvariants:
    @settings(**_SETTINGS)
    @given(schedules)
    def test_every_loop_completes(self, schedule):
        # One loop at a time per thread: keep threads distinct per item.
        deduped = {item[0]: item for item in schedule}.values()
        _, results = run_schedule(list(deduped))
        assert len(results) == len(deduped)

    @settings(**_SETTINGS)
    @given(schedules)
    def test_throttled_time_bounded_by_elapsed(self, schedule):
        deduped = list({item[0]: item for item in schedule}.values())
        _, results = run_schedule(deduped)
        for result in results:
            assert 0.0 <= result.throttled_ns <= result.elapsed_ns + 1e-6

    @settings(**_SETTINGS)
    @given(schedules)
    def test_tsc_consistent_with_wall_time(self, schedule):
        deduped = list({item[0]: item for item in schedule}.values())
        system, results = run_schedule(deduped)
        for result in results:
            expected = result.elapsed_ns * system.config.base_freq_ghz
            assert abs(result.elapsed_tsc - expected) <= 2

    @settings(**_SETTINGS)
    @given(schedules)
    def test_rail_voltage_always_within_limits(self, schedule):
        deduped = list({item[0]: item for item in schedule}.values())
        system, _ = run_schedule(deduped)
        spec = system.pmu.rail_of(0).spec
        for t in range(0, 4_000_000, 250_000):
            v = system.vcc_at(float(t))
            assert 0.5 <= v <= spec.vcc_max + 1e-9

    @settings(**_SETTINGS)
    @given(schedules)
    def test_no_voltage_emergencies_in_normal_operation(self, schedule):
        # The central safety property of current management.
        deduped = list({item[0]: item for item in schedule}.values())
        system, _ = run_schedule(deduped)
        assert system.voltage_emergencies == []

    @settings(**_SETTINGS)
    @given(schedules)
    def test_elapsed_at_least_unthrottled_time(self, schedule):
        deduped = list({item[0]: item for item in schedule}.values())
        system, results = run_schedule(deduped)
        # Frequency can only be at or below the governor request, so the
        # unthrottled time at the requested frequency lower-bounds every
        # execution (modulo the ns-scale gate wake).
        freq = system.pmu.requested_freq_ghz
        for result in results:
            floor = (result.instructions / 2.0) / freq  # ipc <= 2
            assert result.elapsed_ns >= floor - 1e-6

    @settings(**_SETTINGS)
    @given(schedules)
    def test_secure_mode_never_throttles_any_schedule(self, schedule):
        deduped = list({item[0]: item for item in schedule}.values())
        _, results = run_schedule(deduped,
                                  options=SystemOptions(secure_mode=True))
        for result in results:
            assert result.throttled_ns == 0.0

    @settings(**_SETTINGS)
    @given(schedules)
    def test_deterministic_replay(self, schedule):
        deduped = list({item[0]: item for item in schedule}.values())
        _, first = run_schedule(deduped)
        _, second = run_schedule(deduped)
        assert [(r.start_ns, r.end_ns, r.throttled_ns) for r in first] == \
               [(r.start_ns, r.end_ns, r.throttled_ns) for r in second]
