"""Calibrator and slot synchronisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Calibrator, SlotSchedule
from repro.errors import CalibrationError, ProtocolError


def training(clusters):
    """(symbol, value) pairs from {symbol: [values]}."""
    return [(s, v) for s, values in clusters.items() for v in values]


class TestCalibrator:
    def test_decode_matches_training_clusters(self):
        cal = Calibrator(training({0: [10.0, 11.0], 1: [20.0, 21.0],
                                   2: [30.0, 31.0]}))
        assert cal.decode(10.5) == 0
        assert cal.decode(20.5) == 1
        assert cal.decode(30.5) == 2

    def test_decode_extremes(self):
        cal = Calibrator(training({0: [10.0], 1: [20.0]}))
        assert cal.decode(-100.0) == 0
        assert cal.decode(1000.0) == 1

    def test_thresholds_are_midpoints(self):
        cal = Calibrator(training({0: [10.0], 1: [20.0]}))
        assert cal.thresholds == [pytest.approx(15.0)]

    def test_inverted_mapping_supported(self):
        # Same-thread channel: higher symbol -> shorter measurement.
        cal = Calibrator(training({3: [10.0], 2: [20.0], 1: [30.0], 0: [40.0]}))
        assert cal.decode(11.0) == 3
        assert cal.decode(39.0) == 0

    def test_median_center_resists_outliers(self):
        # One interrupt-inflated sample must not move the cluster.
        cal = Calibrator(training({0: [10.0, 10.0, 500.0], 1: [20.0, 20.0, 21.0]}))
        assert cal.decode(12.0) == 0
        assert cal.decode(19.0) == 1

    def test_min_gap_enforced(self):
        with pytest.raises(CalibrationError):
            Calibrator(training({0: [10.0], 1: [10.5]}), min_gap=5.0)

    def test_empty_training_rejected(self):
        with pytest.raises(CalibrationError):
            Calibrator([])

    def test_separations_report_extreme_gaps(self):
        cal = Calibrator(training({0: [10.0, 12.0], 1: [20.0, 22.0]}))
        assert cal.separations() == [(0, 1, pytest.approx(8.0))]

    def test_decode_all(self):
        cal = Calibrator(training({0: [10.0], 1: [20.0]}))
        assert cal.decode_all([9.0, 21.0, 11.0]) == [0, 1, 0]

    def test_stats_exposed(self):
        cal = Calibrator(training({0: [10.0, 12.0]}))
        stats = cal.stats[0]
        assert stats.count == 2
        assert stats.mean == pytest.approx(11.0)
        assert stats.center == pytest.approx(11.0)


class TestSlotSchedule:
    def test_slot_start(self):
        schedule = SlotSchedule(epoch_ns=100.0, slot_ns=50.0)
        assert schedule.slot_start(0) == 100.0
        assert schedule.slot_start(3) == 250.0

    def test_slot_index_at(self):
        schedule = SlotSchedule(100.0, 50.0)
        assert schedule.slot_index_at(99.0) == -1
        assert schedule.slot_index_at(100.0) == 0
        assert schedule.slot_index_at(174.0) == 1

    def test_next_slot_after(self):
        schedule = SlotSchedule(100.0, 50.0)
        assert schedule.next_slot_after(0.0) == 0
        assert schedule.next_slot_after(100.0) == 1
        assert schedule.next_slot_after(160.0) == 2

    def test_negative_slot_rejected(self):
        schedule = SlotSchedule(100.0, 50.0)
        with pytest.raises(ProtocolError):
            schedule.slot_start(-1)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ProtocolError):
            SlotSchedule(0.0, 0.0)
        with pytest.raises(ProtocolError):
            SlotSchedule(-1.0, 10.0)


class TestSlotBoundaryRoundoff:
    """Float round-off on exact slot boundaries (regression).

    ``0.3 / 0.1 == 2.999…`` in float64, so a query exactly on a slot
    boundary used to be assigned to the *previous* slot — and
    ``next_slot_after`` then returned a slot that had already started,
    silently costing the receiver its alignment.
    """

    def test_exact_boundary_belongs_to_the_starting_slot(self):
        schedule = SlotSchedule(0.0, 0.1)
        assert schedule.slot_index_at(0.3) == 3  # 0.3/0.1 == 2.999…
        assert schedule.next_slot_after(0.3) == 4

    def test_boundary_queries_over_awkward_decimals(self):
        schedule = SlotSchedule(0.0, 0.1)
        for k in range(50):
            assert schedule.slot_index_at(k * 0.1) == k, k

    def test_midslot_queries_unaffected(self):
        schedule = SlotSchedule(0.0, 0.1)
        assert schedule.slot_index_at(0.35) == 3
        assert schedule.slot_index_at(0.299) == 2

    @given(
        slot_ns=st.floats(min_value=1e-1, max_value=1e7,
                          allow_nan=False, allow_infinity=False),
        epoch_ns=st.floats(min_value=0.0, max_value=1e12,
                           allow_nan=False, allow_infinity=False),
        k=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=300, deadline=None)
    def test_slot_starts_map_back_to_their_own_slot(self, slot_ns, epoch_ns, k):
        schedule = SlotSchedule(epoch_ns, slot_ns)
        start = schedule.slot_start(k)
        assert schedule.slot_index_at(start) == k
        assert schedule.next_slot_after(start) == k + 1


class TestDecisionDirectedTracking:
    def _drifting_stream(self, centers, symbols, drift_per_step=0.008):
        """Readings whose true centers inflate multiplicatively over time."""
        readings = []
        scale = 1.0
        for symbol in symbols:
            readings.append(centers[symbol] * scale)
            scale *= 1.0 + drift_per_step
        return readings

    def test_static_decoder_loses_lock_under_cumulative_drift(self):
        centers = {0: 10_000.0, 1: 13_000.0, 2: 16_000.0, 3: 19_000.0}
        cal = Calibrator([(s, c) for s, c in centers.items()])
        symbols = [0, 1, 2, 3] * 15
        readings = self._drifting_stream(centers, symbols)
        decoded = cal.decode_all(readings)
        assert decoded != symbols  # drift eventually crosses thresholds

    def test_tracking_decoder_follows_the_drift(self):
        centers = {0: 10_000.0, 1: 13_000.0, 2: 16_000.0, 3: 19_000.0}
        cal = Calibrator([(s, c) for s, c in centers.items()])
        symbols = [0, 1, 2, 3] * 15
        readings = self._drifting_stream(centers, symbols)
        decoded = cal.decode_all_tracking(readings, alpha=0.4)
        assert decoded == symbols

    def test_tracking_centers_actually_move(self):
        cal = Calibrator([(0, 100.0), (1, 200.0)])
        cal.track(0, 110.0, alpha=0.5)
        assert cal.stats[0].center == pytest.approx(105.0)
        assert cal.thresholds[0] == pytest.approx((105.0 + 200.0) / 2)

    def test_outliers_do_not_drag_clusters(self):
        cal = Calibrator([(0, 100.0), (1, 200.0)])
        cal.track(0, 5_000.0, alpha=0.5)  # an interrupt-inflated reading
        assert cal.stats[0].center == pytest.approx(100.0)

    def test_track_validation(self):
        cal = Calibrator([(0, 100.0), (1, 200.0)])
        with pytest.raises(CalibrationError):
            cal.track(0, 100.0, alpha=0.0)
        with pytest.raises(CalibrationError):
            cal.track(9, 100.0)

    def test_tracking_never_worse_under_frequency_steps(self):
        # End to end: governor steps mid-transfer shift the level
        # geometry; tracking must match or beat the static decoder.
        from repro import System
        from repro.core import IccThreadCovert
        from repro.soc.config import cannon_lake_i3_8121u

        def run(tracking):
            system = System(cannon_lake_i3_8121u(), governor_freq_ghz=2.2)
            channel = IccThreadCovert(system)
            channel.calibrate()
            symbols = [0, 1, 2, 3] * 6
            def governor_program():
                yield system.sleep(12 * channel.slot_ns)
                system.pmu.set_requested_freq(2.0)
            system.spawn(governor_program())
            readings = channel.run_symbols(symbols)
            calibrator = channel.calibrator
            decoded = (calibrator.decode_all_tracking(readings)
                       if tracking else calibrator.decode_all(readings))
            return sum(1 for a, b in zip(symbols, decoded) if a != b)

        assert run(tracking=True) <= run(tracking=False)
