"""Electrical loop/slot sizing rules of the channel base class."""

import pytest

from repro import System
from repro.core import ChannelConfig, IccCoresCovert, IccSMTcovert, IccThreadCovert
from repro.soc.config import (
    cannon_lake_i3_8121u,
    sandy_bridge_i7_2600k,
    skylake_sp_xeon_8160,
)
from repro.units import us_to_ns


def wall_ns(loop, freq):
    """Unthrottled wall time of a loop."""
    return loop.total_instructions / (loop.iclass.ipc * freq)


class TestConstantDurationSenders:
    @pytest.mark.parametrize("factory", [
        cannon_lake_i3_8121u, sandy_bridge_i7_2600k, skylake_sp_xeon_8160,
    ])
    def test_sender_walls_equal_across_symbols(self, factory):
        # Rule: the only observable difference between symbols must be
        # the throttling, never the loop length.
        config = factory()
        system = System(config, governor_freq_ghz=config.base_freq_ghz)
        channel = IccThreadCovert(system)
        walls = [wall_ns(channel.sender_loop(s), config.base_freq_ghz)
                 for s in range(4)]
        for wall in walls[1:]:
            assert wall == pytest.approx(walls[0], rel=0.02)


class TestSenderOutlastsItsTransition:
    @pytest.mark.parametrize("factory", [
        cannon_lake_i3_8121u, sandy_bridge_i7_2600k, skylake_sp_xeon_8160,
    ])
    def test_throttled_sender_spans_its_tp(self, factory):
        # Rule 1 of docs/PROTOCOL.md: the grant must land mid-loop.
        config = factory()
        system = System(config, governor_freq_ghz=config.base_freq_ghz)
        channel = IccThreadCovert(system)
        for symbol in range(4):
            loop = channel.sender_loop(symbol)
            iclass = channel.symbol_class(symbol)
            throttled_wall = 4.0 * wall_ns(loop, config.base_freq_ghz)
            worst_dv = max(channel._sender_dv(c)
                           for c in channel.symbol_classes.values())
            tp = channel._tp_estimate_ns(channel._sender_dv(iclass))
            assert throttled_wall >= tp, (factory.__name__, symbol)
            del worst_dv


class TestProbeOutlastsTheWorstTP:
    @pytest.mark.parametrize("channel_cls", [
        IccThreadCovert, IccSMTcovert, IccCoresCovert,
    ])
    def test_probe_duration_covers_worst_case(self, channel_cls):
        from repro.core.levels import ChannelLocation

        config = cannon_lake_i3_8121u()
        system = System(config)
        channel = channel_cls(system)
        probe = channel.probe_loop()
        throttled_wall = 4.0 * wall_ns(probe, config.base_freq_ghz)
        worst_sender_dv = max(channel._sender_dv(c)
                              for c in channel.symbol_classes.values())
        probe_dv = channel._sender_dv(channel.probe_class)
        # The worst TP the probe must span depends on its placement
        # (docs/PROTOCOL.md rule 3).
        if channel.location == ChannelLocation.SAME_THREAD:
            worst_dv = probe_dv
        elif channel.location == ChannelLocation.ACROSS_SMT:
            worst_dv = worst_sender_dv
        else:
            worst_dv = worst_sender_dv + probe_dv
        worst_tp = channel._tp_estimate_ns(worst_dv)
        assert throttled_wall >= worst_tp


class TestSlotSizing:
    def test_slot_covers_reset_plus_send_window(self):
        system = System(cannon_lake_i3_8121u())
        channel = IccThreadCovert(system)
        assert channel.slot_ns >= us_to_ns(
            system.config.reset_time_us)

    def test_slot_grows_with_reset_time(self):
        long_reset = cannon_lake_i3_8121u().with_overrides(
            reset_time_us=2000.0)
        system = System(long_reset)
        channel = IccThreadCovert(system)
        assert channel.slot_ns >= us_to_ns(2000.0)

    def test_slot_grows_with_slower_slew(self):
        slow = cannon_lake_i3_8121u().with_overrides(vr_slew_mv_per_us=0.2)
        fast = cannon_lake_i3_8121u()
        slow_slot = IccThreadCovert(System(slow)).slot_ns
        fast_slot = IccThreadCovert(System(fast)).slot_ns
        assert slow_slot > fast_slot

    def test_slow_slew_channel_still_works_end_to_end(self):
        # The whole point of adaptive sizing: no retuning needed.
        slow = cannon_lake_i3_8121u().with_overrides(vr_slew_mv_per_us=0.4)
        system = System(slow)
        report = IccThreadCovert(system).transfer(b"\x6b\x2e")
        assert report.received == b"\x6b\x2e"
        assert report.ber == 0.0
