"""Central PMU queue-depth bound and grant-policy knobs."""

import pytest

from repro import System, SystemOptions, cannon_lake_i3_8121u
from repro.errors import ConfigError
from repro.isa import IClass
from repro.pdn import GuardbandModel, LoadLine, VoltageRegulator
from repro.pmu import CentralPMU, LimitPolicy, PMUConfig
from repro.pmu.central import GRANT_POLICIES
from repro.pmu.dvfs import pstate_ladder
from repro.soc.config import coffee_lake_i7_9700k
from repro.soc.engine import Engine


def build_pmu(n_cores=4, freq=2.2, pmu_config=PMUConfig()):
    config = coffee_lake_i7_9700k()
    engine = Engine()
    curve = config.vf_curve()
    guardband = GuardbandModel(LoadLine(config.r_ll_mohm / 1000.0))
    limits = LimitPolicy(curve, guardband, config.vcc_max, config.icc_max)
    ladder = pstate_ladder(curve, config.min_freq_ghz, config.max_turbo_ghz)
    spec = config.vr_spec()
    v0 = spec.quantize_vid(curve.vcc_for(freq))
    rails = [VoltageRegulator(spec, v0, name="vr")]
    pmu = CentralPMU(engine, rails, [0] * n_cores, guardband, curve, limits,
                     ladder, config.license_table(), requested_freq_ghz=freq,
                     config=pmu_config)
    return engine, pmu


class TestConfigValidation:
    def test_negative_queue_depth_rejected(self):
        with pytest.raises(ConfigError, match="queue_depth"):
            PMUConfig(queue_depth=-1)

    def test_unknown_grant_policy_rejected(self):
        with pytest.raises(ConfigError, match="grant_policy"):
            PMUConfig(grant_policy="fifo")

    def test_policy_constants_are_valid(self):
        for policy in GRANT_POLICIES:
            assert PMUConfig(grant_policy=policy).grant_policy == policy


class TestBoundedQueue:
    def test_every_contender_is_granted(self):
        # Depth 1: three of the four requests land while the rail is
        # busy and must share the single queued entry — yet nobody's
        # grant may be lost, or a throttled core would wait forever.
        engine, pmu = build_pmu(pmu_config=PMUConfig(queue_depth=1))
        for core in range(4):
            assert pmu.request_up(core, IClass.HEAVY_256)
        engine.run()
        assert pmu.granted == [IClass.HEAVY_256] * 4
        assert not pmu.throttled_cores()

    def test_full_queue_coalesces_instead_of_growing(self):
        engine, pmu = build_pmu(pmu_config=PMUConfig(queue_depth=1))
        for core in range(4):
            pmu.request_up(core, IClass.HEAVY_256)
        # One entry in flight, at most one queued: the late requests
        # merged instead of appending.
        assert len(pmu._queues[0]) <= 1

    def test_merge_keeps_highest_level_per_core(self):
        engine, pmu = build_pmu(pmu_config=PMUConfig(queue_depth=1))
        pmu.request_up(0, IClass.HEAVY_256)   # goes in flight
        pmu.request_up(1, IClass.LIGHT_256)   # queues
        pmu.request_up(1, IClass.HEAVY_512)   # merges, higher level wins
        engine.run()
        assert pmu.granted[1] == IClass.HEAVY_512

    def test_shallow_queue_issues_fewer_transitions(self):
        def run(depth):
            engine, pmu = build_pmu(pmu_config=PMUConfig(queue_depth=depth))
            for core in range(4):
                pmu.request_up(core, IClass.HEAVY_256)
            engine.run()
            assert pmu.granted == [IClass.HEAVY_256] * 4
            return pmu.transitions_issued[0]

        assert run(1) < run(0)


class TestCoalescedPolicy:
    def test_batches_queued_up_requests(self):
        engine, pmu = build_pmu(
            pmu_config=PMUConfig(grant_policy="coalesced"))
        for core in range(4):
            pmu.request_up(core, IClass.HEAVY_256)
        engine.run()
        assert pmu.granted == [IClass.HEAVY_256] * 4
        assert not pmu.throttled_cores()

    def test_fewer_transitions_than_serialized(self):
        def run(policy):
            engine, pmu = build_pmu(
                pmu_config=PMUConfig(grant_policy=policy))
            for core in range(4):
                pmu.request_up(core, IClass.HEAVY_256)
            engine.run()
            return pmu.transitions_issued[0]

        assert run("coalesced") < run("serialized")

    def test_down_requests_survive_coalescing(self):
        engine, pmu = build_pmu(
            pmu_config=PMUConfig(grant_policy="coalesced"))
        pmu.request_up(0, IClass.HEAVY_256)
        engine.run()
        pmu.request_up(1, IClass.HEAVY_512)     # in flight
        pmu.request_down(0, IClass.SCALAR_64)   # queued behind it
        pmu.request_up(2, IClass.HEAVY_256)     # absorbed into the batch
        engine.run()
        assert pmu.granted[0] == IClass.SCALAR_64
        assert pmu.granted[1] == IClass.HEAVY_512
        assert pmu.granted[2] == IClass.HEAVY_256


class TestSystemOptionsThreading:
    def test_knobs_reach_the_pmu(self):
        system = System(
            cannon_lake_i3_8121u(),
            options=SystemOptions(pmu_queue_depth=2,
                                  pmu_grant_policy="coalesced"))
        assert system.pmu.config.queue_depth == 2
        assert system.pmu.config.grant_policy == "coalesced"

    def test_defaults_are_the_paper_behaviour(self):
        system = System(cannon_lake_i3_8121u())
        assert system.pmu.config.queue_depth == 0
        assert system.pmu.config.grant_policy == "serialized"

    def test_bad_policy_rejected_at_system_construction(self):
        with pytest.raises(ConfigError, match="grant_policy"):
            System(cannon_lake_i3_8121u(),
                   options=SystemOptions(pmu_grant_policy="random"))
