"""Per-rule bad/good fixture pairs for every staticcheck pass."""

import textwrap

from repro.staticcheck import analyze_source


def check(source, path="repro/core/example.py", rules=None):
    """Analyse a dedented snippet under a virtual path."""
    return analyze_source(textwrap.dedent(source), path, rules=rules)


def rules_of(findings):
    """The set of rule ids among findings."""
    return {f.rule for f in findings}


class TestUnitMix:
    def test_flags_ns_plus_us_arithmetic(self):
        findings = check("""
            def total(delay_ns, idle_us):
                return delay_ns + idle_us
        """, rules=["unit-mix"])
        assert rules_of(findings) == {"unit-mix"}

    def test_flags_dropped_conversion_on_assignment(self):
        findings = check("""
            def advance(now_ns, last_update_ns):
                dt_s = now_ns - last_update_ns
                return dt_s
        """, rules=["unit-mix"])
        assert rules_of(findings) == {"unit-mix"}

    def test_flags_volt_plus_current(self):
        findings = check("""
            def bogus(vcc, icc):
                return vcc + icc
        """, rules=["unit-mix"])
        assert rules_of(findings) == {"unit-mix"}

    def test_accepts_same_unit_arithmetic(self):
        findings = check("""
            def total(delay_ns, settle_ns):
                return delay_ns + settle_ns
        """, rules=["unit-mix"])
        assert findings == []

    def test_accepts_explicit_conversion(self):
        findings = check("""
            from repro.units import us_to_ns

            def total(delay_ns, idle_us):
                return delay_ns + us_to_ns(idle_us)
        """, rules=["unit-mix"])
        assert findings == []

    def test_accepts_compound_per_units(self):
        findings = check("""
            def slew(delta_mv, slew_mv_per_us):
                return delta_mv / slew_mv_per_us
        """, rules=["unit-mix"])
        assert findings == []

    def test_accepts_constant_scaling(self):
        findings = check("""
            def scale(v_from, v_to):
                delta_mv = abs(v_to - v_from) * 1000.0
                return delta_mv
        """, rules=["unit-mix"])
        assert findings == []


class TestUnitCompare:
    def test_flags_ns_vs_us_comparison(self):
        findings = check("""
            def expired(idle_ns, close_us):
                return idle_ns >= close_us
        """, rules=["unit-compare"])
        assert rules_of(findings) == {"unit-compare"}

    def test_accepts_converted_comparison(self):
        findings = check("""
            from repro.units import us_to_ns

            def expired(idle_ns, close_us):
                return idle_ns >= us_to_ns(close_us)
        """, rules=["unit-compare"])
        assert findings == []


class TestUnitArg:
    def test_flags_us_passed_to_converter_expecting_ns(self):
        findings = check("""
            from repro.units import ns_to_s

            def f(wait_us):
                return ns_to_s(wait_us)
        """, rules=["unit-arg"])
        assert rules_of(findings) == {"unit-arg"}

    def test_flags_us_passed_where_signature_says_ns(self):
        findings = check("""
            def schedule(delay_ns):
                return delay_ns

            def caller(timeout_us):
                return schedule(timeout_us)
        """, rules=["unit-arg"])
        assert rules_of(findings) == {"unit-arg"}

    def test_flags_keyword_argument_mismatch(self):
        findings = check("""
            def schedule(delay_ns):
                return delay_ns

            def caller(timeout_us):
                return schedule(delay_ns=timeout_us)
        """, rules=["unit-arg"])
        assert rules_of(findings) == {"unit-arg"}

    def test_accepts_matching_units(self):
        findings = check("""
            def schedule(delay_ns):
                return delay_ns

            def caller(timeout_ns):
                return schedule(timeout_ns)
        """, rules=["unit-arg"])
        assert findings == []

    def test_ambiguous_signatures_are_skipped(self):
        findings = check("""
            def schedule(delay_ns):
                return delay_ns

            def caller(timeout_us):
                return schedule(timeout_us)
        """, rules=["unit-arg"]) and check("""
            class A:
                def schedule(self, delay_ns):
                    return delay_ns

            class B:
                def schedule(self, when_us, prio):
                    return when_us

            def caller(timeout_us, obj):
                return obj.schedule(timeout_us)
        """, rules=["unit-arg"])
        assert findings == []


class TestUnitReturn:
    def test_flags_us_returned_from_ns_function(self):
        findings = check("""
            def wake_latency_ns(entry_us):
                return entry_us
        """, rules=["unit-return"])
        assert rules_of(findings) == {"unit-return"}

    def test_accepts_converted_return(self):
        findings = check("""
            from repro.units import us_to_ns

            def wake_latency_ns(entry_us):
                return us_to_ns(entry_us)
        """, rules=["unit-return"])
        assert findings == []


class TestUnitFreqDiv:
    def test_flags_time_divided_by_frequency(self):
        findings = check("""
            def wrong(window_ns, freq_ghz):
                return window_ns / freq_ghz
        """, rules=["unit-freq-div"])
        assert rules_of(findings) == {"unit-freq-div"}

    def test_accepts_cycles_divided_by_frequency(self):
        findings = check("""
            def right(cycles, freq_ghz):
                return cycles / freq_ghz
        """, rules=["unit-freq-div"])
        assert findings == []

    def test_accepts_time_times_frequency(self):
        findings = check("""
            def cycles_in(window_ns, freq_ghz):
                return window_ns * freq_ghz
        """, rules=["unit-freq-div"])
        assert findings == []


class TestHeapTiebreak:
    def test_flags_two_tuple_heap_entry(self):
        findings = check("""
            import heapq

            def schedule(heap, time_ns, handle):
                heapq.heappush(heap, (time_ns, handle))
        """, rules=["heap-tiebreak"])
        assert rules_of(findings) == {"heap-tiebreak"}

    def test_accepts_three_tuple_with_sequence(self):
        findings = check("""
            import heapq

            def schedule(heap, time_ns, seq, handle):
                heapq.heappush(heap, (time_ns, next(seq), handle))
        """, rules=["heap-tiebreak"])
        assert findings == []


class TestUnorderedIter:
    def test_flags_iteration_over_set_literal(self):
        findings = check("""
            def total(a, b, c):
                acc = 0.0
                for value in {a, b, c}:
                    acc += value
                return acc
        """, rules=["unordered-iter"])
        assert rules_of(findings) == {"unordered-iter"}

    def test_flags_iteration_over_set_local(self):
        findings = check("""
            def digest(values):
                seen = set(values)
                return [v for v in seen]
        """, rules=["unordered-iter"])
        assert rules_of(findings) == {"unordered-iter"}

    def test_accepts_sorted_iteration(self):
        findings = check("""
            def digest(values):
                seen = set(values)
                return [v for v in sorted(seen)]
        """, rules=["unordered-iter"])
        assert findings == []

    def test_accepts_list_iteration(self):
        findings = check("""
            def total(values):
                acc = 0.0
                for value in values:
                    acc += value
                return acc
        """, rules=["unordered-iter"])
        assert findings == []


class TestPoolCallable:
    def test_flags_lambda_task(self):
        findings = check("""
            def sweep(runner, grid):
                return runner.map(lambda kw: kw, grid)
        """, rules=["pool-callable"])
        assert rules_of(findings) == {"pool-callable"}

    def test_flags_lambda_bound_to_name(self):
        findings = check("""
            def sweep(runner, grid):
                task = lambda kw: kw
                return runner.map(task, grid)
        """, rules=["pool-callable"])
        assert rules_of(findings) == {"pool-callable"}

    def test_flags_locally_defined_task(self):
        findings = check("""
            def sweep(runner, grid):
                def task(**kw):
                    return kw
                return runner.map(task, grid)
        """, rules=["pool-callable"])
        assert rules_of(findings) == {"pool-callable"}

    def test_flags_bound_method_task(self):
        findings = check("""
            def sweep(runner, model, grid):
                return runner.map(model.evaluate, grid)
        """, rules=["pool-callable"])
        assert rules_of(findings) == {"pool-callable"}

    def test_flags_lambda_to_executor_submit(self):
        findings = check("""
            def launch(executor, x):
                return executor.submit(lambda: x + 1)
        """, rules=["pool-callable"])
        assert rules_of(findings) == {"pool-callable"}

    def test_accepts_module_level_task(self):
        findings = check("""
            def task(**kw):
                return kw

            def sweep(runner, grid):
                return runner.map(task, grid)
        """, rules=["pool-callable"])
        assert findings == []

    def test_accepts_imported_module_function(self):
        findings = check("""
            import math

            def sweep(runner, grid):
                return runner.map(math.sqrt, grid)
        """, rules=["pool-callable"])
        assert findings == []

    def test_ignores_non_pool_map(self):
        findings = check("""
            def render(template, rows):
                return template.map(lambda r: r, rows)
        """, rules=["pool-callable"])
        assert findings == []


class TestPoolGlobal:
    def test_flags_global_statement_in_task(self):
        findings = check("""
            COUNTER = 0

            def task(**kw):
                global COUNTER
                COUNTER += 1
                return kw

            def sweep(runner, grid):
                return runner.map(task, grid)
        """, rules=["pool-global"])
        assert rules_of(findings) == {"pool-global"}

    def test_flags_append_to_module_global(self):
        findings = check("""
            RESULTS = []

            def task(**kw):
                RESULTS.append(kw)
                return kw

            def sweep(runner, grid):
                return runner.map(task, grid)
        """, rules=["pool-global"])
        assert rules_of(findings) == {"pool-global"}

    def test_flags_subscript_store_into_module_global(self):
        findings = check("""
            TABLE = {}

            def task(key, value):
                TABLE[key] = value
                return value

            def sweep(runner, grid):
                return runner.map(task, grid)
        """, rules=["pool-global"])
        assert rules_of(findings) == {"pool-global"}

    def test_accepts_pure_task(self):
        findings = check("""
            def task(**kw):
                local = dict(kw)
                local["x"] = 1
                return local

            def sweep(runner, grid):
                return runner.map(task, grid)
        """, rules=["pool-global"])
        assert findings == []

    def test_ignores_functions_never_dispatched(self):
        findings = check("""
            CACHE = {}

            def warm(key, value):
                CACHE[key] = value
        """, rules=["pool-global"])
        assert findings == []


class TestPoolUnpicklable:
    def test_flags_lambda_in_dispatch_kwargs(self):
        findings = check("""
            def task(**kw):
                return kw

            def sweep(runner, grid):
                return runner.map(task, grid, reduce=lambda a, b: a + b)
        """, rules=["pool-unpicklable"])
        assert rules_of(findings) == {"pool-unpicklable"}

    def test_accepts_plain_value_arguments(self):
        findings = check("""
            def task(**kw):
                return kw

            def sweep(runner, grid):
                return runner.map(task, grid, jobs=4)
        """, rules=["pool-unpicklable"])
        assert findings == []


class TestMissingHints:
    def test_flags_unannotated_public_function(self):
        findings = check("""
            def compute(x, y):
                \"\"\"Docstring present; hints absent.\"\"\"
                return x + y
        """, rules=["missing-hints"])
        assert rules_of(findings) == {"missing-hints"}

    def test_accepts_fully_annotated_function(self):
        findings = check("""
            def compute(x: float, y: float) -> float:
                \"\"\"Fully annotated.\"\"\"
                return x + y
        """, rules=["missing-hints"])
        assert findings == []

    def test_ignores_private_and_nested_functions(self):
        findings = check("""
            def _helper(x, y):
                return x + y

            def outer() -> int:
                \"\"\"Nested defs are not public API.\"\"\"
                def inner(a, b):
                    return a + b
                return inner(1, 2)
        """, rules=["missing-hints"])
        assert findings == []


class TestMissingDoc:
    def test_flags_undocumented_module_class_function(self):
        findings = check("""
            class Widget:
                pass

            def spin() -> None:
                pass
        """, rules=["missing-doc"])
        assert len(findings) == 3  # module, class, function

    def test_accepts_documented_api(self):
        findings = check("""
            \"\"\"Module docstring.\"\"\"

            class Widget:
                \"\"\"A widget.\"\"\"

            def spin() -> None:
                \"\"\"Spin it.\"\"\"
        """, rules=["missing-doc"])
        assert findings == []

    def test_ignores_dunder_methods(self):
        findings = check("""
            \"\"\"Module docstring.\"\"\"

            class Widget:
                \"\"\"A widget.\"\"\"

                def __init__(self) -> None:
                    self.x = 1

                def __len__(self) -> int:
                    return self.x
        """, rules=["missing-doc"])
        assert findings == []


class TestKernelCallback:
    def test_flags_hoisted_bound_method_in_loop(self):
        findings = check("""
            def flush(trace, entries):
                record = trace.record
                for t, v in entries:
                    record(t, v)
        """, path="repro/soc/kernel.py", rules=["kernel-callback"])
        assert rules_of(findings) == {"kernel-callback"}

    def test_flags_callable_table_dispatch_in_loop(self):
        findings = check("""
            def flush(traces, entries):
                records = [trace.record for trace in traces]
                for core, (t, v) in enumerate(entries):
                    records[core](t, v)
        """, path="repro/soc/kernel.py", rules=["kernel-callback"])
        assert rules_of(findings) == {"kernel-callback"}

    def test_accepts_calls_outside_loops(self):
        findings = check("""
            def flush_one(trace, t, v):
                record = trace.record
                record(t, v)
        """, path="repro/soc/kernel.py", rules=["kernel-callback"])
        assert findings == []

    def test_inactive_off_the_hot_path(self):
        findings = check("""
            def flush(trace, entries):
                record = trace.record
                for t, v in entries:
                    record(t, v)
        """, rules=["kernel-callback"])
        assert findings == []


class TestKernelFloatAccum:
    def test_flags_augmented_float_accumulation_in_loop(self):
        findings = check("""
            def total_power(samples):
                total = 0.0
                for value in samples:
                    total += value * 1.3
                return total
        """, path="repro/soc/kernel.py", rules=["kernel-float-accum"])
        assert rules_of(findings) == {"kernel-float-accum"}

    def test_flags_builtin_sum(self):
        findings = check("""
            def total_power(samples):
                return sum(samples)
        """, path="repro/soc/kernel.py", rules=["kernel-float-accum"])
        assert rules_of(findings) == {"kernel-float-accum"}

    def test_accepts_integer_counter_bumps(self):
        findings = check("""
            def count(entries):
                index = 0
                for entry in entries:
                    index += 1
                return index
        """, path="repro/soc/kernel.py", rules=["kernel-float-accum"])
        assert findings == []


class TestKernelObjectDtype:
    def test_flags_object_dtype_keyword(self):
        findings = check("""
            import numpy as np

            def pack(values):
                return np.asarray(values, dtype=object)
        """, path="repro/soc/kernel.py", rules=["kernel-object-dtype"])
        assert rules_of(findings) == {"kernel-object-dtype"}

    def test_flags_object_dtype_string(self):
        findings = check("""
            import numpy as np

            def pack(values):
                return np.array(values, dtype="object")
        """, path="repro/soc/kernel.py", rules=["kernel-object-dtype"])
        assert rules_of(findings) == {"kernel-object-dtype"}

    def test_accepts_numeric_dtypes(self):
        findings = check("""
            import numpy as np

            def pack(values):
                return np.asarray(values, dtype=float)
        """, path="repro/soc/kernel.py", rules=["kernel-object-dtype"])
        assert findings == []


class TestRuleSelection:
    def test_rule_filter_excludes_other_passes(self):
        findings = check("""
            import heapq

            def schedule(heap, time_ns, handle, idle_us):
                heapq.heappush(heap, (time_ns, handle))
                return time_ns + idle_us
        """, rules=["unit-mix"])
        assert rules_of(findings) == {"unit-mix"}

    def test_all_rules_run_by_default(self):
        findings = check("""
            import heapq

            def schedule(heap, time_ns, handle, idle_us):
                heapq.heappush(heap, (time_ns, handle))
                return time_ns + idle_us
        """)
        assert {"unit-mix", "heap-tiebreak"} <= rules_of(findings)
