"""Symbol levels, probe classes and payload framing."""

import pytest

from repro.core import (
    ChannelLocation,
    PROBE_CLASSES,
    SYMBOL_BITS,
    SYMBOL_CLASSES,
    symbol_for_class,
)
from repro.core.encoding import (
    bits_to_bytes,
    bits_to_symbols,
    bytes_to_bits,
    bytes_to_symbols,
    symbols_to_bits,
    symbols_to_bytes,
)
from repro.core.levels import (
    class_for_symbol,
    narrow_symbol_classes,
    probe_class_for,
)
from repro.errors import ConfigError, ProtocolError
from repro.isa import IClass


class TestSymbolClasses:
    def test_two_bits_per_symbol(self):
        assert SYMBOL_BITS == 2
        assert len(SYMBOL_CLASSES) == 4

    def test_figure3_mapping(self):
        assert SYMBOL_CLASSES[0b00] == IClass.HEAVY_128
        assert SYMBOL_CLASSES[0b01] == IClass.LIGHT_256
        assert SYMBOL_CLASSES[0b10] == IClass.HEAVY_256
        assert SYMBOL_CLASSES[0b11] == IClass.HEAVY_512

    def test_levels_ordered_by_intensity(self):
        cdyns = [SYMBOL_CLASSES[s].cdyn_nf for s in range(4)]
        assert all(b > a for a, b in zip(cdyns, cdyns[1:]))

    def test_roundtrip_symbol_for_class(self):
        for symbol, iclass in SYMBOL_CLASSES.items():
            assert symbol_for_class(iclass) == symbol

    def test_symbol_for_non_level_class_rejected(self):
        with pytest.raises(ConfigError):
            symbol_for_class(IClass.SCALAR_64)

    def test_class_for_bad_symbol_rejected(self):
        with pytest.raises(ConfigError):
            class_for_symbol(4)


class TestProbeClasses:
    def test_figure3_probes(self):
        assert PROBE_CLASSES[ChannelLocation.SAME_THREAD] == IClass.HEAVY_512
        assert PROBE_CLASSES[ChannelLocation.ACROSS_SMT] == IClass.SCALAR_64
        assert PROBE_CLASSES[ChannelLocation.ACROSS_CORES] == IClass.HEAVY_128

    def test_probe_narrowed_on_256bit_parts(self):
        probe = probe_class_for(ChannelLocation.SAME_THREAD, 256)
        assert probe == IClass.HEAVY_256

    def test_smt_probe_unchanged_on_256bit_parts(self):
        assert probe_class_for(ChannelLocation.ACROSS_SMT, 256) == IClass.SCALAR_64


class TestNarrowLadder:
    def test_full_ladder_on_avx512_parts(self):
        assert narrow_symbol_classes(512) == SYMBOL_CLASSES

    def test_narrow_ladder_tops_at_256(self):
        narrow = narrow_symbol_classes(256)
        assert max(c.width_bits for c in narrow.values()) == 256
        assert len(narrow) == 4

    def test_narrow_ladder_still_monotone(self):
        narrow = narrow_symbol_classes(256)
        cdyns = [narrow[s].cdyn_nf for s in range(4)]
        assert all(b > a for a, b in zip(cdyns, cdyns[1:]))


class TestBitFraming:
    def test_bytes_to_bits_msb_first(self):
        assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bytes_to_bits(b"\x01") == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_bits_to_bytes_roundtrip(self):
        data = bytes(range(0, 256, 7))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bits_to_bytes_rejects_partial_byte(self):
        with pytest.raises(ProtocolError):
            bits_to_bytes([1, 0, 1])

    def test_bits_to_bytes_rejects_non_bits(self):
        with pytest.raises(ProtocolError):
            bits_to_bytes([2] * 8)


class TestSymbolFraming:
    def test_bits_to_symbols_pairs_msb_first(self):
        assert bits_to_symbols([1, 0, 0, 1]) == [0b10, 0b01]

    def test_symbols_to_bits_roundtrip(self):
        symbols = [0, 1, 2, 3, 3, 0]
        assert bits_to_symbols(symbols_to_bits(symbols)) == symbols

    def test_bytes_to_symbols_four_per_byte(self):
        assert bytes_to_symbols(b"\xe4") == [0b11, 0b10, 0b01, 0b00]

    def test_symbols_to_bytes_roundtrip(self):
        data = b"IChannels!"
        assert symbols_to_bytes(bytes_to_symbols(data)) == data

    def test_odd_bit_count_rejected(self):
        with pytest.raises(ProtocolError):
            bits_to_symbols([1])

    def test_bad_symbol_rejected(self):
        with pytest.raises(ProtocolError):
            symbols_to_bits([5])
