"""Scenario grammar: validation, actionable errors, mapping round-trips."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, ProtocolError
from repro.scenarios import (
    NoiseSpec,
    OptionsSpec,
    PMUSpec,
    ScenarioSpec,
    TenantSpec,
    WorkloadSpec,
)
from repro.isa.workload import sevenzip_like_trace

# -- strategies --------------------------------------------------------------

pmu_specs = st.builds(
    PMUSpec,
    queue_depth=st.integers(min_value=0, max_value=4),
    grant_policy=st.sampled_from(("serialized", "coalesced")),
)

options_specs = st.builds(
    OptionsSpec,
    per_core_vr=st.booleans(),
    improved_throttling=st.booleans(),
    secure_mode=st.booleans(),
)

noise_specs = st.builds(
    NoiseSpec,
    interrupt_rate_per_s=st.floats(min_value=1.0, max_value=5000.0),
    interrupt_mean_us=st.floats(min_value=0.5, max_value=20.0),
    horizon_ms=st.floats(min_value=1.0, max_value=100.0),
    seed=st.integers(min_value=0, max_value=2**31),
)

workload_specs = st.one_of(
    st.builds(
        WorkloadSpec,
        kind=st.sampled_from(("browser", "sevenzip", "ml_inference")),
        core=st.integers(min_value=2, max_value=5),
        duration_ms=st.floats(min_value=1.0, max_value=50.0),
        seed=st.integers(min_value=0, max_value=999),
    ),
    st.builds(
        WorkloadSpec,
        kind=st.just("replay"),
        core=st.integers(min_value=2, max_value=5),
        phases=st.lists(
            st.tuples(st.sampled_from(("SCALAR_64", "HEAVY_256")),
                      st.floats(min_value=100.0, max_value=1e6)),
            min_size=1, max_size=4).map(tuple),
    ),
)


@st.composite
def scenario_specs(draw):
    """Valid scenarios on coffee_lake: disjoint pairs + optional extras."""
    n_pairs = draw(st.integers(min_value=1, max_value=2))
    tenants = tuple(
        TenantSpec("cores", 2 * i, 2 * i + 1,
                   offset_fraction=draw(st.floats(min_value=0.0,
                                                  max_value=0.99)))
        for i in range(n_pairs))
    background = draw(st.one_of(st.just(()),
                                st.tuples(workload_specs)))
    # Background cores 2..5 stay on-die even under the n_cores=6
    # override; pair 1 uses cores 2/3 — drop colliding workloads.
    taken = {t for tenant in tenants for t in tenant.hardware_threads()}
    background = tuple(w for w in background
                      if (w.core, w.smt_slot) not in taken)
    return ScenarioSpec(
        name=draw(st.sampled_from(("prop_a", "prop_b", "prop_c"))),
        description="property-generated scenario",
        preset="coffee_lake",
        overrides=draw(st.one_of(
            st.just(()),
            st.just((("vid_step_mv", 10.0),)),
            st.just((("n_cores", 6), ("reset_time_us", 500.0))))),
        options=draw(options_specs),
        pmu=draw(pmu_specs),
        protocol=draw(st.one_of(
            st.just(()),
            st.just((("training_rounds", 1),)),
            st.just((("slot_us", 900.0), ("training_rounds", 2))))),
        tenants=tenants,
        noise=draw(st.one_of(st.none(), noise_specs)),
        background=background,
        payload_hex=draw(st.sampled_from(("43", "4943", "deadbeef"))),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
    )


# -- round-trips -------------------------------------------------------------

class TestRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(spec=scenario_specs())
    def test_mapping_round_trip_is_identity(self, spec):
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec

    @settings(max_examples=60, deadline=None)
    @given(spec=scenario_specs())
    def test_round_trip_survives_json(self, spec):
        wire = json.loads(json.dumps(spec.to_mapping()))
        assert ScenarioSpec.from_mapping(wire) == spec

    @settings(max_examples=60, deadline=None)
    @given(spec=scenario_specs())
    def test_to_mapping_is_canonical(self, spec):
        # from_mapping(to_mapping(s)).to_mapping() is a fixed point.
        mapping = spec.to_mapping()
        assert ScenarioSpec.from_mapping(mapping).to_mapping() == mapping

    @settings(max_examples=40, deadline=None)
    @given(pmu=pmu_specs, options=options_specs, noise=noise_specs)
    def test_component_round_trips(self, pmu, options, noise):
        assert PMUSpec.from_mapping(pmu.to_mapping()) == pmu
        assert OptionsSpec.from_mapping(options.to_mapping()) == options
        assert NoiseSpec.from_mapping(noise.to_mapping()) == noise

    @settings(max_examples=40, deadline=None)
    @given(workload=workload_specs)
    def test_workload_round_trip(self, workload):
        assert WorkloadSpec.from_mapping(workload.to_mapping()) == workload

    def test_replay_captures_a_recorded_trace(self):
        trace = sevenzip_like_trace(5.0, seed=7)
        spec = WorkloadSpec.replay(trace, core=3)
        rebuilt = spec.build_trace()
        assert rebuilt.duration_ns == trace.duration_ns
        assert [(p.iclass, p.duration_ns) for p in rebuilt] == \
               [(p.iclass, p.duration_ns) for p in trace]


# -- rejection: every error names the offending field and the fix ------------

class TestRejection:
    def test_unknown_top_level_field(self):
        with pytest.raises(ConfigError, match="unknown scenario field"):
            ScenarioSpec.from_mapping(
                {"name": "x", "description": "d", "tenant": []})

    def test_unknown_pmu_field(self):
        with pytest.raises(ConfigError, match="valid fields"):
            PMUSpec.from_mapping({"depth": 3})

    def test_unknown_preset_lists_presets(self):
        with pytest.raises(ConfigError, match="cannon_lake"):
            ScenarioSpec(name="x", description="d", preset="alder_lake")

    def test_override_outside_whitelist(self):
        with pytest.raises(ConfigError, match="overridable fields"):
            ScenarioSpec(name="x", description="d",
                         overrides=(("turbo_ceilings", ()),))

    def test_n_cores_above_preset_suggests_bigger_part(self):
        with pytest.raises(ConfigError, match="skylake_sp"):
            ScenarioSpec(name="x", description="d", preset="cannon_lake",
                         overrides=(("n_cores", 16),))

    def test_smt_tenant_on_no_smt_part(self):
        with pytest.raises(ConfigError, match="smt_per_core=1"):
            ScenarioSpec(name="x", description="d", preset="coffee_lake",
                         tenants=(TenantSpec("smt", 0, 0),))

    def test_tenant_pinned_off_die(self):
        with pytest.raises(ConfigError, match="only 2 cores"):
            ScenarioSpec(name="x", description="d", preset="cannon_lake",
                         tenants=(TenantSpec("cores", 0, 5),))

    def test_hardware_thread_collision_names_both_parties(self):
        with pytest.raises(ConfigError, match="collides with tenant 0"):
            ScenarioSpec(name="x", description="d", preset="coffee_lake",
                         tenants=(TenantSpec("cores", 0, 1),
                                  TenantSpec("cores", 1, 2)))

    def test_background_collision_with_tenant(self):
        with pytest.raises(ConfigError, match="collides"):
            ScenarioSpec(name="x", description="d", preset="cannon_lake",
                         tenants=(TenantSpec("cores", 0, 1),),
                         background=(WorkloadSpec("browser", core=1,
                                                  smt_slot=0),))

    def test_cores_tenant_needs_distinct_cores(self):
        with pytest.raises(ConfigError, match="distinct cores"):
            TenantSpec("cores", 1, 1)

    def test_thread_tenant_needs_one_core(self):
        with pytest.raises(ConfigError, match="both parties on one"):
            TenantSpec("thread", 0, 1)

    def test_offset_fraction_range(self):
        with pytest.raises(ConfigError, match="offset_fraction"):
            TenantSpec("cores", 0, 1, offset_fraction=1.0)

    def test_replay_without_phases(self):
        with pytest.raises(ConfigError, match="phases"):
            WorkloadSpec("replay")

    def test_phases_on_synthetic_kind(self):
        with pytest.raises(ConfigError, match="only valid for kind"):
            WorkloadSpec("browser", phases=(("SCALAR_64", 100.0),))

    def test_unknown_instruction_class_in_replay(self):
        with pytest.raises(ConfigError, match="HEAVY_256"):
            WorkloadSpec("replay", phases=(("AVX9000", 100.0),))

    def test_bad_payload_hex(self):
        with pytest.raises(ConfigError, match="payload_hex"):
            ScenarioSpec(name="x", description="d", payload_hex="zz")

    def test_empty_payload(self):
        with pytest.raises(ConfigError, match="at least one byte"):
            ScenarioSpec(name="x", description="d", payload_hex="")

    def test_bad_fault_spec_fails_at_build_time(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(name="x", description="d",
                         faults="not-a-model:intensity=1")

    def test_no_tenants(self):
        with pytest.raises(ConfigError, match="at least one tenant"):
            ScenarioSpec(name="x", description="d", tenants=())

    def test_bad_protocol_field(self):
        with pytest.raises(ConfigError, match="ChannelConfig"):
            ScenarioSpec(name="x", description="d",
                         protocol=(("slot_width_us", 750),))

    def test_bad_protocol_value_propagates(self):
        with pytest.raises(ProtocolError):
            ScenarioSpec(name="x", description="d",
                         protocol=(("slot_us", -5.0),))

    def test_uppercase_name_rejected(self):
        with pytest.raises(ConfigError, match="lowercase identifier"):
            ScenarioSpec(name="Baseline", description="d")

    def test_mapping_requires_name_and_description(self):
        with pytest.raises(ConfigError, match="'name'"):
            ScenarioSpec.from_mapping({"description": "d"})
        with pytest.raises(ConfigError, match="'description'"):
            ScenarioSpec.from_mapping({"name": "x"})


class TestTurboLicenseLimitOption:
    """The defender switch added for the mitigation matrix.

    The option must round-trip like every other switch, but its
    mapping key is emitted only when set: run documents embed the
    options mapping, so an unconditionally emitted new key would
    re-digest every committed scenario golden.
    """

    def test_round_trip_both_ways(self):
        on = OptionsSpec(turbo_license_limit=True)
        off = OptionsSpec()
        assert OptionsSpec.from_mapping(on.to_mapping()) == on
        assert OptionsSpec.from_mapping(off.to_mapping()) == off

    def test_mapping_key_only_emitted_when_set(self):
        assert "turbo_license_limit" not in OptionsSpec().to_mapping()
        assert OptionsSpec(
            turbo_license_limit=True).to_mapping()["turbo_license_limit"]

    def test_reaches_system_options(self):
        spec = ScenarioSpec(
            name="turbo_probe", description="d", preset="cannon_lake",
            options=OptionsSpec(turbo_license_limit=True),
            tenants=(TenantSpec("cores", 0, 1),))
        assert spec.system_options().turbo_license_limit
        assert not ScenarioSpec(
            name="plain_probe", description="d", preset="cannon_lake",
            tenants=(TenantSpec("cores", 0, 1),)).system_options(
        ).turbo_license_limit
