"""V/F curves and P-state ladders."""

import pytest

from repro.errors import ConfigError
from repro.pmu import VFCurve
from repro.pmu.dvfs import PState, highest_not_above, pstate_ladder


@pytest.fixture
def curve():
    return VFCurve(((1.0, 0.64), (2.2, 0.809), (3.2, 0.95)))


class TestVFCurve:
    def test_exact_points(self, curve):
        assert curve.vcc_for(1.0) == pytest.approx(0.64)
        assert curve.vcc_for(2.2) == pytest.approx(0.809)

    def test_interpolation_between_points(self, curve):
        v = curve.vcc_for(1.6)
        assert 0.64 < v < 0.809
        # Linear: halfway between 1.0 and 2.2.
        assert v == pytest.approx(0.64 + (0.809 - 0.64) * 0.5)

    def test_extrapolation_above(self, curve):
        assert curve.vcc_for(3.5) > 0.95

    def test_extrapolation_below_clamped_at_floor(self, curve):
        assert curve.vcc_for(0.01) == pytest.approx(curve.vcc_floor)

    def test_monotone_over_range(self, curve):
        freqs = [0.8 + 0.1 * i for i in range(25)]
        vs = [curve.vcc_for(f) for f in freqs]
        assert all(b >= a for a, b in zip(vs, vs[1:]))

    def test_rejects_single_point(self):
        with pytest.raises(ConfigError):
            VFCurve(((1.0, 0.7),))

    def test_rejects_unordered_points(self):
        with pytest.raises(ConfigError):
            VFCurve(((2.0, 0.8), (1.0, 0.7)))

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ConfigError):
            VFCurve(((1.0, 0.7), (2.0, -0.1)))

    def test_rejects_nonpositive_frequency_query(self, curve):
        with pytest.raises(ConfigError):
            curve.vcc_for(0.0)


class TestPState:
    def test_rejects_invalid(self):
        with pytest.raises(ConfigError):
            PState(0.0, 0.8)
        with pytest.raises(ConfigError):
            PState(2.0, 0.0)


class TestLadder:
    def test_ladder_descends(self, curve):
        ladder = pstate_ladder(curve, 0.8, 3.2)
        freqs = [s.freq_ghz for s in ladder]
        assert all(a > b for a, b in zip(freqs, freqs[1:]))

    def test_ladder_spans_range(self, curve):
        ladder = pstate_ladder(curve, 0.8, 3.2)
        assert ladder[0].freq_ghz == pytest.approx(3.2)
        assert ladder[-1].freq_ghz == pytest.approx(0.8)

    def test_ladder_step_spacing(self, curve):
        ladder = pstate_ladder(curve, 1.0, 2.0, step_ghz=0.5)
        assert [s.freq_ghz for s in ladder] == pytest.approx([2.0, 1.5, 1.0])

    def test_ladder_voltages_follow_curve(self, curve):
        ladder = pstate_ladder(curve, 1.0, 3.0)
        for state in ladder:
            assert state.vcc == pytest.approx(curve.vcc_for(state.freq_ghz))

    def test_rejects_bad_range(self, curve):
        with pytest.raises(ConfigError):
            pstate_ladder(curve, 2.0, 1.0)
        with pytest.raises(ConfigError):
            pstate_ladder(curve, 1.0, 2.0, step_ghz=0.0)


class TestHighestNotAbove:
    def test_picks_fastest_under_ceiling(self, curve):
        ladder = pstate_ladder(curve, 1.0, 3.0)
        state = highest_not_above(ladder, 2.25)
        assert state.freq_ghz == pytest.approx(2.2)

    def test_exact_ceiling_allowed(self, curve):
        ladder = pstate_ladder(curve, 1.0, 3.0)
        assert highest_not_above(ladder, 3.0).freq_ghz == pytest.approx(3.0)

    def test_falls_back_to_slowest(self, curve):
        ladder = pstate_ladder(curve, 1.0, 3.0)
        assert highest_not_above(ladder, 0.5).freq_ghz == pytest.approx(1.0)

    def test_rejects_empty_ladder(self):
        with pytest.raises(ConfigError):
            highest_not_above([], 2.0)
