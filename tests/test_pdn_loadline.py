"""Load-line model."""

import pytest

from repro.errors import ConfigError
from repro.pdn import LoadLine


@pytest.fixture
def loadline():
    return LoadLine(0.0018)  # 1.8 mOhm, the calibrated client value


class TestLoadLine:
    def test_vcc_load_drops_with_current(self, loadline):
        assert loadline.vcc_load(1.0, 10.0) == pytest.approx(1.0 - 0.018)

    def test_vcc_load_at_zero_current_is_vr_output(self, loadline):
        assert loadline.vcc_load(0.8, 0.0) == pytest.approx(0.8)

    def test_droop_linear_in_current(self, loadline):
        assert loadline.droop(20.0) == pytest.approx(2 * loadline.droop(10.0))

    def test_required_vcc_covers_worst_case(self, loadline):
        vcc = loadline.required_vcc(vcc_min=0.65, icc_worst=30.0)
        assert loadline.vcc_load(vcc, 30.0) == pytest.approx(0.65)

    def test_guardband_delta_is_eq1(self, loadline):
        # dV = (Icc2 - Icc1) * R_LL  (Equation 1 of the paper)
        assert loadline.guardband_delta(10.0, 20.0) == pytest.approx(0.018)

    def test_guardband_delta_negative_when_current_drops(self, loadline):
        assert loadline.guardband_delta(20.0, 10.0) < 0

    def test_excess_voltage_zero_at_virus_current(self, loadline):
        assert loadline.excess_voltage(1.0, 30.0, 30.0) == pytest.approx(0.0)

    def test_excess_voltage_grows_as_load_lightens(self, loadline):
        light = loadline.excess_voltage(1.0, 5.0, 30.0)
        heavy = loadline.excess_voltage(1.0, 25.0, 30.0)
        assert light > heavy

    def test_excess_voltage_rejects_current_above_virus(self, loadline):
        with pytest.raises(ConfigError):
            loadline.excess_voltage(1.0, 40.0, 30.0)

    def test_negative_current_rejected(self, loadline):
        with pytest.raises(ConfigError):
            loadline.vcc_load(1.0, -1.0)
        with pytest.raises(ConfigError):
            loadline.droop(-1.0)

    def test_nonpositive_impedance_rejected(self):
        with pytest.raises(ConfigError):
            LoadLine(0.0)
        with pytest.raises(ConfigError):
            LoadLine(-0.001)

    def test_paper_figure6_step_size(self, loadline):
        # One core switching scalar -> AVX2-heavy at 2 GHz / 0.788 V:
        # dIcc = (6.0 - 3.0) nF * 0.788 V * 2 GHz = 4.73 A -> ~8.5 mV.
        d_icc = (6.0 - 3.0) * 0.788 * 2.0
        assert loadline.droop(d_icc) * 1000 == pytest.approx(8.5, abs=0.2)


class TestVccLoadArray:
    def test_bitwise_equal_to_scalar(self, loadline):
        import numpy as np

        vccs = np.linspace(0.7, 1.1, 257)
        iccs = np.linspace(0.0, 45.0, 257)
        lanes = loadline.vcc_load_array(vccs, iccs)
        scalar = [loadline.vcc_load(float(v), float(i))
                  for v, i in zip(vccs, iccs)]
        assert [float(v) for v in lanes] == scalar

    def test_rejects_negative_currents(self, loadline):
        import numpy as np

        with pytest.raises(ConfigError):
            loadline.vcc_load_array(np.asarray([1.0]), np.asarray([-0.1]))
