"""Burst (ascending-pair) protocol extension."""

import pytest

from repro import System, SystemOptions
from repro.core import IccSMTcovert
from repro.core.burst_channel import (
    BurstReport,
    IccSMTBurst,
    pack_pairs,
    unpack_pairs,
)
from repro.errors import CalibrationError, ConfigError, ProtocolError
from repro.soc.config import cannon_lake_i3_8121u, coffee_lake_i7_9700k


class TestPacking:
    def test_ascending_pairs_fuse(self):
        assert pack_pairs([0, 1]) == [(0, 1)]
        assert pack_pairs([1, 3, 0, 2]) == [(1, 3), (0, 2)]

    def test_non_ascending_stay_single(self):
        assert pack_pairs([3, 3]) == [(3, None), (3, None)]
        assert pack_pairs([2, 1]) == [(2, None), (1, None)]

    def test_top_level_never_pairs(self):
        assert pack_pairs([3, 0]) == [(3, None), (0, None)]

    def test_roundtrip(self):
        for stream in ([0], [0, 1, 2, 3], [3, 2, 1, 0], [1, 2, 2, 3, 0, 1]):
            assert unpack_pairs(pack_pairs(stream)) == stream

    def test_packing_never_loses_symbols(self):
        stream = [0, 3, 1, 1, 2, 0, 3, 3, 2]
        slots = pack_pairs(stream)
        assert sum(1 + (s is not None) for _, s in slots) == len(stream)


class TestBurstChannel:
    def test_transfers_error_free(self):
        burst = IccSMTBurst(System(cannon_lake_i3_8121u()))
        payload = bytes(range(40, 56))
        report = burst.transfer(payload)
        assert report.received == payload
        assert report.ber == 0.0

    def test_faster_than_the_paper_protocol(self):
        payload = bytes(range(1, 21))
        burst = IccSMTBurst(System(cannon_lake_i3_8121u()))
        base = IccSMTcovert(System(cannon_lake_i3_8121u()))
        burst_report = burst.transfer(payload)
        base_report = base.transfer(payload)
        assert burst_report.ber == 0.0
        speedup = burst_report.throughput_bps / base_report.throughput_bps
        assert speedup > 1.2

    def test_packing_efficiency_above_one(self):
        burst = IccSMTBurst(System(cannon_lake_i3_8121u()))
        report = burst.transfer(bytes(range(1, 17)))
        assert report.symbols_per_slot > 1.0

    def test_all_descending_degenerates_to_single_rate(self):
        # 0xE4 encodes symbols [3, 2, 1, 0]: nothing can pair.
        burst = IccSMTBurst(System(cannon_lake_i3_8121u()))
        report = burst.transfer(b"\xe4")
        assert report.symbols_per_slot == pytest.approx(1.0)
        assert report.received == b"\xe4"

    def test_all_ascending_packs_fully(self):
        # 0x1B encodes [0, 1, 2, 3]: both pairs fuse.
        burst = IccSMTBurst(System(cannon_lake_i3_8121u()))
        report = burst.transfer(b"\x1b\x1b")
        assert report.symbols_per_slot == pytest.approx(2.0)
        assert report.received == b"\x1b\x1b"

    def test_needs_smt(self):
        with pytest.raises(ConfigError):
            IccSMTBurst(System(coffee_lake_i7_9700k()))

    def test_empty_payload_rejected(self):
        burst = IccSMTBurst(System(cannon_lake_i3_8121u()))
        with pytest.raises(ProtocolError):
            burst.transfer(b"")

    def test_secure_mode_kills_it_too(self):
        system = System(cannon_lake_i3_8121u(),
                        options=SystemOptions(secure_mode=True))
        burst = IccSMTBurst(system)
        with pytest.raises(CalibrationError):
            burst.calibrate()

    def test_report_accounting(self):
        report = BurstReport(
            sent=b"\x1b", received=b"\x1b",
            symbols_sent=[0, 1, 2, 3], symbols_received=[0, 1, 2, 3],
            slots_used=2, start_ns=0.0, end_ns=1e6)
        assert report.bits == 8
        assert report.ber == 0.0
        assert report.symbols_per_slot == 2.0

    def test_length_mismatch_counts_as_errors(self):
        report = BurstReport(
            sent=b"\x1b", received=b"\x1b",
            symbols_sent=[0, 1, 2, 3], symbols_received=[0, 1, 2],
            slots_used=2, start_ns=0.0, end_ns=1e6)
        assert report.ber > 0.0
