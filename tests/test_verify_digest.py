"""Digest canonicalisation: stability, exactness, diffs."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.runner import canonicalize
from repro.verify.digest import (
    canonical_json,
    content_digest,
    diff_documents,
    flatten_leaves,
    section_digests,
    summarize_array,
    summarize_breakpoints,
)


class TestCanonicalJson:
    def test_key_order_irrelevant(self):
        a = {"x": 1, "y": [1.5, {"b": 2, "a": 3}]}
        b = {"y": [1.5, {"a": 3, "b": 2}], "x": 1}
        assert canonical_json(a) == canonical_json(b)
        assert content_digest(a) == content_digest(b)

    def test_floats_round_trip_exactly(self):
        values = [0.1, 1e-300, 7.234567891234567, 2**-52, 1.0 + 2**-52]
        text = canonical_json(values)
        assert json.loads(text) == values

    def test_non_finite_floats_are_tagged(self):
        doc = canonicalize({"nan": float("nan"), "inf": float("inf"),
                            "ninf": float("-inf")})
        assert doc == {"nan": {"__float__": "nan"},
                       "inf": {"__float__": "inf"},
                       "ninf": {"__float__": "-inf"}}
        # and therefore serialisable with allow_nan=False:
        canonical_json({"v": float("nan")})

    def test_ndarray_and_bytes_and_sets(self):
        doc = canonicalize({
            "arr": np.array([[1.0, 2.0]]),
            "blob": b"\x00\xff",
            "set": {3, 1, 2},
        })
        assert doc["arr"] == {"__ndarray__": "float64", "shape": [1, 2],
                              "data": [1.0, 2.0]}
        assert doc["blob"] == {"__bytes__": "00ff"}
        assert doc["set"] == {"__set__": [1, 2, 3]}

    def test_non_string_keys_are_sorted_structurally(self):
        a = canonicalize({2: "b", 1: "a"})
        b = canonicalize({1: "a", 2: "b"})
        assert a == b
        assert "__mapping__" in a

    def test_digest_distinguishes_close_floats(self):
        assert content_digest(1.0) != content_digest(1.0 + 2**-50)

    def test_cross_process_stability(self):
        """The digest must not depend on PYTHONHASHSEED."""
        program = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.verify.digest import content_digest\n"
            "doc = {{'s': {{'c', 'a', 'b'}}, 'm': {{2: 'two', 1: 'one'}},\n"
            "       'f': [0.1, 2.5e-7], 'b': b'payload'}}\n"
            "print(content_digest(doc))\n"
        ).format(src=os.path.abspath("src"))
        digests = set()
        for seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            out = subprocess.run([sys.executable, "-c", program], env=env,
                                 capture_output=True, text=True, check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1


class TestSummaries:
    def test_summarize_array_pins_every_bit(self):
        base = summarize_array([1.0, 2.0, 3.0])
        flipped = summarize_array([1.0, 2.0, 3.0 + 2**-40])
        assert base["sha256"] != flipped["sha256"]
        assert base["len"] == 3
        assert base["first"] == 1.0 and base["last"] == 3.0
        assert base["min"] == 1.0 and base["max"] == 3.0

    def test_summarize_empty_array(self):
        out = summarize_array([])
        assert out["len"] == 0 and "mean" not in out

    def test_summarize_breakpoints_shape(self):
        out = summarize_breakpoints([0.0, 1.0], [5.0, 6.0], name="vcc")
        assert out["times"]["name"] == "vcc.times"
        assert out["values"]["len"] == 2

    def test_section_digests_localise_change(self):
        doc = {"a": [1, 2], "b": {"k": 3.5}}
        before = section_digests(doc)
        doc["b"]["k"] = 3.6
        after = section_digests(doc)
        assert before["a"] == after["a"]
        assert before["b"] != after["b"]


class TestDiff:
    def test_flatten_leaves_paths(self):
        leaves = dict(flatten_leaves({"a": {"b": [1, 2]}, "c": 3}))
        assert leaves == {"a.b[0]": 1, "a.b[1]": 2, "c": 3}

    def test_diff_reports_changed_added_removed(self):
        old = {"x": 1.0, "gone": "old", "same": 7}
        new = {"x": 2.0, "fresh": "new", "same": 7}
        lines = diff_documents(old, new)
        assert any("x: 1.0 -> 2.0" in line for line in lines)
        assert any("gone" in line and "removed" in line for line in lines)
        assert any("fresh" in line and "added" in line for line in lines)
        assert not any("same" in line for line in lines)

    def test_diff_truncates(self):
        old = {f"k{i}": i for i in range(100)}
        new = {f"k{i}": i + 1 for i in range(100)}
        lines = diff_documents(old, new, max_lines=10)
        assert len(lines) == 11
        assert "90 more differing leaves" in lines[-1]

    def test_identical_documents_diff_empty(self):
        doc = {"arr": np.arange(4.0), "n": 2}
        assert diff_documents(doc, {"arr": np.arange(4.0), "n": 2}) == []


class TestScenarioDigests:
    def test_digest_is_rerun_stable(self):
        from repro.verify.scenarios import compute_digest

        assert compute_digest("fig6_slice") == compute_digest("fig6_slice")

    def test_unknown_scenario_raises(self):
        from repro.errors import ConfigError
        from repro.verify.scenarios import get_scenario

        with pytest.raises(ConfigError, match="unknown scenario"):
            get_scenario("fig99_slice")
