"""Turbo licenses."""

import pytest

from repro.errors import ConfigError
from repro.isa import IClass
from repro.pmu import TurboLicense, TurboLicenseTable, license_for_class


@pytest.fixture
def table():
    return TurboLicenseTable({
        TurboLicense.LVL0: (3.2, 3.1),
        TurboLicense.LVL1: (3.0, 2.9),
        TurboLicense.LVL2: (2.8, 2.6),
    })


class TestLicenseForClass:
    def test_scalar_is_lvl0(self):
        assert license_for_class(IClass.SCALAR_64) == TurboLicense.LVL0

    def test_light_256_is_lvl0(self):
        assert license_for_class(IClass.LIGHT_256) == TurboLicense.LVL0

    def test_heavy_256_is_lvl1(self):
        assert license_for_class(IClass.HEAVY_256) == TurboLicense.LVL1

    def test_light_512_is_lvl1(self):
        assert license_for_class(IClass.LIGHT_512) == TurboLicense.LVL1

    def test_heavy_512_is_lvl2(self):
        assert license_for_class(IClass.HEAVY_512) == TurboLicense.LVL2


class TestTable:
    def test_max_freq_by_core_count(self, table):
        assert table.max_freq(TurboLicense.LVL0, 1) == pytest.approx(3.2)
        assert table.max_freq(TurboLicense.LVL0, 2) == pytest.approx(3.1)

    def test_core_count_beyond_row_uses_last_entry(self, table):
        assert table.max_freq(TurboLicense.LVL1, 5) == pytest.approx(2.9)

    def test_rejects_zero_cores(self, table):
        with pytest.raises(ConfigError):
            table.max_freq(TurboLicense.LVL0, 0)

    def test_missing_row_rejected(self):
        with pytest.raises(ConfigError):
            TurboLicenseTable({TurboLicense.LVL0: (3.2,)})

    def test_empty_row_rejected(self):
        with pytest.raises(ConfigError):
            TurboLicenseTable({
                TurboLicense.LVL0: (),
                TurboLicense.LVL1: (3.0,),
                TurboLicense.LVL2: (2.8,),
            })


class TestPackageCeiling:
    def test_worst_core_dominates(self, table):
        ceiling = table.package_ceiling([IClass.SCALAR_64, IClass.HEAVY_512])
        assert ceiling == pytest.approx(2.6)  # LVL2 at 2 cores

    def test_all_scalar_full_turbo(self, table):
        assert table.package_ceiling([IClass.SCALAR_64]) == pytest.approx(3.2)

    def test_higher_license_lowers_ceiling(self, table):
        lvl0 = table.package_ceiling([IClass.SCALAR_64])
        lvl1 = table.package_ceiling([IClass.HEAVY_256])
        lvl2 = table.package_ceiling([IClass.HEAVY_512])
        assert lvl0 > lvl1 > lvl2

    def test_rejects_empty(self, table):
        with pytest.raises(ConfigError):
            table.package_ceiling([])
