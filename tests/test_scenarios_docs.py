"""Regenerate-and-diff gate for the self-documenting scenario reference."""

from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.scenarios import scenario_names
from repro.scenarios.docsgen import (
    BEGIN_MARK,
    DEFAULT_DOCS_PATH,
    END_MARK,
    check_docs,
    registry_markdown,
    render_docs,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_FILE = REPO_ROOT / DEFAULT_DOCS_PATH


@pytest.fixture()
def committed_text():
    """The docs/SCENARIOS.md text as committed to the repository."""
    return DOCS_FILE.read_text(encoding="utf-8")


class TestCommittedFile:
    def test_reference_matches_the_registry(self, committed_text):
        # The regenerate-and-diff gate: a registry edit without a docs
        # regeneration fails here (and in the CI docs job).
        assert check_docs(committed_text) == []

    def test_render_is_idempotent(self, committed_text):
        once = render_docs(committed_text)
        assert render_docs(once) == once

    def test_hand_written_prose_survives_regeneration(self, committed_text):
        regenerated = render_docs(committed_text)
        head = committed_text[:committed_text.find(BEGIN_MARK)]
        tail = committed_text[committed_text.find(END_MARK):]
        assert regenerated.startswith(head)
        assert regenerated.endswith(tail)


class TestGeneratedBlock:
    def test_every_scenario_has_an_entry(self):
        block = registry_markdown()
        for name in scenario_names():
            assert f"### `{name}`" in block
            assert f"python -m repro --scenario {name}" in block

    def test_block_states_its_own_provenance(self):
        assert "This block is generated" in registry_markdown()


class TestDriftDetection:
    def test_perturbed_block_is_reported(self, committed_text):
        drifted = committed_text.replace(
            "### `baseline_thread`", "### `baseline_thread_v2`")
        report = check_docs(drifted)
        assert report
        assert any("baseline_thread" in line for line in report)

    def test_stale_entry_count_is_reported(self, committed_text):
        begin = committed_text.find(BEGIN_MARK) + len(BEGIN_MARK)
        end = committed_text.find(END_MARK)
        drifted = (committed_text[:begin]
                   + "\n\nstale hand-edited content\n\n"
                   + committed_text[end:])
        assert check_docs(drifted)

    def test_missing_markers_raise_config_error(self):
        with pytest.raises(ConfigError, match="markers"):
            render_docs("# no generated block here\n")
        with pytest.raises(ConfigError, match="in order"):
            render_docs(f"{END_MARK}\n{BEGIN_MARK}\n")


class TestDocsCommand:
    def test_check_mode_passes_on_committed_file(self, capsys):
        from repro.scenarios.__main__ import main
        assert main(["docs", "--check", "--path", str(DOCS_FILE)]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_check_mode_fails_on_drifted_copy(self, tmp_path, capsys):
        from repro.scenarios.__main__ import main
        drifted = tmp_path / "SCENARIOS.md"
        drifted.write_text(
            DOCS_FILE.read_text(encoding="utf-8").replace(
                "### `baseline_thread`", "### `renamed`"),
            encoding="utf-8")
        assert main(["docs", "--check", "--path", str(drifted)]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_write_mode_repairs_a_drifted_copy(self, tmp_path, capsys):
        from repro.scenarios.__main__ import main
        drifted = tmp_path / "SCENARIOS.md"
        drifted.write_text(
            f"# Scenarios\n\nprose stays.\n\n{BEGIN_MARK}\nstale\n{END_MARK}\n",
            encoding="utf-8")
        assert main(["docs", "--path", str(drifted)]) == 0
        repaired = drifted.read_text(encoding="utf-8")
        assert check_docs(repaired) == []
        assert repaired.startswith("# Scenarios\n\nprose stays.")
        capsys.readouterr()

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        from repro.scenarios.__main__ import main
        assert main(["docs", "--path", str(tmp_path / "nope.md")]) == 2
        assert "cannot read" in capsys.readouterr().err
