"""Rail-trace phase detection."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure import SampleSeries
from repro.measure.railwatch import RailPhaseDetector


def staircase(levels, samples_per_level=50, noise=0.0, seed=1):
    """Synthetic rail trace stepping through the given levels (volts)."""
    rng = np.random.default_rng(seed)
    values = np.concatenate([
        np.full(samples_per_level, level) for level in levels
    ])
    if noise:
        values = values + rng.normal(0.0, noise, len(values))
    times = np.arange(len(values), dtype=float) * 100.0
    return SampleSeries(times, values, name="rail")


class TestPhases:
    def test_flat_trace_is_one_phase(self):
        detector = RailPhaseDetector()
        phases = detector.phases(staircase([0.80]))
        assert len(phases) == 1
        assert phases[0].level_v == pytest.approx(0.80)

    def test_staircase_segmentation(self):
        detector = RailPhaseDetector()
        phases = detector.phases(staircase([0.80, 0.808, 0.817, 0.808, 0.80]))
        assert len(phases) == 5
        levels = [p.level_v for p in phases]
        assert levels == pytest.approx([0.80, 0.808, 0.817, 0.808, 0.80],
                                       abs=1e-3)

    def test_small_wiggles_ignored(self):
        detector = RailPhaseDetector(min_step_mv=2.0)
        phases = detector.phases(staircase([0.80, 0.8005, 0.80]))
        assert len(phases) == 1

    def test_noise_tolerated(self):
        detector = RailPhaseDetector(min_step_mv=3.0)
        phases = detector.phases(
            staircase([0.80, 0.81, 0.80], noise=0.0004))
        assert len(phases) == 3

    def test_too_short_rejected(self):
        detector = RailPhaseDetector(settle_samples=5)
        with pytest.raises(MeasurementError):
            detector.phases(SampleSeries(np.array([0.0]), np.array([0.8])))

    def test_bad_parameters_rejected(self):
        with pytest.raises(MeasurementError):
            RailPhaseDetector(min_step_mv=0.0)
        with pytest.raises(MeasurementError):
            RailPhaseDetector(settle_samples=0)


class TestSteps:
    def test_step_polarity(self):
        detector = RailPhaseDetector()
        steps = detector.steps(staircase([0.80, 0.81, 0.80]))
        assert len(steps) == 2
        assert steps[0].rising and steps[0].delta_mv == pytest.approx(10.0, abs=0.5)
        assert not steps[1].rising

    def test_active_core_staircase(self):
        # Figure 6(a) read-off: 0 -> 1 -> 2 -> 1 -> 0 cores in AVX2.
        detector = RailPhaseDetector()
        trace = staircase([0.788, 0.7965, 0.805, 0.7965, 0.788])
        counts = detector.active_phi_cores(trace, step_per_core_mv=8.5)
        assert counts == [0, 1, 2, 1, 0]

    def test_active_core_validation(self):
        detector = RailPhaseDetector()
        with pytest.raises(MeasurementError):
            detector.active_phi_cores(staircase([0.8]), step_per_core_mv=0.0)


class TestOnSimulatedSystem:
    def test_detects_avx_phases_from_the_simulated_rail(self):
        # End to end: run the Figure 6 experiment and read the core
        # count back from the sampled rail alone.
        from repro.analysis.experiments import fig6_voltage_steps

        result = fig6_voltage_steps()
        detector = RailPhaseDetector(min_step_mv=3.0, settle_samples=5)
        counts = detector.active_phi_cores(result.vcc_samples,
                                           step_per_core_mv=8.75)
        assert max(counts) == 2  # both cores in AVX2 at the peak
        assert counts[0] == 0
        assert counts[-1] == 0
