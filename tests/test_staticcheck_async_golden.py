"""Fixture tests for the asyncsafety and goldenflow passes.

Every rule gets at least one *bad* fixture it must flag and one *good*
fixture (the idiomatic fix) it must leave alone, so rule regressions
show up as a named fixture, not as a silent hole in the CI gate.
"""

import textwrap

from repro.staticcheck import analyze_source


def async_findings(source, path="repro/service/example_mod.py"):
    """Asyncsafety findings for one snippet."""
    return analyze_source(textwrap.dedent(source), path,
                          rules=["asyncsafety"])


def golden_findings(source, path="repro/scenarios/example_mod.py"):
    """Goldenflow findings for one snippet."""
    return analyze_source(textwrap.dedent(source), path,
                          rules=["goldenflow"])


def rules_of(findings):
    """The set of rule ids a fixture tripped."""
    return {f.rule for f in findings}


class TestAsyncBlockingCall:
    def test_time_sleep_flagged(self):
        findings = async_findings("""
            import time

            async def poll():
                time.sleep(0.5)
        """)
        assert rules_of(findings) == {"async-blocking-call"}

    def test_bare_sleep_from_time_import_flagged(self):
        findings = async_findings("""
            from time import sleep

            async def poll():
                sleep(0.5)
        """)
        assert rules_of(findings) == {"async-blocking-call"}

    def test_asyncio_sleep_clean(self):
        findings = async_findings("""
            import asyncio

            async def poll():
                await asyncio.sleep(0.5)
        """)
        assert findings == []

    def test_sync_open_flagged(self):
        findings = async_findings("""
            async def dump(path):
                with open(path, "w") as handle:
                    handle.write("x")
        """)
        assert "async-blocking-call" in rules_of(findings)

    def test_path_read_text_flagged(self):
        findings = async_findings("""
            async def load(path):
                return path.read_text(encoding="utf-8")
        """)
        assert rules_of(findings) == {"async-blocking-call"}

    def test_subprocess_run_flagged(self):
        findings = async_findings("""
            import subprocess

            async def shell(cmd):
                return subprocess.run(cmd, capture_output=True)
        """)
        assert rules_of(findings) == {"async-blocking-call"}

    def test_sync_queue_get_flagged(self):
        findings = async_findings("""
            async def drain(self):
                return self.work_queue.get()
        """)
        assert rules_of(findings) == {"async-blocking-call"}

    def test_awaited_asyncio_queue_get_clean(self):
        findings = async_findings("""
            async def drain(self):
                return await self.work_queue.get()
        """)
        assert findings == []

    def test_sweep_runner_dispatch_flagged(self):
        findings = async_findings("""
            async def run_sweep(self, configs):
                return self.runner.run(configs)
        """)
        assert rules_of(findings) == {"async-blocking-call"}

    def test_executor_offload_clean(self):
        findings = async_findings("""
            import asyncio

            async def run_sweep(self, configs):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    None, self.runner.run, configs)
        """)
        assert findings == []

    def test_blocking_call_in_nested_sync_def_clean(self):
        findings = async_findings("""
            import time

            async def schedule(loop):
                def job():
                    time.sleep(1.0)
                await loop.run_in_executor(None, job)
        """)
        assert findings == []


class TestAsyncUnawaited:
    BAD = """
        async def refresh(self):
            return None

        async def tick(self):
            self.refresh()
    """

    def test_discarded_coroutine_flagged(self):
        assert rules_of(async_findings(self.BAD)) == {"async-unawaited"}

    def test_awaited_coroutine_clean(self):
        findings = async_findings("""
            async def refresh(self):
                return None

            async def tick(self):
                await self.refresh()
        """)
        assert findings == []

    def test_coroutine_handed_to_scheduler_clean(self):
        findings = async_findings("""
            async def refresh(self):
                return None

            async def tick(self):
                self._spawn(self.refresh())

            def _spawn(self, coro):
                return coro
        """)
        assert findings == []

    def test_name_also_defined_sync_is_skipped(self):
        findings = async_findings("""
            async def refresh(self):
                return None

            def make():
                def refresh():
                    return 1
                return refresh

            async def tick(self):
                self.refresh()
        """)
        assert findings == []


class TestAsyncDroppedTask:
    def test_discarded_create_task_flagged(self):
        findings = async_findings("""
            import asyncio

            async def start(self):
                asyncio.create_task(self.work())

            async def work(self):
                return None
        """)
        assert "async-dropped-task" in rules_of(findings)

    def test_kept_handle_clean(self):
        findings = async_findings("""
            import asyncio

            async def start(self):
                self._task = asyncio.create_task(self.work())

            async def work(self):
                return None
        """)
        assert findings == []


class TestAsyncHeldHandle:
    def test_file_handle_across_await_flagged(self):
        findings = async_findings("""
            async def mirror(self, path):
                with open(path, "w") as handle:
                    await self.job.wait()
                    handle.write("done")
        """)
        assert "async-held-handle" in rules_of(findings)

    def test_lock_across_await_flagged(self):
        findings = async_findings("""
            async def update(self):
                with self._lock:
                    await self.refresh()

            async def refresh(self):
                return None
        """)
        assert "async-held-handle" in rules_of(findings)

    def test_store_handle_across_await_flagged(self):
        findings = async_findings("""
            async def persist(self):
                with self.artifact_store() as store:
                    await self.job.wait()
                    store.put("k", b"v")
        """)
        assert "async-held-handle" in rules_of(findings)

    def test_with_block_without_await_clean(self):
        findings = async_findings("""
            async def update(self):
                with self._lock:
                    self.counter += 1
        """)
        assert findings == []


class TestAsyncSharedState:
    def test_global_declaration_flagged(self):
        findings = async_findings("""
            COUNTER = 0

            async def bump():
                global COUNTER
                COUNTER += 1
        """)
        assert rules_of(findings) == {"async-shared-state"}

    def test_module_list_mutation_flagged(self):
        findings = async_findings("""
            RESULTS = []

            async def record(value):
                RESULTS.append(value)
        """)
        assert rules_of(findings) == {"async-shared-state"}

    def test_module_dict_store_flagged(self):
        findings = async_findings("""
            CACHE = {}

            async def remember(key, value):
                CACHE[key] = value
        """)
        assert rules_of(findings) == {"async-shared-state"}

    def test_instance_state_clean(self):
        findings = async_findings("""
            async def record(self, value):
                self.results.append(value)
        """)
        assert findings == []


ROUNDTRIP_GOOD = """
    from dataclasses import dataclass
    from typing import Any, Dict, Mapping


    @dataclass(frozen=True)
    class WidgetSpec:
        depth: int = 0
        policy: str = "serialized"

        @classmethod
        def from_mapping(cls, mapping: Mapping[str, Any]) -> "WidgetSpec":
            return cls(depth=int(mapping.get("depth", 0)),
                       policy=str(mapping.get("policy", "serialized")))

        def to_mapping(self) -> Dict[str, Any]:
            return {"depth": self.depth, "policy": self.policy}
"""


class TestGoldenRoundtrip:
    def test_complete_roundtrip_clean(self):
        assert golden_findings(ROUNDTRIP_GOOD) == []

    def test_field_missing_from_to_mapping_flagged(self):
        findings = golden_findings("""
            from dataclasses import dataclass
            from typing import Any, Dict, Mapping


            @dataclass(frozen=True)
            class WidgetSpec:
                depth: int = 0
                policy: str = "serialized"

                @classmethod
                def from_mapping(cls, mapping):
                    return cls(depth=int(mapping.get("depth", 0)),
                               policy=str(mapping.get("policy", "x")))

                def to_mapping(self) -> Dict[str, Any]:
                    return {"depth": self.depth}
        """)
        assert rules_of(findings) == {"golden-roundtrip"}
        assert any("'policy'" in f.message and "to_mapping" in f.message
                   for f in findings)

    def test_field_missing_from_from_mapping_flagged(self):
        findings = golden_findings("""
            from dataclasses import dataclass
            from typing import Any, Dict, Mapping


            @dataclass(frozen=True)
            class WidgetSpec:
                depth: int = 0
                policy: str = "serialized"

                @classmethod
                def from_mapping(cls, mapping):
                    return cls(depth=int(mapping.get("depth", 0)))

                def to_mapping(self) -> Dict[str, Any]:
                    return {"depth": self.depth, "policy": self.policy}
        """)
        assert rules_of(findings) == {"golden-roundtrip"}
        assert any("'policy'" in f.message and "from_mapping" in f.message
                   for f in findings)

    def test_generic_fields_iteration_covers_everything(self):
        findings = golden_findings("""
            from dataclasses import dataclass, fields
            from typing import Any, Dict, Mapping


            @dataclass(frozen=True)
            class WidgetSpec:
                depth: int = 0
                policy: str = "serialized"

                @classmethod
                def from_mapping(cls, mapping):
                    names = tuple(f.name for f in fields(cls))
                    return cls(**{n: mapping.get(n) for n in names})

                def to_mapping(self) -> Dict[str, Any]:
                    return {f.name: getattr(self, f.name)
                            for f in fields(self)}
        """)
        assert findings == []


class TestGoldenEmit:
    def test_unpinned_conditional_emission_flagged(self):
        findings = golden_findings("""
            from dataclasses import dataclass, fields
            from typing import Any, Dict


            @dataclass(frozen=True)
            class WidgetSpec:
                depth: int = 0
                extra: bool = False

                @classmethod
                def from_mapping(cls, mapping):
                    names = tuple(f.name for f in fields(cls))
                    return cls(**{n: mapping.get(n) for n in names})

                def to_mapping(self) -> Dict[str, Any]:
                    mapping = {f.name: getattr(self, f.name)
                               for f in fields(self)}
                    if not mapping["extra"]:
                        del mapping["extra"]
                    return mapping
        """)
        assert rules_of(findings) == {"golden-emit"}
        assert any("'extra'" in f.message for f in findings)

    def test_unconditional_unknown_class_clean(self):
        assert golden_findings(ROUNDTRIP_GOOD) == []

    def test_pinned_class_with_extra_unconditional_key_flagged(self):
        findings = golden_findings("""
            from dataclasses import dataclass, fields
            from typing import Any, Dict


            @dataclass(frozen=True)
            class OptionsSpec:
                per_core_vr: bool = False
                ldo_rails: bool = False
                improved_throttling: bool = False
                secure_mode: bool = False
                turbo_license_limit: bool = False
                new_switch: bool = False

                @classmethod
                def from_mapping(cls, mapping):
                    names = tuple(f.name for f in fields(cls))
                    return cls(**{n: bool(mapping.get(n, False))
                                  for n in names})

                def to_mapping(self) -> Dict[str, Any]:
                    mapping = {f.name: getattr(self, f.name)
                               for f in fields(self)}
                    if not mapping["turbo_license_limit"]:
                        del mapping["turbo_license_limit"]
                    return mapping
        """)
        assert rules_of(findings) == {"golden-emit"}
        assert any("'new_switch'" in f.message for f in findings)

    def test_pinned_key_made_conditional_flagged(self):
        findings = golden_findings("""
            from dataclasses import dataclass
            from typing import Any, Dict


            @dataclass(frozen=True)
            class PMUSpec:
                queue_depth: int = 0
                grant_policy: str = "serialized"

                @classmethod
                def from_mapping(cls, mapping):
                    return cls(
                        queue_depth=int(mapping.get("queue_depth", 0)),
                        grant_policy=str(
                            mapping.get("grant_policy", "serialized")))

                def to_mapping(self) -> Dict[str, Any]:
                    mapping = {"queue_depth": self.queue_depth,
                               "grant_policy": self.grant_policy}
                    if self.queue_depth == 0:
                        del mapping["queue_depth"]
                    return mapping
        """)
        assert rules_of(findings) == {"golden-emit"}
        assert any("'queue_depth'" in f.message
                   and "no longer unconditionally" in f.message
                   for f in findings)


FORWARD_PRELUDE = textwrap.dedent("""
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class SystemOptions:
        per_core_vr: bool = False
        secure_mode: bool = False
        disable_throttling: bool = False
        kernel: str = ""


    @dataclass(frozen=True)
    class KnobSpec:
        per_core_vr: bool = False
        secure_mode: bool = False
""")


class TestGoldenForward:
    def test_complete_forwarding_clean(self):
        findings = golden_findings(FORWARD_PRELUDE + textwrap.dedent("""

            @dataclass(frozen=True)
            class Scenario:
                options: KnobSpec = KnobSpec()

                def system_options(self) -> SystemOptions:
                    return SystemOptions(
                        per_core_vr=self.options.per_core_vr,
                        secure_mode=self.options.secure_mode)
        """))
        assert findings == []

    def test_missing_system_options_keyword_flagged(self):
        findings = golden_findings(FORWARD_PRELUDE + textwrap.dedent("""

            @dataclass(frozen=True)
            class Scenario:
                options: KnobSpec = KnobSpec()

                def system_options(self) -> SystemOptions:
                    return SystemOptions(
                        per_core_vr=self.options.per_core_vr)
        """))
        assert rules_of(findings) == {"golden-forward"}
        assert any("'secure_mode'" in f.message for f in findings)

    def test_spec_field_never_forwarded_flagged(self):
        findings = golden_findings(FORWARD_PRELUDE + textwrap.dedent("""

            @dataclass(frozen=True)
            class Scenario:
                options: KnobSpec = KnobSpec()

                def system_options(self) -> SystemOptions:
                    return SystemOptions(
                        per_core_vr=self.options.per_core_vr,
                        secure_mode=True)
        """))
        assert rules_of(findings) == {"golden-forward"}
        assert any("KnobSpec" in f.message and "'secure_mode'" in f.message
                   for f in findings)

    def test_default_construction_elsewhere_clean(self):
        findings = golden_findings(FORWARD_PRELUDE + textwrap.dedent("""

            def default_options() -> SystemOptions:
                return SystemOptions(per_core_vr=True)
        """))
        assert findings == []

    def test_exempt_fields_may_be_omitted(self):
        # disable_throttling and kernel are deliberately not forwarded.
        findings = golden_findings(FORWARD_PRELUDE + textwrap.dedent("""

            @dataclass(frozen=True)
            class Scenario:
                options: KnobSpec = KnobSpec()

                def system_options(self) -> SystemOptions:
                    return SystemOptions(
                        per_core_vr=self.options.per_core_vr,
                        secure_mode=self.options.secure_mode)
        """))
        assert findings == []


class TestRealTreeIsClean:
    def test_service_and_scenarios_pass_the_new_rules(self):
        from repro.staticcheck import analyze_paths
        from repro.staticcheck.runner import default_root

        report = analyze_paths(
            paths=[default_root() / "service",
                   default_root() / "scenarios"],
            rules=["asyncsafety", "goldenflow"])
        assert report.findings == [], \
            [f.render() for f in report.findings]
