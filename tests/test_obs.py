"""Observability layer: tracer, metrics registry and exporters."""

import json

import pytest

from repro import System, cannon_lake_i3_8121u
from repro.core import IccThreadCovert
from repro.core.session import CovertSession, SessionConfig
from repro.errors import ConfigError
from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace_dict,
    current,
    install,
    metrics_dict,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.runner import ResultCache, SweepRunner


def _square(x):
    """Module-level so it pickles into pool workers."""
    return x * x


class TestMetrics:
    def test_counter(self):
        c = Counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_histogram_summary(self):
        h = Histogram("dur")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0
        snap = h.snapshot()
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        with pytest.raises(ConfigError):
            h.percentile(101)

    def test_empty_histogram_snapshot(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0

    def test_registry_creates_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        assert reg.counter("a").value == 1  # same instrument
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 1
        assert snap["histograms"]["h"]["count"] == 1


class TestTracerPlumbing:
    def test_default_is_disabled(self):
        assert isinstance(current(), NullTracer)
        assert not current().enabled

    def test_null_tracer_discards_everything(self):
        null = NullTracer()
        null.complete("x", "c", 0.0, 1.0)
        null.instant("y", "c", 0.0)
        with null.wall_span("z", "c"):
            pass
        assert null.events == []

    def test_install_and_restore(self):
        tr = Tracer()
        previous = install(tr)
        try:
            assert current() is tr
        finally:
            install(previous)
        assert current() is previous

    def test_tracing_contextmanager_restores_on_error(self):
        before = current()
        with pytest.raises(RuntimeError):
            with tracing():
                assert current().enabled
                raise RuntimeError("boom")
        assert current() is before

    def test_metrics_only_mode_records_no_events(self):
        with tracing(events=False) as tr:
            IccThreadCovert(System(cannon_lake_i3_8121u())).transfer(b"\x42")
        assert tr.events == []
        assert tr.metrics.counter("channel.transfers").value == 1

    def test_wall_span_outcome_args(self):
        with tracing() as tr:
            with tr.wall_span("task", "runner") as span:
                span["outcome"] = "done"
        [event] = tr.events
        assert event.ph == "X"
        assert event.domain == "host"
        assert event.args == {"outcome": "done"}
        assert event.dur_ns >= 0.0


class TestTracedTransfer:
    """A fig-6-style transfer must produce a loadable Chrome trace."""

    @pytest.fixture(scope="class")
    def traced(self):
        with tracing(engine_events=True) as tr:
            system = System(cannon_lake_i3_8121u())
            report = IccThreadCovert(system).transfer(b"\xa5\x3c")
        return tr, report

    def test_transfer_unharmed_by_tracing(self, traced):
        _, report = traced
        assert report.received == b"\xa5\x3c"
        assert report.ber == 0.0

    def test_every_layer_contributes(self, traced):
        tr, _ = traced
        names = {e.name for e in tr.events}
        assert "vr.transition" in names        # regulator
        assert "pmu.queue_up" in names         # grant queueing
        assert "pmu.throttle" in names         # throttle residency spans
        assert "channel.calibrate" in names    # calibration
        assert "channel.transfer" in names     # transfer span
        assert any(n.startswith("slot ") for n in names)  # per-slot spans
        cats = {e.cat for e in tr.events}
        assert "engine" in cats                # engine_events detail

    def test_metrics_cover_the_protocol(self, traced):
        tr, _ = traced
        snap = metrics_dict(tr)
        assert snap["counters"]["channel.transfers"] == 1
        assert snap["counters"]["engine.events_run"] > 100
        assert snap["counters"]["vr.commands"] > 0
        assert snap["histograms"]["pmu.throttle_residency_ns"]["count"] > 0
        assert snap["histograms"]["vr.transition_ns"]["min"] > 0

    def test_chrome_trace_validates_and_roundtrips(self, traced):
        tr, _ = traced
        trace = chrome_trace_dict(tr)
        validate_chrome_trace(trace)
        # Must survive a JSON round-trip bit-identically.
        assert json.loads(json.dumps(trace)) == trace
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases >= {"M", "X", "i"}

    def test_exporters_write_files(self, traced, tmp_path):
        tr, _ = traced
        trace_obj = write_chrome_trace(tr, tmp_path / "trace.json")
        metrics_obj = write_metrics_json(tr, tmp_path / "metrics.json")
        assert json.loads((tmp_path / "trace.json").read_text()) == trace_obj
        assert json.loads((tmp_path / "metrics.json").read_text()) == metrics_obj

    def test_throttle_spans_nest_inside_the_timeline(self, traced):
        tr, _ = traced
        spans = [e for e in tr.events if e.name == "pmu.throttle"]
        assert spans
        for span in spans:
            assert span.dur_ns > 0
            assert span.ts_ns >= 0


class TestTraceValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ConfigError):
            validate_chrome_trace([])

    def test_rejects_missing_keys(self):
        with pytest.raises(ConfigError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})

    def test_rejects_negative_duration(self):
        bad = {"traceEvents": [
            {"name": "m", "cat": "__metadata", "ph": "M", "ts": 0,
             "pid": 1, "tid": 0},
            {"name": "x", "cat": "c", "ph": "X", "ts": 0.0, "dur": -1.0,
             "pid": 1, "tid": 1},
        ]}
        with pytest.raises(ConfigError):
            validate_chrome_trace(bad)


class TestSessionAndRunnerInstrumentation:
    def test_session_metrics(self):
        with tracing() as tr:
            session = CovertSession(
                IccThreadCovert(System(cannon_lake_i3_8121u())),
                SessionConfig(frame_bytes=4))
            report = session.send(bytes(range(8)))
        assert report.ok
        snap = metrics_dict(tr)
        assert snap["counters"]["session.frames"] == 2
        assert snap["counters"]["session.attempts"] == report.total_attempts
        assert snap["histograms"]["session.attempts_per_frame"]["count"] == 2
        assert any(e.name == "session.frame_attempt" for e in tr.events)

    def test_runner_task_spans_and_cache_counters(self, tmp_path):
        with tracing() as tr:
            runner = SweepRunner(cache=ResultCache(root=tmp_path))
            runner.map(_square, [{"x": x} for x in range(3)])
            runner.map(_square, [{"x": x} for x in range(3)])  # warm
        snap = metrics_dict(tr)
        assert snap["counters"]["runner.tasks"] == 6
        assert snap["counters"]["runner.executed"] == 3
        assert snap["counters"]["runner.cache_hits"] == 3
        assert snap["counters"]["cache.stores"] == 3
        assert snap["counters"]["cache.hits"] == 3
        task_spans = [e for e in tr.events if e.name == "runner.task"]
        assert len(task_spans) == 3
        assert all(s.args["outcome"] == "executed" for s in task_spans)
        assert snap["histograms"]["runner.task_wall_ms"]["count"] == 3
