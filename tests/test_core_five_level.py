"""Base-5 coding and the five-level channel."""

import pytest

from repro import System
from repro.core import IccThreadCovert
from repro.core.base5 import (
    BASE,
    bits_per_symbol,
    bytes_to_digits,
    digits_for_bytes,
    digits_to_bytes,
)
from repro.core.five_level import FiveLevelThreadChannel
from repro.errors import ProtocolError
from repro.soc.config import cannon_lake_i3_8121u


class TestBase5Codec:
    def test_roundtrip_short(self):
        data = b"\x00\xff\x42"
        assert digits_to_bytes(bytes_to_digits(data), len(data)) == data

    def test_roundtrip_multi_block(self):
        data = bytes(range(23))  # 3 blocks + remainder
        assert digits_to_bytes(bytes_to_digits(data), len(data)) == data

    def test_roundtrip_exact_blocks(self):
        data = bytes(range(14))  # exactly 2 blocks
        assert digits_to_bytes(bytes_to_digits(data), len(data)) == data

    def test_digits_in_range(self):
        for digit in bytes_to_digits(bytes(range(50))):
            assert 0 <= digit < BASE

    def test_digit_budget_matches_helper(self):
        for n in (1, 3, 7, 8, 20):
            assert len(bytes_to_digits(bytes(n))) == digits_for_bytes(n)

    def test_rate_beats_two_bits(self):
        # 2.32 bits per digit vs 2 bits per four-level symbol.
        n = 70
        digits = digits_for_bytes(n)
        assert digits * 2 < n * 8  # fewer transactions than bit-pairs
        assert bits_per_symbol() == pytest.approx(2.3219, abs=1e-3)

    def test_corrupted_digits_decode_without_crashing(self):
        data = b"\x12\x34\x56\x78\x9a\xbc\xde"
        digits = bytes_to_digits(data)
        digits[0] = (digits[0] + 1) % BASE
        decoded = digits_to_bytes(digits, len(data))
        assert len(decoded) == len(data)
        assert decoded != data

    def test_validation(self):
        with pytest.raises(ProtocolError):
            bytes_to_digits(b"")
        with pytest.raises(ProtocolError):
            digits_to_bytes([1, 2], 50)
        with pytest.raises(ProtocolError):
            digits_to_bytes([9] * digits_for_bytes(1), 1)


class TestFiveLevelChannel:
    def test_transfers_error_free(self):
        channel = FiveLevelThreadChannel(System(cannon_lake_i3_8121u()))
        payload = bytes(range(16))
        report = channel.transfer(payload)
        assert report.received == payload
        assert report.digit_error_rate == 0.0

    def test_beats_the_four_level_protocol(self):
        payload = bytes(range(14))
        five = FiveLevelThreadChannel(System(cannon_lake_i3_8121u()))
        four = IccThreadCovert(System(cannon_lake_i3_8121u()))
        five_report = five.transfer(payload)
        four_report = four.transfer(payload)
        gain = five_report.throughput_bps / four_report.throughput_bps
        assert gain > 1.05  # ideal log2(5)/2 = 1.16, minus block padding

    def test_quiet_symbol_is_its_own_cluster(self):
        channel = FiveLevelThreadChannel(System(cannon_lake_i3_8121u()))
        calibrator = channel.calibrate()
        assert set(calibrator.stats) == {0, 1, 2, 3, 4}
        # The quiet symbol leaves the full ramp to the probe: the
        # longest reading of all five.
        centers = {s: st.center for s, st in calibrator.stats.items()}
        assert centers[0] == max(centers.values())

    def test_five_clusters_strictly_ordered(self):
        channel = FiveLevelThreadChannel(System(cannon_lake_i3_8121u()))
        calibrator = channel.calibrate()
        centers = [calibrator.stats[s].center for s in (4, 3, 2, 1, 0)]
        assert all(b > a for a, b in zip(centers, centers[1:]))

    def test_empty_payload_rejected(self):
        channel = FiveLevelThreadChannel(System(cannon_lake_i3_8121u()))
        with pytest.raises(ProtocolError):
            channel.transfer(b"")

    def test_bad_digit_rejected(self):
        channel = FiveLevelThreadChannel(System(cannon_lake_i3_8121u()))
        with pytest.raises(ProtocolError):
            channel._sender_loop(7)
