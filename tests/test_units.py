"""Unit-conversion helpers."""

import pytest

from repro import units


class TestTimeConversions:
    def test_us_to_ns(self):
        assert units.us_to_ns(1.0) == 1_000.0

    def test_ms_to_ns(self):
        assert units.ms_to_ns(1.0) == 1_000_000.0

    def test_s_to_ns(self):
        assert units.s_to_ns(1.0) == 1_000_000_000.0

    def test_ns_to_us_roundtrip(self):
        assert units.ns_to_us(units.us_to_ns(3.7)) == pytest.approx(3.7)

    def test_ns_to_ms_roundtrip(self):
        assert units.ns_to_ms(units.ms_to_ns(0.25)) == pytest.approx(0.25)

    def test_ns_to_s_roundtrip(self):
        assert units.ns_to_s(units.s_to_ns(1.5)) == pytest.approx(1.5)


class TestCycles:
    def test_one_ghz_is_one_cycle_per_ns(self):
        assert units.cycles_at(100.0, 1.0) == 100.0

    def test_cycles_scale_with_frequency(self):
        assert units.cycles_at(100.0, 3.0) == 300.0

    def test_ns_for_cycles_inverts_cycles_at(self):
        ns = units.ns_for_cycles(units.cycles_at(42.0, 2.2), 2.2)
        assert ns == pytest.approx(42.0)

    def test_ns_for_cycles_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            units.ns_for_cycles(100.0, 0.0)

    def test_ns_for_cycles_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            units.ns_for_cycles(100.0, -1.0)


class TestElectrical:
    def test_mv_to_v(self):
        assert units.mv_to_v(788.0) == pytest.approx(0.788)

    def test_v_to_mv_roundtrip(self):
        assert units.v_to_mv(units.mv_to_v(13.0)) == pytest.approx(13.0)

    def test_mohm_to_ohm(self):
        assert units.mohm_to_ohm(1.8) == pytest.approx(0.0018)

    def test_dynamic_current_dimensions(self):
        # 6 nF * 0.8 V * 2.0 GHz = 9.6 A, exactly.
        assert units.dynamic_current(6.0, 0.8, 2.0) == pytest.approx(9.6)

    def test_dynamic_current_zero_at_zero_cdyn(self):
        assert units.dynamic_current(0.0, 1.0, 3.0) == 0.0

    def test_dynamic_power_is_current_times_voltage(self):
        i = units.dynamic_current(6.0, 0.8, 2.0)
        p = units.dynamic_power(6.0, 0.8, 2.0)
        assert p == pytest.approx(i * 0.8)


class TestBandwidth:
    def test_bits_per_second(self):
        # 2 bits in 690 us -> ~2899 bps, the paper's headline number.
        assert units.bits_per_second(2, units.us_to_ns(690)) == pytest.approx(
            2898.55, rel=1e-3)

    def test_bits_per_second_rejects_zero_time(self):
        with pytest.raises(ValueError):
            units.bits_per_second(1, 0.0)

    def test_bits_per_second_rejects_negative_time(self):
        with pytest.raises(ValueError):
            units.bits_per_second(1, -5.0)
