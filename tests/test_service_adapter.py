"""Tests for repro.service.adapter — the runner-shaped service facade."""

import pytest

from repro.errors import ConfigError
from repro.runner import SweepRunner
from repro.service import ArtifactStore, ServiceConfig, ServiceRunner


def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"boom {x}")


class TestRunnerContract:
    def test_map_matches_inline_runner(self):
        tasks = [{"x": i} for i in range(20)]
        inline = SweepRunner().map(_double, tasks)
        with ServiceRunner(ServiceConfig(workers=2,
                                         batch_size=3)) as runner:
            routed = runner.map(_double, tasks)
        assert routed == inline

    def test_call_single_task(self):
        with ServiceRunner() as runner:
            assert runner.call(_double, x=21) == 42

    def test_empty_map_returns_empty(self):
        with ServiceRunner() as runner:
            assert runner.map(_double, []) == []

    def test_stats_track_runs(self):
        with ServiceRunner() as runner:
            runner.map(_double, [{"x": i} for i in range(5)])
            assert runner.last_run.tasks == 5
            assert runner.last_run.executed == 5
            runner.map(_double, [{"x": 9}])
            assert runner.last_run.tasks == 1
            assert runner.total.tasks == 6

    def test_failure_reraises_annotated(self):
        with ServiceRunner(ServiceConfig(max_retries=0)) as runner:
            with pytest.raises(ValueError) as excinfo:
                runner.map(_boom, [{"x": 3}])
            assert excinfo.value.task_kwargs == {"x": 3}

    def test_store_hits_on_second_sweep(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        config = ServiceConfig(workers=2, store=store)
        tasks = [{"x": i} for i in range(8)]
        with ServiceRunner(config) as runner:
            first = runner.map(_double, tasks)
            second = runner.map(_double, tasks)
        assert first == second
        assert store.stats.hits >= 8

    def test_closed_runner_rejects_work(self):
        runner = ServiceRunner()
        runner.close()
        with pytest.raises(ConfigError):
            runner.map(_double, [{"x": 1}])
        # close is idempotent
        runner.close()


class TestScenarioEquivalence:
    def test_fig8_document_identical_through_service(self):
        """A real experiment document is bit-identical via the queue."""
        from repro.verify.scenarios import compute_document

        inline = compute_document("fig8_slice", runner=SweepRunner())
        with ServiceRunner(ServiceConfig(workers=2,
                                         batch_size=4)) as runner:
            routed = compute_document("fig8_slice", runner=runner)
        assert inline == routed
