"""Batch kernel: eligibility, fallback, bit-identity and engine regressions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import IClass, Loop, System, SystemOptions
from repro.core import IccThreadCovert
from repro.errors import ConfigError
from repro.faults import FaultInjector, SlotScheduleJitter
from repro.pmu.governors import Governor, GovernorKind
from repro.soc import Engine
from repro.soc.config import cannon_lake_i3_8121u
from repro.units import us_to_ns


def _options(mode):
    return SystemOptions(kernel=mode)


def _run_busy_system(mode, payload=b"\x5a"):
    """One covert transfer under the given kernel mode."""
    system = System(cannon_lake_i3_8121u(), options=_options(mode))
    report = IccThreadCovert(system).transfer(payload)
    return system, report


def _trace_state(system):
    """Every observable trace as comparable breakpoint lists."""
    state = {
        "vcc": system.vcc_signal().breakpoints(),
        "freq": system.freq_signal().breakpoints(),
        "icc": system.icc_signal().breakpoints(),
        "cdyn": system.cdyn_trace.breakpoints(),
        "temp": system.temp_trace.breakpoints(),
    }
    for core, trace in enumerate(system.throttle_traces):
        state[f"throttle{core}"] = trace.breakpoints()
    for core, trace in enumerate(system.activity_traces):
        state[f"activity{core}"] = trace.breakpoints()
    return state


def assert_identical_traces(scalar, kernel):
    """Bitwise comparison of two systems' full trace state."""
    left, right = _trace_state(scalar), _trace_state(kernel)
    assert left.keys() == right.keys()
    for name in left:
        if name in ("vcc", "freq", "icc"):
            lt, lv = left[name]
            rt, rv = right[name]
            assert np.array_equal(lt, rt), f"{name} breakpoint times differ"
            assert np.array_equal(lv, rv), f"{name} breakpoint values differ"
        else:
            assert left[name] == right[name], f"{name} breakpoints differ"


class TestEngineCancelRegressions:
    """Regressions for the fused run_until loop and cancel bookkeeping."""

    def test_cancel_heavy_run_until_runs_every_live_event(self):
        # Enough entries to clear _COMPACT_MIN_SIZE, cancelled from
        # inside a dispatched callback so compaction fires mid-loop.
        engine = Engine()
        ran = []
        handles = [engine.schedule(100.0 + i, ran.append, i)
                   for i in range(200)]

        def cancel_most():
            for handle in handles[10:190]:
                handle.cancel()

        engine.schedule(50.0, cancel_most)
        engine.run_until(1_000.0)
        assert ran == list(range(10)) + list(range(190, 200))
        assert engine.check_cancel_invariant()
        assert engine.now == 1_000.0

    def test_compaction_mid_run_does_not_drop_later_schedules(self):
        # The callback cancels enough garbage to trigger a compaction,
        # then schedules a new event; run_until's cached heap alias must
        # still see it (compaction rebuilds the heap in place).
        engine = Engine()
        ran = []
        garbage = [engine.schedule(500.0 + i, ran.append, "garbage")
                   for i in range(120)]

        def churn():
            for handle in garbage:
                handle.cancel()
            engine.schedule(10.0, ran.append, "late")

        engine.schedule(1.0, churn)
        engine.run_until(2_000.0)
        assert ran == ["late"]
        assert engine.check_cancel_invariant()

    def test_cancel_after_pop_leaves_garbage_estimate_alone(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run_until(5.0)
        handle.cancel()  # stale cancel of an already-run event
        assert engine._cancelled == 0
        assert engine.check_cancel_invariant()

    def test_cancel_invariant_across_compactions(self):
        engine = Engine()
        for _ in range(3):
            handles = [engine.schedule(1_000.0, lambda: None)
                       for _ in range(100)]
            for handle in handles:
                handle.cancel()
                handle.cancel()  # idempotent: second cancel is a no-op
                assert engine.check_cancel_invariant()
        engine.run_until(2_000.0)
        assert engine.check_cancel_invariant()
        assert engine._heap == []


class TestKernelEligibility:
    def test_auto_installs_on_plain_system(self):
        system = System(cannon_lake_i3_8121u(), options=_options("auto"))
        assert system.kernel_active
        assert system.kernel_stats() is not None

    def test_off_mode_stays_scalar(self):
        system = System(cannon_lake_i3_8121u(), options=_options("off"))
        assert not system.kernel_active
        assert system.kernel_stats() is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            SystemOptions(kernel="turbo")

    def test_env_default_is_read_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "off")
        assert SystemOptions().kernel == "off"
        monkeypatch.setenv("REPRO_KERNEL", "auto")
        assert SystemOptions().kernel == "auto"

    def test_governor_at_construction_disables_kernel(self):
        config = cannon_lake_i3_8121u()
        governor = Governor(GovernorKind.POWERSAVE, config.min_freq_ghz,
                            config.max_turbo_ghz)
        system = System(config, governor=governor, options=_options("auto"))
        assert not system.kernel_active

    def test_apply_governor_disables_kernel(self):
        config = cannon_lake_i3_8121u()
        system = System(config, options=_options("auto"))
        assert system.kernel_active
        system.apply_governor(Governor(GovernorKind.PERFORMANCE,
                                       config.min_freq_ghz,
                                       config.max_turbo_ghz))
        assert not system.kernel_active

    def test_cstates_disable_kernel(self):
        config = cannon_lake_i3_8121u().with_overrides(cstates_enabled=True)
        system = System(config, options=_options("auto"))
        assert not system.kernel_active

    def test_fault_attach_demotes_to_scalar(self):
        system = System(cannon_lake_i3_8121u(), options=_options("auto"))
        assert system.kernel_active
        FaultInjector([SlotScheduleJitter()]).attach(system)
        # Demotion happens at the next capture; drive one transfer.
        report = IccThreadCovert(system).transfer(b"\x5a")
        assert not system.kernel_active
        assert report.sent == b"\x5a"


class TestKernelScalarEquivalence:
    def test_transfer_reports_and_traces_identical(self):
        scalar_system, scalar_report = _run_busy_system("off")
        kernel_system, kernel_report = _run_busy_system("auto")
        assert kernel_system.kernel_active
        assert scalar_report.received == kernel_report.received
        assert scalar_report.ber == kernel_report.ber
        assert scalar_report.measurements_tsc == kernel_report.measurements_tsc
        assert (scalar_system.engine.events_run
                == kernel_system.engine.events_run)
        assert_identical_traces(scalar_system, kernel_system)

    def test_faulted_transfer_identical_after_demotion(self):
        def run(mode):
            system = System(cannon_lake_i3_8121u(), options=_options(mode))
            FaultInjector([SlotScheduleJitter(seed=7)]).attach(system)
            report = IccThreadCovert(system).transfer(b"\xc3\x0f")
            return system, report

        scalar_system, scalar_report = run("off")
        kernel_system, kernel_report = run("auto")
        assert scalar_report.received == kernel_report.received
        assert scalar_report.measurements_tsc == kernel_report.measurements_tsc
        assert_identical_traces(scalar_system, kernel_system)

    def test_sync_traces_is_idempotent_and_flushes_pending(self):
        system = System(cannon_lake_i3_8121u(), options=_options("auto"))
        spawned = []

        def program():
            result = yield system.execute(0, Loop(IClass.HEAVY_256, 50))
            spawned.append(result)

        system.spawn(program())
        system.run_until(us_to_ns(500.0))
        stats = system.kernel_stats()
        assert stats["pending"] == 0  # run_until exit syncs
        system.sync_traces()
        assert system.kernel_stats()["flushes"] == stats["flushes"]
        assert spawned

    @pytest.mark.parametrize("name", ["demo_transfer", "fig8_slice"])
    def test_golden_scenarios_bit_identical(self, name, monkeypatch):
        from repro.verify.digest import diff_documents
        from repro.verify.scenarios import compute_document

        monkeypatch.setenv("REPRO_KERNEL", "off")
        scalar = compute_document(name)
        monkeypatch.setenv("REPRO_KERNEL", "auto")
        kernel = compute_document(name)
        assert diff_documents(scalar, kernel) == []


# Random schedules: thread, class, iterations, start offset; plus an
# optional fault-injection flag that forces the mid-run scalar demotion.
_SETTINGS = dict(max_examples=10, deadline=None)
schedules = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.sampled_from(list(IClass)),
        st.integers(1, 20),
        st.floats(0.0, 30_000.0),
    ),
    min_size=1, max_size=5,
)


class TestKernelProperties:
    @settings(**_SETTINGS)
    @given(schedules, st.booleans())
    def test_random_schedules_bit_identical(self, schedule, with_faults):
        deduped = list({item[0]: item for item in schedule}.values())

        def run(mode):
            system = System(cannon_lake_i3_8121u(), options=_options(mode))
            if with_faults:
                FaultInjector([SlotScheduleJitter(seed=3)]).attach(system)
            results = []

            def program(thread_id, iclass, iterations, start_ns):
                def body():
                    yield system.until(start_ns)
                    result = yield system.execute(
                        thread_id, Loop(iclass, iterations))
                    results.append(result)
                return body()

            for item in deduped:
                system.spawn(program(*item))
            system.run_until(us_to_ns(2_000.0))
            return system, results

        scalar_system, scalar_results = run("off")
        kernel_system, kernel_results = run("auto")
        assert len(scalar_results) == len(kernel_results)
        for left, right in zip(scalar_results, kernel_results):
            assert left.elapsed_ns == right.elapsed_ns
            assert left.throttled_ns == right.throttled_ns
        assert_identical_traces(scalar_system, kernel_system)
        assert scalar_system.engine.check_cancel_invariant()
        assert kernel_system.engine.check_cancel_invariant()
