"""Voltage-droop model and the throttling-ablation emergencies."""

import pytest

from repro import IClass, Loop, System, SystemOptions
from repro.errors import ConfigError
from repro.pdn.droop import DroopModel, DroopSpec
from repro.soc.config import cannon_lake_i3_8121u, coffee_lake_i7_9700k
from repro.units import us_to_ns


class TestDroopModel:
    @pytest.fixture
    def model(self):
        return DroopModel(DroopSpec(transient_impedance_mohm=2.5,
                                    filter_step_a=1.0), r_ll_ohm=0.0018)

    def test_steady_state_is_loadline_drop(self, model):
        # No step: only the IR drop at the final current.
        v = model.load_voltage_min(1.0, 10.0, 10.0)
        assert v == pytest.approx(1.0 - 0.018)

    def test_small_steps_filtered_by_decaps(self, model):
        with_step = model.load_voltage_min(1.0, 10.0, 10.9)
        assert with_step == pytest.approx(1.0 - 0.0018 * 10.9)

    def test_large_steps_add_transient_dip(self, model):
        v = model.load_voltage_min(1.0, 10.0, 20.0)
        steady = 1.0 - 0.0018 * 20.0
        assert v == pytest.approx(steady - 10.0 * 0.0025)

    def test_bigger_step_dips_deeper(self, model):
        small = model.load_voltage_min(1.0, 10.0, 15.0)
        large = model.load_voltage_min(1.0, 10.0, 30.0)
        assert large < small

    def test_is_emergency_threshold(self, model):
        assert model.is_emergency(1.0, 0.0, 40.0, vcc_min=0.95)
        assert not model.is_emergency(1.0, 0.0, 2.0, vcc_min=0.95)

    def test_validation(self, model):
        with pytest.raises(ConfigError):
            DroopModel(DroopSpec(), r_ll_ohm=0.0)
        with pytest.raises(ConfigError):
            DroopSpec(transient_impedance_mohm=-1.0)
        with pytest.raises(ConfigError):
            model.load_voltage_min(1.0, -1.0, 2.0)


def run_phi(options, config=None, iclass=IClass.HEAVY_512):
    system = System(config or cannon_lake_i3_8121u(), options=options)
    sink = []

    def program():
        yield system.until(us_to_ns(5.0))
        sink.append((yield system.execute(0, Loop(iclass, 40))))

    system.spawn(program())
    system.run_until(us_to_ns(500.0))
    return system, sink[0]


class TestVoltageEmergencies:
    """Key Conclusion 1, validated by ablation."""

    def test_normal_operation_never_trips_vcc_min(self):
        # With throttling active the current step is quartered and the
        # rail catches up: no workload causes an emergency.
        system, result = run_phi(SystemOptions())
        assert result.throttled_ns > 0
        assert system.voltage_emergencies == []

    def test_disabling_throttling_causes_emergencies(self):
        system, result = run_phi(SystemOptions(disable_throttling=True))
        assert result.throttled_ns == 0.0
        assert len(system.voltage_emergencies) >= 1
        _, core, load_min, vcc_min = system.voltage_emergencies[0]
        assert core == 0
        assert load_min < vcc_min

    def test_secure_mode_survives_without_throttling(self):
        # Secure mode pre-applies the worst-case guardband, so even with
        # the throttle ablated no PHI outruns the rail.
        system, _ = run_phi(SystemOptions(secure_mode=True,
                                          disable_throttling=True))
        assert system.voltage_emergencies == []

    def test_scalar_code_never_trips_even_unthrottled(self):
        system, _ = run_phi(SystemOptions(disable_throttling=True),
                            iclass=IClass.SCALAR_64)
        assert system.voltage_emergencies == []

    def test_desktop_avx2_trips_without_throttle(self):
        config = coffee_lake_i7_9700k()
        system, _ = run_phi(SystemOptions(disable_throttling=True),
                            config=config, iclass=IClass.HEAVY_256)
        assert len(system.voltage_emergencies) >= 1

    def test_emergency_recorded_once_per_burst(self):
        system, _ = run_phi(SystemOptions(disable_throttling=True))
        assert len(system.voltage_emergencies) == 1


class TestLoadVoltageMinArray:
    def test_bitwise_equal_to_scalar_across_filter_branch(self):
        import numpy as np

        model = DroopModel(DroopSpec(transient_impedance_mohm=2.5,
                                     filter_step_a=1.0), r_ll_ohm=0.0018)
        rail = np.full(64, 0.85)
        before = np.linspace(0.0, 20.0, 64)
        # Steps straddle the decap filter threshold in both directions.
        after = before + np.linspace(-2.0, 4.0, 64).clip(min=-before)
        lanes = model.load_voltage_min_array(rail, before, after)
        scalar = [model.load_voltage_min(0.85, float(b), float(a))
                  for b, a in zip(before, after)]
        assert [float(v) for v in lanes] == scalar

    def test_rejects_negative_currents(self):
        import numpy as np

        model = DroopModel(DroopSpec(), r_ll_ohm=0.0018)
        with pytest.raises(ConfigError):
            model.load_voltage_min_array(np.asarray([0.85]),
                                         np.asarray([-1.0]),
                                         np.asarray([2.0]))
