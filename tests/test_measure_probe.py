"""Per-iteration timing and throttle detection."""

import pytest

from repro import IClass, System
from repro.errors import ConfigError, MeasurementError
from repro.measure import (
    ThrottleDetector,
    expected_iteration_tsc,
    measured_iterations,
)
from repro.soc.config import cannon_lake_i3_8121u
from repro.units import us_to_ns


def run_measured(iclass, iterations=30, freq=2.2):
    system = System(cannon_lake_i3_8121u(), governor_freq_ghz=freq)
    sink = []
    system.spawn(measured_iterations(system, 0, iclass, iterations, sink=sink))
    system.run_until(us_to_ns(800.0))
    assert sink, "measurement did not finish"
    return system, sink[0]


class TestMeasuredIterations:
    def test_counts_and_span(self):
        _, timings = run_measured(IClass.SCALAR_64, iterations=10)
        assert len(timings.durations_tsc) == 10
        assert timings.total_tsc >= sum(timings.durations_tsc) - 1

    def test_scalar_iterations_match_expectation(self):
        system, timings = run_measured(IClass.SCALAR_64, iterations=10)
        expected = expected_iteration_tsc(
            IClass.SCALAR_64, 300, 2.2, system.config.base_freq_ghz)
        for duration in timings.durations_tsc:
            assert duration == pytest.approx(expected, abs=2)

    def test_phi_run_starts_throttled_then_recovers(self):
        system, timings = run_measured(IClass.HEAVY_256, iterations=60)
        expected = expected_iteration_tsc(
            IClass.HEAVY_256, 300, 2.2, system.config.base_freq_ghz)
        detector = ThrottleDetector(expected)
        mask = detector.throttled_mask(timings.durations_tsc)
        assert mask[0], "first iterations should run under the throttle"
        assert not mask[-1], "the loop should recover once the rail settles"
        # Throttled iterations run at ~4x the expected duration.
        first = timings.durations_tsc[1]  # skip the PG-wake iteration 0
        assert first == pytest.approx(4 * expected, rel=0.1)

    def test_requires_sink(self):
        system = System(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            next(measured_iterations(system, 0, IClass.SCALAR_64, 5, sink=None))

    def test_rejects_zero_iterations(self):
        system = System(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            next(measured_iterations(system, 0, IClass.SCALAR_64, 0, sink=[]))


class TestThrottleDetector:
    def test_mask_thresholding(self):
        detector = ThrottleDetector(expected_tsc=100.0)
        assert detector.throttled_mask([100.0, 150.0, 400.0]) == [
            False, False, True]

    def test_throttling_period_sums_excess(self):
        detector = ThrottleDetector(expected_tsc=100.0)
        tp = detector.throttling_period_tsc([400.0, 400.0, 100.0])
        assert tp == pytest.approx(600.0)

    def test_throttled_count(self):
        detector = ThrottleDetector(expected_tsc=100.0)
        assert detector.throttled_count([400.0, 100.0, 350.0]) == 2

    def test_detected_tp_matches_system_report(self):
        # The receiver-side estimate must agree with the simulator's
        # ground-truth throttled time.
        system, timings = run_measured(IClass.HEAVY_256, iterations=60)
        expected = expected_iteration_tsc(
            IClass.HEAVY_256, 300, 2.2, system.config.base_freq_ghz)
        detector = ThrottleDetector(expected)
        tp_tsc = detector.throttling_period_tsc(timings.durations_tsc)
        # Ground truth: a fresh identical run measured by the system.
        from repro.isa import Loop

        system2 = System(cannon_lake_i3_8121u(), governor_freq_ghz=2.2)
        sink = []

        def program():
            yield system2.until(0.0)
            sink.append((yield system2.execute(0, Loop(IClass.HEAVY_256, 60))))

        system2.spawn(program())
        system2.run_until(us_to_ns(800.0))
        truth_tsc = sink[0].throttled_ns * system2.config.base_freq_ghz
        # The detector sums excess (3/4 of throttled time) so scale it.
        assert tp_tsc == pytest.approx(truth_tsc * 0.75, rel=0.15)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ThrottleDetector(expected_tsc=0.0)
        with pytest.raises(ConfigError):
            ThrottleDetector(expected_tsc=10.0, threshold_factor=1.0)
        with pytest.raises(MeasurementError):
            ThrottleDetector(expected_tsc=10.0).throttled_mask([])

    def test_expected_iteration_validation(self):
        with pytest.raises(ConfigError):
            expected_iteration_tsc(IClass.SCALAR_64, 300, 0.0, 2.2)
