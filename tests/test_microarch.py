"""Cycle-level pipeline model, PMCs and the TSC."""

import pytest

from repro.errors import ConfigError, MeasurementError
from repro.isa import IClass
from repro.microarch import (
    CorePipeline,
    CounterBank,
    PMC,
    PipelineConfig,
    TimestampCounter,
    normalized_undelivered,
)


class TestCounterBank:
    def test_add_and_read(self):
        bank = CounterBank()
        bank.add(PMC.CPU_CLK_UNHALTED, 100)
        assert bank.read(PMC.CPU_CLK_UNHALTED) == 100

    def test_negative_increment_rejected(self):
        bank = CounterBank()
        with pytest.raises(MeasurementError):
            bank.add(PMC.UOPS_DELIVERED, -1)

    def test_snapshot_delta(self):
        bank = CounterBank()
        bank.add(PMC.CPU_CLK_UNHALTED, 10)
        before = bank.snapshot()
        bank.add(PMC.CPU_CLK_UNHALTED, 5)
        assert bank.delta(before)[PMC.CPU_CLK_UNHALTED] == 5

    def test_reset(self):
        bank = CounterBank()
        bank.add(PMC.UOPS_DELIVERED, 7)
        bank.reset()
        assert bank.read(PMC.UOPS_DELIVERED) == 0

    def test_normalized_undelivered(self):
        delta = {PMC.CPU_CLK_UNHALTED: 100, PMC.IDQ_UOPS_NOT_DELIVERED: 300}
        assert normalized_undelivered(delta) == pytest.approx(0.75)

    def test_normalized_undelivered_requires_cycles(self):
        with pytest.raises(MeasurementError):
            normalized_undelivered({PMC.CPU_CLK_UNHALTED: 0})


class TestTSC:
    def test_read_scales_with_rate(self):
        tsc = TimestampCounter(2.2)
        assert tsc.read(1000.0) == 2200

    def test_read_monotone(self):
        tsc = TimestampCounter(2.2)
        assert tsc.read(2000.0) > tsc.read(1000.0)

    def test_cycles_ns_roundtrip(self):
        tsc = TimestampCounter(3.6)
        assert tsc.ns(tsc.cycles(123.0)) == pytest.approx(123.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigError):
            TimestampCounter(0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigError):
            TimestampCounter(1.0).read(-1.0)


class TestPipelineConfig:
    def test_blocked_fraction_is_three_quarters(self):
        assert PipelineConfig().blocked_fraction == pytest.approx(0.75)

    def test_rejects_open_cycles_beyond_window(self):
        with pytest.raises(ConfigError):
            PipelineConfig(throttle_window=4, throttle_open_cycles=5)

    def test_rejects_bad_smt(self):
        with pytest.raises(ConfigError):
            PipelineConfig(smt_threads=3)


class TestThrottleSignature:
    def test_throttled_undelivered_near_three_quarters(self):
        # Figure 11(a): ~75 % of slots undelivered while throttled.
        pipe = CorePipeline()
        pipe.set_thread(0, IClass.HEAVY_256)
        pipe.set_throttle(True)
        before = pipe.thread(0).counters.snapshot()
        pipe.run(10_000)
        frac = normalized_undelivered(pipe.thread(0).counters.delta(before))
        assert 0.72 <= frac <= 0.78

    def test_unthrottled_undelivered_near_zero(self):
        pipe = CorePipeline()
        pipe.set_thread(0, IClass.HEAVY_256)
        pipe.set_throttle(False)
        before = pipe.thread(0).counters.snapshot()
        pipe.run(10_000)
        frac = normalized_undelivered(pipe.thread(0).counters.delta(before))
        assert frac < 0.05

    def test_throttled_ipc_is_quarter_of_baseline(self):
        base = CorePipeline().measure_ipc(0, IClass.HEAVY_256, 20_000,
                                          throttled=False)
        throttled = CorePipeline().measure_ipc(0, IClass.HEAVY_256, 20_000,
                                               throttled=True)
        assert throttled == pytest.approx(base / 4.0, rel=0.05)

    def test_idle_core_counts_nothing(self):
        pipe = CorePipeline()
        pipe.run(100)
        assert pipe.core_counters.read(PMC.CPU_CLK_UNHALTED) == 0

    def test_throttle_cycles_counted(self):
        pipe = CorePipeline()
        pipe.set_thread(0, IClass.HEAVY_256)
        pipe.set_throttle(True)
        pipe.run(1000)
        assert pipe.core_counters.read(PMC.THROTTLE_CYCLES) == 1000


class TestSMT:
    def test_whole_core_gate_throttles_both_threads(self):
        # Key Conclusion 5: the IDQ gate is shared by both SMT threads.
        pipe = CorePipeline()
        pipe.set_thread(0, IClass.HEAVY_256)
        pipe.set_thread(1, IClass.SCALAR_64)
        pipe.set_throttle(True)
        before0 = pipe.thread(0).counters.snapshot()
        before1 = pipe.thread(1).counters.snapshot()
        pipe.run(20_000)
        d0 = pipe.thread(0).counters.delta(before0)[PMC.UOPS_DELIVERED]
        d1 = pipe.thread(1).counters.delta(before1)[PMC.UOPS_DELIVERED]
        total_unthrottled = 20_000 * 4
        assert (d0 + d1) / total_unthrottled < 0.3

    def test_smt_threads_share_delivery_when_unthrottled(self):
        pipe = CorePipeline()
        pipe.set_thread(0, IClass.HEAVY_256)
        pipe.set_thread(1, IClass.HEAVY_256)
        pipe.run(20_000)
        d0 = pipe.thread(0).counters.read(PMC.UOPS_DELIVERED)
        d1 = pipe.thread(1).counters.read(PMC.UOPS_DELIVERED)
        assert d0 == pytest.approx(d1, rel=0.05)

    def test_improved_throttling_spares_the_sibling(self):
        # Section 7: gate only the PHI thread's uops.
        pipe = CorePipeline()
        pipe.set_thread(0, IClass.HEAVY_256)
        pipe.set_thread(1, IClass.SCALAR_64)
        pipe.set_throttle(True, only_threads={0})
        pipe.run(20_000)
        d0 = pipe.thread(0).counters.read(PMC.UOPS_DELIVERED)
        d1 = pipe.thread(1).counters.read(PMC.UOPS_DELIVERED)
        assert d1 > 2 * d0

    def test_unknown_thread_rejected(self):
        pipe = CorePipeline(PipelineConfig(smt_threads=1))
        with pytest.raises(ConfigError):
            pipe.set_thread(1, IClass.SCALAR_64)

    def test_negative_cycles_rejected(self):
        pipe = CorePipeline()
        with pytest.raises(ConfigError):
            pipe.run(-1)


class TestArrayHelpers:
    """Vectorized counter/TSC forms must match their scalar references."""

    def test_tsc_read_array_matches_scalar(self):
        import numpy as np

        tsc = TimestampCounter(2.2)
        times = np.linspace(0.0, 1e7, 1001)
        lanes = tsc.read_array(times)
        assert lanes.dtype == np.int64
        assert [int(v) for v in lanes] == [tsc.read(float(t)) for t in times]

    def test_drifting_read_array_matches_scalar(self):
        import numpy as np

        from repro.microarch.tsc import DriftingTimestampCounter

        tsc = DriftingTimestampCounter(2.2, skew=120e-6, drift_per_s=3e-6)
        times = np.linspace(0.0, 5e8, 513)
        lanes = tsc.read_array(times)
        assert [int(v) for v in lanes] == [tsc.read(float(t)) for t in times]

    def test_read_array_rejects_negative_times(self):
        import numpy as np

        with pytest.raises(ConfigError):
            TimestampCounter(1.0).read_array(np.asarray([0.0, -1.0]))

    def test_counter_bank_as_array_follows_order(self):
        import numpy as np

        bank = CounterBank()
        bank.add(PMC.CPU_CLK_UNHALTED, 400)
        bank.add(PMC.IDQ_UOPS_NOT_DELIVERED, 1200)
        order = (PMC.IDQ_UOPS_NOT_DELIVERED, PMC.CPU_CLK_UNHALTED)
        assert list(bank.as_array(order)) == [1200, 400]
        assert bank.as_array().dtype == np.int64

    def test_delta_matrix_matches_pairwise_delta(self):
        from repro.microarch.counters import delta_matrix

        bank = CounterBank()
        snapshots = [bank.snapshot()]
        for step in (100, 250, 75):
            bank.add(PMC.CPU_CLK_UNHALTED, step)
            bank.add(PMC.IDQ_UOPS_NOT_DELIVERED, step * 3)
            snapshots.append(bank.snapshot())
        order = tuple(PMC)
        matrix = delta_matrix(snapshots, order)
        assert matrix.shape == (3, len(order))
        for row, (before, after) in zip(
                matrix, zip(snapshots, snapshots[1:])):
            expected = {pmc: after[pmc] - before[pmc] for pmc in order}
            assert list(row) == [expected[pmc] for pmc in order]

    def test_delta_matrix_rejects_backwards_counters(self):
        from repro.microarch.counters import delta_matrix

        good = {pmc: 10 for pmc in PMC}
        bad = dict(good)
        bad[PMC.CPU_CLK_UNHALTED] = 5
        with pytest.raises(MeasurementError):
            delta_matrix([good, bad])

    def test_normalized_undelivered_array_matches_scalar(self):
        from repro.microarch.counters import (
            delta_matrix,
            normalized_undelivered_array,
        )

        bank = CounterBank()
        snapshots = [bank.snapshot()]
        for cycles, undelivered in ((100, 300), (50, 10), (400, 1600)):
            bank.add(PMC.CPU_CLK_UNHALTED, cycles)
            bank.add(PMC.IDQ_UOPS_NOT_DELIVERED, undelivered)
            snapshots.append(bank.snapshot())
        matrix = delta_matrix(snapshots)
        fractions = normalized_undelivered_array(matrix)
        for row, fraction in zip(matrix, fractions):
            delta = {pmc: int(v) for pmc, v in zip(tuple(PMC), row)}
            assert float(fraction) == normalized_undelivered(delta)

    def test_normalized_undelivered_array_rejects_zero_cycles(self):
        import numpy as np

        from repro.microarch.counters import normalized_undelivered_array

        zeros = np.zeros((1, len(tuple(PMC))), dtype=np.int64)
        with pytest.raises(MeasurementError):
            normalized_undelivered_array(zeros)
