"""Throttle-pattern anomaly detection."""

import pytest

from repro import System
from repro.core import IccCoresCovert, IccThreadCovert
from repro.errors import ConfigError
from repro.isa.workload import calculix_like_trace
from repro.measure.trace import StepTrace
from repro.mitigations.detector import ThrottleAnomalyDetector
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.noise import attach_trace
from repro.units import ms_to_ns


class TestEpisodeExtraction:
    def test_rising_edges_only(self):
        trace = StepTrace("t")
        for t, v in [(0.0, 0), (10.0, 1), (20.0, 0), (30.0, 1), (40.0, 0)]:
            trace.record(t, v)
        detector = ThrottleAnomalyDetector()
        assert detector.episode_starts(trace, 0.0, 100.0) == [10.0, 30.0]

    def test_window_respected(self):
        trace = StepTrace("t")
        for t, v in [(0.0, 0), (10.0, 1), (20.0, 0), (30.0, 1), (40.0, 0)]:
            trace.record(t, v)
        detector = ThrottleAnomalyDetector()
        assert detector.episode_starts(trace, 25.0, 100.0) == [30.0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            ThrottleAnomalyDetector(min_episodes=2)
        with pytest.raises(ConfigError):
            ThrottleAnomalyDetector(periodicity_threshold=0.0)
        with pytest.raises(ConfigError):
            ThrottleAnomalyDetector(bin_ns=0.0)
        trace = StepTrace("t")
        with pytest.raises(ConfigError):
            ThrottleAnomalyDetector().analyze_trace(0, trace, 10.0, 10.0)


class TestSyntheticPatterns:
    def _train(self, intervals):
        trace = StepTrace("t")
        t = 0.0
        trace.record(t, 0)
        for gap in intervals:
            t += gap
            trace.record(t, 1)
            trace.record(t + 1000.0, 0)
        return trace, t + 2000.0

    def test_metronomic_train_flagged(self):
        trace, end = self._train([750_000.0] * 10)
        report = ThrottleAnomalyDetector().analyze_trace(0, trace, 0.0, end)
        assert report.flagged
        assert report.interval_cv < 0.01
        assert report.periodicity > 0.8

    def test_irregular_train_not_flagged(self):
        trace, end = self._train([100_000.0, 900_000.0, 300_000.0,
                                  1_500_000.0, 200_000.0, 700_000.0,
                                  50_000.0, 1_200_000.0])
        report = ThrottleAnomalyDetector().analyze_trace(0, trace, 0.0, end)
        assert not report.flagged

    def test_too_few_episodes_not_flagged(self):
        trace, end = self._train([750_000.0] * 3)
        report = ThrottleAnomalyDetector().analyze_trace(0, trace, 0.0, end)
        assert not report.flagged
        assert report.episodes == 3


class TestOnSimulatedSystems:
    def test_covert_channel_is_detected(self):
        system = System(cannon_lake_i3_8121u())
        channel = IccThreadCovert(system)
        channel.transfer(bytes(range(8)))  # ~32 metronomic slots
        detector = ThrottleAnomalyDetector()
        assert detector.any_flagged(system)
        report = detector.analyze_system(system)[0]
        # Two episodes per slot (sender ramp + probe ramp) at the
        # ~1.3 kHz slot clock.
        assert 2_000.0 < report.episode_rate_hz < 3_200.0
        assert report.periodicity > 0.5

    def test_cross_core_channel_flags_both_cores(self):
        system = System(cannon_lake_i3_8121u())
        IccCoresCovert(system).transfer(bytes(range(8)))
        reports = ThrottleAnomalyDetector().analyze_system(system)
        assert all(r.flagged for r in reports)

    def test_organic_workload_not_flagged(self):
        system = System(cannon_lake_i3_8121u())
        attach_trace(system, system.thread_on(0),
                     calculix_like_trace(total_ms=30.0, seed=11))
        system.run_until(ms_to_ns(32.0))
        detector = ThrottleAnomalyDetector()
        assert not detector.any_flagged(system)

    def test_idle_system_not_flagged(self):
        system = System(cannon_lake_i3_8121u())
        system.run_until(ms_to_ns(5.0))
        assert not ThrottleAnomalyDetector().any_flagged(system)


class TestEvasion:
    """The arms race: slot jitter defeats periodicity detection."""

    def test_jittered_channel_still_transfers(self):
        from repro.core.channel import ChannelConfig

        system = System(cannon_lake_i3_8121u())
        channel = IccThreadCovert(
            system, ChannelConfig(slot_jitter_us=400.0))
        report = channel.transfer(bytes(range(8)))
        assert report.received == bytes(range(8))
        assert report.ber == 0.0

    def test_jitter_evades_the_detector(self):
        from repro.core.channel import ChannelConfig

        clocked = System(cannon_lake_i3_8121u())
        IccThreadCovert(clocked).transfer(bytes(range(8)))

        jittered = System(cannon_lake_i3_8121u())
        IccThreadCovert(
            jittered, ChannelConfig(slot_jitter_us=400.0)
        ).transfer(bytes(range(8)))

        detector = ThrottleAnomalyDetector()
        assert detector.any_flagged(clocked)
        assert not detector.any_flagged(jittered)

    def test_jitter_costs_throughput(self):
        from repro.core.channel import ChannelConfig

        plain = System(cannon_lake_i3_8121u())
        plain_report = IccThreadCovert(plain).transfer(bytes(range(8)))
        stealthy = System(cannon_lake_i3_8121u())
        stealthy_report = IccThreadCovert(
            stealthy, ChannelConfig(slot_jitter_us=400.0)
        ).transfer(bytes(range(8)))
        assert stealthy_report.throughput_bps < plain_report.throughput_bps


class TestJitteredSchedule:
    def test_both_parties_compute_identical_slots(self):
        from repro.core.sync import JitteredSchedule

        a = JitteredSchedule(0.0, 1000.0, jitter_ns=300.0, seed=5)
        b = JitteredSchedule(0.0, 1000.0, jitter_ns=300.0, seed=5)
        assert [a.slot_start(i) for i in range(10)] == [
            b.slot_start(i) for i in range(10)]

    def test_offsets_within_jitter(self):
        from repro.core.sync import JitteredSchedule

        schedule = JitteredSchedule(0.0, 1000.0, jitter_ns=300.0, seed=5)
        for i in range(20):
            base = i * 1000.0
            assert base <= schedule.slot_start(i) < base + 300.0

    def test_different_seeds_differ(self):
        from repro.core.sync import JitteredSchedule

        a = JitteredSchedule(0.0, 1000.0, jitter_ns=300.0, seed=1)
        b = JitteredSchedule(0.0, 1000.0, jitter_ns=300.0, seed=2)
        assert [a.slot_start(i) for i in range(8)] != [
            b.slot_start(i) for i in range(8)]

    def test_jitter_must_stay_below_slot(self):
        from repro.core.sync import JitteredSchedule
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            JitteredSchedule(0.0, 1000.0, jitter_ns=1000.0)
        with pytest.raises(ProtocolError):
            JitteredSchedule(0.0, 1000.0, jitter_ns=-1.0)


class TestEdgeCases:
    """Boundary behaviour: empty traces and exact thresholds."""

    def _train(self, intervals):
        trace = StepTrace("t")
        t = 0.0
        trace.record(t, 0)
        for gap in intervals:
            t += gap
            trace.record(t, 1)
            trace.record(t + 1000.0, 0)
        return trace, t + 2000.0

    def test_empty_trace_yields_calm_report(self):
        report = ThrottleAnomalyDetector().analyze_trace(
            0, StepTrace("t"), 0.0, ms_to_ns(10.0))
        assert not report.flagged
        assert report.episodes == 0
        assert report.periodicity == 0.0
        assert report.mean_interval_ns == 0.0
        assert report.episode_rate_hz == 0.0

    def test_exactly_min_episodes_gets_a_verdict(self):
        # min_episodes is inclusive: a metronomic train of exactly that
        # many episodes must already be flaggable.
        detector = ThrottleAnomalyDetector(min_episodes=6)
        trace, end = self._train([750_000.0] * 6)
        report = detector.analyze_trace(0, trace, 0.0, end)
        assert report.episodes == 6
        assert report.flagged

    def test_one_short_of_min_episodes_is_no_evidence(self):
        detector = ThrottleAnomalyDetector(min_episodes=6)
        trace, end = self._train([750_000.0] * 5)
        report = detector.analyze_trace(0, trace, 0.0, end)
        assert report.episodes == 5
        assert not report.flagged
        assert report.periodicity == 0.0

    def test_threshold_is_inclusive(self):
        # flagged is `score >= threshold`: pin the boundary by running
        # the same train through a detector whose threshold equals the
        # measured score exactly.
        trace, end = self._train([750_000.0] * 10)
        score = ThrottleAnomalyDetector().analyze_trace(
            0, trace, 0.0, end).periodicity
        at_boundary = ThrottleAnomalyDetector(periodicity_threshold=score)
        assert at_boundary.analyze_trace(0, trace, 0.0, end).flagged

    def test_threshold_of_one_allowed_but_above_rejected(self):
        ThrottleAnomalyDetector(periodicity_threshold=1.0)
        with pytest.raises(ConfigError):
            ThrottleAnomalyDetector(periodicity_threshold=1.0001)

    def test_periodicity_score_needs_three_starts(self):
        detector = ThrottleAnomalyDetector()
        assert detector.periodicity_score([1.0, 2.0], 0.0, 10.0) == 0.0
