"""Noise injectors and the instruction-class side channel."""

import pytest

from repro import IClass, System
from repro.core import ChannelLocation, IccThreadCovert, InstructionClassSpy
from repro.errors import ConfigError
from repro.soc.config import cannon_lake_i3_8121u, coffee_lake_i7_9700k
from repro.soc.noise import (
    NoiseConfig,
    attach_concurrent_app,
    attach_system_noise,
)
from repro.units import ms_to_ns, us_to_ns


class TestNoiseConfig:
    def test_total_rate(self):
        config = NoiseConfig(interrupt_rate_per_s=400.0,
                             ctx_switch_rate_per_s=100.0)
        assert config.total_event_rate_per_s == 500.0

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigError):
            NoiseConfig(interrupt_rate_per_s=-1.0)

    def test_rejects_nonpositive_service(self):
        with pytest.raises(ConfigError):
            NoiseConfig(interrupt_mean_us=0.0)


class TestSystemNoise:
    def test_noise_preempts_threads(self):
        system = System(cannon_lake_i3_8121u(), seed=3)
        attach_system_noise(system, [0],
                            NoiseConfig(interrupt_rate_per_s=1_000_000.0,
                                        ctx_switch_rate_per_s=0.0),
                            horizon_ns=ms_to_ns(1.0), seed=3)
        from repro.isa import Loop

        sink = []

        def program():
            yield system.until(us_to_ns(5.0))
            sink.append((yield system.execute(0, Loop(IClass.SCALAR_64, 40))))

        system.spawn(program())
        system.run_until(ms_to_ns(2.0))
        expected = Loop(IClass.SCALAR_64, 40).unthrottled_ns(2.2)
        assert sink[0].elapsed_ns > expected * 1.2

    def test_zero_rate_noise_is_silent(self):
        system = System(cannon_lake_i3_8121u(), seed=3)
        attach_system_noise(system, [0],
                            NoiseConfig(interrupt_rate_per_s=0.0,
                                        ctx_switch_rate_per_s=0.0),
                            horizon_ns=ms_to_ns(1.0))
        system.run_until(ms_to_ns(1.0))
        assert system.engine.events_run < 10

    def test_bad_horizon_rejected(self):
        system = System(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            attach_system_noise(system, [0], NoiseConfig(), horizon_ns=0.0)

    def test_noise_is_deterministic_per_seed(self):
        def run(seed):
            system = System(cannon_lake_i3_8121u(), seed=seed)
            attach_system_noise(system, [0], NoiseConfig(),
                                horizon_ns=ms_to_ns(2.0), seed=7)
            system.run_until(ms_to_ns(2.0))
            return system.engine.events_run

        assert run(1) == run(1)


class TestConcurrentApp:
    def test_app_raises_channel_ber_at_high_rate(self):
        quiet = System(cannon_lake_i3_8121u(), seed=5)
        clean = IccThreadCovert(quiet).transfer(b"\x5a\x3c\xf0\x69")

        noisy = System(cannon_lake_i3_8121u(), seed=5)
        attach_concurrent_app(noisy, noisy.thread_on(1), 10_000.0,
                              duration_ms=80.0, seed=5)
        dirty = IccThreadCovert(noisy).transfer(b"\x5a\x3c\xf0\x69")
        assert clean.ber == 0.0
        assert dirty.ber >= clean.ber

    def test_app_classes_clamped_to_part_width(self):
        system = System(coffee_lake_i7_9700k())
        attach_concurrent_app(system, system.thread_on(1), 100.0,
                              duration_ms=5.0)
        system.run_until(ms_to_ns(1.0))  # must not raise about AVX-512


class TestInstructionClassSpy:
    def test_smt_spy_recovers_victim_classes(self):
        system = System(cannon_lake_i3_8121u())
        spy = InstructionClassSpy(system, ChannelLocation.ACROSS_SMT)
        victim = [IClass.SCALAR_64, IClass.HEAVY_256, IClass.HEAVY_512,
                  IClass.HEAVY_128]
        report = spy.spy(victim)
        assert report.accuracy >= 0.75

    def test_cross_core_spy_recovers_phi_classes(self):
        system = System(cannon_lake_i3_8121u())
        spy = InstructionClassSpy(system, ChannelLocation.ACROSS_CORES)
        victim = [IClass.HEAVY_128, IClass.HEAVY_512, IClass.HEAVY_256]
        report = spy.spy(victim)
        assert report.accuracy >= 2 / 3

    def test_same_thread_location_rejected(self):
        system = System(cannon_lake_i3_8121u())
        with pytest.raises(ConfigError):
            InstructionClassSpy(system, ChannelLocation.SAME_THREAD)

    def test_smt_spy_needs_smt(self):
        system = System(coffee_lake_i7_9700k())
        with pytest.raises(ConfigError):
            InstructionClassSpy(system, ChannelLocation.ACROSS_SMT)

    def test_victim_width_validated(self):
        system = System(coffee_lake_i7_9700k())
        spy = InstructionClassSpy(system, ChannelLocation.ACROSS_CORES)
        with pytest.raises(ConfigError):
            spy.spy([IClass.HEAVY_512])

    def test_report_accuracy_empty(self):
        from repro.core.side_channel import SpyReport

        assert SpyReport([], [], []).accuracy == 0.0


class TestKeyDependentVictim:
    def test_phases_map_bits_to_classes(self):
        from repro.core.side_channel import KeyDependentVictim

        victim = KeyDependentVictim()
        phases = victim.phases_for_key([1, 0, 1])
        assert phases == [IClass.HEAVY_256, IClass.SCALAR_64,
                          IClass.HEAVY_256]

    def test_recover_key_inverts_phases(self):
        from repro.core.side_channel import KeyDependentVictim

        victim = KeyDependentVictim()
        key = [1, 0, 0, 1, 1, 0]
        assert victim.recover_key(victim.phases_for_key(key)) == key

    def test_recovery_tolerates_class_confusion(self):
        from repro.core.side_channel import KeyDependentVictim

        victim = KeyDependentVictim()
        # A misclassified-but-nearby class still resolves to the right bit.
        inferred = [IClass.HEAVY_512, IClass.LIGHT_128]
        assert victim.recover_key(inferred) == [1, 0]

    def test_validation(self):
        from repro.core.side_channel import KeyDependentVictim

        with pytest.raises(ConfigError):
            KeyDependentVictim(one_class=IClass.SCALAR_64,
                               zero_class=IClass.SCALAR_64)
        with pytest.raises(ConfigError):
            KeyDependentVictim().phases_for_key([2])
        with pytest.raises(ConfigError):
            KeyDependentVictim().phases_for_key([])

    def test_smt_spy_steals_a_key(self):
        from repro.core.side_channel import KeyDependentVictim

        system = System(cannon_lake_i3_8121u())
        spy = InstructionClassSpy(system, ChannelLocation.ACROSS_SMT)
        victim = KeyDependentVictim()
        key = [1, 0, 1, 1, 0, 0, 1, 0]
        assert spy.steal_key(victim, key) == key

    def test_cross_core_spy_steals_a_key(self):
        from repro.core.side_channel import KeyDependentVictim

        system = System(cannon_lake_i3_8121u())
        spy = InstructionClassSpy(system, ChannelLocation.ACROSS_CORES)
        victim = KeyDependentVictim(one_class=IClass.HEAVY_512,
                                    zero_class=IClass.HEAVY_128)
        key = [0, 1, 1, 0, 1]
        assert spy.steal_key(victim, key) == key
