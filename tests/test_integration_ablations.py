"""Integration tests and ablations of the key design decisions.

DESIGN.md lists the load-bearing mechanisms; each ablation here shows the
corresponding paper claim *disappears* when the mechanism is removed,
i.e. the reproduction's effects come from the modelled root causes and
not from coincidences.
"""

import pytest

from repro import IClass, Loop, System, SystemOptions
from repro.core import ChannelConfig, IccCoresCovert, IccThreadCovert
from repro.errors import CalibrationError
from repro.soc.config import cannon_lake_i3_8121u
from repro.units import us_to_ns


def receiver_tp_cross_core(options, sender_class, delay_ns=200.0):
    system = System(cannon_lake_i3_8121u(), options=options)
    sink = []

    def sender():
        yield system.until(us_to_ns(5.0))
        yield system.execute(system.thread_on(0, 0), Loop(sender_class, 40))

    def receiver():
        yield system.until(us_to_ns(5.0) + delay_ns)
        sink.append((yield system.execute(system.thread_on(1, 0),
                                          Loop(IClass.HEAVY_128, 40))))

    system.spawn(sender())
    system.spawn(receiver())
    system.run_until(us_to_ns(600.0))
    return sink[0].throttled_ns


class TestAblationSerializedQueue:
    """Ablation 1+2: per-core VR removes serialisation and the shared rail."""

    def test_cross_core_signal_needs_shared_rail(self):
        shared_lo = receiver_tp_cross_core(SystemOptions(), IClass.HEAVY_128)
        shared_hi = receiver_tp_cross_core(SystemOptions(), IClass.HEAVY_512)
        assert shared_hi - shared_lo > us_to_ns(5.0)

        split_lo = receiver_tp_cross_core(
            SystemOptions(per_core_vr=True, ldo_rails=False), IClass.HEAVY_128)
        split_hi = receiver_tp_cross_core(
            SystemOptions(per_core_vr=True, ldo_rails=False), IClass.HEAVY_512)
        assert abs(split_hi - split_lo) < us_to_ns(0.2)


class TestAblationSlewRate:
    """Ablation 5: LDO's fast ramp collapses the level ladder."""

    def test_ldo_rails_shrink_tp_below_decodability(self):
        slow = System(cannon_lake_i3_8121u())
        channel = IccThreadCovert(slow)
        with pytest.raises(CalibrationError):
            # Same protocol, but demand the levels sit a full 2 K cycles
            # apart on a fast-LDO machine: impossible.
            fast = System(cannon_lake_i3_8121u(),
                          options=SystemOptions(per_core_vr=True,
                                                ldo_rails=True))
            strict = ChannelConfig(min_level_gap_tsc=2000.0)
            IccThreadCovert(fast, strict).calibrate()
        # Sanity: the MBVR machine calibrates even under the strict gap.
        strict = ChannelConfig(min_level_gap_tsc=2000.0)
        IccThreadCovert(slow, strict).calibrate()
        assert channel is not None


class TestAblationHysteresis:
    """Ablation 4: transactions must respect the 650 us reset-time."""

    def test_slots_shorter_than_reset_time_cause_intersymbol_errors(self):
        # With a 200 us slot the previous symbol's guardband is still
        # granted, so a lower-level sender never triggers a transition
        # and symbols collide.
        system = System(cannon_lake_i3_8121u())
        config = ChannelConfig(slot_us=200.0, min_level_gap_tsc=0.0,
                               adaptive_slot=False)
        channel = IccThreadCovert(system, config)
        channel.calibrate()
        # Descending symbol stream: every later symbol hides under the
        # guardband of the earlier ones.
        readings = channel.run_symbols([3, 2, 1, 0])
        decoded = channel.calibrator.decode_all(readings)
        assert decoded != [3, 2, 1, 0]

    def test_slots_longer_than_reset_time_decode_cleanly(self):
        system = System(cannon_lake_i3_8121u())
        channel = IccThreadCovert(system)  # default 750 us slot
        channel.calibrate()
        readings = channel.run_symbols([3, 2, 1, 0])
        decoded = channel.calibrator.decode_all(readings)
        assert decoded == [3, 2, 1, 0]


class TestAblationTemporalProximity:
    """Cross-core exacerbation needs requests within a short window."""

    def test_far_apart_requests_do_not_queue(self):
        near = receiver_tp_cross_core(SystemOptions(), IClass.HEAVY_512,
                                      delay_ns=200.0)
        far = receiver_tp_cross_core(SystemOptions(), IClass.HEAVY_512,
                                     delay_ns=us_to_ns(200.0))
        assert near > far + us_to_ns(3.0)


class TestEndToEndScenario:
    """A realistic exfiltration: key bytes with CRC framing, across cores."""

    def test_key_exfiltration_with_crc(self):
        from repro.core import CRC8

        key = bytes([0x2b, 0x7e, 0x15, 0x16])
        framed = CRC8().append(key)
        system = System(cannon_lake_i3_8121u())
        channel = IccCoresCovert(system)
        report = channel.transfer(framed)
        assert CRC8().verify(report.received)
        assert report.received[:-1] == key

    def test_hamming_protected_transfer_under_noise(self):
        from repro.core import Hamming74
        from repro.core.ecc import deinterleave, interleave
        from repro.core.encoding import bits_to_bytes, bytes_to_bits
        from repro.soc.noise import attach_concurrent_app

        payload = b"\x9d\x42"
        code = Hamming74()
        coded_bits = code.encode(bytes_to_bits(payload))
        # Interleave at the block size so a 2-bit symbol error never
        # lands twice in one Hamming block.
        wire_bits = interleave(coded_bits, depth=code.block_bits)
        wire = bits_to_bytes(wire_bits)

        system = System(cannon_lake_i3_8121u(), seed=77)
        attach_concurrent_app(system, system.thread_on(1), 2000.0,
                              duration_ms=60.0, seed=77)
        channel = IccThreadCovert(system)
        report = channel.transfer(wire)
        received = deinterleave(bytes_to_bits(report.received),
                                depth=code.block_bits)
        decoded = code.decode(received)
        assert bits_to_bytes(decoded) == payload
