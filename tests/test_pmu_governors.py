"""Software frequency governors."""

import pytest

from repro.errors import ConfigError
from repro.pmu import Governor, GovernorKind


class TestGovernor:
    def test_performance_requests_max(self):
        gov = Governor(GovernorKind.PERFORMANCE, 0.8, 3.2)
        assert gov.requested_freq_ghz() == pytest.approx(3.2)

    def test_powersave_requests_min(self):
        gov = Governor(GovernorKind.POWERSAVE, 0.8, 3.2)
        assert gov.requested_freq_ghz() == pytest.approx(0.8)

    def test_userspace_requests_pinned_value(self):
        gov = Governor(GovernorKind.USERSPACE, 0.8, 3.2, userspace_ghz=2.2)
        assert gov.requested_freq_ghz() == pytest.approx(2.2)

    def test_userspace_requires_value(self):
        with pytest.raises(ConfigError):
            Governor(GovernorKind.USERSPACE, 0.8, 3.2)

    def test_userspace_value_must_be_in_range(self):
        with pytest.raises(ConfigError):
            Governor(GovernorKind.USERSPACE, 0.8, 3.2, userspace_ghz=4.0)

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigError):
            Governor(GovernorKind.PERFORMANCE, 3.2, 0.8)
