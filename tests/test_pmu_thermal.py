"""RC thermal model: slow timescales validate 'not thermal' claims."""

import pytest

from repro.errors import ConfigError
from repro.pmu import ThermalModel, ThermalSpec
from repro.units import ms_to_ns, s_to_ns, us_to_ns


@pytest.fixture
def model():
    return ThermalModel(ThermalSpec(r_th_c_per_w=1.0, tau_s=2.0,
                                    t_ambient_c=45.0, tj_max_c=100.0))


class TestSpec:
    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ConfigError):
            ThermalSpec(r_th_c_per_w=0.0)

    def test_rejects_tjmax_below_ambient(self):
        with pytest.raises(ConfigError):
            ThermalSpec(t_ambient_c=50.0, tj_max_c=40.0)


class TestDynamics:
    def test_starts_at_ambient(self, model):
        assert model.read(0.0) == pytest.approx(45.0)

    def test_unset_sentinel_tolerates_float_noise(self):
        """The 'start at ambient' sentinel is epsilon-compared (the
        float-eq lint rule bans bare equality): a start temperature
        within 1e-12 of zero still means 'begin at ambient', while a
        genuine explicit start temperature is preserved."""
        spec = ThermalSpec(t_ambient_c=45.0, tj_max_c=100.0)
        noisy = ThermalModel(spec, temperature_c=1e-13)
        assert noisy.temperature_c == pytest.approx(45.0)
        explicit = ThermalModel(spec, temperature_c=60.0)
        assert explicit.temperature_c == pytest.approx(60.0)

    def test_approaches_steady_state(self, model):
        model.advance(0.0, 20.0)  # 20 W -> steady 65 C
        temp = model.advance(s_to_ns(20.0), 20.0)
        assert temp == pytest.approx(65.0, abs=0.1)

    def test_monotone_rise_under_constant_power(self, model):
        model.advance(0.0, 20.0)
        t1 = model.advance(s_to_ns(0.5), 20.0)
        t2 = model.advance(s_to_ns(1.0), 20.0)
        t3 = model.advance(s_to_ns(2.0), 20.0)
        assert 45.0 < t1 < t2 < t3 < 65.0

    def test_cools_when_power_removed(self, model):
        model.advance(0.0, 20.0)
        hot = model.advance(s_to_ns(10.0), 0.0)
        cooled = model.advance(s_to_ns(20.0), 0.0)
        assert cooled < hot

    def test_microsecond_workloads_barely_move_temperature(self, model):
        # Key Conclusion 2 hinges on this: over the tens-of-microseconds
        # current-management window, temperature moves by millidegrees.
        model.advance(0.0, 25.0)
        temp = model.advance(us_to_ns(50.0), 25.0)
        assert temp - 45.0 < 0.01

    def test_millisecond_workloads_still_far_from_tjmax(self, model):
        model.advance(0.0, 30.0)
        temp = model.advance(ms_to_ns(5.0), 30.0)
        assert temp < 46.0
        assert not model.is_throttling(ms_to_ns(5.0))

    def test_is_throttling_at_tjmax(self):
        spec = ThermalSpec(r_th_c_per_w=10.0, tau_s=0.001, t_ambient_c=45.0,
                           tj_max_c=100.0)
        model = ThermalModel(spec)
        model.advance(0.0, 50.0)  # steady 545 C, tau 1 ms
        assert model.is_throttling(ms_to_ns(20.0))

    def test_headroom(self, model):
        assert model.headroom_c(0.0) == pytest.approx(55.0)

    def test_rejects_time_going_backwards(self, model):
        model.advance(1000.0, 5.0)
        with pytest.raises(ConfigError):
            model.advance(500.0, 5.0)

    def test_rejects_negative_power(self, model):
        with pytest.raises(ConfigError):
            model.advance(0.0, -1.0)
