"""Spectral rail analysis: the analog defender."""

import numpy as np
import pytest

from repro import System
from repro.core import IccThreadCovert
from repro.errors import MeasurementError
from repro.isa.workload import calculix_like_trace
from repro.measure import DAQCard, DAQSpec, SampleSeries
from repro.measure.spectral import RailSpectralDetector
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.noise import attach_trace


def synthetic_tone(freq_hz, duration_s=0.05, rate_hz=100_000.0, noise=0.0,
                   seed=1):
    """A sampled sinusoid plus optional white noise."""
    rng = np.random.default_rng(seed)
    n = int(duration_s * rate_hz)
    times_ns = np.arange(n) * (1e9 / rate_hz)
    values = 0.8 + 0.004 * np.sin(2 * np.pi * freq_hz * times_ns * 1e-9)
    if noise:
        values = values + rng.normal(0.0, noise, n)
    return SampleSeries(times_ns, values, name="tone")


class TestSyntheticSpectra:
    def test_tone_detected_at_its_frequency(self):
        detector = RailSpectralDetector()
        verdict = detector.analyze(synthetic_tone(1_300.0))
        assert verdict.flagged
        assert verdict.peak_hz == pytest.approx(1_300.0, rel=0.05)

    def test_noise_not_flagged(self):
        rng = np.random.default_rng(2)
        n = 4096
        times_ns = np.arange(n) * 10_000.0
        values = 0.8 + rng.normal(0.0, 0.002, n)
        detector = RailSpectralDetector()
        verdict = detector.analyze(SampleSeries(times_ns, values))
        assert not verdict.flagged

    def test_tone_survives_moderate_noise(self):
        detector = RailSpectralDetector()
        verdict = detector.analyze(synthetic_tone(900.0, noise=0.0008))
        assert verdict.flagged

    def test_validation(self):
        detector = RailSpectralDetector()
        with pytest.raises(MeasurementError):
            detector.analyze(SampleSeries(np.arange(4.0), np.zeros(4)))
        with pytest.raises(MeasurementError):
            RailSpectralDetector(band_hz=(100.0, 50.0))
        with pytest.raises(MeasurementError):
            RailSpectralDetector(prominence_threshold=0.5)

    def test_nonuniform_sampling_rejected(self):
        detector = RailSpectralDetector()
        times = np.array([0.0, 1.0, 3.0, 7.0, 15.0] * 10, dtype=float).cumsum()
        with pytest.raises(MeasurementError):
            detector.analyze(SampleSeries(times, np.zeros(len(times))))


class TestOnSimulatedRail:
    def _rail_trace(self, setup, span_ms=20.0):
        from repro.units import ms_to_ns

        system = System(cannon_lake_i3_8121u())
        setup(system)
        if system.now < ms_to_ns(span_ms):
            system.run_until(ms_to_ns(span_ms))
        daq = DAQCard(DAQSpec(accuracy=1.0))
        return daq.sample(lambda t: system.vcc_at(t), 0.0, system.now,
                          sample_rate_hz=200_000.0, name="rail")

    def test_covert_channel_rail_has_a_slot_line(self):
        def setup(system):
            channel = IccThreadCovert(system)
            channel.transfer(bytes(range(8)))  # runs to completion inline

        trace = self._rail_trace(setup, span_ms=25.0)
        verdict = RailSpectralDetector().analyze(trace)
        assert verdict.flagged
        # The line sits at the slot clock (~1/750 us) or a harmonic.
        slot_hz = 1e6 / 750.0
        ratio = verdict.peak_hz / slot_hz
        assert abs(ratio - round(ratio)) < 0.1

    def test_organic_workload_rail_not_flagged(self):
        def setup(system):
            attach_trace(system, system.thread_on(0),
                         calculix_like_trace(total_ms=20.0, seed=3))

        trace = self._rail_trace(setup, span_ms=20.0)
        verdict = RailSpectralDetector().analyze(trace)
        assert not verdict.flagged

    def test_idle_rail_not_flagged(self):
        trace = self._rail_trace(lambda system: None, span_ms=20.0)
        verdict = RailSpectralDetector().analyze(trace)
        assert not verdict.flagged
