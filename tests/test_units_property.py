"""Property tests: repro.units converter pairs are inverse bijections.

Float round-trips through a multiply/divide pair are *not* bit-exact
for arbitrary doubles (``(x * 1000) / 1000`` can differ from ``x`` by
one ULP when the intermediate rounds), so the property asserted here is
the strongest one that is actually true of IEEE-754 arithmetic:

* every round-trip lands within 1 ULP of the input, and
* integer-valued inputs (the common case for ns timestamps and mv
  rails, which the codebase keeps integral) round-trip bit-exactly
  through the multiply-then-divide direction, as long as the scaled
  intermediate stays below 2**53 (``x * k`` is then exact, and the
  correctly-rounded division recovers the representable ``x``).  The
  divide-first direction is *not* exact even for integers —
  ``mv_to_v(1001)`` already rounds — which is exactly why the tolerance
  above is 1 ULP and not 0.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units

#: (forward, inverse) converter pairs exported by repro.units, with the
#: multiplying converter first.
CONVERTER_PAIRS = [
    (units.us_to_ns, units.ns_to_us),
    (units.ms_to_ns, units.ns_to_ms),
    (units.s_to_ns, units.ns_to_s),
    (units.v_to_mv, units.mv_to_v),
]

finite = st.floats(min_value=1e-12, max_value=1e12,
                   allow_nan=False, allow_infinity=False)
#: Bounded so value * 1e9 stays below 2**53 for every pair.
integral = st.integers(min_value=1, max_value=10**6)


def ulps_apart(a, b):
    """How many representable doubles separate ``a`` and ``b``."""
    steps = 0
    x = a
    while x != b and steps <= 4:
        x = math.nextafter(x, b)
        steps += 1
    return steps


class TestConverterInverses:
    @pytest.mark.parametrize("fwd, inv", CONVERTER_PAIRS,
                             ids=lambda f: getattr(f, "__name__", "pair"))
    @given(value=finite)
    def test_round_trip_within_one_ulp(self, fwd, inv, value):
        assert ulps_apart(inv(fwd(value)), value) <= 1
        assert ulps_apart(fwd(inv(value)), value) <= 1

    @pytest.mark.parametrize("fwd, inv", CONVERTER_PAIRS,
                             ids=lambda f: getattr(f, "__name__", "pair"))
    @given(value=integral)
    def test_integer_values_round_trip_exactly(self, fwd, inv, value):
        assert inv(fwd(float(value))) == float(value)

    @given(value=finite)
    def test_cycles_pair_inverts_at_fixed_frequency(self, value):
        for freq_ghz in (0.8, 1.0, 2.2, 3.2):
            back = units.ns_for_cycles(units.cycles_at(value, freq_ghz),
                                       freq_ghz)
            assert ulps_apart(back, value) <= 1

    @pytest.mark.parametrize("fwd, inv", CONVERTER_PAIRS,
                             ids=lambda f: getattr(f, "__name__", "pair"))
    @given(value=finite)
    def test_monotone_and_sign_preserving(self, fwd, inv, value):
        assert fwd(value) > 0 and inv(value) > 0
        assert fwd(value * 2) > fwd(value)
