"""Stateful fuzzing of the central PMU (hypothesis rule machine)."""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import settings

from repro.isa import IClass
from repro.pdn import GuardbandModel, LoadLine, VoltageRegulator
from repro.pmu import CentralPMU, LimitPolicy, PMUConfig
from repro.pmu.dvfs import pstate_ladder
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.engine import Engine

N_CORES = 2


def build_pmu():
    config = cannon_lake_i3_8121u()
    engine = Engine()
    curve = config.vf_curve()
    guardband = GuardbandModel(LoadLine(config.r_ll_mohm / 1000.0))
    limits = LimitPolicy(curve, guardband, config.vcc_max, config.icc_max)
    ladder = pstate_ladder(curve, config.min_freq_ghz, config.max_turbo_ghz)
    spec = config.vr_spec()
    v0 = spec.quantize_vid(curve.vcc_for(2.2))
    rails = [VoltageRegulator(spec, v0, name="vr")]
    pmu = CentralPMU(engine, rails, [0] * N_CORES, guardband, curve, limits,
                     ladder, config.license_table(), requested_freq_ghz=2.2,
                     config=PMUConfig())
    return config, engine, pmu


class PMUMachine(RuleBasedStateMachine):
    """Random request/down/active/frequency sequences against the PMU.

    Whatever the order of events, the PMU must keep the rail inside its
    electrical envelope, keep the frequency inside the part's range, and
    eventually settle with nothing throttled.
    """

    def __init__(self):
        super().__init__()
        self.config, self.engine, self.pmu = build_pmu()

    cores = st.integers(0, N_CORES - 1)
    classes = st.sampled_from(list(IClass))

    @rule(core=cores, iclass=classes)
    def request_up(self, core, iclass):
        self.pmu.request_up(core, iclass)

    @rule(core=cores, iclass=classes)
    def request_down(self, core, iclass):
        self.pmu.request_down(core, iclass)

    @rule(core=cores, active=st.booleans())
    def set_active(self, core, active):
        self.pmu.set_core_active(core, active)

    @rule(freq=st.floats(0.8, 3.2))
    def set_frequency(self, freq):
        self.pmu.set_requested_freq(round(freq, 1))

    @rule(steps=st.integers(1, 30))
    def advance(self, steps):
        for _ in range(steps):
            if not self.engine.step():
                break

    @invariant()
    def rail_within_envelope(self):
        v = self.pmu.core_voltage(0, self.engine.now)
        assert 0.5 <= v <= self.config.vcc_max + 1e-9

    @invariant()
    def frequency_within_range(self):
        assert (self.config.min_freq_ghz - 1e-9
                <= self.pmu.freq_ghz
                <= self.config.max_turbo_ghz + 1e-9)

    @invariant()
    def grants_are_valid_classes(self):
        for granted in self.pmu.granted:
            assert granted in IClass

    @invariant()
    def throttled_cores_exist(self):
        for core in self.pmu.throttled_cores():
            assert 0 <= core < N_CORES

    def teardown(self):
        # Drain everything: the PMU must settle with no core throttled
        # and the rail matching the granted guardbands (no deadlock, no
        # forgotten waiter).
        self.engine.run()
        assert self.pmu.throttled_cores() == set()
        for rail_queue in self.pmu._queues:
            assert not rail_queue


PMUMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestPMUStateful = PMUMachine.TestCase
