"""CSV export of experiment data."""

import csv
import os

from repro.analysis import experiments as ex
from repro.analysis.export import (
    export_all,
    export_fig10,
    export_fig12,
    main,
)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestWriters:
    def test_fig12_csv_shape(self, tmp_path):
        result = ex.fig12_throughput()
        paths = export_fig12(result, str(tmp_path))
        rows = read_csv(paths[0])
        assert rows[0] == ["channel", "throughput_bps", "ber"]
        assert len(rows) == 1 + len(result.throughput_bps)
        channels = {row[0] for row in rows[1:]}
        assert "IccThreadCovert" in channels and "POWERT" in channels

    def test_fig10_csv_shape(self, tmp_path):
        result = ex.fig10_multilevel(freqs=(1.0,), iterations=40)
        paths = export_fig10(result, str(tmp_path))
        sweep_rows = read_csv(paths[0])
        assert sweep_rows[0] == ["class", "freq_ghz", "cores", "tp_us"]
        assert len(sweep_rows) == 1 + len(result.sweep)
        preceded_rows = read_csv(paths[1])
        assert preceded_rows[0] == ["preceding_class", "tp_us", "level"]


class TestExportAll:
    def test_writes_every_artifact(self, tmp_path):
        paths = export_all(str(tmp_path), quick=True)
        names = {os.path.basename(p) for p in paths}
        expected = {
            "fig6_vcc.csv", "fig6_calculix_vcc.csv", "fig7_points.csv",
            "fig7_freq_timeline.csv", "fig8_tp_samples.csv",
            "fig8_iteration_deltas.csv", "fig10_sweep.csv",
            "fig10_preceded.csv", "fig12_throughput.csv",
            "fig13_levels.csv", "fig14_ber.csv",
        }
        assert expected <= names
        for path in paths:
            assert len(read_csv(path)) >= 2  # header plus data

    def test_cli(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["--out-dir", out_dir]) == 0
        printed = capsys.readouterr().out.strip().splitlines()
        assert all(line.startswith(out_dir) for line in printed)
