"""Static channel-feasibility predictions, cross-checked with runs."""

import pytest

from repro.core.levels import ChannelLocation
from repro.soc.config import (
    amd_zen2_like,
    cannon_lake_i3_8121u,
    coffee_lake_i7_9700k,
    haswell_i7_4770k,
    sandy_bridge_i7_2600k,
    skylake_sp_xeon_8160,
)
from repro.soc.feasibility import analyze


class TestIntelPartsFeasible:
    @pytest.mark.parametrize("factory", [
        cannon_lake_i3_8121u, coffee_lake_i7_9700k, haswell_i7_4770k,
        sandy_bridge_i7_2600k, skylake_sp_xeon_8160,
    ])
    def test_same_thread_feasible_on_every_intel_part(self, factory):
        report = analyze(factory())
        verdict = report.verdict(ChannelLocation.SAME_THREAD)
        assert verdict.feasible, verdict.reasons

    @pytest.mark.parametrize("factory", [
        cannon_lake_i3_8121u, coffee_lake_i7_9700k, haswell_i7_4770k,
        sandy_bridge_i7_2600k, skylake_sp_xeon_8160,
    ])
    def test_cross_core_feasible_on_every_intel_part(self, factory):
        report = analyze(factory())
        assert report.verdict(ChannelLocation.ACROSS_CORES).feasible

    def test_smt_infeasible_without_smt(self):
        report = analyze(coffee_lake_i7_9700k())
        verdict = report.verdict(ChannelLocation.ACROSS_SMT)
        assert not verdict.feasible
        assert any("SMT" in reason for reason in verdict.reasons)

    def test_smt_feasible_with_smt(self):
        report = analyze(cannon_lake_i3_8121u())
        assert report.verdict(ChannelLocation.ACROSS_SMT).feasible


class TestAmdLikePartInfeasible:
    def test_cross_core_blocked_by_per_core_rails(self):
        report = analyze(amd_zen2_like())
        verdict = report.verdict(ChannelLocation.ACROSS_CORES)
        assert not verdict.feasible
        assert any("per-core" in reason for reason in verdict.reasons)

    def test_fast_ldo_collapses_every_ladder(self):
        report = analyze(amd_zen2_like())
        for location in ChannelLocation:
            verdict = report.verdict(location)
            assert not verdict.feasible, location
        assert not report.any_feasible()


class TestGeometry:
    def test_level_tps_monotone(self):
        report = analyze(cannon_lake_i3_8121u())
        ladder = [report.level_tp_us[label] for label in
                  ("128b_Heavy", "256b_Light", "256b_Heavy", "512b_Heavy")]
        assert all(b > a for a, b in zip(ladder, ladder[1:]))

    def test_gap_reported_in_tsc_cycles(self):
        report = analyze(cannon_lake_i3_8121u())
        verdict = report.verdict(ChannelLocation.SAME_THREAD)
        assert verdict.min_level_gap_tsc > 2000.0

    def test_prediction_matches_simulation(self):
        # The point of the analyzer: agree with real channel runs.
        from repro import System
        from repro.core import IccCoresCovert
        from repro.errors import CalibrationError

        feasible = analyze(cannon_lake_i3_8121u()).verdict(
            ChannelLocation.ACROSS_CORES).feasible
        assert feasible
        report = IccCoresCovert(System(cannon_lake_i3_8121u())).transfer(b"\x77")
        assert report.ber == 0.0

        infeasible = analyze(amd_zen2_like()).verdict(
            ChannelLocation.ACROSS_CORES).feasible
        assert not infeasible
        with pytest.raises(CalibrationError):
            IccCoresCovert(System(amd_zen2_like())).calibrate()

    def test_unknown_location_rejected(self):
        report = analyze(cannon_lake_i3_8121u())
        with pytest.raises(KeyError):
            report.verdict("nowhere")
