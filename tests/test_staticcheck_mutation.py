"""Seeded-mutation checks: the dimensional pass catches real unit bugs.

No genuine unit bugs survive in ``repro.pdn``/``repro.pmu`` (the
committed tree analyses clean), so these tests prove the pass has
teeth the other way around: take the *real* module sources, reintroduce
the exact dropped-conversion bug the conventions guard against (strip a
``us_to_ns``/``ns_to_s`` call), and assert the pass flags the mutant —
while the unmutated original stays clean.
"""

from pathlib import Path

import pytest

from repro.staticcheck import analyze_source
from repro.staticcheck.runner import default_root


def real_source(rel):
    """The committed source text of one repro module."""
    return (default_root() / rel).read_text(encoding="utf-8")


def mutate(source, before, after):
    """Apply one seeded mutation; the original text must be present."""
    assert before in source, f"mutation anchor not found: {before!r}"
    return source.replace(before, after)


def unit_findings(source, path):
    """Dimensional-pass findings for one source text."""
    return analyze_source(source, path,
                          rules=["unit-mix", "unit-compare", "unit-arg",
                                 "unit-return", "unit-freq-div"])


CASES = [
    pytest.param(
        "pdn/powergate.py",
        "now_ns - self._last_use_ns > us_to_ns(self.spec.idle_close_us)",
        "now_ns - self._last_use_ns > self.spec.idle_close_us",
        "unit-compare",
        id="powergate-idle-close-us-vs-ns",
    ),
    pytest.param(
        "pmu/thermal.py",
        "dt_s = ns_to_s(now_ns - self._last_update_ns)",
        "dt_s = now_ns - self._last_update_ns",
        "unit-mix",
        id="thermal-dt-s-from-ns",
    ),
    pytest.param(
        "pmu/cstates.py",
        "if idle_ns >= us_to_ns(self.spec.c6_entry_us):",
        "if idle_ns >= self.spec.c6_entry_us:",
        "unit-compare",
        id="cstates-c6-entry-us-vs-ns",
    ),
]


class TestSeededMutations:
    @pytest.mark.parametrize("rel, before, after, expected_rule", CASES)
    def test_original_is_clean(self, rel, before, after, expected_rule):
        findings = unit_findings(real_source(rel), f"repro/{rel}")
        assert findings == [], [f.render() for f in findings]

    @pytest.mark.parametrize("rel, before, after, expected_rule", CASES)
    def test_mutant_is_caught(self, rel, before, after, expected_rule):
        mutant = mutate(real_source(rel), before, after)
        findings = unit_findings(mutant, f"repro/{rel}")
        assert expected_rule in {f.rule for f in findings}, \
            [f.render() for f in findings]

    def test_whole_pdn_and_pmu_trees_are_unit_clean(self):
        """Every committed pdn/pmu module passes the dimensional rules."""
        for package in ("pdn", "pmu"):
            for path in sorted((default_root() / package).rglob("*.py")):
                rel = path.relative_to(default_root().parent).as_posix()
                findings = unit_findings(
                    path.read_text(encoding="utf-8"), rel)
                assert findings == [], [f.render() for f in findings]


def flow_findings(source, path):
    """Async-safety plus golden-flow findings for one source text."""
    return analyze_source(source, path, rules=["asyncsafety", "goldenflow"])


FLOW_CASES = [
    pytest.param(
        "service/scheduler.py",
        "for job in list(self._jobs.values()):\n"
        "                await job.wait()",
        "for job in list(self._jobs.values()):\n"
        "                job.wait()",
        "async-unawaited",
        id="scheduler-stop-forgot-await",
    ),
    pytest.param(
        "scenarios/spec.py",
        '        mapping = {f.name: getattr(self, f.name) '
        'for f in fields(self)}\n'
        '        if not mapping["turbo_license_limit"]:\n'
        '            del mapping["turbo_license_limit"]\n'
        '        return mapping',
        '        mapping = {f.name: getattr(self, f.name) '
        'for f in fields(self)}\n'
        '        return mapping',
        "golden-emit",
        id="optionsspec-unconditional-turbo-key",
    ),
    pytest.param(
        "scenarios/spec.py",
        'return {"queue_depth": self.queue_depth,\n'
        '                "grant_policy": self.grant_policy}',
        'return {"queue_depth": self.queue_depth}',
        "golden-roundtrip",
        id="pmuspec-dropped-mapping-key",
    ),
    pytest.param(
        "scenarios/spec.py",
        "            turbo_license_limit=self.options.turbo_license_limit,\n",
        "",
        "golden-forward",
        id="scenariospec-dropped-forwarding-kwarg",
    ),
]


class TestFlowMutations:
    """Async-safety and golden-flow rules catch the bugs they exist for.

    Same discipline as the dimensional cases: the *committed* modules
    analyse clean, and reintroducing the exact regression each rule
    guards against (a dropped ``await``, an unconditionally emitted
    mapping key, a silently dropped forwarding kwarg) is flagged.
    """

    @pytest.mark.parametrize("rel, before, after, expected_rule", FLOW_CASES)
    def test_original_is_clean(self, rel, before, after, expected_rule):
        findings = flow_findings(real_source(rel), f"repro/{rel}")
        assert findings == [], [f.render() for f in findings]

    @pytest.mark.parametrize("rel, before, after, expected_rule", FLOW_CASES)
    def test_mutant_is_caught(self, rel, before, after, expected_rule):
        mutant = mutate(real_source(rel), before, after)
        findings = flow_findings(mutant, f"repro/{rel}")
        assert expected_rule in {f.rule for f in findings}, \
            [f.render() for f in findings]

    def test_pmuspec_dropped_key_also_breaks_the_pinned_contract(self):
        """The dropped PMUSpec key trips the digest-stability rule too."""
        mutant = mutate(
            real_source("scenarios/spec.py"),
            'return {"queue_depth": self.queue_depth,\n'
            '                "grant_policy": self.grant_policy}',
            'return {"queue_depth": self.queue_depth}')
        rules = {f.rule for f in flow_findings(mutant, "repro/scenarios/spec.py")}
        assert "golden-emit" in rules
