"""Unit tests for the fault-injection subsystem (`repro.faults`).

Covers the determinism contract (seeded streams, bit-identical
replays), each model's seam behaviour, the injector's wiring rules,
spec-string parsing, and the end-to-end guarantees the resilience
experiment relies on: intensity 0 is a perfect no-op, and the default
suite actually damages the cross-channel transfers.
"""

import numpy as np
import pytest

from repro import System, cannon_lake_i3_8121u
from repro.core import IccCoresCovert, IccThreadCovert, PerturbedSchedule, SlotSchedule
from repro.errors import CalibrationError, ConfigError
from repro.faults import (
    FaultInjector,
    GrantQueueInterference,
    RailVoltageJitter,
    ReceiverClockSkew,
    SampleDropout,
    SlotScheduleJitter,
    ThermalDriftRamp,
    default_fault_suite,
    fault_model_names,
    parse_fault_spec,
)
from repro.microarch.tsc import DriftingTimestampCounter
from repro.units import us_to_ns


def fresh_system(seed=2021):
    """A Cannon Lake system, the resilience experiments' default part."""
    return System(cannon_lake_i3_8121u(), seed=seed)


class TestBaseContract:
    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigError):
            RailVoltageJitter(intensity=-0.1)

    def test_rng_streams_are_deterministic(self):
        a = RailVoltageJitter(seed=7).rng("x", 1)
        b = RailVoltageJitter(seed=7).rng("x", 1)
        assert a.random(4).tolist() == b.random(4).tolist()

    def test_rng_streams_differ_by_seed_and_salt(self):
        base = RailVoltageJitter(seed=7).rng("x", 1).random(4).tolist()
        assert RailVoltageJitter(seed=8).rng("x", 1).random(4).tolist() != base
        assert RailVoltageJitter(seed=7).rng("x", 2).random(4).tolist() != base

    def test_rng_streams_differ_across_models(self):
        jitter = RailVoltageJitter(seed=7).rng("s").random(4).tolist()
        dropout = SampleDropout(seed=7).rng("s").random(4).tolist()
        assert jitter != dropout

    def test_describe_round_trips_through_parser(self):
        model = SlotScheduleJitter(sigma_us=2.5, cap_us=8.0,
                                   intensity=1.5, seed=3)
        injector = parse_fault_spec(model.describe())
        assert injector.describe() == model.describe()


class TestRailVoltageJitter:
    def test_adds_noise_of_configured_sigma(self):
        model = RailVoltageJitter(sigma_mv=5.0, seed=1)
        values = np.zeros(4000)
        out = model.perturb_samples("rail0", np.arange(4000.0), values)
        assert out.std() == pytest.approx(5e-3, rel=0.1)
        assert model.events == 4000

    def test_intensity_zero_is_identity(self):
        model = RailVoltageJitter(sigma_mv=5.0, intensity=0.0)
        values = np.ones(16)
        out = model.perturb_samples("rail0", np.arange(16.0), values)
        assert out is values
        assert model.events == 0

    def test_fresh_model_replays_identically(self):
        def run():
            model = RailVoltageJitter(sigma_mv=2.0, seed=5)
            first = model.perturb_samples("r", np.arange(8.0), np.zeros(8))
            second = model.perturb_samples("r", np.arange(8.0), np.zeros(8))
            return first, second

        (a1, a2), (b1, b2) = run(), run()
        assert a1.tolist() == b1.tolist()
        assert a2.tolist() == b2.tolist()
        # successive calls draw fresh noise, not the same vector
        assert a1.tolist() != a2.tolist()


class TestSampleDropout:
    def test_certain_dropout_holds_first_value(self):
        model = SampleDropout(probability=1.0, seed=0)
        values = np.array([3.0, 4.0, 5.0, 6.0])
        out = model.perturb_samples("r", np.arange(4.0), values)
        assert out.tolist() == [3.0, 3.0, 3.0, 3.0]

    def test_dropped_samples_hold_last_kept_value(self):
        model = SampleDropout(probability=0.4, seed=2)
        values = np.arange(200.0)
        out = model.perturb_samples("r", np.arange(200.0), values)
        assert model.events > 0
        kept = out == values
        assert kept[0]
        # every output value is some input value at an index <= its own
        for i in range(1, len(out)):
            assert out[i] <= values[i]
            assert out[i] in values[:i + 1]

    def test_probability_validated(self):
        with pytest.raises(ConfigError):
            SampleDropout(probability=1.5)


class TestPerturbedSchedule:
    def test_delays_are_capped_and_non_negative(self):
        base = SlotSchedule(epoch_ns=1000.0, slot_ns=750_000.0)
        sched = PerturbedSchedule.wrap(base, sigma_ns=us_to_ns(30.0),
                                       cap_ns=us_to_ns(50.0), salt=(1, 2))
        delays = [sched.delay(i) for i in range(200)]
        assert all(0.0 <= d <= us_to_ns(50.0) for d in delays)
        assert max(delays) > 0.0

    def test_same_salt_same_delays_different_salt_different(self):
        base = SlotSchedule(epoch_ns=0.0, slot_ns=750_000.0)
        a = PerturbedSchedule.wrap(base, 1000.0, 5000.0, salt=(1,))
        b = PerturbedSchedule.wrap(base, 1000.0, 5000.0, salt=(1,))
        c = PerturbedSchedule.wrap(base, 1000.0, 5000.0, salt=(2,))
        assert [a.delay(i) for i in range(8)] == [b.delay(i) for i in range(8)]
        assert [a.delay(i) for i in range(8)] != [c.delay(i) for i in range(8)]

    def test_indexing_follows_unperturbed_grid(self):
        base = SlotSchedule(epoch_ns=0.0, slot_ns=1000.0)
        sched = PerturbedSchedule.wrap(base, 200.0, 900.0, salt=(3,))
        for i in range(5):
            assert sched.slot_start(i) >= base.slot_start(i)
            assert sched.slot_index_at(base.slot_start(i) + 1.0) == i
        assert sched.next_slot_after(2500.0) == base.next_slot_after(2500.0)


class TestDriftingTsc:
    def test_positive_skew_runs_fast(self):
        nominal = fresh_system().tsc
        fast = DriftingTimestampCounter(tsc_ghz=nominal.tsc_ghz, skew=1e-3)
        t = 1e6
        assert fast.read(t) > nominal.read(t)

    def test_drift_grows_over_time(self):
        tsc = DriftingTimestampCounter(tsc_ghz=2.0, skew=0.0,
                                       drift_per_s=1e-2)
        early = tsc.read(1e6) - 2.0 * 1e6
        late = tsc.read(2e9) - 2.0 * 2e9
        assert late > early

    def test_guards(self):
        with pytest.raises(ConfigError):
            DriftingTimestampCounter(tsc_ghz=2.0, skew=-1.5)
        with pytest.raises(ConfigError):
            DriftingTimestampCounter(tsc_ghz=2.0).read(-1.0)


class TestInjectorWiring:
    def test_attach_registers_on_system(self):
        system = fresh_system()
        injector = FaultInjector([SlotScheduleJitter()]).attach(system)
        assert system.faults is injector

    def test_attach_twice_rejected(self):
        system = fresh_system()
        injector = FaultInjector([SlotScheduleJitter()]).attach(system)
        with pytest.raises(ConfigError):
            injector.attach(fresh_system())
        with pytest.raises(ConfigError):
            FaultInjector([SlotScheduleJitter()]).attach(system)

    def test_clock_skew_swaps_the_tsc(self):
        system = fresh_system()
        FaultInjector([ReceiverClockSkew()]).attach(system)
        assert isinstance(system.tsc, DriftingTimestampCounter)

    def test_slot_slack_budget(self):
        measurement_only = FaultInjector([RailVoltageJitter()])
        assert measurement_only.extra_slot_slack_ns() == 0.0
        jittery = FaultInjector([SlotScheduleJitter(cap_us=10.0),
                                 SlotScheduleJitter(cap_us=5.0)])
        assert jittery.extra_slot_slack_ns() == us_to_ns(15.0)

    def test_perturb_samples_respects_model_kind(self):
        injector = FaultInjector([SlotScheduleJitter(),
                                  RailVoltageJitter(sigma_mv=3.0)])
        out = injector.perturb_samples("r", np.arange(64.0), np.zeros(64))
        assert out.std() > 0.0
        counts = injector.event_counts()
        assert counts["rail-jitter"] == 64
        assert counts["slot-jitter"] == 0

    def test_non_model_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector([object()])

    def test_attach_daq_routes_samples(self):
        system = fresh_system()
        injector = FaultInjector([RailVoltageJitter(sigma_mv=5.0)])
        injector.attach(system)
        system.run_until(us_to_ns(50.0))
        from repro.measure.daq import DAQCard, DAQSpec

        daq = DAQCard(DAQSpec())
        injector.attach_daq(daq)
        clean = DAQCard(DAQSpec()).sample(
            system.vcc_signal(0), 0.0, us_to_ns(40.0), 1e6, name="rail0")
        noisy = daq.sample(
            system.vcc_signal(0), 0.0, us_to_ns(40.0), 1e6, name="rail0")
        assert noisy.values.tolist() != clean.values.tolist()


class TestSpecParsing:
    def test_default_alias_builds_whole_suite(self):
        injector = parse_fault_spec("default")
        assert len(injector.models) == len(default_fault_suite())

    def test_default_intensity_and_seed_forwarded(self):
        injector = parse_fault_spec("default:intensity=1.5,seed=9")
        assert all(m.intensity == 1.5 and m.seed == 9
                   for m in injector.models)

    def test_default_rejects_model_knobs(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("default:sigma_us=2")

    def test_multi_clause_spec(self):
        injector = parse_fault_spec(
            "slot-jitter:sigma_us=2;rail-jitter:sigma_mv=1,intensity=2")
        assert [m.name for m in injector.models] == ["slot-jitter",
                                                     "rail-jitter"]
        assert injector.models[1].intensity == 2.0

    def test_unknown_model_lists_names(self):
        with pytest.raises(ConfigError, match="slot-jitter"):
            parse_fault_spec("bogus")

    def test_malformed_knob_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("slot-jitter:sigma_us")
        with pytest.raises(ConfigError):
            parse_fault_spec("slot-jitter:sigma_us=abc")
        with pytest.raises(ConfigError):
            parse_fault_spec("rail-jitter:bogus_knob=2")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("")
        with pytest.raises(ConfigError):
            parse_fault_spec(";;")

    def test_int_knobs_coerced(self):
        injector = parse_fault_spec("grant-interference:core=1,seed=4")
        model = injector.models[0]
        assert model.core == 1 and isinstance(model.core, int)
        assert model.seed == 4 and isinstance(model.seed, int)

    def test_names_listing(self):
        names = fault_model_names()
        assert "default" in names
        assert "slot-jitter" in names


class TestEndToEnd:
    def test_intensity_zero_changes_nothing(self):
        payload = b"\x5a\x3c"
        baseline = IccCoresCovert(fresh_system()).transfer(payload)
        system = fresh_system()
        parse_fault_spec("default:intensity=0").attach(system)
        faulted = IccCoresCovert(system).transfer(payload)
        assert faulted.received == baseline.received
        assert faulted.ber == baseline.ber == 0.0
        assert faulted.throughput_bps == pytest.approx(
            baseline.throughput_bps)

    def test_default_suite_damages_cross_core_channel(self):
        system = fresh_system()
        parse_fault_spec("default:seed=11").attach(system)
        try:
            report = IccCoresCovert(system).transfer(
                b"\x5a\x0f\xc3\x3c\xa5\x69\x96\x0a")
        except CalibrationError:
            return  # total desync is damage too
        assert report.ber > 0.0

    def test_thread_channel_immune_to_slot_jitter(self):
        system = fresh_system()
        parse_fault_spec("slot-jitter").attach(system)
        report = IccThreadCovert(system).transfer(b"\x5a\x3c")
        assert report.ber == 0.0

    def test_fault_runs_replay_bit_identically(self):
        def run():
            system = fresh_system()
            parse_fault_spec("default:seed=11").attach(system)
            try:
                return IccCoresCovert(system).transfer(b"\xa5\x3c").received
            except CalibrationError:
                return b"<calibration-error>"

        assert run() == run()

    def test_grant_interference_and_thermal_ramp_apply_events(self):
        system = fresh_system()
        injector = parse_fault_spec(
            "grant-interference:burst_rate_per_s=2000,hold_us=40;"
            "thermal-drift:rate_c_per_s=50,step_us=100").attach(system)
        system.run_until(us_to_ns(3000.0))
        counts = injector.event_counts()
        assert counts["grant-interference"] > 0
        assert counts["thermal-drift"] > 0
        assert system.thermal.ambient_offset_c > 0.0


class TestStateFlush:
    """The temporal-partitioning (state flush) defender fault."""

    def test_registered_but_not_in_default_suite(self):
        assert "state-flush" in fault_model_names()
        suite = parse_fault_spec("default")
        assert all(m.name != "state-flush" for m in suite.models)

    def test_parameter_validation(self):
        from repro.faults import StateFlush
        with pytest.raises(ConfigError):
            StateFlush(quantum_us=0.0)
        with pytest.raises(ConfigError):
            StateFlush(hold_us=-1.0)
        with pytest.raises(ConfigError):
            StateFlush(horizon_ms=0.0)

    def test_intensity_zero_is_a_no_op(self):
        from repro.faults import StateFlush
        system = System(cannon_lake_i3_8121u())
        baseline_processes = len(system._processes)
        StateFlush(intensity=0.0).attach(system, FaultInjector([]))
        assert len(system._processes) == baseline_processes

    def test_flushes_fire_on_the_quantum(self):
        injector = parse_fault_spec(
            "state-flush:quantum_us=500,hold_us=80,horizon_ms=5")
        system = System(cannon_lake_i3_8121u())
        injector.attach(system)
        system.run_until(us_to_ns(5_000.0))
        model = system.faults.models[0]
        # 5 ms horizon / (500 us quantum + 80 us hold) ~ 8 flushes.
        assert model.events >= 6
        # The flush drives the PMU through real transitions.
        assert len(system.pmu.transitions_issued) > 0

    def test_flush_params_round_trip(self):
        from repro.faults import StateFlush
        model = StateFlush(quantum_us=500.0, hold_us=80.0, horizon_ms=5.0)
        assert model.params() == {"quantum_us": 500.0, "hold_us": 80.0,
                                  "horizon_ms": 5.0}
