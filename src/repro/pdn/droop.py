"""Voltage-droop (di/dt) model: why the guardbands exist at all.

Section 2 of the paper: when load current steps up faster than the VR
can react, the load voltage dips by the step times the *transient*
impedance of the delivery path (load-line plus parasitic inductance);
decoupling capacitors filter only the shortest bursts (footnote 6).  If
the dip reaches below ``Vcc_min`` the core mis-operates — a *voltage
emergency*.

The current-management machinery exists precisely to make this
impossible: the PMU raises the rail by the prospective step's IR drop
*before* letting the instructions run at full rate, and throttles them
to a quarter rate in the meantime (quartering the current step).  The
simulator uses this model to *verify the negative*: with throttling
enabled no workload can cause an emergency, and with throttling ablated
(``SystemOptions.disable_throttling``) PHI bursts immediately do —
unless secure mode pre-applied the worst-case guardband.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class DroopSpec:
    """Transient response of the power-delivery path.

    Parameters
    ----------
    transient_impedance_mohm:
        Effective impedance a fast current step sees before the VR
        reacts (parasitic inductance + ESR), *on top of* the resistive
        load-line.  A few milliohm on client boards.
    filter_step_a:
        Steps smaller than this are absorbed by the decoupling
        capacitors and never reach the sense point (footnote 6).
    """

    transient_impedance_mohm: float = 2.5
    filter_step_a: float = 1.0

    def __post_init__(self) -> None:
        if self.transient_impedance_mohm < 0:
            raise ConfigError("transient impedance must be >= 0")
        if self.filter_step_a < 0:
            raise ConfigError("filter threshold must be >= 0")


@dataclass(frozen=True)
class DroopModel:
    """Evaluates load-voltage dips for current steps."""

    spec: DroopSpec
    r_ll_ohm: float

    def __post_init__(self) -> None:
        if self.r_ll_ohm <= 0:
            raise ConfigError(f"load-line must be positive, got {self.r_ll_ohm}")

    def load_voltage_min(self, rail_v: float, icc_before: float,
                         icc_after: float) -> float:
        """Minimum load voltage during a step from one current to another.

        Steady-state component: the new current across the load-line.
        Transient component: the step across the transient impedance,
        unless the decaps filter it.
        """
        if icc_before < 0 or icc_after < 0:
            raise ConfigError("currents must be >= 0")
        steady = rail_v - self.r_ll_ohm * icc_after
        step = icc_after - icc_before
        if step <= self.spec.filter_step_a:
            return steady
        transient = step * self.spec.transient_impedance_mohm / 1000.0
        return steady - transient

    def load_voltage_min_array(self, rail_v: np.ndarray,
                               icc_before: np.ndarray,
                               icc_after: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`load_voltage_min` over step arrays.

        Applies the scalar formula elementwise (same guard, same
        filter-threshold branch via ``np.where``); float64 lanes match
        the scalar results bit for bit.
        """
        rail_v = np.asarray(rail_v, dtype=float)
        before = np.asarray(icc_before, dtype=float)
        after = np.asarray(icc_after, dtype=float)
        if (before.size and float(before.min()) < 0) or (
                after.size and float(after.min()) < 0):
            raise ConfigError("currents must be >= 0")
        steady = rail_v - self.r_ll_ohm * after
        step = after - before
        transient = step * self.spec.transient_impedance_mohm / 1000.0
        return np.where(step <= self.spec.filter_step_a,
                        steady, steady - transient)

    def is_emergency(self, rail_v: float, icc_before: float,
                     icc_after: float, vcc_min: float) -> bool:
        """Whether the step dips the load below ``vcc_min``."""
        return self.load_voltage_min(rail_v, icc_before, icc_after) < vcc_min
