"""Power delivery network: load-line, voltage regulators, guardbands, gates.

Models Section 2 of the paper: the motherboard-VR (MBVR) power delivery of
Coffee Lake / Cannon Lake, the faster fully-integrated VR (FIVR) of
Haswell, and the low-dropout (LDO) regulators the paper proposes as a
mitigation; the load-line ``Vcc_load = Vcc - R_LL * Icc``; the adaptive
multi-level voltage guardband (Equation 1); and the AVX power gates with
staggered wake-up.
"""

from repro.pdn.loadline import LoadLine
from repro.pdn.regulator import VRKind, VRSpec, VoltageRegulator
from repro.pdn.guardband import GuardbandModel
from repro.pdn.droop import DroopModel, DroopSpec
from repro.pdn.powergate import PowerGate, PowerGateSpec

__all__ = [
    "LoadLine",
    "VRKind",
    "VRSpec",
    "VoltageRegulator",
    "GuardbandModel",
    "DroopModel",
    "DroopSpec",
    "PowerGate",
    "PowerGateSpec",
]
