"""Voltage regulator models: MBVR, FIVR and LDO.

A :class:`VoltageRegulator` is a stateful rail.  The central PMU commands
it over a (simulated) SVID interface; each command incurs the SVID
round-trip latency and then the output slews linearly at the regulator's
slew rate until it reaches the target VID.

The three kinds mirror the paper:

* ``MBVR`` — motherboard VR (Coffee Lake, Cannon Lake): slow SVID slew;
  the dominant cause of the 12-15 us AVX2 throttling periods (Fig. 8a).
* ``FIVR`` — fully integrated VR (Haswell): faster slew, shorter
  throttling periods (~9 us, Fig. 8a footnote 10).
* ``LDO`` — per-core low-dropout regulator (AMD-style), the paper's
  mitigation: sub-0.5 us transitions (Section 7).

Output voltage over time is kept as piecewise-linear segments so the
simulated NI-DAQ (:mod:`repro.measure.daq`) can sample the rail.
"""

from __future__ import annotations

import bisect
import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.obs.tracer import current as _obs
from repro.units import mv_to_v


@enum.unique
class VRKind(enum.Enum):
    """The power-delivery style of a rail."""

    MBVR = "mbvr"
    FIVR = "fivr"
    LDO = "ldo"


@dataclass(frozen=True)
class VRSpec:
    """Electrical parameters of a voltage regulator.

    Parameters
    ----------
    kind:
        Regulator family (affects nothing directly; carried for reports).
    slew_mv_per_us:
        Output slew rate.  MBVR parts use the SVID 'slow' slew of
        ~1.25 mV/us; FIVR ~4 mV/us; LDO >= 100 mV/us.
    command_latency_ns:
        Fixed latency from the PMU issuing a VID command to the output
        starting to move (SVID serial transfer + controller response).
    vid_step_mv:
        VID quantisation step; targets are rounded *up* to a step so the
        load never lands below the requested voltage.
    vcc_max:
        Maximum operational voltage of the rail (Section 2, Fig. 2c).
    icc_max:
        Maximum current the VR is electrically designed for.  Exceeding
        it can damage the part, so the PMU throttles frequency first.
    """

    kind: VRKind
    slew_mv_per_us: float
    command_latency_ns: float
    vid_step_mv: float
    vcc_max: float
    icc_max: float

    def __post_init__(self) -> None:
        if self.slew_mv_per_us <= 0:
            raise ConfigError(f"slew rate must be positive, got {self.slew_mv_per_us}")
        if self.command_latency_ns < 0:
            raise ConfigError(
                f"command latency must be >= 0, got {self.command_latency_ns}"
            )
        if self.vid_step_mv <= 0:
            raise ConfigError(f"VID step must be positive, got {self.vid_step_mv}")
        if self.vcc_max <= 0 or self.icc_max <= 0:
            raise ConfigError("vcc_max and icc_max must be positive")

    def quantize_vid(self, vcc: float) -> float:
        """Round ``vcc`` up to the next VID step."""
        step = mv_to_v(self.vid_step_mv)
        return math.ceil(vcc / step - 1e-9) * step

    def transition_ns(self, v_from: float, v_to: float) -> float:
        """Wall time of a commanded transition between two voltages."""
        delta_mv = abs(v_to - v_from) * 1000.0
        slew_ns = delta_mv / self.slew_mv_per_us * 1000.0
        return self.command_latency_ns + slew_ns


def mbvr_spec(vcc_max: float, icc_max: float,
              slew_mv_per_us: float = 1.25,
              command_latency_ns: float = 1_500.0,
              vid_step_mv: float = 5.0) -> VRSpec:
    """Motherboard VR with SVID slow-slew defaults."""
    return VRSpec(VRKind.MBVR, slew_mv_per_us, command_latency_ns,
                  vid_step_mv, vcc_max, icc_max)


def fivr_spec(vcc_max: float, icc_max: float,
              slew_mv_per_us: float = 2.0,
              command_latency_ns: float = 300.0,
              vid_step_mv: float = 5.0) -> VRSpec:
    """Fully-integrated VR (Haswell) — faster than MBVR."""
    return VRSpec(VRKind.FIVR, slew_mv_per_us, command_latency_ns,
                  vid_step_mv, vcc_max, icc_max)


def ldo_spec(vcc_max: float, icc_max: float,
             slew_mv_per_us: float = 100.0,
             command_latency_ns: float = 50.0,
             vid_step_mv: float = 5.0) -> VRSpec:
    """Low-dropout per-core regulator: sub-0.5 us transitions (Section 7)."""
    return VRSpec(VRKind.LDO, slew_mv_per_us, command_latency_ns,
                  vid_step_mv, vcc_max, icc_max)


@dataclass
class _Segment:
    """One piecewise-linear span of the rail's output voltage."""

    t_start: float
    t_end: float
    v_start: float
    v_end: float

    def voltage_at(self, t_ns: float) -> float:
        """Linear interpolation inside the span, clamped at its ends."""
        if self.t_end <= self.t_start:
            return self.v_end
        frac = (t_ns - self.t_start) / (self.t_end - self.t_start)
        frac = min(1.0, max(0.0, frac))
        return self.v_start + frac * (self.v_end - self.v_start)


@dataclass
class VoltageRegulator:
    """A stateful rail driven by VID commands.

    The regulator records its full piecewise-linear voltage history so
    measurement code can sample the rail at arbitrary times.  Commands
    must be issued at non-decreasing simulation times; the central PMU is
    responsible for serialising transitions (it never issues a new
    command while one is in flight — that serialisation is the root cause
    of the Multi-Throttling-Cores side effect).
    """

    spec: VRSpec
    v_initial: float
    name: str = "vr"
    _segments: List[_Segment] = field(default_factory=list)
    _starts: List[float] = field(default_factory=list)
    _t0s: List[float] = field(default_factory=list)
    _t1s: List[float] = field(default_factory=list)
    _v0s: List[float] = field(default_factory=list)
    _v1s: List[float] = field(default_factory=list)
    _busy_until: float = 0.0
    _last_command_ns: float = 0.0
    _array_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None

    def __post_init__(self) -> None:
        if self.v_initial <= 0:
            raise ConfigError(f"initial voltage must be positive, got {self.v_initial}")
        self._append_segment(_Segment(0.0, 0.0, self.v_initial, self.v_initial))

    def _append_segment(self, segment: _Segment) -> None:
        self._segments.append(segment)
        self._starts.append(segment.t_start)
        # Flat per-field histories for vectorized evaluation; kept in
        # plain lists (cheap appends) and converted to arrays lazily.
        self._t0s.append(segment.t_start)
        self._t1s.append(segment.t_end)
        self._v0s.append(segment.v_start)
        self._v1s.append(segment.v_end)
        self._array_cache = None

    # -- queries -----------------------------------------------------------

    @property
    def busy_until(self) -> float:
        """Simulation time at which the in-flight transition settles."""
        return self._busy_until

    def is_busy(self, now_ns: float) -> bool:
        """True while a commanded transition has not settled yet."""
        return now_ns < self._busy_until

    def voltage_at(self, t_ns: float) -> float:
        """Output voltage at time ``t_ns`` (piecewise-linear history).

        Binary search over segment start times: the segment in force is
        the last one starting at or before ``t_ns`` (ties go to the most
        recently appended segment, as a reversed linear scan would).
        """
        if not self._segments:
            raise SimulationError("regulator has no history")
        idx = bisect.bisect_right(self._starts, t_ns) - 1
        if idx < 0:
            return self._segments[0].v_start
        return self._segments[idx].voltage_at(t_ns)

    def voltages_at(self, times_ns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`voltage_at` over an array of sample times.

        Bit-identical to the scalar path: segment selection uses the same
        ``bisect_right - 1`` rule (via :func:`numpy.searchsorted`) and the
        interpolation applies the exact clamped-fraction formula of
        :meth:`_Segment.voltage_at` elementwise — IEEE-754 arithmetic on
        float64 scalars and numpy float64 lanes agrees operation for
        operation, so every returned value equals the scalar result to
        the last bit.  Times before the first segment return its start
        voltage, matching the scalar fallback.
        """
        if not self._segments:
            raise SimulationError("regulator has no history")
        cache = self._array_cache
        if cache is None:
            cache = (np.asarray(self._t0s, dtype=float),
                     np.asarray(self._t1s, dtype=float),
                     np.asarray(self._v0s, dtype=float),
                     np.asarray(self._v1s, dtype=float))
            self._array_cache = cache
        t0s, t1s, v0s, v1s = cache
        times = np.asarray(times_ns, dtype=float)
        idx = np.searchsorted(t0s, times, side="right") - 1
        before_first = idx < 0
        idx = np.maximum(idx, 0)
        t0 = t0s[idx]
        t1 = t1s[idx]
        v0 = v0s[idx]
        v1 = v1s[idx]
        span = t1 - t0
        degenerate = span <= 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = (times - t0) / span
        frac = np.minimum(1.0, np.maximum(0.0, frac))
        out = v0 + frac * (v1 - v0)
        out = np.where(degenerate, v1, out)
        return np.where(before_first, v0s[0], out)

    def settled_voltage(self) -> float:
        """The target of the most recent command (the eventual voltage)."""
        return self._segments[-1].v_end

    # -- commands ----------------------------------------------------------

    def command(self, now_ns: float, target_vcc: float) -> float:
        """Issue a VID command; returns the settle time (ns).

        The target is quantised up to the VID grid and clamped to
        ``vcc_max``.  Raises :class:`SimulationError` if issued while a
        previous transition is still in flight or if time runs backwards.
        """
        if now_ns < self._last_command_ns - 1e-6:
            raise SimulationError(
                f"VR command at t={now_ns} before previous command at "
                f"t={self._last_command_ns}"
            )
        if self.is_busy(now_ns):
            raise SimulationError(
                f"VR {self.name} commanded at t={now_ns} while busy until "
                f"t={self._busy_until}; the PMU must serialise transitions"
            )
        target = min(self.spec.quantize_vid(target_vcc), self.spec.vcc_max)
        v_now = self.voltage_at(now_ns)
        self._last_command_ns = now_ns
        tracer = _obs()
        if abs(target - v_now) < 1e-12:
            self._busy_until = now_ns
            if tracer.enabled:
                tracer.metrics.counter("vr.commands_noop").inc()
            return now_ns
        latency = self.spec.command_latency_ns
        slew_ns = abs(target - v_now) / mv_to_v(self.spec.slew_mv_per_us) * 1_000.0
        start = now_ns + latency
        end = start + slew_ns
        self._append_segment(_Segment(now_ns, start, v_now, v_now))
        self._append_segment(_Segment(start, end, v_now, target))
        self._busy_until = end
        if tracer.enabled:
            tracer.metrics.counter("vr.commands").inc()
            tracer.metrics.histogram("vr.transition_ns").observe(end - now_ns)
            tracer.complete(
                "vr.transition", "pdn", now_ns, end - now_ns, track=self.name,
                args={"from_v": round(v_now, 6), "to_v": round(target, 6),
                      "delta_mv": round((target - v_now) * 1000.0, 3),
                      "up": target > v_now},
            )
        return end

    def force_level(self, vcc: float) -> None:
        """Reset the rail to a flat level (pre-simulation setup only).

        Used by secure mode to boot with the worst-case guardband already
        applied; not valid once commands have been issued.
        """
        if len(self._segments) > 1 or self._busy_until > 0.0:
            raise SimulationError(
                f"rail {self.name} already has history; force_level is "
                f"setup-time only"
            )
        level = min(self.spec.quantize_vid(vcc), self.spec.vcc_max)
        self._segments = [_Segment(0.0, 0.0, level, level)]
        self._starts = [0.0]
        self._t0s = [0.0]
        self._t1s = [0.0]
        self._v0s = [level]
        self._v1s = [level]
        self._array_cache = None
        self._busy_until = 0.0

    def history(self) -> List[Tuple[float, float]]:
        """(time, voltage) breakpoints of the full rail history."""
        points: List[Tuple[float, float]] = []
        for segment in self._segments:
            points.append((segment.t_start, segment.v_start))
            points.append((segment.t_end, segment.v_end))
        return points

    def breakpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """Deduplicated (times, voltages) arrays of the rail history.

        The export contract of :mod:`repro.measure.sampler`: times are
        non-decreasing, consecutive duplicate points are dropped, and
        linear interpolation between the points (clamped outside the
        span) reproduces :meth:`voltage_at` exactly — the rail output is
        continuous, so no jump encoding is needed.
        """
        times: List[float] = []
        volts: List[float] = []
        for segment in self._segments:
            for t, v in ((segment.t_start, segment.v_start),
                         (segment.t_end, segment.v_end)):
                if times and t == times[-1] and v == volts[-1]:
                    continue
                times.append(t)
                volts.append(v)
        return np.asarray(times, dtype=float), np.asarray(volts, dtype=float)
