"""AVX-unit power gates with staggered wake-up.

Skylake and later cores power-gate the wide AVX datapaths when idle to cut
leakage (Section 2, 'Power Gating').  To limit di/dt noise, the gate
controller wakes the domain in a *staggered* sequence, so opening takes
tens of nanoseconds (8-15 ns measured in Figure 8b) instead of a few
cycles.  Crucially — Key Conclusion 3 — this wake latency is ~0.1 % of
the microsecond-scale throttling period: power gating is *not* the source
of AVX throttling, contrary to NetSpectre's hypothesis.

Haswell predates AVX power gating, so its gate model reports a zero wake
latency and never closes (Figure 8c shows flat iteration latencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import us_to_ns


@dataclass(frozen=True)
class PowerGateSpec:
    """Parameters of one execution-unit power gate.

    Parameters
    ----------
    present:
        Whether the unit has a gate at all (False on pre-Skylake parts).
    wake_ns:
        Staggered wake-up latency when opening a closed gate (8-15 ns on
        the parts the paper measures; we model the deterministic mean).
    idle_close_us:
        How long the unit must sit unused before the local PMU closes the
        gate again.  Intel does not document the value; tens of
        microseconds reproduces the observable behaviour (the gate is
        closed again by the time a reset-time-spaced transaction starts).
    """

    present: bool = True
    wake_ns: float = 12.0
    idle_close_us: float = 75.0

    def __post_init__(self) -> None:
        if self.wake_ns < 0:
            raise ConfigError(f"wake latency must be >= 0, got {self.wake_ns}")
        if self.idle_close_us <= 0:
            raise ConfigError(f"idle close must be positive, got {self.idle_close_us}")


@dataclass
class PowerGate:
    """State machine of one AVX-unit power gate.

    The owner calls :meth:`access` whenever the unit executes; the gate
    returns the wake latency the *first* access after a closed period
    pays, and zero afterwards.  Closing is lazy: the gate checks its idle
    timer on the next access.
    """

    spec: PowerGateSpec
    name: str = "avx_pg"
    _is_open: bool = field(default=False, init=False)
    _last_use_ns: float = field(default=float("-inf"), init=False)
    #: Count of open events, exposed for tests and traces.
    open_events: int = field(default=0, init=False)

    def is_open(self, now_ns: float) -> bool:
        """Whether the gate is open at ``now_ns`` (applying lazy close)."""
        if not self.spec.present:
            return True
        self._maybe_close(now_ns)
        return self._is_open

    def access(self, now_ns: float) -> float:
        """Record a unit access; return the wake latency paid (ns)."""
        if not self.spec.present:
            return 0.0
        self._maybe_close(now_ns)
        latency = 0.0
        if not self._is_open:
            self._is_open = True
            self.open_events += 1
            latency = self.spec.wake_ns
        self._last_use_ns = now_ns + latency
        return latency

    def touch(self, now_ns: float) -> None:
        """Refresh the idle timer without charging a wake latency."""
        if self.spec.present and self._is_open:
            self._last_use_ns = max(self._last_use_ns, now_ns)

    def _maybe_close(self, now_ns: float) -> None:
        if self._is_open and (
            now_ns - self._last_use_ns > us_to_ns(self.spec.idle_close_us)
        ):
            self._is_open = False


def skylake_gate(name: str = "avx_pg") -> PowerGate:
    """Gate as found on Skylake and later (present, ~12 ns wake)."""
    return PowerGate(PowerGateSpec(present=True), name=name)


def haswell_gate(name: str = "avx_pg") -> PowerGate:
    """Pre-Skylake: no AVX power gate, zero wake latency."""
    return PowerGate(PowerGateSpec(present=False), name=name)
