"""Adaptive multi-level voltage guardband (Section 2, Equation 1).

The processor defines multiple power-virus levels keyed by the
architectural state — how many cores are active and the computational
intensity of the instructions each is running — and positions the shared
rail high enough that the worst burst of the *current* level keeps the
load above ``Vcc_min``.

Equation 1 of the paper gives the guardband step between two levels::

    dV = (Icc2 - Icc1) * R_LL = (Cdyn2 - Cdyn1) * Vcc * F * R_LL

:class:`GuardbandModel` evaluates that equation for a set of per-core
instruction classes.  The per-core contributions are additive, matching
Figure 6(a): each extra core that starts AVX2 raises the rail by its own
~8-9 mV step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.isa.instructions import IClass
from repro.pdn.loadline import LoadLine


@dataclass(frozen=True)
class GuardbandModel:
    """Evaluates voltage guardbands over a :class:`LoadLine`.

    Parameters
    ----------
    loadline:
        The rail's load-line impedance model.
    reference:
        The class whose guardband is folded into the baseline voltage;
        scalar 64-bit code by definition needs no extra guardband.
    """

    loadline: LoadLine
    reference: IClass = IClass.SCALAR_64

    def __post_init__(self) -> None:
        # Equation-1 evaluations sit on the recompute hot path; the model
        # is immutable, so both the per-class step and the summed rail
        # target are memoized.  Keys include every input, and the cached
        # values are the very floats the cold path produced, so the memo
        # cannot change a single bit of any trace.
        object.__setattr__(self, "_dv_cache", {})
        object.__setattr__(self, "_target_cache", {})

    def delta_v(self, iclass: IClass, vcc: float, freq_ghz: float) -> float:
        """Guardband step one core running ``iclass`` adds (Equation 1)."""
        key = (iclass, vcc, freq_ghz)
        cached = self._dv_cache.get(key)
        if cached is not None:
            return cached
        if vcc <= 0:
            raise ConfigError(f"vcc must be positive, got {vcc}")
        if freq_ghz <= 0:
            raise ConfigError(f"frequency must be positive, got {freq_ghz}")
        cdyn_delta = iclass.cdyn_nf - self.reference.cdyn_nf
        if cdyn_delta <= 0.0:
            result = 0.0
        else:
            delta_icc = cdyn_delta * vcc * freq_ghz
            result = self.loadline.droop(delta_icc)
        self._dv_cache[key] = result
        return result

    def target_vcc(self, baseline_vcc: float,
                   active_classes: Iterable[IClass],
                   freq_ghz: float) -> float:
        """Rail target for a set of concurrently active per-core classes.

        ``active_classes`` holds, for each active core, the most intense
        class that core is (recently) executing.  Contributions add
        because each additional core raises the worst-case current the
        rail must absorb (Figure 6a).
        """
        classes = tuple(active_classes)
        key = (baseline_vcc, classes, freq_ghz)
        cached = self._target_cache.get(key)
        if cached is not None:
            return cached
        total = baseline_vcc
        for iclass in classes:
            total += self.delta_v(iclass, baseline_vcc, freq_ghz)
        self._target_cache[key] = total
        return total

    def worst_case_vcc(self, baseline_vcc: float, n_cores: int,
                       freq_ghz: float,
                       virus_class: IClass = IClass.HEAVY_512) -> float:
        """Rail position for the absolute worst case (secure-mode level).

        The paper's secure-mode mitigation pins the rail at the guardband
        of the worst power virus on every core so no transition — and no
        throttling — ever happens (Section 7).
        """
        if n_cores < 1:
            raise ConfigError(f"n_cores must be >= 1, got {n_cores}")
        return self.target_vcc(baseline_vcc, [virus_class] * n_cores, freq_ghz)

    def level_ladder(self, baseline_vcc: float, freq_ghz: float,
                     classes: Sequence[IClass] = tuple(IClass)) -> "dict[IClass, float]":
        """Guardband of each class at the given operating point.

        Useful for reports and for checking the multi-level structure of
        Figure 10: the ladder is strictly increasing in computational
        intensity (among classes with distinct Cdyn).
        """
        return {
            iclass: self.delta_v(iclass, baseline_vcc, freq_ghz)
            for iclass in classes
        }
