"""Load-line (adaptive voltage positioning) model.

The load-line describes the voltage/current relationship at the package
input under a given system impedance ``R_LL`` (Section 2, Figure 2)::

    Vcc_load = Vcc - R_LL * Icc

where ``Vcc``/``Icc`` are at the VR output.  Because load voltage sags as
current rises, the PMU must position ``Vcc`` high enough that the worst
current burst the current architectural state can draw still leaves
``Vcc_load`` above ``Vcc_min``.  That guardband is what PHIs modulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class LoadLine:
    """A resistive load-line of ``r_ll_ohm`` ohms.

    Recent client parts use 1.6-2.4 mOhm (paper Section 2); the presets in
    :mod:`repro.soc.config` use 1.8 mOhm, which reproduces the ~8-9 mV
    per-core AVX2 guardband steps of Figure 6.
    """

    r_ll_ohm: float

    def __post_init__(self) -> None:
        if self.r_ll_ohm <= 0:
            raise ConfigError(f"load-line impedance must be positive, got {self.r_ll_ohm}")

    def vcc_load(self, vcc: float, icc: float) -> float:
        """Voltage at the load for VR output ``vcc`` and current ``icc``."""
        if icc < 0:
            raise ConfigError(f"current must be >= 0, got {icc}")
        return vcc - self.r_ll_ohm * icc

    def droop(self, icc: float) -> float:
        """IR droop across the load-line at current ``icc``."""
        if icc < 0:
            raise ConfigError(f"current must be >= 0, got {icc}")
        return self.r_ll_ohm * icc

    def vcc_load_array(self, vccs: np.ndarray, iccs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`vcc_load` over paired sample arrays.

        One fused multiply-subtract per lane — each float64 lane equals
        the scalar ``vcc - r_ll * icc`` bit for bit.
        """
        iccs = np.asarray(iccs, dtype=float)
        if iccs.size and float(iccs.min()) < 0:
            raise ConfigError(f"current must be >= 0, got {float(iccs.min())}")
        return np.asarray(vccs, dtype=float) - self.r_ll_ohm * iccs

    def required_vcc(self, vcc_min: float, icc_worst: float) -> float:
        """VR voltage needed so the load stays above ``vcc_min``.

        ``icc_worst`` is the worst-case current of the *current* power
        virus level — the discretised maximum the architectural state can
        draw (Section 2, 'Adaptive Voltage Guardband').
        """
        return vcc_min + self.droop(icc_worst)

    def guardband_delta(self, icc_low: float, icc_high: float) -> float:
        """Voltage guardband step between two power-virus levels.

        Equation 1 of the paper: ``dV = (Icc2 - Icc1) * R_LL``.
        """
        return self.r_ll_ohm * (icc_high - icc_low)

    def excess_voltage(self, vcc: float, icc_actual: float, icc_worst: float) -> float:
        """How far the load sits above necessity at a *typical* current.

        When the actual current is below the virus level, the load voltage
        is higher than necessary by ``R_LL * (Icc_worst - Icc_actual)``;
        the wasted power grows quadratically with this excess (Section 2).
        """
        del vcc  # the excess is independent of the absolute rail position
        if icc_actual > icc_worst:
            raise ConfigError(
                f"actual current {icc_actual} A exceeds virus level {icc_worst} A"
            )
        return self.droop(icc_worst) - self.droop(icc_actual)
