"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime protocol failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro package."""


class ConfigError(ReproError):
    """A simulation or channel configuration is inconsistent or unsupported.

    Examples: negative slew rate, SMT channel requested on a processor
    without SMT, unknown instruction class name.
    """


class SimulationError(ReproError):
    """The simulation engine reached an invalid state.

    Examples: an event scheduled in the past, a program yielded an
    unknown request object, time overflowed the configured horizon.
    """


class ProtocolError(ReproError):
    """A covert-channel protocol invariant was violated.

    Examples: receiver asked to decode before calibration, payload length
    not a multiple of the symbol width, sync slot missed by more than a
    slot length.
    """


class CalibrationError(ProtocolError):
    """Calibration could not derive usable decision thresholds.

    Raised when measured throttling-period level distributions overlap so
    much that no monotone threshold assignment separates them.
    """


class MeasurementError(ReproError):
    """A measurement facility was used incorrectly.

    Examples: reading a DAQ trace before arming it, requesting a sample
    rate above the instrument's maximum.
    """
