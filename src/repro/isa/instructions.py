"""Instruction classes and a table of concrete x86 vector instructions.

The central abstraction is :class:`IClass`, the seven computational
intensity classes of the paper (Section 4, Figure 3).  Each class carries
the microarchitectural parameters the rest of the simulator needs:

* ``cdyn_nf`` — effective switched capacitance (nF) of one core running a
  tight loop of this class at full rate.  This drives current draw
  (``I = Cdyn * V * f``) and, through the load-line, the voltage guardband
  (Equation 1 of the paper).
* ``ipc`` — baseline instructions per cycle of the loop when unthrottled.
* ``width_bits`` / ``heavy`` — vector width and whether the instruction
  needs the FPU or a multiplier (the paper's Heavy/Light split).

Calibration: Cdyn values are chosen so the simulated electrical behaviour
matches the paper's measurements, e.g. one core switching from scalar to
AVX2-heavy code at 2 GHz raises the shared rail by ~8-9 mV across a
1.8 mOhm load-line (Figure 6), and a two-core mobile part running
AVX2-heavy at 3.1 GHz exceeds its 29 A Icc_max (Figure 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError


@enum.unique
class IClass(enum.IntEnum):
    """Computational-intensity classes, ordered by increasing intensity.

    The integer values order the classes by the supply-voltage guardband
    they require: comparing two classes compares their power appetite.
    """

    SCALAR_64 = 0
    LIGHT_128 = 1
    HEAVY_128 = 2
    LIGHT_256 = 3
    HEAVY_256 = 4
    LIGHT_512 = 5
    HEAVY_512 = 6

    @property
    def width_bits(self) -> int:
        """Vector width in bits (64 for scalar)."""
        return _CLASS_PARAMS[self].width_bits

    @property
    def heavy(self) -> bool:
        """True when the class needs the FPU or a multiplier."""
        return _CLASS_PARAMS[self].heavy

    @property
    def cdyn_nf(self) -> float:
        """Effective switched capacitance (nF) of a full-rate loop."""
        return _CLASS_PARAMS[self].cdyn_nf

    @property
    def ipc(self) -> float:
        """Baseline unthrottled instructions per cycle of a tight loop."""
        return _CLASS_PARAMS[self].ipc

    @property
    def uses_avx256_unit(self) -> bool:
        """True when the class exercises the 256-bit AVX datapath."""
        return self.width_bits >= 256

    @property
    def uses_avx512_unit(self) -> bool:
        """True when the class exercises the 512-bit AVX datapath."""
        return self.width_bits >= 512

    @property
    def is_phi(self) -> bool:
        """True for power-hungry instruction (PHI) classes.

        The paper treats every class above plain 128-bit light code as a
        PHI: these are the classes whose execution triggers a voltage
        guardband adjustment and hence throttling.
        """
        return self >= IClass.HEAVY_128

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``256b_Heavy``."""
        params = _CLASS_PARAMS[self]
        if self == IClass.SCALAR_64:
            return "64b"
        kind = "Heavy" if params.heavy else "Light"
        return f"{params.width_bits}b_{kind}"

    @classmethod
    def from_label(cls, label: str) -> "IClass":
        """Look a class up by its paper-style label (case-insensitive)."""
        wanted = label.strip().lower()
        for iclass in cls:
            if iclass.label.lower() == wanted:
                return iclass
        raise ConfigError(f"unknown instruction class label: {label!r}")


@dataclass(frozen=True)
class _ClassParams:
    width_bits: int
    heavy: bool
    cdyn_nf: float
    ipc: float


# Cdyn calibration (see module docstring).  The scalar baseline of 3.0 nF
# puts a 2-core mobile part at ~10 A of background current; the heavy-512
# value of 9.0 nF makes a single AVX-512 core draw ~22 A at 3.1 GHz / 0.8 V.
_CLASS_PARAMS: Dict[IClass, _ClassParams] = {
    IClass.SCALAR_64: _ClassParams(width_bits=64, heavy=False, cdyn_nf=3.0, ipc=2.0),
    IClass.LIGHT_128: _ClassParams(width_bits=128, heavy=False, cdyn_nf=3.6, ipc=2.0),
    IClass.HEAVY_128: _ClassParams(width_bits=128, heavy=True, cdyn_nf=4.2, ipc=1.0),
    IClass.LIGHT_256: _ClassParams(width_bits=256, heavy=False, cdyn_nf=5.0, ipc=1.0),
    IClass.HEAVY_256: _ClassParams(width_bits=256, heavy=True, cdyn_nf=6.0, ipc=1.0),
    IClass.LIGHT_512: _ClassParams(width_bits=512, heavy=False, cdyn_nf=7.4, ipc=1.0),
    IClass.HEAVY_512: _ClassParams(width_bits=512, heavy=True, cdyn_nf=9.0, ipc=1.0),
}

#: Classes the paper treats as power-hungry instructions.
PHI_CLASSES: Tuple[IClass, ...] = tuple(c for c in IClass if c.is_phi)

# Flat parameter maps for hot paths.  The ``IClass`` properties dispatch
# through ``_CLASS_PARAMS`` on every access; the simulation inner loop
# (rate recomputes, Cdyn accounting, guardband evaluation) reads these
# values millions of times per figure sweep, so it uses plain dict
# lookups instead.  Values are the same float objects the properties
# return — no numerical difference, only fewer attribute dispatches.
CDYN_NF: Dict[IClass, float] = {c: p.cdyn_nf for c, p in _CLASS_PARAMS.items()}
IPC: Dict[IClass, float] = {c: p.ipc for c, p in _CLASS_PARAMS.items()}
LABEL: Dict[IClass, str] = {c: c.label for c in IClass}


@dataclass(frozen=True)
class Instruction:
    """A concrete instruction mapped onto an intensity class.

    Parameters
    ----------
    mnemonic:
        Assembly mnemonic, e.g. ``VMULPD``.
    iclass:
        The computational-intensity class the instruction belongs to.
    uops:
        Fused-domain micro-ops the instruction decodes into.
    description:
        One-line human description.
    """

    mnemonic: str
    iclass: IClass
    uops: int
    description: str

    def __post_init__(self) -> None:
        if self.uops < 1:
            raise ConfigError(f"{self.mnemonic}: uops must be >= 1, got {self.uops}")


def _table() -> Dict[str, Instruction]:
    rows = [
        # mnemonic, class, uops, description
        ("MOV64", IClass.SCALAR_64, 1, "64-bit register move"),
        ("ADD64", IClass.SCALAR_64, 1, "64-bit integer add"),
        ("XOR64", IClass.SCALAR_64, 1, "64-bit integer xor"),
        ("IMUL64", IClass.SCALAR_64, 1, "64-bit integer multiply (scalar port)"),
        ("LEA64", IClass.SCALAR_64, 1, "64-bit address computation"),
        ("VMOVDQA128", IClass.LIGHT_128, 1, "128-bit aligned vector move"),
        ("VPADDD128", IClass.LIGHT_128, 1, "128-bit packed 32-bit integer add"),
        ("VPOR128", IClass.LIGHT_128, 1, "128-bit vector bitwise or"),
        ("VPSHUFB128", IClass.LIGHT_128, 1, "128-bit byte shuffle"),
        ("VPBLENDW128", IClass.LIGHT_128, 1, "128-bit word blend"),
        ("VADDPD128", IClass.HEAVY_128, 1, "128-bit packed double add (FPU)"),
        ("VSUBPS128", IClass.HEAVY_128, 1, "128-bit packed single subtract (FPU)"),
        ("VMULPD128", IClass.HEAVY_128, 1, "128-bit packed double multiply"),
        ("VPMULLD128", IClass.HEAVY_128, 2, "128-bit packed 32-bit integer multiply"),
        ("VMOVDQA256", IClass.LIGHT_256, 1, "256-bit aligned vector move"),
        ("VPADDD256", IClass.LIGHT_256, 1, "256-bit packed 32-bit integer add"),
        ("VORPD256", IClass.LIGHT_256, 1, "256-bit vector bitwise or"),
        ("VPERMILPS256", IClass.LIGHT_256, 1, "256-bit in-lane permute"),
        ("VADDPD256", IClass.HEAVY_256, 1, "256-bit packed double add (FPU)"),
        ("VSUBPS256", IClass.HEAVY_256, 1, "256-bit packed single subtract (FPU)"),
        ("VMULPD256", IClass.HEAVY_256, 1, "256-bit packed double multiply"),
        ("VFMADD231PD256", IClass.HEAVY_256, 1, "256-bit fused multiply-add"),
        ("VMOVDQA512", IClass.LIGHT_512, 1, "512-bit aligned vector move"),
        ("VPADDD512", IClass.LIGHT_512, 1, "512-bit packed 32-bit integer add"),
        ("VPORQ512", IClass.LIGHT_512, 1, "512-bit vector bitwise or"),
        ("VADDPD512", IClass.HEAVY_512, 1, "512-bit packed double add (FPU)"),
        ("VMULPD512", IClass.HEAVY_512, 1, "512-bit packed double multiply"),
        ("VFMADD231PD512", IClass.HEAVY_512, 1, "512-bit fused multiply-add"),
    ]
    return {
        mnemonic: Instruction(mnemonic, iclass, uops, description)
        for mnemonic, iclass, uops, description in rows
    }


#: Table of concrete instructions keyed by mnemonic.
INSTRUCTIONS: Dict[str, Instruction] = _table()


def instruction(mnemonic: str) -> Instruction:
    """Look up an :class:`Instruction` by mnemonic (case-insensitive)."""
    found = INSTRUCTIONS.get(mnemonic.upper())
    if found is None:
        raise ConfigError(f"unknown instruction mnemonic: {mnemonic!r}")
    return found


def instructions_in_class(iclass: IClass) -> List[Instruction]:
    """All concrete instructions belonging to ``iclass``."""
    return [inst for inst in INSTRUCTIONS.values() if inst.iclass == iclass]
