"""Workload descriptions: instruction loops and multi-phase traces.

The paper's micro-benchmarks (customised from Agner Fog's measurement
library, Section 5.1) are tight loops of one instruction class.  Its macro
experiments run phase traces: code alternating between Non-AVX, AVX2 and
AVX512 phases (Figures 6, 7 and 9), SPEC's 454.calculix auto-vectorised to
AVX2 (Figure 6b), and 7-zip as a realistic noisy neighbour (Section 6.3).

This module provides data types for both granularities:

* :class:`Loop` — ``iterations`` repetitions of a block of instructions of
  one :class:`~repro.isa.instructions.IClass`.
* :class:`Phase` / :class:`PhaseTrace` — a wall-time phase of one class,
  and a schedule of such phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.isa.instructions import IClass
from repro.units import ms_to_ns, us_to_ns


@dataclass(frozen=True)
class Loop:
    """A tight loop: ``iterations`` x ``block_instructions`` of ``iclass``.

    The Agner-Fog-style benchmark bodies in the paper are ~300 instruction
    blocks (e.g. 300 VMULPD) repeated for a few thousand iterations.
    """

    iclass: IClass
    iterations: int
    block_instructions: int = 300

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {self.iterations}")
        if self.block_instructions < 1:
            raise ConfigError(
                f"block_instructions must be >= 1, got {self.block_instructions}"
            )

    @property
    def total_instructions(self) -> int:
        """Total dynamic instruction count of the loop."""
        return self.iterations * self.block_instructions

    def unthrottled_cycles(self) -> float:
        """Core cycles the loop takes when never throttled."""
        return self.total_instructions / self.iclass.ipc

    def unthrottled_ns(self, freq_ghz: float) -> float:
        """Wall time (ns) of the loop when never throttled at ``freq_ghz``."""
        return self.unthrottled_cycles() / freq_ghz


def uniform_loop(iclass: IClass, duration_us: float, freq_ghz: float,
                 block_instructions: int = 300) -> Loop:
    """Build a loop of ``iclass`` sized to last about ``duration_us``.

    Sizing assumes unthrottled execution at ``freq_ghz``; throttling will
    stretch the realised wall time, which is exactly the observable the
    covert channels measure.
    """
    if duration_us <= 0:
        raise ConfigError(f"duration must be positive, got {duration_us} us")
    cycles = us_to_ns(duration_us) * freq_ghz
    per_iteration = block_instructions / iclass.ipc
    iterations = max(1, int(round(cycles / per_iteration)))
    return Loop(iclass, iterations, block_instructions)


@dataclass(frozen=True)
class Phase:
    """A wall-clock phase during which a thread runs one class of code."""

    iclass: IClass
    duration_ns: float

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise ConfigError(f"phase duration must be positive, got {self.duration_ns}")


@dataclass
class PhaseTrace:
    """An ordered schedule of :class:`Phase` objects for one thread."""

    phases: List[Phase] = field(default_factory=list)
    name: str = "trace"

    def append(self, iclass: IClass, duration_ns: float) -> "PhaseTrace":
        """Append a phase and return self (chainable)."""
        self.phases.append(Phase(iclass, duration_ns))
        return self

    @property
    def duration_ns(self) -> float:
        """Total wall time of the trace."""
        return sum(phase.duration_ns for phase in self.phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)

    def class_at(self, t_ns: float) -> Optional[IClass]:
        """The class scheduled at offset ``t_ns``, or None past the end."""
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.duration_ns
            if t_ns < elapsed:
                return phase.iclass
        return None


def avx2_phase_program(scalar_ms: float = 400.0, avx_ms: float = 1200.0,
                       trailer_ms: float = 400.0) -> PhaseTrace:
    """Scalar -> AVX2-heavy -> scalar trace, as in Figure 6(a).

    The paper staggers this program across two cores (core 1 starts at
    0.4 s, core 0 at 0.8 s); callers stagger by prepending scalar time.
    """
    trace = PhaseTrace(name="avx2_phase_program")
    trace.append(IClass.SCALAR_64, ms_to_ns(scalar_ms))
    trace.append(IClass.HEAVY_256, ms_to_ns(avx_ms))
    trace.append(IClass.SCALAR_64, ms_to_ns(trailer_ms))
    return trace


def calculix_like_trace(total_ms: float = 2000.0, avx_fraction: float = 0.45,
                        mean_phase_us: float = 400.0,
                        seed: int = 454) -> PhaseTrace:
    """Synthetic stand-in for SPEC CPU2006 454.calculix with AVX2.

    454.calculix auto-vectorised to AVX2 alternates between scalar solver
    bookkeeping and vectorised element loops.  Figure 6(b) only relies on
    that alternation: the rail voltage steps up during AVX2 phases and
    back down during scalar phases.  We draw exponential phase lengths
    around ``mean_phase_us`` and pick AVX2 phases with probability
    ``avx_fraction``.
    """
    if not 0.0 < avx_fraction < 1.0:
        raise ConfigError(f"avx_fraction must be in (0, 1), got {avx_fraction}")
    rng = np.random.default_rng(seed)
    trace = PhaseTrace(name="calculix_like")
    remaining = ms_to_ns(total_ms)
    use_avx = False
    while remaining > 0:
        duration = min(remaining, us_to_ns(float(rng.exponential(mean_phase_us)) + 20.0))
        # Alternate with bias so the realised AVX share tracks avx_fraction.
        if use_avx:
            trace.append(IClass.HEAVY_256, duration)
        else:
            trace.append(IClass.SCALAR_64, duration)
        use_avx = rng.random() < (avx_fraction if not use_avx else 1.0 - avx_fraction)
        remaining -= duration
    return trace


def sevenzip_like_trace(total_ms: float = 1000.0, seed: int = 7,
                        mean_scalar_us: float = 3000.0,
                        mean_burst_us: float = 40.0) -> PhaseTrace:
    """Synthetic 7-zip-style compressor trace (Section 6.3).

    7-zip uses AVX2 (never AVX-512) in bursts for match finding, between
    long scalar entropy-coding stretches.  Bursts are short (tens of us)
    and sparse, which is why the paper measures a low BER (< 0.07) when
    7-zip runs beside the covert channel.  ``mean_scalar_us`` and
    ``mean_burst_us`` tune how aggressive the compressor phase mix is.
    """
    if mean_scalar_us <= 0 or mean_burst_us <= 0:
        raise ConfigError("phase means must be positive")
    rng = np.random.default_rng(seed)
    trace = PhaseTrace(name="sevenzip_like")
    remaining = ms_to_ns(total_ms)
    while remaining > 0:
        scalar = min(remaining,
                     us_to_ns(float(rng.exponential(mean_scalar_us)) + 200.0))
        trace.append(IClass.SCALAR_64, scalar)
        remaining -= scalar
        if remaining <= 0:
            break
        burst = min(remaining,
                    us_to_ns(float(rng.exponential(mean_burst_us)) + 5.0))
        trace.append(IClass.HEAVY_256, burst)
        remaining -= burst
    return trace


def power_virus(duration_ms: float = 10.0, width_bits: int = 512) -> PhaseTrace:
    """Maximum-Cdyn workload (the paper's 'power-virus', Section 2)."""
    iclass = {
        128: IClass.HEAVY_128,
        256: IClass.HEAVY_256,
        512: IClass.HEAVY_512,
    }.get(width_bits)
    if iclass is None:
        raise ConfigError(f"power virus width must be 128/256/512, got {width_bits}")
    trace = PhaseTrace(name=f"power_virus_{width_bits}")
    trace.append(iclass, ms_to_ns(duration_ms))
    return trace


def browser_like_trace(total_ms: float = 1000.0, seed: int = 80) -> PhaseTrace:
    """Browser-style neighbour: bursty scalar work, light SIMD sprinkles.

    Rendering and JS engines are overwhelmingly scalar with short
    128-bit light phases (string/layout SIMD); they touch no heavy FP
    vectors, so they shift the rail rarely and weakly — a benign
    neighbour for the covert channels.
    """
    rng = np.random.default_rng(seed)
    trace = PhaseTrace(name="browser_like")
    remaining = ms_to_ns(total_ms)
    while remaining > 0:
        busy = min(remaining, us_to_ns(float(rng.exponential(800.0)) + 50.0))
        trace.append(IClass.SCALAR_64, busy)
        remaining -= busy
        if remaining <= 0:
            break
        simd = min(remaining, us_to_ns(float(rng.exponential(30.0)) + 5.0))
        trace.append(IClass.LIGHT_128, simd)
        remaining -= simd
    return trace


def ml_inference_like_trace(total_ms: float = 1000.0, period_ms: float = 12.0,
                            burst_ms: float = 6.0,
                            width_bits: int = 512,
                            seed: int = 81) -> PhaseTrace:
    """ML-inference neighbour: periodic heavy vector bursts.

    A model served at a fixed request rate runs dense GEMM phases —
    sustained heavy AVX — separated by pre/post-processing gaps.  The
    worst realistic neighbour for IChannels: its bursts carry the
    highest guardband level and recur faster than the reset-time.
    """
    if period_ms <= burst_ms:
        raise ConfigError("the inference period must exceed the burst")
    iclass = IClass.HEAVY_512 if width_bits >= 512 else IClass.HEAVY_256
    rng = np.random.default_rng(seed)
    trace = PhaseTrace(name="ml_inference_like")
    remaining = ms_to_ns(total_ms)
    while remaining > 0:
        jitter = float(rng.uniform(0.9, 1.1))
        gap = min(remaining, ms_to_ns((period_ms - burst_ms) * jitter))
        trace.append(IClass.SCALAR_64, gap)
        remaining -= gap
        if remaining <= 0:
            break
        burst = min(remaining, ms_to_ns(burst_ms * jitter))
        trace.append(iclass, burst)
        remaining -= burst
    return trace


def video_codec_like_trace(total_ms: float = 1000.0, fps: float = 30.0,
                           encode_share: float = 0.4,
                           seed: int = 82) -> PhaseTrace:
    """Video-codec neighbour: AVX2 encode work clocked at the frame rate.

    Encoders burn 256-bit SIMD for a fixed share of each frame interval
    — a *periodic* heavy neighbour, in between the benign browser and
    the hostile ML server.
    """
    if not 0.0 < encode_share < 1.0:
        raise ConfigError(f"encode share must be in (0, 1), got {encode_share}")
    frame_ms = 1000.0 / fps
    rng = np.random.default_rng(seed)
    trace = PhaseTrace(name="video_codec_like")
    remaining = ms_to_ns(total_ms)
    while remaining > 0:
        jitter = float(rng.uniform(0.95, 1.05))
        encode = min(remaining, ms_to_ns(frame_ms * encode_share * jitter))
        trace.append(IClass.HEAVY_256, encode)
        remaining -= encode
        if remaining <= 0:
            break
        idle = min(remaining, ms_to_ns(frame_ms * (1.0 - encode_share) * jitter))
        trace.append(IClass.SCALAR_64, idle)
        remaining -= idle
    return trace


def random_phi_schedule(total_ms: float, events_per_second: float,
                        burst_us: float = 20.0,
                        classes: Sequence[IClass] = (
                            IClass.HEAVY_128, IClass.LIGHT_256,
                            IClass.HEAVY_256, IClass.HEAVY_512),
                        seed: int = 14) -> PhaseTrace:
    """Scalar trace with Poisson PHI bursts at random levels (Fig. 14c).

    Models the synthetic 'App' of Section 6.3 that injects PHIs with a
    random power level at a configurable rate (10 - 10,000 per second).
    """
    if events_per_second < 0:
        raise ConfigError(f"event rate must be >= 0, got {events_per_second}")
    rng = np.random.default_rng(seed)
    trace = PhaseTrace(name=f"app_phi_{events_per_second:g}")
    total_ns = ms_to_ns(total_ms)
    if events_per_second == 0:
        trace.append(IClass.SCALAR_64, total_ns)
        return trace
    mean_gap_ns = 1e9 / events_per_second
    elapsed = 0.0
    while elapsed < total_ns:
        gap = float(rng.exponential(mean_gap_ns)) + 1.0
        gap = min(gap, total_ns - elapsed)
        trace.append(IClass.SCALAR_64, gap)
        elapsed += gap
        if elapsed >= total_ns:
            break
        burst = min(us_to_ns(burst_us), total_ns - elapsed)
        if burst <= 0:
            break
        trace.append(IClass(int(rng.choice(classes))), burst)
        elapsed += burst
    return trace
