"""Instruction-set model: computational-intensity classes and workloads.

The paper groups instructions into seven *computational intensity* classes
(Section 4): ``64b``, ``128b_Light``, ``128b_Heavy``, ``256b_Light``,
``256b_Heavy``, ``512b_Light`` and ``512b_Heavy``.  *Heavy* covers any
instruction needing the floating-point unit or a multiplier; *Light* covers
the remaining (integer arithmetic, logic, shuffle, blend) instructions.
"""

from repro.isa.instructions import (
    IClass,
    Instruction,
    INSTRUCTIONS,
    PHI_CLASSES,
    instruction,
    instructions_in_class,
)
from repro.isa.workload import (
    Loop,
    Phase,
    PhaseTrace,
    avx2_phase_program,
    calculix_like_trace,
    power_virus,
    sevenzip_like_trace,
    uniform_loop,
)

__all__ = [
    "IClass",
    "Instruction",
    "INSTRUCTIONS",
    "PHI_CLASSES",
    "instruction",
    "instructions_in_class",
    "Loop",
    "Phase",
    "PhaseTrace",
    "avx2_phase_program",
    "calculix_like_trace",
    "power_virus",
    "sevenzip_like_trace",
    "uniform_loop",
]
