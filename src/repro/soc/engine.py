"""Discrete-event simulation engine.

A minimal, deterministic event loop: callbacks are ordered by (time,
sequence number), so events scheduled earlier at the same timestamp run
first.  Everything in the simulator — voltage settles, loop completions,
hysteresis expiries, noise arrivals — is an :class:`EventHandle` on this
queue.

Programs (covert-channel senders/receivers, workload drivers) are written
as Python generators that ``yield`` request objects; the
:class:`~repro.soc.system.System` resumes them when the request completes.
The engine itself knows nothing about programs; it only runs callbacks.

Two engine-level optimisations keep cancel-heavy workloads cheap (every
recompute of an in-flight loop cancels and reschedules its completion
event, so hysteresis-churny covert transfers cancel far more events than
they run):

* heap entries are plain ``(time, seq, handle)`` tuples — tuple
  comparison in C instead of dataclass ``__lt__`` dispatch per sift;
* cancelled entries are dropped lazily at pop time as before, but when
  they outnumber half the heap the whole heap is compacted in one
  O(n) filter + heapify, bounding both memory and ``heappush`` cost.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.tracer import current as _obs

#: Compaction is skipped below this heap size; the O(n) rebuild only
#: pays for itself once the heap is big enough for sift cost to matter.
_COMPACT_MIN_SIZE = 64


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("time_ns", "callback", "args", "cancelled", "_engine")

    def __init__(self, time_ns: float, callback: Callable[..., Any],
                 args: Tuple[Any, ...],
                 engine: Optional["Engine"] = None) -> None:
        self.time_ns = time_ns
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancel()


class Engine:
    """The event queue and simulation clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._cancelled = 0
        self.now: float = 0.0
        self.events_run: int = 0

    def schedule(self, delay_ns: float, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < -1e-9:
            raise SimulationError(
                f"cannot schedule {delay_ns} ns in the past at t={self.now}"
            )
        return self.schedule_at(self.now + max(0.0, delay_ns), callback, *args)

    def schedule_at(self, time_ns: float, callback: Callable[..., Any],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        handle = EventHandle(max(time_ns, self.now), callback, args, self)
        heapq.heappush(self._heap, (handle.time_ns, next(self._seq), handle))
        return handle

    def _note_cancel(self) -> None:
        """Bookkeeping hook called by :meth:`EventHandle.cancel`."""
        self._cancelled += 1
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("engine.cancelled").inc()
        if (len(self._heap) >= _COMPACT_MIN_SIZE
                and self._cancelled > len(self._heap) // 2):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry in one filter + heapify pass."""
        before = len(self._heap)
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("engine.compactions").inc()
            tracer.instant("engine.compact", "engine", self.now, track="engine",
                           args={"dropped": before - len(self._heap),
                                 "kept": len(self._heap)})

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._cancelled = max(0, self._cancelled - 1)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when idle."""
        self._drop_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            time_ns, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                self._cancelled = max(0, self._cancelled - 1)
                continue
            self.now = time_ns
            self.events_run += 1
            tracer = _obs()
            if tracer.enabled:
                tracer.metrics.counter("engine.events_run").inc()
                if tracer.engine_events:
                    tracer.instant(
                        getattr(handle.callback, "__qualname__",
                                repr(handle.callback)),
                        "engine", time_ns, track="engine",
                    )
            handle.callback(*handle.args)
            return True
        return False

    def run_until(self, time_ns: float) -> None:
        """Run every event up to and including ``time_ns``.

        The clock ends exactly at ``time_ns`` even if the queue drains
        earlier, so traces sampled afterwards cover the full span.
        """
        if time_ns < self.now:
            raise SimulationError(f"cannot run backwards to {time_ns} from {self.now}")
        while True:
            upcoming = self.peek_time()
            if upcoming is None or upcoming > time_ns:
                break
            self.step()
        self.now = time_ns

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"engine exceeded {max_events} events; runaway loop?")
