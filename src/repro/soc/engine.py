"""Discrete-event simulation engine.

A minimal, deterministic event loop: callbacks are ordered by (time,
sequence number), so events scheduled earlier at the same timestamp run
first.  Everything in the simulator — voltage settles, loop completions,
hysteresis expiries, noise arrivals — is an :class:`EventHandle` on this
queue.

Programs (covert-channel senders/receivers, workload drivers) are written
as Python generators that ``yield`` request objects; the
:class:`~repro.soc.system.System` resumes them when the request completes.
The engine itself knows nothing about programs; it only runs callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(order=True)
class _QueueEntry:
    time_ns: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("time_ns", "callback", "args", "cancelled")

    def __init__(self, time_ns: float, callback: Callable[..., Any],
                 args: Tuple[Any, ...]) -> None:
        self.time_ns = time_ns
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True


class Engine:
    """The event queue and simulation clock."""

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_run: int = 0

    def schedule(self, delay_ns: float, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < -1e-9:
            raise SimulationError(
                f"cannot schedule {delay_ns} ns in the past at t={self.now}"
            )
        return self.schedule_at(self.now + max(0.0, delay_ns), callback, *args)

    def schedule_at(self, time_ns: float, callback: Callable[..., Any],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        handle = EventHandle(max(time_ns, self.now), callback, args)
        heapq.heappush(self._heap, _QueueEntry(handle.time_ns, next(self._seq), handle))
        return handle

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when idle."""
        while self._heap and self._heap[0].handle.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ns if self._heap else None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.handle.cancelled:
                continue
            self.now = entry.time_ns
            self.events_run += 1
            entry.handle.callback(*entry.handle.args)
            return True
        return False

    def run_until(self, time_ns: float) -> None:
        """Run every event up to and including ``time_ns``.

        The clock ends exactly at ``time_ns`` even if the queue drains
        earlier, so traces sampled afterwards cover the full span.
        """
        if time_ns < self.now:
            raise SimulationError(f"cannot run backwards to {time_ns} from {self.now}")
        while True:
            upcoming = self.peek_time()
            if upcoming is None or upcoming > time_ns:
                break
            self.step()
        self.now = time_ns

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"engine exceeded {max_events} events; runaway loop?")
