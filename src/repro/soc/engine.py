"""Discrete-event simulation engine.

A minimal, deterministic event loop: callbacks are ordered by (time,
sequence number), so events scheduled earlier at the same timestamp run
first.  Everything in the simulator — voltage settles, loop completions,
hysteresis expiries, noise arrivals — is an :class:`EventHandle` on this
queue.

Programs (covert-channel senders/receivers, workload drivers) are written
as Python generators that ``yield`` request objects; the
:class:`~repro.soc.system.System` resumes them when the request completes.
The engine itself knows nothing about programs; it only runs callbacks.

Engine-level optimisations keep cancel-heavy workloads cheap (every
recompute of an in-flight loop cancels and reschedules its completion
event, so hysteresis-churny covert transfers cancel far more events than
they run):

* heap entries are plain ``(time, seq, handle)`` tuples — tuple
  comparison in C instead of dataclass ``__lt__`` dispatch per sift;
* cancelled entries are dropped lazily at pop time as before, but when
  they outnumber half the heap the whole heap is compacted in one
  O(n) filter + heapify, bounding both memory and ``heappush`` cost;
* the heap-garbage estimate counts only cancellations of entries that
  are *still in the heap* — cancelling an already-popped handle (a stale
  completion, re-cancellation through compaction) is common and used to
  overstate garbage, triggering pointless compactions;
* :meth:`Engine.run_until` pops due events in a single bounded loop
  instead of the historical ``peek_time()`` + ``step()`` pair, which
  scanned every cancelled head twice.

The engine also hosts the batch-kernel hook (:meth:`install_kernel`):
when a :class:`repro.soc.kernel.KernelBatch` is installed, the run loops
notify it before dispatching each callback so it can flush deferred
state ahead of any event that might observe it (see
:mod:`repro.soc.kernel` for the segmentation model).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.tracer import current as _obs

#: Compaction is skipped below this heap size; the O(n) rebuild only
#: pays for itself once the heap is big enough for sift cost to matter.
_COMPACT_MIN_SIZE = 64


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("time_ns", "callback", "args", "cancelled", "in_heap",
                 "_engine")

    def __init__(self, time_ns: float, callback: Callable[..., Any],
                 args: Tuple[Any, ...],
                 engine: Optional["Engine"] = None) -> None:
        self.time_ns = time_ns
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Whether the heap still holds this handle's entry.  Cleared on
        #: every pop (run, lazy drop, or compaction) so cancellations of
        #: departed handles do not count as heap garbage.
        self.in_heap = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancel(self.in_heap)


class Engine:
    """The event queue and simulation clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._cancelled = 0
        self._kernel: Optional[Any] = None
        self.now: float = 0.0
        self.events_run: int = 0

    def schedule(self, delay_ns: float, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < -1e-9:
            raise SimulationError(
                f"cannot schedule {delay_ns} ns in the past at t={self.now}"
            )
        return self.schedule_at(self.now + max(0.0, delay_ns), callback, *args)

    def schedule_at(self, time_ns: float, callback: Callable[..., Any],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        handle = EventHandle(max(time_ns, self.now), callback, args, self)
        handle.in_heap = True
        heapq.heappush(self._heap, (handle.time_ns, next(self._seq), handle))
        return handle

    # -- batch kernel hook ---------------------------------------------------

    def install_kernel(self, kernel: Optional[Any]) -> None:
        """Attach (or detach, with None) a batch kernel to the run loops.

        The kernel's ``before_event(callback)`` is invoked ahead of every
        dispatched callback so deferred state can be flushed before any
        event that is not provably mechanical (see
        :mod:`repro.soc.kernel`).
        """
        self._kernel = kernel

    # -- cancellation bookkeeping --------------------------------------------

    def _note_cancel(self, in_heap: bool) -> None:
        """Bookkeeping hook called by :meth:`EventHandle.cancel`.

        Every first cancellation is counted in the observability metrics,
        but only cancellations of entries still sitting in the heap add
        to the garbage estimate that drives compaction — a cancel after
        the entry was already popped leaves no garbage behind.
        """
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("engine.cancelled").inc()
        if not in_heap:
            return
        self._cancelled += 1
        if (len(self._heap) >= _COMPACT_MIN_SIZE
                and self._cancelled > len(self._heap) // 2):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry in one filter + heapify pass.

        Recounts the garbage estimate from scratch: after the filter the
        heap holds no cancelled entries, so the estimate is exactly zero.
        The invariant ``_cancelled == #cancelled-entries-in-heap`` holds
        at every point between engine calls (asserted by the test suite
        via :meth:`check_cancel_invariant`).
        """
        before = len(self._heap)
        kept: List[Tuple[float, int, EventHandle]] = []
        for entry in self._heap:
            if entry[2].cancelled:
                entry[2].in_heap = False
            else:
                kept.append(entry)
        # In-place replacement: compaction can run from a cancel inside a
        # dispatched callback while a run loop holds a reference to the
        # heap list, so the list identity must never change.
        self._heap[:] = kept
        heapq.heapify(self._heap)
        self._cancelled = 0
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("engine.compactions").inc()
            tracer.instant("engine.compact", "engine", self.now, track="engine",
                           args={"dropped": before - len(self._heap),
                                 "kept": len(self._heap)})

    def check_cancel_invariant(self) -> bool:
        """Whether the garbage estimate matches the heap's actual garbage.

        Test/debug helper — O(n) over the heap.
        """
        actual = sum(1 for entry in self._heap if entry[2].cancelled)
        return self._cancelled == actual

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)[2].in_heap = False
            self._cancelled -= 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when idle."""
        self._drop_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def _dispatch(self, time_ns: float, handle: EventHandle) -> None:
        """Advance the clock to a popped event and run its callback."""
        self.now = time_ns
        self.events_run += 1
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("engine.events_run").inc()
            if tracer.engine_events:
                tracer.instant(
                    getattr(handle.callback, "__qualname__",
                            repr(handle.callback)),
                    "engine", time_ns, track="engine",
                )
        if self._kernel is not None:
            self._kernel.before_event(handle.callback)
        handle.callback(*handle.args)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            time_ns, _, handle = heapq.heappop(self._heap)
            handle.in_heap = False
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self._dispatch(time_ns, handle)
            return True
        return False

    def run_until(self, time_ns: float) -> None:
        """Run every event up to and including ``time_ns``.

        The clock ends exactly at ``time_ns`` even if the queue drains
        earlier, so traces sampled afterwards cover the full span.  Due
        events are popped in one bounded loop: each heap entry — live or
        cancelled — is inspected exactly once, where the historical
        ``peek_time()`` + ``step()`` pairing scanned every cancelled
        head twice.
        """
        if time_ns < self.now:
            raise SimulationError(f"cannot run backwards to {time_ns} from {self.now}")
        heap = self._heap
        while heap:
            entry_time, _, handle = heap[0]
            if handle.cancelled:
                heapq.heappop(heap)[2].in_heap = False
                self._cancelled -= 1
                continue
            if entry_time > time_ns:
                break
            heapq.heappop(heap)
            handle.in_heap = False
            self._dispatch(entry_time, handle)
        self.now = time_ns

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"engine exceeded {max_events} events; runaway loop?")
