"""The simulated SoC: cores, threads, PMU, PDN and program execution.

A :class:`System` wires a :class:`~repro.soc.config.ProcessorConfig` into a
running machine on top of the event engine:

* every core has ``smt_per_core`` hardware threads;
* programs are Python generators that ``yield`` requests made by the
  system's :meth:`System.sleep`, :meth:`System.until` and
  :meth:`System.execute` builders;
* executing a loop of a power-hungry class raises a voltage request with
  the central PMU; while the request is outstanding the core's delivery
  is throttled to a quarter rate (the IDQ 1-of-4 gate of Section 5.6),
  which is exactly the observable the covert channels measure;
* noise processes may suspend threads (interrupts, context switches).

Execution timing uses the *recompute* pattern: each in-flight loop tracks
its remaining instructions and current rate; every state change (throttle
engage/release, frequency change, sibling start/stop, suspension) updates
progress and reschedules the completion event.  The cycle-level model in
:mod:`repro.microarch.pipeline` independently validates the rate factors
used here (quarter-rate throttling, SMT sharing).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.isa.instructions import CDYN_NF, IPC, LABEL, IClass
from repro.isa.workload import Loop, PhaseTrace, uniform_loop
from repro.measure.sampler import PiecewiseConstantSignal, PiecewiseLinearSignal
from repro.measure.trace import StepTrace
from repro.microarch.tsc import TimestampCounter
from repro.pdn.droop import DroopModel, DroopSpec
from repro.pdn.guardband import GuardbandModel
from repro.pdn.loadline import LoadLine
from repro.pdn.powergate import PowerGate, PowerGateSpec
from repro.pdn.regulator import VoltageRegulator, ldo_spec
from repro.pmu.central import CentralPMU, PMUConfig
from repro.pmu.cstates import CStateSpec, CStateTracker
from repro.pmu.dvfs import pstate_ladder
from repro.pmu.governors import Governor
from repro.pmu.limits import LimitPolicy
from repro.pmu.local import LocalPMU
from repro.pmu.thermal import ThermalModel
from repro.soc.config import ProcessorConfig
from repro.soc.engine import Engine, EventHandle
from repro.soc.kernel import KernelBatch
from repro.units import mohm_to_ohm, us_to_ns

#: Throttle divides the delivery rate by this factor (1 open cycle in 4).
THROTTLE_FACTOR = 4.0

#: Effective switched capacitance (nF) of an idle, clock-gated core.
IDLE_CDYN_NF = 0.5


@dataclass(frozen=True)
class SystemOptions:
    """Behavioural switches, including the paper's mitigations.

    Parameters
    ----------
    per_core_vr:
        Give each core its own rail (Section 7 'Fast Per-core Voltage
        Regulators'); kills the cross-core serialisation.
    ldo_rails:
        Use fast LDO regulator specs instead of the part's native VR.
    improved_throttling:
        Gate only PHI uops of the offending thread instead of the whole
        core (Section 7 'Improved Core Throttling').
    secure_mode:
        Pin guardbands at the worst case; no transitions, no throttling
        (Section 7 'A New Secure Mode of Operation').
    pmu_queue_depth:
        Bound on the central PMU's per-rail transition queue; 0 keeps
        the paper's unbounded mailbox (see
        :class:`repro.pmu.central.PMUConfig`).
    pmu_grant_policy:
        ``"serialized"`` (the paper's behaviour) or ``"coalesced"``
        (batch all queued up-requests into one transition).
    turbo_license_limit:
        Mitigation-matrix defender: clamp the package frequency to the
        worst-case turbo-license ceiling so guardband traffic never
        changes frequency (no PLL-relock throttling), at a permanent
        frequency cost (see :class:`repro.pmu.central.PMUConfig`).
    disable_throttling:
        ABLATION ONLY: let PHIs run at full rate without waiting for
        their guardband.  The droop model then reports the voltage
        emergencies the real mechanism exists to prevent
        (:attr:`System.voltage_emergencies`).
    kernel:
        Batch-kernel mode (see :mod:`repro.soc.kernel` and
        ``docs/KERNEL.md``).  ``"auto"`` installs the deferred-trace
        fast path when the system is eligible (no C-states, no
        governor, no fault injector) and falls back to the scalar
        reference engine otherwise; ``"off"`` always runs scalar.
        Defaults from the ``REPRO_KERNEL`` environment variable, read
        at construction time, so whole scenario runs can be switched
        without code changes.
    """

    per_core_vr: bool = False
    ldo_rails: bool = False
    improved_throttling: bool = False
    secure_mode: bool = False
    turbo_license_limit: bool = False
    disable_throttling: bool = False
    pmu_queue_depth: int = 0
    pmu_grant_policy: str = "serialized"
    kernel: str = field(
        default_factory=lambda: os.environ.get("REPRO_KERNEL", "auto")
    )

    def __post_init__(self) -> None:
        if self.kernel not in ("off", "auto"):
            raise ConfigError(
                f"kernel mode must be 'off' or 'auto', got {self.kernel!r}"
            )


@dataclass(frozen=True)
class ExecResult:
    """What a program observes after one :meth:`System.execute`."""

    start_ns: float
    end_ns: float
    start_tsc: int
    end_tsc: int
    instructions: int
    iterations: int
    throttled_ns: float
    gate_wake_ns: float

    @property
    def elapsed_ns(self) -> float:
        """Wall time of the loop."""
        return self.end_ns - self.start_ns

    @property
    def elapsed_tsc(self) -> int:
        """TSC ticks of the loop — what ``rdtsc``-based receivers read."""
        return self.end_tsc - self.start_tsc


# -- program requests ----------------------------------------------------------


@dataclass(frozen=True)
class _SleepReq:
    delay_ns: float


@dataclass(frozen=True)
class _UntilReq:
    time_ns: float


@dataclass(frozen=True)
class _ExecReq:
    thread_id: int
    loop: Loop


class _Process:
    """A running program generator."""

    def __init__(self, gen: Generator, name: str) -> None:
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None


class _Activity:
    """One in-flight Execute on a hardware thread."""

    __slots__ = (
        "loop", "remaining", "rate", "rate_throttled", "last_update",
        "start_ns", "start_tsc", "gate_wake_ns", "throttled_ns",
        "completion", "resume", "emergency_checked",
    )

    def __init__(self, loop: Loop, start_ns: float, start_tsc: int,
                 gate_wake_ns: float,
                 resume: Callable[[ExecResult], None]) -> None:
        self.loop = loop
        self.remaining = float(loop.total_instructions)
        self.rate = 0.0
        self.rate_throttled = False
        self.last_update = start_ns + gate_wake_ns
        self.start_ns = start_ns
        self.start_tsc = start_tsc
        self.gate_wake_ns = gate_wake_ns
        self.throttled_ns = 0.0
        self.completion: Optional[EventHandle] = None
        self.resume = resume
        self.emergency_checked = False


class _HWThread:
    """One hardware thread (SMT context) of a core."""

    __slots__ = ("thread_id", "core_id", "smt_slot", "activity", "suspensions")

    def __init__(self, thread_id: int, core_id: int, smt_slot: int) -> None:
        self.thread_id = thread_id
        self.core_id = core_id
        self.smt_slot = smt_slot
        self.activity: Optional[_Activity] = None
        self.suspensions = 0

    @property
    def runnable(self) -> bool:
        """Has work and is not suspended by an interrupt/context switch."""
        return self.activity is not None and self.suspensions == 0


class System:
    """A simulated processor executing programs."""

    def __init__(self, config: ProcessorConfig,
                 options: Optional[SystemOptions] = None,
                 governor_freq_ghz: Optional[float] = None,
                 governor: Optional["Governor"] = None,
                 seed: int = 2021) -> None:
        if options is None:
            # Built per-construction (not as a signature default) so the
            # REPRO_KERNEL environment override is read at call time.
            options = SystemOptions()
        self.config = config
        self.options = options
        self.engine = Engine()
        self.rng = np.random.default_rng(seed)
        self.tsc = TimestampCounter(config.base_freq_ghz)
        #: Fault injector attached to this system, if any.  Set by
        #: :meth:`repro.faults.FaultInjector.attach`; layers below the
        #: fault subsystem (channels, schedules) consult it duck-typed.
        self.faults: Optional[object] = None
        #: Batch-kernel recorder; stays None until construction-time
        #: recording (scalar reference path) has finished.
        self._recorder: Optional[KernelBatch] = None

        if governor is not None and governor_freq_ghz is not None:
            raise ConfigError(
                "pass either governor or governor_freq_ghz, not both"
            )
        if governor is not None:
            requested = governor.requested_freq_ghz()
        elif governor_freq_ghz is not None:
            requested = governor_freq_ghz
        else:
            requested = config.base_freq_ghz
        if not config.min_freq_ghz <= requested <= config.max_turbo_ghz:
            raise ConfigError(
                f"requested frequency {requested} GHz outside "
                f"[{config.min_freq_ghz}, {config.max_turbo_ghz}]"
            )

        loadline = LoadLine(mohm_to_ohm(config.r_ll_mohm))
        self.guardband = GuardbandModel(loadline)
        self.droop = DroopModel(DroopSpec(), loadline.r_ll_ohm)
        #: (time_ns, core, load_voltage, vcc_min) of each di/dt violation;
        #: empty unless throttling is ablated (the mechanism's whole point).
        self.voltage_emergencies: List[tuple] = []
        curve = config.vf_curve()
        self.limits = LimitPolicy(curve, self.guardband, config.vcc_max, config.icc_max)
        ladder = pstate_ladder(curve, config.min_freq_ghz, config.max_turbo_ghz,
                               config.pstate_step_ghz)

        vr_spec = config.vr_spec()
        if options.ldo_rails:
            vr_spec = ldo_spec(config.vcc_max, config.icc_max,
                               vid_step_mv=config.vid_step_mv)
        v0 = vr_spec.quantize_vid(curve.vcc_for(requested))
        if options.per_core_vr or config.per_core_rails:
            rails = [
                VoltageRegulator(vr_spec, v0, name=f"vr_core{i}")
                for i in range(config.n_cores)
            ]
            rail_of_core = list(range(config.n_cores))
        else:
            rails = [VoltageRegulator(vr_spec, v0, name="vr_shared")]
            rail_of_core = [0] * config.n_cores

        self.pmu = CentralPMU(
            engine=self.engine,
            rails=rails,
            rail_of_core=rail_of_core,
            guardband=self.guardband,
            curve=curve,
            limits=self.limits,
            ladder=ladder,
            licenses=config.license_table(),
            requested_freq_ghz=requested,
            config=PMUConfig(
                pll_relock_ns=config.pll_relock_ns,
                secure_mode=options.secure_mode,
                queue_depth=options.pmu_queue_depth,
                grant_policy=options.pmu_grant_policy,
                turbo_license_limit=options.turbo_license_limit,
            ),
        )
        self.pmu.on_state_change = self._on_pmu_state_change

        gate_spec = PowerGateSpec(present=config.avx_pg_present,
                                  wake_ns=config.pg_wake_ns)
        self.local_pmus = [
            LocalPMU(
                core_id=i,
                reset_time_ns=us_to_ns(config.reset_time_us),
                avx256_gate=PowerGate(gate_spec, name=f"c{i}_avx256_pg"),
                avx512_gate=PowerGate(gate_spec, name=f"c{i}_avx512_pg"),
            )
            for i in range(config.n_cores)
        ]
        self.thermal = ThermalModel(config.thermal)
        self.cstates: Optional[CStateTracker] = (
            CStateTracker(CStateSpec(), config.n_cores)
            if config.cstates_enabled else None
        )

        self.threads = [
            _HWThread(thread_id=core * config.smt_per_core + slot,
                      core_id=core, smt_slot=slot)
            for core in range(config.n_cores)
            for slot in range(config.smt_per_core)
        ]
        #: Threads grouped by core, in thread-id order — the recompute
        #: paths walk one core's threads far too often for a filtered
        #: scan over the full list.
        self._core_threads: List[List[_HWThread]] = [
            [t for t in self.threads if t.core_id == core]
            for core in range(config.n_cores)
        ]
        self._hysteresis_checks: List[Optional[EventHandle]] = [None] * config.n_cores
        self._processes: List[_Process] = []

        # Observable traces.
        self.freq_trace: StepTrace = StepTrace("freq_ghz")
        self.cdyn_trace: StepTrace = StepTrace("cdyn_nf")
        self.throttle_traces: List[StepTrace] = [
            StepTrace(f"core{i}_throttled") for i in range(config.n_cores)
        ]
        self.activity_traces: List[StepTrace] = [
            StepTrace(f"core{i}_class") for i in range(config.n_cores)
        ]
        self.temp_trace: StepTrace = StepTrace("tj_c")
        self.freq_trace.record(0.0, self.pmu.freq_ghz)
        self._record_state()

        # Apply license/limit clamping for the initial operating point.
        self.pmu.set_requested_freq(requested)

        # Batch kernel: installed last so construction records run the
        # scalar reference path.  Eligibility is conservative — any
        # feature whose callbacks are not in the mechanical set keeps
        # the whole system scalar (docs/KERNEL.md).
        if (options.kernel == "auto" and self.cstates is None
                and governor is None):
            self._recorder = KernelBatch(self)
            self.engine.install_kernel(self._recorder)

    # -- batch kernel -----------------------------------------------------------

    @property
    def kernel_active(self) -> bool:
        """Whether the batch fast path is currently installed."""
        return self._recorder is not None

    def kernel_stats(self) -> Optional[Dict[str, int]]:
        """Batch-kernel counters, or None when running scalar."""
        return None if self._recorder is None else self._recorder.stats()

    def sync_traces(self) -> None:
        """Replay any deferred trace records (no-op on the scalar path).

        Public flush point: every trace-reading accessor calls it, and
        code that reads ``freq_trace``/``cdyn_trace``/... attributes
        directly mid-run must call it first (docs/KERNEL.md).
        """
        recorder = self._recorder
        if recorder is not None:
            recorder.flush()

    def _active_recorder(self) -> Optional[KernelBatch]:
        """The recorder to capture into, demoting to scalar on faults.

        A fault injector attaches after construction and its hooks are
        not in the mechanical set, so the first capture attempt after
        attachment flushes what is pending and uninstalls the kernel
        for good — the run continues on the scalar reference path.
        """
        recorder = self._recorder
        if recorder is None:
            return None
        if self.faults is not None:
            self._disable_kernel()
            return None
        return recorder

    def _disable_kernel(self) -> None:
        recorder = self._recorder
        if recorder is not None:
            recorder.flush()
            self._recorder = None
            self.engine.install_kernel(None)

    # -- time and measurement ---------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in ns."""
        return self.engine.now

    def rdtsc(self) -> int:
        """Read the invariant timestamp counter."""
        return self.tsc.read(self.engine.now)

    def vcc_at(self, t_ns: float, core: int = 0) -> float:
        """Rail voltage feeding ``core`` at time ``t_ns``."""
        return self.pmu.core_voltage(core, t_ns)

    def icc_at(self, t_ns: float) -> float:
        """Package supply current at ``t_ns`` (Cdyn * V * f)."""
        self.sync_traces()
        cdyn = self.cdyn_trace.value_at(t_ns, default=0.0)
        freq = self.freq_trace.value_at(t_ns, default=self.pmu.freq_ghz)
        vcc = self.vcc_at(t_ns)
        return float(cdyn) * vcc * float(freq)

    def power_at(self, t_ns: float) -> float:
        """Package power at ``t_ns``."""
        return self.icc_at(t_ns) * self.vcc_at(t_ns)

    # -- vectorizable signal exports (see repro.measure.sampler) ---------------

    def vcc_signal(self, core: int = 0) -> PiecewiseLinearSignal:
        """A vectorizable snapshot of the rail voltage feeding ``core``.

        Equivalent to ``lambda t: self.vcc_at(t, core)`` but exposes the
        rail's piecewise-linear breakpoints, so the simulated DAQ can
        evaluate a whole sample grid in one ``np.interp`` call instead
        of one history lookup per sample.  Snapshot semantics: commands
        issued after the call are not reflected.
        """
        self.sync_traces()
        times, volts = self.pmu.rail_of(core).breakpoints()
        return PiecewiseLinearSignal(times, volts, name=f"vcc_core{core}")

    def freq_signal(self) -> PiecewiseConstantSignal:
        """A vectorizable snapshot of the package frequency trace."""
        self.sync_traces()
        return self.freq_trace.signal(default=self.pmu.freq_ghz)

    def icc_signal(self) -> PiecewiseLinearSignal:
        """A vectorizable snapshot of the package supply current.

        ``icc_at`` is the product of a step trace (Cdyn), the rail
        voltage (piecewise-linear) and another step trace (frequency),
        so between any two breakpoints of the merged time grid it is
        linear in ``t``.  Step discontinuities are encoded as duplicate
        breakpoint times (left value first), which ``np.interp``
        resolves right-continuously — matching :meth:`icc_at` exactly.
        """
        self.sync_traces()
        vcc_times, vcc_volts = self.pmu.rail_of(0).breakpoints()
        cdyn = self.cdyn_trace.signal(default=0.0)
        freq = self.freq_trace.signal(default=self.pmu.freq_ghz)
        merged = np.union1d(np.union1d(vcc_times, cdyn.times_ns),
                            freq.times_ns)
        vcc_m = np.interp(merged, vcc_times, vcc_volts)
        icc_right = cdyn.sample(merged) * vcc_m * freq.sample(merged)
        icc_left = (cdyn.sample(merged, inclusive=False) * vcc_m
                    * freq.sample(merged, inclusive=False))
        times: List[float] = []
        values: List[float] = []
        for i, t in enumerate(merged):
            if i > 0 and icc_left[i] != icc_right[i]:
                times.append(float(t))
                values.append(float(icc_left[i]))
            times.append(float(t))
            values.append(float(icc_right[i]))
        return PiecewiseLinearSignal(np.asarray(times), np.asarray(values),
                                     name="icc")

    def thread_on(self, core: int, smt_slot: int = 0) -> int:
        """Thread id of SMT slot ``smt_slot`` on ``core``."""
        if not 0 <= core < self.config.n_cores:
            raise ConfigError(f"no such core: {core}")
        if not 0 <= smt_slot < self.config.smt_per_core:
            raise ConfigError(
                f"{self.config.codename} has {self.config.smt_per_core} "
                f"SMT slots per core, asked for slot {smt_slot}"
            )
        return core * self.config.smt_per_core + smt_slot

    # -- program API -----------------------------------------------------------

    def sleep(self, delay_ns: float) -> _SleepReq:
        """Request: pause the program for ``delay_ns``."""
        if delay_ns < 0:
            raise ConfigError(f"sleep must be >= 0, got {delay_ns}")
        return _SleepReq(delay_ns)

    def until(self, time_ns: float) -> _UntilReq:
        """Request: pause the program until absolute time ``time_ns``."""
        return _UntilReq(time_ns)

    def execute(self, thread_id: int, loop: Loop) -> _ExecReq:
        """Request: run ``loop`` on hardware thread ``thread_id``."""
        self._thread(thread_id)  # validate
        if loop.iclass.width_bits > self.config.max_vector_bits:
            raise ConfigError(
                f"{self.config.codename} has no {loop.iclass.width_bits}-bit "
                f"vector unit"
            )
        return _ExecReq(thread_id, loop)

    def spawn(self, gen: Generator, name: str = "program") -> _Process:
        """Start a program generator as a simulation process."""
        process = _Process(gen, name)
        self._processes.append(process)
        self.engine.schedule(0.0, self._advance, process, None)
        return process

    def run_until(self, time_ns: float) -> None:
        """Advance the simulation to ``time_ns``."""
        self.engine.run_until(time_ns)
        self.sync_traces()

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Run until every scheduled event (and program) has finished."""
        self.engine.run(max_events)
        self.sync_traces()

    def apply_governor(self, governor: Governor) -> None:
        """Apply a software frequency policy at runtime (Section 5.7).

        The governor only picks the *requested* frequency; hardware
        current management (licenses, limits, throttling) still applies
        on top and cannot be disabled from software.
        """
        requested = governor.requested_freq_ghz()
        if not self.config.min_freq_ghz <= requested <= self.config.max_turbo_ghz:
            raise ConfigError(
                f"governor requested {requested} GHz outside "
                f"[{self.config.min_freq_ghz}, {self.config.max_turbo_ghz}]"
            )
        # Governed runs take the scalar reference path from here on.
        self._disable_kernel()
        self.pmu.set_requested_freq(requested)

    # -- noise hooks ------------------------------------------------------------

    def suspend_thread(self, thread_id: int) -> None:
        """Preempt a thread (interrupt/context-switch arrival)."""
        thread = self._thread(thread_id)
        thread.suspensions += 1
        self._recompute_core(thread.core_id)

    def resume_thread(self, thread_id: int) -> None:
        """Return a preempted thread to execution."""
        thread = self._thread(thread_id)
        if thread.suspensions <= 0:
            raise SimulationError(f"thread {thread_id} resumed while not suspended")
        thread.suspensions -= 1
        self._recompute_core(thread.core_id)

    # -- workload helpers ---------------------------------------------------------

    def trace_program(self, thread_id: int, trace: PhaseTrace) -> Generator:
        """A program that plays a :class:`PhaseTrace` on a thread."""

        def run() -> Generator:
            for phase in trace:
                loop = uniform_loop(
                    phase.iclass,
                    duration_us=phase.duration_ns / 1_000.0,
                    freq_ghz=self.pmu.freq_ghz,
                )
                yield self.execute(thread_id, loop)
            return None

        return run()

    # -- internals ---------------------------------------------------------------

    def _thread(self, thread_id: int) -> _HWThread:
        if not 0 <= thread_id < len(self.threads):
            raise ConfigError(f"no such hardware thread: {thread_id}")
        return self.threads[thread_id]

    def _advance(self, process: _Process, send_value: Any) -> None:
        if process.done:
            raise SimulationError(f"process {process.name} resumed after finish")
        try:
            request = process.gen.send(send_value)
        except StopIteration as stop:
            process.done = True
            process.result = stop.value
            return
        if isinstance(request, _SleepReq):
            self.engine.schedule(request.delay_ns, self._advance, process, None)
        elif isinstance(request, _UntilReq):
            delay = max(0.0, request.time_ns - self.engine.now)
            self.engine.schedule(delay, self._advance, process, None)
        elif isinstance(request, _ExecReq):
            self._start_execute(
                request.thread_id, request.loop,
                lambda result: self._advance(process, result),
            )
        else:
            raise SimulationError(
                f"process {process.name} yielded unknown request {request!r}"
            )

    def _start_execute(self, thread_id: int, loop: Loop,
                       resume: Callable[[ExecResult], None]) -> None:
        thread = self._thread(thread_id)
        if thread.activity is not None:
            raise SimulationError(
                f"thread {thread_id} already has an execute in flight"
            )
        now = self.engine.now
        core = thread.core_id
        local = self.local_pmus[core]
        wake = 0.0
        if self.cstates is not None:
            # Waking a clock/power-gated core pays the C-state exit
            # latency before anything else runs.
            wake += self.cstates.wake_latency_ns(core, now)
            self.cstates.note_busy(core)
        wake += local.gate_wake_latency(loop.iclass, now + wake)
        local.note_execute(loop.iclass, now)
        thread.activity = _Activity(loop, now, self.rdtsc(), wake, resume)
        self.pmu.set_core_active(core, True)
        self.pmu.request_up(core, loop.iclass)
        self._schedule_hysteresis_check(core)
        self._recompute_core(core)

    def _finish_execute(self, thread: _HWThread) -> None:
        activity = thread.activity
        assert activity is not None
        now = self.engine.now
        result = ExecResult(
            start_ns=activity.start_ns,
            end_ns=now,
            start_tsc=activity.start_tsc,
            end_tsc=self.rdtsc(),
            instructions=activity.loop.total_instructions,
            iterations=activity.loop.iterations,
            throttled_ns=activity.throttled_ns,
            gate_wake_ns=activity.gate_wake_ns,
        )
        self.local_pmus[thread.core_id].note_execute(activity.loop.iclass, now)
        thread.activity = None
        core_busy = any(
            t.activity is not None for t in self._core_threads[thread.core_id]
        )
        if self.cstates is not None and not core_busy:
            self.cstates.note_idle(thread.core_id, now)
        self.pmu.set_core_active(thread.core_id, core_busy)
        self._recompute_core(thread.core_id)
        # The resumed program may observe traces immediately (rdtsc
        # deltas, icc reads); hand it the fully replayed state.
        self.sync_traces()
        activity.resume(result)

    def _thread_throttled(self, thread: _HWThread) -> bool:
        if self.options.disable_throttling:
            return False
        if not self.pmu.is_core_throttled(thread.core_id):
            return False
        if not self.options.improved_throttling:
            return True
        activity = thread.activity
        return activity is not None and activity.loop.iclass.is_phi

    def _rate_of(self, thread: _HWThread, runnable_siblings: int) -> float:
        activity = thread.activity
        if activity is None or thread.suspensions > 0:
            return 0.0
        freq = self.pmu.freq_ghz
        rate = IPC[activity.loop.iclass] * freq / max(1, runnable_siblings)
        if self._thread_throttled(thread):
            rate /= THROTTLE_FACTOR
        return rate

    def _recompute_core(self, core: int, _record: bool = True) -> None:
        now = self.engine.now
        members = self._core_threads[core]
        runnable = sum(1 for t in members if t.runnable)
        for thread in members:
            activity = thread.activity
            if activity is None:
                continue
            self._update_progress(thread, now)
            activity.rate = self._rate_of(thread, runnable)
            activity.rate_throttled = self._thread_throttled(thread)
            self._check_voltage_emergency(thread)
            self._reschedule_completion(thread)
        if not _record:
            return
        recorder = self._active_recorder()
        if recorder is None:
            self._record_state()
        else:
            recorder.capture_state(1)

    def _recompute_all(self) -> None:
        recorder = self._active_recorder()
        if recorder is None:
            for core in range(self.config.n_cores):
                self._recompute_core(core)
            return
        # The per-core inner recomputes leave every recorded observable
        # (Cdyn, throttle, activity class, frequency, rail voltage)
        # untouched, so the scalar path's n_cores interleaved records
        # are exact duplicates — captured once with the repeat count so
        # the thermal replay preserves the scalar float trajectory.
        for core in range(self.config.n_cores):
            self._recompute_core(core, _record=False)
        recorder.capture_state(self.config.n_cores)

    def _on_pmu_state_change(self) -> None:
        recorder = self._active_recorder()
        if recorder is None:
            self.freq_trace.record(self.engine.now, self.pmu.freq_ghz)
        else:
            recorder.defer_freq(self.engine.now, self.pmu.freq_ghz)
        self._recompute_all()

    def _update_progress(self, thread: _HWThread, now: float) -> None:
        activity = thread.activity
        assert activity is not None
        elapsed = now - activity.last_update
        if elapsed <= 0:
            return
        done = activity.rate * elapsed
        activity.remaining = max(0.0, activity.remaining - done)
        if activity.rate_throttled and activity.rate > 0:
            activity.throttled_ns += elapsed
        activity.last_update = now
        self.local_pmus[thread.core_id].touch_gates(activity.loop.iclass, now)
        self.local_pmus[thread.core_id].note_execute(activity.loop.iclass, now)

    def _reschedule_completion(self, thread: _HWThread) -> None:
        activity = thread.activity
        assert activity is not None
        if activity.completion is not None:
            activity.completion.cancel()
            activity.completion = None
        if activity.remaining <= 1e-9:
            self.engine.schedule(0.0, self._complete, thread, activity)
            return
        if activity.rate <= 0.0:
            return  # resumes when a recompute raises the rate
        eta = activity.last_update + activity.remaining / activity.rate
        delay = max(0.0, eta - self.engine.now)
        activity.completion = self.engine.schedule(delay, self._complete,
                                                   thread, activity)

    def _complete(self, thread: _HWThread, activity: _Activity) -> None:
        if thread.activity is not activity:
            return  # stale completion after the activity already finished
        self._update_progress(thread, self.engine.now)
        if activity.remaining > 1e-6:
            self._reschedule_completion(thread)
            return
        self._finish_execute(thread)

    def _check_voltage_emergency(self, thread: _HWThread) -> None:
        """Record a di/dt violation when a PHI outruns its guardband.

        A thread executing above the core's granted level steps the load
        current by the class's Cdyn delta; throttling quarters that step
        while the rail catches up, which is exactly what keeps the load
        above Vcc_min.  With throttling ablated the full step hits an
        unprepared rail and the droop model flags the emergency the real
        mechanism prevents (Key Conclusion 1).
        """
        activity = thread.activity
        if activity is None or activity.emergency_checked:
            return
        if thread.suspensions > 0 or activity.rate <= 0.0:
            return
        core = thread.core_id
        iclass = activity.loop.iclass
        granted = self.pmu.granted[core]
        if iclass <= granted:
            return
        activity.emergency_checked = True
        now = self.engine.now
        freq = self.pmu.freq_ghz
        vcc_rail = self.pmu.core_voltage(core, now)
        cdyn_step = iclass.cdyn_nf - granted.cdyn_nf
        factor = 0.25 if activity.rate_throttled else 1.0
        icc_before = granted.cdyn_nf * vcc_rail * freq
        icc_after = icc_before + cdyn_step * vcc_rail * freq * factor
        vcc_min = self.pmu.curve.vcc_for(freq) - self.config.droop_margin_mv / 1000.0
        load_min = self.droop.load_voltage_min(vcc_rail, icc_before, icc_after)
        if load_min < vcc_min:
            self.voltage_emergencies.append((now, core, load_min, vcc_min))

    # -- hysteresis -------------------------------------------------------------------

    def _core_requirement(self, core: int, now: float) -> IClass:
        requirement = self.local_pmus[core].requirement(now)
        for thread in self._core_threads[core]:
            if thread.activity is not None:
                running = thread.activity.loop.iclass
                if running > requirement:
                    requirement = running
        return requirement

    def _schedule_hysteresis_check(self, core: int) -> None:
        pending = self._hysteresis_checks[core]
        if pending is not None:
            pending.cancel()
        expiry = self.local_pmus[core].next_expiry_ns(self.engine.now)
        if expiry is None:
            self._hysteresis_checks[core] = None
            return
        delay = max(0.0, expiry - self.engine.now) + 1.0
        self._hysteresis_checks[core] = self.engine.schedule(
            delay, self._hysteresis_check, core,
        )

    def _hysteresis_check(self, core: int) -> None:
        self._hysteresis_checks[core] = None
        now = self.engine.now
        # A still-running loop keeps its class fresh even with no events.
        for thread in self._core_threads[core]:
            if thread.activity is not None:
                self.local_pmus[core].note_execute(
                    thread.activity.loop.iclass, now,
                )
        requirement = self._core_requirement(core, now)
        if requirement < self.pmu.granted[core]:
            self.pmu.request_down(core, requirement)
        self._schedule_hysteresis_check(core)

    # -- tracing --------------------------------------------------------------------------

    def _core_cdyn(self, core: int) -> float:
        classes = [
            t.activity.loop.iclass
            for t in self._core_threads[core]
            if t.runnable and t.activity is not None
        ]
        if not classes:
            if self.cstates is not None:
                return self.cstates.idle_cdyn_nf(core, self.engine.now)
            return IDLE_CDYN_NF
        return max(CDYN_NF[c] for c in classes)

    def _record_state(self) -> None:
        now = self.engine.now
        total_cdyn = sum(self._core_cdyn(core) for core in range(self.config.n_cores))
        self.cdyn_trace.record(now, total_cdyn)
        self.freq_trace.record(now, self.pmu.freq_ghz)
        for core in range(self.config.n_cores):
            self.throttle_traces[core].record(
                now, 1 if self.pmu.is_core_throttled(core) else 0,
            )
            classes = [
                t.activity.loop.iclass
                for t in self._core_threads[core]
                if t.activity is not None
            ]
            top = max(classes) if classes else None
            self.activity_traces[core].record(
                now, LABEL[top] if top is not None else "idle",
            )
        vcc = self.vcc_at(now)
        freq = self.pmu.freq_ghz
        power = total_cdyn * vcc * vcc * freq
        self.temp_trace.record(now, self.thermal.advance(now, power))
