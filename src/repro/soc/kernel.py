"""Batch fast-path for the event engine (``repro.soc.kernel``).

The scalar engine records every observable trace point inline, inside
:meth:`repro.soc.system.System._record_state`: each recompute walks the
cores, re-derives Cdyn/throttle/activity values per core *per record*,
reads the rail history and steps the thermal model.  For current-
management workloads — where every voltage settle, hysteresis expiry and
completion triggers a full recompute — that recording dominates the run
time even though nothing program-visible happens between yield points.

This module implements the batch kernel described in the simulator docs
(:doc:`docs/KERNEL.md`): between *program-visible* events the system
defers trace recording into a pending capture list, and replays it in
one flush when anything that could observe the traces is about to run.
The segmentation is event-driven rather than time-driven:

* the engine calls :meth:`KernelBatch.before_event` ahead of every
  dispatched callback; callbacks in the *mechanical* set (voltage
  settles, frequency-change completions, rail retarget settles, loop
  completions, hysteresis checks) provably never read the deferred
  traces, so captures keep accumulating across them;
* any other callback — a program resuming via ``System._advance``, a
  noise process, an externally scheduled hook — forces a flush first,
  so user code always observes exactly the trace state the scalar
  engine would have produced.

Bit-identity contract (enforced by ``repro.verify`` and the
differential harness in :mod:`repro.verify.differential`):

* captured values are computed at capture time from the same state the
  scalar ``_record_state`` would have read, with the same expressions;
* the rail voltage is evaluated lazily at flush time — sound because
  :class:`~repro.pdn.regulator.VoltageRegulator` history is append-only
  and a segment boundary voltage equals the value the pre-command
  history gives at that instant, so ``voltage_at(t)`` for any past ``t``
  is invariant under later commands;
* large flushes use the vectorized ``voltages_at``, which applies the
  scalar clamped-fraction formula elementwise in float64 (IEEE-754
  lanes agree with scalar arithmetic bit for bit);
* ``StepTrace.record`` is idempotent for repeated identical
  ``(time, value)`` calls (same-time records overwrite), so the
  ``n_cores`` identical records the scalar ``_recompute_all`` issues
  collapse into one replayed record per trace — except the thermal
  chain, where each zero-dt ``ThermalModel.advance`` perturbs the
  temperature state at ULP level and is therefore replayed once per
  repeat, preserving the scalar float trajectory exactly.

The kernel never changes *simulation* state evolution — activities,
PMU requests, rail commands and local-PMU hysteresis all advance
identically; only the recording of observables is deferred.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.isa.instructions import LABEL

#: Flushes with at least this many state captures evaluate the rail
#: with one vectorized ``voltages_at`` call; smaller batches use the
#: scalar bisect per capture (identical values either way).
VECTOR_THRESHOLD = 32


def _mechanical_callbacks(system: Any) -> FrozenSet[Callable[..., Any]]:
    """The closed set of callbacks that never observe deferred traces.

    Imported lazily to avoid a cycle with :mod:`repro.soc.system`
    (which imports this module at top level).  Membership is tested
    against the *underlying function* of the scheduled bound method, so
    a subclass override of any of these drops out of the set and takes
    the flush-first path — conservative by construction.
    """
    from repro.pmu.central import CentralPMU
    from repro.soc.system import System

    return frozenset({
        CentralPMU._on_settle,
        CentralPMU._finish_freq_change,
        CentralPMU._on_retarget_settle,
        System._complete,
        System._hysteresis_check,
    })


class KernelBatch:
    """Deferred-trace recorder driven by the engine's dispatch hook.

    One instance is installed per kernel-eligible
    :class:`~repro.soc.system.System` (``SystemOptions.kernel ==
    "auto"``, no C-states, no governor, no fault injector).  The system
    routes its recording through :meth:`capture_state` /
    :meth:`defer_freq` instead of writing traces inline; the engine
    calls :meth:`before_event` ahead of every dispatch.
    """

    __slots__ = ("system", "_mechanical", "_pending",
                 "captures", "flushes", "vector_flushes",
                 "mechanical_events", "barrier_events", "max_batch")

    def __init__(self, system: Any) -> None:
        self.system = system
        self._mechanical = _mechanical_callbacks(system)
        #: Chronological deferred records.  Two shapes:
        #: ``("freq", t, freq)`` for the direct frequency record issued
        #: by ``_on_pmu_state_change`` ahead of its recompute, and
        #: ``("state", t, total_cdyn, freq, throttles, labels, repeats)``
        #: for one full ``_record_state`` worth of observables,
        #: collapsed across ``repeats`` identical scalar records.
        self._pending: List[Tuple[Any, ...]] = []
        self.captures = 0
        self.flushes = 0
        self.vector_flushes = 0
        self.mechanical_events = 0
        self.barrier_events = 0
        self.max_batch = 0

    # -- engine hook -------------------------------------------------------

    def before_event(self, callback: Callable[..., Any]) -> None:
        """Flush ahead of any callback outside the mechanical set."""
        if getattr(callback, "__func__", callback) in self._mechanical:
            self.mechanical_events += 1
            return
        self.barrier_events += 1
        if self._pending:
            self.flush()

    # -- capture -----------------------------------------------------------

    def defer_freq(self, t_ns: float, freq_ghz: float) -> None:
        """Defer a direct frequency-trace record (PMU state change)."""
        self._pending.append(("freq", t_ns, freq_ghz))

    def capture_state(self, repeats: int) -> None:
        """Capture one ``_record_state`` worth of observables.

        ``repeats`` is the number of identical back-to-back records the
        scalar path would have issued (``n_cores`` for a full
        ``_recompute_all``, 1 for a standalone core recompute); it only
        affects the thermal replay, where zero-dt advances are not
        float no-ops.
        """
        system = self.system
        now = system.engine.now
        pmu = system.pmu
        n_cores = system.config.n_cores
        core_cdyn = system._core_cdyn
        total_cdyn = sum(core_cdyn(core) for core in range(n_cores))
        is_throttled = pmu.is_core_throttled
        throttles = tuple(
            1 if is_throttled(core) else 0 for core in range(n_cores)
        )
        labels: List[str] = []
        for threads in system._core_threads:
            top = None
            for thread in threads:
                activity = thread.activity
                if activity is not None:
                    iclass = activity.loop.iclass
                    if top is None or iclass > top:
                        top = iclass
            labels.append(LABEL[top] if top is not None else "idle")
        self._pending.append(("state", now, total_cdyn, pmu.freq_ghz,
                              throttles, tuple(labels), repeats))
        self.captures += 1

    @property
    def pending_captures(self) -> int:
        """Deferred records not yet replayed (test/introspection hook)."""
        return len(self._pending)

    # -- replay ------------------------------------------------------------

    def flush(self) -> None:
        """Replay every pending capture into the system's traces.

        Replays in capture order, so each individual trace sees its
        records chronologically.  The rail voltage for each state
        capture is evaluated here — past-time lookups are invariant
        under the commands issued since capture (append-only history).
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        self.flushes += 1
        if len(pending) > self.max_batch:
            self.max_batch = len(pending)

        system = self.system
        rail = system.pmu.rail_of(0)
        state_times = [entry[1] for entry in pending if entry[0] == "state"]
        if len(state_times) >= VECTOR_THRESHOLD:
            self.vector_flushes += 1
            vccs = [float(v) for v in
                    rail.voltages_at(np.asarray(state_times, dtype=float))]
        else:
            voltage_at = rail.voltage_at
            vccs = [voltage_at(t) for t in state_times]

        cdyn_record = system.cdyn_trace.record
        freq_record = system.freq_trace.record
        throttle_records = [trace.record for trace in system.throttle_traces]
        activity_records = [trace.record for trace in system.activity_traces]
        temp_record = system.temp_trace.record
        advance = system.thermal.advance
        n_cores = system.config.n_cores
        vcc_index = 0
        for entry in pending:
            if entry[0] == "freq":
                freq_record(entry[1], entry[2])
                continue
            _, now, total_cdyn, freq, throttles, labels, repeats = entry
            vcc = vccs[vcc_index]
            vcc_index += 1
            cdyn_record(now, total_cdyn)
            freq_record(now, freq)
            for core in range(n_cores):
                throttle_records[core](now, throttles[core])
                activity_records[core](now, labels[core])
            power = total_cdyn * vcc * vcc * freq
            for _ in range(repeats):
                temp_record(now, advance(now, power))

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters for benchmarks and the differential report."""
        return {
            "captures": self.captures,
            "flushes": self.flushes,
            "vector_flushes": self.vector_flushes,
            "mechanical_events": self.mechanical_events,
            "barrier_events": self.barrier_events,
            "max_batch": self.max_batch,
            "pending": len(self._pending),
        }
