"""Static feasibility analysis: which channels does a part support?

Given only a :class:`~repro.soc.config.ProcessorConfig`, predict — from
the electrical model, before simulating anything — whether each
IChannels variant can work and why.  The prediction logic mirrors what
the paper's characterisation establishes empirically:

* a channel needs the four sender levels to land on *distinct* rail
  targets after VID quantisation, with TP gaps a TSC can resolve;
* IccSMTcovert additionally needs SMT;
* IccCoresCovert additionally needs at least two cores on a *shared*
  rail (per-core regulators kill it);
* everything needs a slew rate slow enough that level gaps exceed the
  reliable-decoding threshold.

The simulation-backed tests cross-check these predictions against real
channel runs on every preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.levels import ChannelLocation, narrow_symbol_classes
from repro.pdn.guardband import GuardbandModel
from repro.pdn.loadline import LoadLine
from repro.soc.config import ProcessorConfig
from repro.units import mohm_to_ohm


@dataclass(frozen=True)
class ChannelFeasibility:
    """Verdict for one channel variant on one part."""

    location: ChannelLocation
    feasible: bool
    min_level_gap_tsc: float
    reasons: "tuple[str, ...]"


@dataclass(frozen=True)
class FeasibilityReport:
    """Per-channel verdicts plus the underlying level geometry."""

    config_name: str
    level_tp_us: Dict[str, float]
    channels: List[ChannelFeasibility]

    def verdict(self, location: ChannelLocation) -> ChannelFeasibility:
        """The verdict for one placement."""
        for channel in self.channels:
            if channel.location == location:
                return channel
        raise KeyError(location)

    def any_feasible(self) -> bool:
        """Whether the part is vulnerable to at least one channel."""
        return any(channel.feasible for channel in self.channels)


def _quantize(vcc: float, step_mv: float) -> float:
    step = step_mv / 1000.0
    import math

    return math.ceil(vcc / step - 1e-9) * step


def analyze(config: ProcessorConfig, freq_ghz: float = None,
            usable_gap_tsc: float = 2000.0) -> FeasibilityReport:
    """Predict channel feasibility for ``config`` at ``freq_ghz``.

    ``usable_gap_tsc`` is the minimum TSC-cycle separation between
    adjacent level TPs that threshold decoding can survive in practice
    (the paper measures >2 K-cycle gaps on working configurations).
    """
    freq = freq_ghz if freq_ghz is not None else config.base_freq_ghz
    curve = config.vf_curve()
    baseline = curve.vcc_for(freq)
    guardband = GuardbandModel(LoadLine(mohm_to_ohm(config.r_ll_mohm)))
    spec = config.vr_spec()
    tsc_ghz = config.base_freq_ghz

    # Rail target per sender level, quantised the way the PMU commands it.
    ladder = narrow_symbol_classes(config.max_vector_bits)
    rail_base = _quantize(baseline, config.vid_step_mv)
    targets = {
        symbol: _quantize(
            baseline + guardband.delta_v(iclass, baseline, freq),
            config.vid_step_mv)
        for symbol, iclass in ladder.items()
    }
    # TP per level: command latency + ramp from the baseline rail.
    tp_ns = {
        symbol: spec.command_latency_ns
        + abs(target - rail_base) * 1000.0 / spec.slew_mv_per_us * 1000.0
        for symbol, target in targets.items()
    }
    level_tp_us = {
        ladder[symbol].label: tp / 1000.0 for symbol, tp in tp_ns.items()
    }
    ordered = sorted(tp_ns.values())
    gaps_tsc = [
        (b - a) * tsc_ghz for a, b in zip(ordered, ordered[1:])
    ]
    min_gap = min(gaps_tsc) if gaps_tsc else 0.0

    def base_reasons() -> List[str]:
        reasons = []
        if min_gap < usable_gap_tsc:
            reasons.append(
                f"adjacent level TPs only {min_gap:.0f} TSC cycles apart "
                f"(< {usable_gap_tsc:.0f}): VID quantisation or the "
                f"{spec.slew_mv_per_us:g} mV/us slew collapses the ladder"
            )
        return reasons

    channels: List[ChannelFeasibility] = []

    thread_reasons = base_reasons()
    channels.append(ChannelFeasibility(
        ChannelLocation.SAME_THREAD,
        feasible=not thread_reasons,
        min_level_gap_tsc=min_gap,
        reasons=tuple(thread_reasons),
    ))

    smt_reasons = base_reasons()
    if not config.supports_smt:
        smt_reasons.append("no SMT: there is no co-located sibling thread")
    channels.append(ChannelFeasibility(
        ChannelLocation.ACROSS_SMT,
        feasible=not smt_reasons,
        min_level_gap_tsc=min_gap,
        reasons=tuple(smt_reasons),
    ))

    cores_reasons = base_reasons()
    if config.n_cores < 2:
        cores_reasons.append("single core: nothing to cross")
    if config.per_core_rails:
        cores_reasons.append(
            "per-core regulators: transitions never serialise across cores"
        )
    channels.append(ChannelFeasibility(
        ChannelLocation.ACROSS_CORES,
        feasible=not cores_reasons,
        min_level_gap_tsc=min_gap,
        reasons=tuple(cores_reasons),
    ))

    return FeasibilityReport(
        config_name=f"{config.codename} ({config.name})",
        level_tp_us=level_tp_us,
        channels=channels,
    )
