"""System noise: interrupts, context switches, concurrent applications.

Section 6.3 of the paper analyses two noise sources:

* **Interrupts and context switches** preempt the receiver while it is
  timing its decode loop, stretching the measured interval by a few
  microseconds (interrupts) to tens of microseconds (context switches).
  We model each as a Poisson arrival process per hardware thread that
  suspends the thread for a lognormally-jittered service time.
* **Concurrent applications executing PHIs** perturb the shared rail.
  Because the voltage request of a *noisier* (higher-level) PHI can
  outrank the covert channel's own PHI, decode errors appear when the
  noise app's rate rises (Figure 14b/c).  The noise app here is a real
  simulated program — its PHIs go through the same PMU path as the
  channel's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.isa.instructions import IClass
from repro.isa.workload import PhaseTrace, random_phi_schedule
from repro.soc.system import System
from repro.units import us_to_ns


@dataclass(frozen=True)
class NoiseConfig:
    """Arrival rates and service times of OS noise on one thread.

    Defaults follow the paper's citations: interrupt service within a
    few microseconds, context switches within tens of microseconds, at
    hundreds (noisy) to thousands (highly noisy) of events per second.
    """

    interrupt_rate_per_s: float = 500.0
    interrupt_mean_us: float = 3.0
    ctx_switch_rate_per_s: float = 100.0
    ctx_switch_mean_us: float = 25.0

    def __post_init__(self) -> None:
        if self.interrupt_rate_per_s < 0 or self.ctx_switch_rate_per_s < 0:
            raise ConfigError("noise rates must be >= 0")
        if self.interrupt_mean_us <= 0 or self.ctx_switch_mean_us <= 0:
            raise ConfigError("noise service times must be positive")

    @property
    def total_event_rate_per_s(self) -> float:
        """Combined interrupt + context-switch rate."""
        return self.interrupt_rate_per_s + self.ctx_switch_rate_per_s


def _preemption_process(system: System, thread_id: int, rate_per_s: float,
                        mean_us: float, rng: np.random.Generator,
                        horizon_ns: float) -> Generator:
    """A program that repeatedly suspends ``thread_id`` at Poisson times."""
    if rate_per_s <= 0:
        return
        yield  # pragma: no cover - makes this a generator
    mean_gap_ns = 1e9 / rate_per_s
    while system.now < horizon_ns:
        gap = float(rng.exponential(mean_gap_ns))
        yield system.sleep(gap)
        if system.now >= horizon_ns:
            break
        # Lognormal jitter around the mean service time: occasional long
        # handlers, never negative.
        service_us = float(rng.lognormal(np.log(mean_us), 0.35))
        system.suspend_thread(thread_id)
        yield system.sleep(us_to_ns(service_us))
        system.resume_thread(thread_id)


def attach_system_noise(system: System, thread_ids: Sequence[int],
                        config: NoiseConfig, horizon_ns: float,
                        seed: int = 1) -> None:
    """Attach interrupt + context-switch noise to the given threads."""
    if horizon_ns <= 0:
        raise ConfigError(f"horizon must be positive, got {horizon_ns}")
    for i, thread_id in enumerate(thread_ids):
        irq_rng = np.random.default_rng((seed, thread_id, 0))
        ctx_rng = np.random.default_rng((seed, thread_id, 1))
        system.spawn(
            _preemption_process(system, thread_id, config.interrupt_rate_per_s,
                                config.interrupt_mean_us, irq_rng, horizon_ns),
            name=f"irq_noise_t{thread_id}",
        )
        system.spawn(
            _preemption_process(system, thread_id, config.ctx_switch_rate_per_s,
                                config.ctx_switch_mean_us, ctx_rng, horizon_ns),
            name=f"ctx_noise_t{thread_id}",
        )


def attach_concurrent_app(system: System, thread_id: int,
                          phi_rate_per_s: float, duration_ms: float,
                          classes: Optional[Sequence[IClass]] = None,
                          seed: int = 14) -> None:
    """Run a synthetic PHI-injecting application on ``thread_id``.

    Models the 'App' of Section 6.3/Figure 14c: mostly scalar code with
    Poisson PHI bursts at a random level among the four channel levels,
    at ``phi_rate_per_s`` bursts per second.
    """
    usable: List[IClass] = list(classes) if classes is not None else [
        IClass.HEAVY_128, IClass.LIGHT_256, IClass.HEAVY_256, IClass.HEAVY_512,
    ]
    usable = [c for c in usable if c.width_bits <= system.config.max_vector_bits]
    if not usable:
        raise ConfigError("no PHI class fits this processor's vector width")
    trace = random_phi_schedule(duration_ms, phi_rate_per_s,
                                classes=usable, seed=seed)
    system.spawn(system.trace_program(thread_id, trace),
                 name=f"app_phi_t{thread_id}")


def attach_trace(system: System, thread_id: int, trace: PhaseTrace) -> None:
    """Play an arbitrary phase trace on a thread (workload noise)."""
    system.spawn(system.trace_program(thread_id, trace),
                 name=f"trace_{trace.name}_t{thread_id}")
