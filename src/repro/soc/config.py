"""Processor presets for the three parts the paper characterises.

Electrical parameters are calibrated against the paper's reported
measurements:

* load-line 1.8 mOhm (1.7 on Haswell's FIVR) puts the per-core AVX2
  guardband step at ~8-9 mV at 2 GHz / 0.79 V (Figure 6a);
* MBVR slew of 1.25 mV/us (the SVID slow-slew bin) plus ~1.5 us command
  latency yields 12-15 us AVX2 throttling periods at 3 GHz on Coffee
  Lake / Cannon Lake, while Haswell's faster FIVR lands near 9 us
  (Figure 8a);
* Coffee Lake: Vcc_max = 1.27 V, Icc_max = 100 A — AVX2 at 4.9 GHz
  violates the voltage limit but 4.8 GHz does not (Figure 7a);
* Cannon Lake: Vcc_max = 1.15 V, Icc_max = 29 A — two cores of AVX2 at
  3.1 GHz violate the current limit but 2.2 GHz does not (Figure 7a);
* VID quantisation of 2.5 mV keeps the four sender levels on distinct
  rail targets (the paper's Figure 13 shows >2 K-cycle separations).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Tuple

from repro.errors import ConfigError
from repro.pdn.regulator import VRKind, VRSpec
from repro.pmu.dvfs import VFCurve
from repro.pmu.thermal import ThermalSpec
from repro.pmu.turbo import TurboLicense, TurboLicenseTable


@dataclass(frozen=True)
class ProcessorConfig:
    """Static description of one simulated processor."""

    name: str
    codename: str
    n_cores: int
    smt_per_core: int
    min_freq_ghz: float
    base_freq_ghz: float
    max_turbo_ghz: float
    vf_points: Tuple[Tuple[float, float], ...]
    r_ll_mohm: float
    vr_kind: VRKind
    vr_slew_mv_per_us: float
    vr_command_latency_ns: float
    vid_step_mv: float
    vcc_max: float
    icc_max: float
    avx_pg_present: bool
    pg_wake_ns: float
    max_vector_bits: int
    reset_time_us: float
    pll_relock_ns: float
    turbo_ceilings: Dict[TurboLicense, Tuple[float, ...]]
    thermal: ThermalSpec
    pstate_step_ghz: float = 0.1
    #: Margin below the V/F-curve baseline that defines Vcc_min at the
    #: current frequency; di/dt dips beyond it are voltage emergencies.
    droop_margin_mv: float = 25.0
    #: Model core idle states (C1/C6) with their wake latencies; off by
    #: default because the paper's experiments run busy loops throughout.
    cstates_enabled: bool = False
    #: Parts whose PDN natively gives every core its own regulator
    #: (AMD Zen's LDOs, POWER8's microregulators).  The paper confirms
    #: that naively porting IChannels to such parts fails (Section 7).
    per_core_rails: bool = False

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.smt_per_core not in (1, 2):
            raise ConfigError(f"smt_per_core must be 1 or 2, got {self.smt_per_core}")
        if not self.min_freq_ghz <= self.base_freq_ghz <= self.max_turbo_ghz:
            raise ConfigError(
                f"frequency ladder disordered: {self.min_freq_ghz} <= "
                f"{self.base_freq_ghz} <= {self.max_turbo_ghz} violated"
            )
        if self.max_vector_bits not in (256, 512):
            raise ConfigError(
                f"max_vector_bits must be 256 or 512, got {self.max_vector_bits}"
            )

    @property
    def n_threads(self) -> int:
        """Total hardware threads in the package."""
        return self.n_cores * self.smt_per_core

    @property
    def supports_smt(self) -> bool:
        """Whether the part has two hardware threads per core."""
        return self.smt_per_core > 1

    def vf_curve(self) -> VFCurve:
        """The part's V/F curve.

        Curves are interned per point set: :class:`VFCurve` is immutable,
        so every system built from the same preset shares one instance —
        and with it the curve's ``vcc_for`` memo table, which a figure
        sweep constructing dozens of systems would otherwise re-fill.
        """
        return _interned_curve(self.vf_points)

    def vr_spec(self) -> VRSpec:
        """The part's voltage-regulator electrical spec."""
        return VRSpec(
            kind=self.vr_kind,
            slew_mv_per_us=self.vr_slew_mv_per_us,
            command_latency_ns=self.vr_command_latency_ns,
            vid_step_mv=self.vid_step_mv,
            vcc_max=self.vcc_max,
            icc_max=self.icc_max,
        )

    def license_table(self) -> TurboLicenseTable:
        """The part's turbo-license frequency ceilings.

        Tables are interned per ceiling set (same rationale as
        :meth:`vf_curve`): nothing mutates a constructed table, so
        sharing one instance across systems also shares its
        ``package_ceiling`` memo.
        """
        key = tuple(sorted(
            (level.value, row) for level, row in self.turbo_ceilings.items()
        ))
        return _interned_license_table(key)

    def with_overrides(self, **kwargs) -> "ProcessorConfig":
        """A copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


@functools.lru_cache(maxsize=None)
def _interned_curve(vf_points: Tuple[Tuple[float, float], ...]) -> VFCurve:
    return VFCurve(vf_points)


@functools.lru_cache(maxsize=None)
def _interned_license_table(
        key: Tuple[Tuple[int, Tuple[float, ...]], ...]) -> TurboLicenseTable:
    return TurboLicenseTable(
        {TurboLicense(value): row for value, row in key}
    )


def haswell_i7_4770k() -> ProcessorConfig:
    """Intel Haswell Core i7-4770K: 4 cores, SMT, FIVR power delivery."""
    return ProcessorConfig(
        name="Core i7-4770K",
        codename="Haswell",
        n_cores=4,
        smt_per_core=2,
        min_freq_ghz=0.8,
        base_freq_ghz=3.5,
        max_turbo_ghz=3.9,
        vf_points=((0.8, 0.62), (2.0, 0.80), (3.5, 1.03), (3.9, 1.12)),
        r_ll_mohm=1.7,
        vr_kind=VRKind.FIVR,
        vr_slew_mv_per_us=1.8,
        vr_command_latency_ns=300.0,
        vid_step_mv=2.5,
        vcc_max=1.30,
        icc_max=112.0,
        avx_pg_present=False,  # AVX power gating arrived with Skylake
        pg_wake_ns=0.0,
        max_vector_bits=256,
        reset_time_us=650.0,
        pll_relock_ns=1_500.0,
        turbo_ceilings={
            TurboLicense.LVL0: (3.9, 3.9, 3.8, 3.7),
            TurboLicense.LVL1: (3.7, 3.6, 3.5, 3.5),
            TurboLicense.LVL2: (3.7, 3.6, 3.5, 3.5),
        },
        thermal=ThermalSpec(r_th_c_per_w=0.6, tau_s=4.0, t_ambient_c=45.0),
    )


def coffee_lake_i7_9700k() -> ProcessorConfig:
    """Intel Coffee Lake Core i7-9700K: 8 cores, no SMT, MBVR."""
    return ProcessorConfig(
        name="Core i7-9700K",
        codename="Coffee Lake",
        n_cores=8,
        smt_per_core=1,
        min_freq_ghz=0.8,
        base_freq_ghz=3.6,
        max_turbo_ghz=4.9,
        # Through the paper's observed 788 mV at 2 GHz; 4.8 GHz + AVX2
        # guardband fits under 1.27 V, 4.9 GHz + AVX2 does not (Fig. 7a).
        vf_points=((0.8, 0.598), (2.0, 0.788), (4.8, 1.232), (4.9, 1.248)),
        r_ll_mohm=1.8,
        vr_kind=VRKind.MBVR,
        vr_slew_mv_per_us=1.25,
        vr_command_latency_ns=1_500.0,
        vid_step_mv=2.5,
        vcc_max=1.27,
        icc_max=100.0,
        avx_pg_present=True,
        pg_wake_ns=12.0,
        max_vector_bits=256,
        reset_time_us=650.0,
        pll_relock_ns=1_500.0,
        turbo_ceilings={
            TurboLicense.LVL0: (4.9, 4.8, 4.7, 4.7, 4.6, 4.6, 4.6, 4.6),
            TurboLicense.LVL1: (4.6, 4.5, 4.4, 4.4, 4.3, 4.3, 4.3, 4.3),
            TurboLicense.LVL2: (4.3, 4.2, 4.1, 4.1, 4.0, 4.0, 4.0, 4.0),
        },
        thermal=ThermalSpec(r_th_c_per_w=0.45, tau_s=5.0, t_ambient_c=45.0),
    )


def cannon_lake_i3_8121u() -> ProcessorConfig:
    """Intel Cannon Lake Core i3-8121U: 2 cores, SMT, MBVR, AVX-512."""
    return ProcessorConfig(
        name="Core i3-8121U",
        codename="Cannon Lake",
        n_cores=2,
        smt_per_core=2,
        min_freq_ghz=0.8,
        base_freq_ghz=2.2,
        max_turbo_ghz=3.2,
        # Two cores of AVX2-heavy at 3.1 GHz exceed Icc_max = 29 A but
        # stay within it at 2.2 GHz (Fig. 7a); voltage never nears 1.15 V.
        vf_points=((1.0, 0.640), (2.2, 0.809), (3.2, 0.950)),
        r_ll_mohm=1.8,
        vr_kind=VRKind.MBVR,
        vr_slew_mv_per_us=1.25,
        vr_command_latency_ns=1_500.0,
        vid_step_mv=2.5,
        vcc_max=1.15,
        icc_max=29.0,
        avx_pg_present=True,
        pg_wake_ns=12.0,
        max_vector_bits=512,
        reset_time_us=650.0,
        pll_relock_ns=1_500.0,
        turbo_ceilings={
            TurboLicense.LVL0: (3.2, 3.1),
            TurboLicense.LVL1: (3.0, 2.9),
            TurboLicense.LVL2: (2.8, 2.6),
        },
        thermal=ThermalSpec(r_th_c_per_w=1.2, tau_s=3.0, t_ambient_c=50.0),
    )


def sandy_bridge_i7_2600k() -> ProcessorConfig:
    """Intel Sandy Bridge Core i7-2600K: the oldest affected client part.

    Section 6.4: every Intel client processor from Sandy Bridge (2010)
    onward is affected by at least one of the three channels.  Sandy
    Bridge predates AVX power gating and AVX-512 and its AVX unit is
    256-bit light-path only, but the shared MBVR rail and guardband
    machinery are already in place.
    """
    return ProcessorConfig(
        name="Core i7-2600K",
        codename="Sandy Bridge",
        n_cores=4,
        smt_per_core=2,
        min_freq_ghz=0.8,
        base_freq_ghz=3.4,
        max_turbo_ghz=3.8,
        vf_points=((0.8, 0.66), (2.0, 0.84), (3.4, 1.08), (3.8, 1.18)),
        r_ll_mohm=2.1,
        vr_kind=VRKind.MBVR,
        vr_slew_mv_per_us=1.0,
        vr_command_latency_ns=2_000.0,
        vid_step_mv=2.5,
        vcc_max=1.35,
        icc_max=95.0,
        avx_pg_present=False,
        pg_wake_ns=0.0,
        max_vector_bits=256,
        reset_time_us=650.0,
        pll_relock_ns=2_000.0,
        turbo_ceilings={
            TurboLicense.LVL0: (3.8, 3.7, 3.6, 3.5),
            TurboLicense.LVL1: (3.6, 3.5, 3.4, 3.4),
            TurboLicense.LVL2: (3.6, 3.5, 3.4, 3.4),
        },
        thermal=ThermalSpec(r_th_c_per_w=0.55, tau_s=4.5, t_ambient_c=45.0),
    )


def skylake_sp_xeon_8160() -> ProcessorConfig:
    """Intel Skylake-SP Xeon Platinum 8160: a server-class part.

    Section 6.4 / footnote 13: the Intel core is one design for client
    and server, so server parts share the same current-management
    machinery — more cores on the same serialized rail, AVX-512 units,
    and deeper turbo-license derating.  (Real Skylake-SP feeds cores
    through per-core FIVRs behind a shared input rail; the package-level
    guardband coupling the channels need is still present, which we
    model as the shared rail.)
    """
    return ProcessorConfig(
        name="Xeon Platinum 8160",
        codename="Skylake-SP",
        n_cores=24,
        smt_per_core=2,
        min_freq_ghz=1.0,
        base_freq_ghz=2.1,
        max_turbo_ghz=3.7,
        vf_points=((1.0, 0.62), (2.1, 0.78), (3.7, 1.02)),
        r_ll_mohm=1.1,  # server VRs are beefier (lower load-line)
        vr_kind=VRKind.MBVR,
        vr_slew_mv_per_us=1.25,
        vr_command_latency_ns=1_500.0,
        vid_step_mv=2.5,
        vcc_max=1.20,
        icc_max=255.0,
        avx_pg_present=True,
        pg_wake_ns=14.0,
        max_vector_bits=512,
        reset_time_us=670.0,
        pll_relock_ns=1_500.0,
        turbo_ceilings={
            TurboLicense.LVL0: tuple([3.7, 3.6] + [3.5] * 6 + [3.0] * 16),
            TurboLicense.LVL1: tuple([3.3, 3.2] + [3.1] * 6 + [2.6] * 16),
            TurboLicense.LVL2: tuple([2.9, 2.8] + [2.7] * 6 + [2.2] * 16),
        },
        thermal=ThermalSpec(r_th_c_per_w=0.25, tau_s=8.0, t_ambient_c=50.0),
    )


def amd_zen2_like() -> ProcessorConfig:
    """An AMD-Zen-2-style part: per-core LDO regulators.

    Section 7: recent AMD processors feed each core through its own
    digital LDO.  The paper reports that naively porting IChannels to
    recent AMD parts does not work; with per-core rails there is no
    cross-core transition serialisation to exploit and the fast LDO
    ramp shrinks same-core throttling below usability — this preset
    demonstrates exactly that (``tests/test_other_processors.py``).
    """
    return ProcessorConfig(
        name="Zen2-class 8-core",
        codename="Zen2-like",
        n_cores=8,
        smt_per_core=2,
        min_freq_ghz=1.4,
        base_freq_ghz=3.6,
        max_turbo_ghz=4.4,
        vf_points=((1.4, 0.75), (3.6, 1.05), (4.4, 1.30)),
        r_ll_mohm=1.2,
        vr_kind=VRKind.LDO,
        vr_slew_mv_per_us=100.0,
        vr_command_latency_ns=50.0,
        vid_step_mv=2.5,
        vcc_max=1.40,
        icc_max=140.0,
        avx_pg_present=True,
        pg_wake_ns=10.0,
        max_vector_bits=256,
        reset_time_us=600.0,
        pll_relock_ns=1_000.0,
        turbo_ceilings={
            TurboLicense.LVL0: tuple([4.4, 4.3] + [4.2] * 6),
            TurboLicense.LVL1: tuple([4.3, 4.2] + [4.1] * 6),
            TurboLicense.LVL2: tuple([4.3, 4.2] + [4.1] * 6),
        },
        thermal=ThermalSpec(r_th_c_per_w=0.35, tau_s=6.0, t_ambient_c=45.0),
        per_core_rails=True,
    )


_PRESET_FACTORIES: Dict[str, Callable[[], ProcessorConfig]] = {
    "haswell": haswell_i7_4770k,
    "coffee_lake": coffee_lake_i7_9700k,
    "cannon_lake": cannon_lake_i3_8121u,
    "sandy_bridge": sandy_bridge_i7_2600k,
    "skylake_sp": skylake_sp_xeon_8160,
    "amd_zen2": amd_zen2_like,
}

#: Names accepted by :func:`preset`.
PRESETS: Tuple[str, ...] = tuple(_PRESET_FACTORIES)


def preset(name: str) -> ProcessorConfig:
    """Look a preset up by name (``haswell``/``coffee_lake``/``cannon_lake``)."""
    factory = _PRESET_FACTORIES.get(name.strip().lower())
    if factory is None:
        raise ConfigError(f"unknown preset {name!r}; choose from {PRESETS}")
    return factory()
