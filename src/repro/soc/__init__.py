"""SoC integration: event engine, hardware threads, system model, noise.

This package glues the substrates together into a simulated processor:
cores with SMT hardware threads execute instruction loops; the central PMU
mediates voltage/frequency transitions over the PDN; noise processes model
interrupts, context switches and concurrent applications.
"""

from repro.soc.engine import Engine, EventHandle
from repro.soc.config import (
    ProcessorConfig,
    amd_zen2_like,
    cannon_lake_i3_8121u,
    coffee_lake_i7_9700k,
    haswell_i7_4770k,
    preset,
    PRESETS,
    sandy_bridge_i7_2600k,
    skylake_sp_xeon_8160,
)
from repro.soc.feasibility import ChannelFeasibility, FeasibilityReport, analyze as analyze_feasibility
from repro.soc.system import ExecResult, System
from repro.soc.noise import NoiseConfig, attach_concurrent_app, attach_system_noise

__all__ = [
    "Engine",
    "EventHandle",
    "ProcessorConfig",
    "amd_zen2_like",
    "cannon_lake_i3_8121u",
    "coffee_lake_i7_9700k",
    "haswell_i7_4770k",
    "preset",
    "PRESETS",
    "sandy_bridge_i7_2600k",
    "skylake_sp_xeon_8160",
    "ChannelFeasibility",
    "FeasibilityReport",
    "analyze_feasibility",
    "ExecResult",
    "System",
    "NoiseConfig",
    "attach_concurrent_app",
    "attach_system_noise",
]
