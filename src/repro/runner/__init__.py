"""Experiment sweep runner: parallel execution + content-addressed cache.

Regenerating the paper's artifacts means re-running sweeps of full
covert-channel transfers (Figures 8, 10, 13, 14, Table 2) whose trials
are independent simulations.  This package is the infrastructure every
scaling study runs on:

* :class:`SweepRunner` — executes a list of (function, kwargs) tasks,
  serially or on a process pool (``jobs``), returning results in input
  order so parallel and serial runs are bit-identical;
* :class:`ResultCache` — a content-addressed on-disk cache keyed by the
  code version plus the canonicalised task parameters, so a warm rerun
  of a figure skips all simulation work.

Usage::

    from repro.runner import ResultCache, SweepRunner
    from repro.analysis.experiments import fig8_throttling

    runner = SweepRunner(jobs=4, cache=ResultCache())
    result = fig8_throttling(trials=25, runner=runner)
"""

from repro.runner.cache import (
    CacheStats,
    ResultCache,
    canonicalize,
    code_version,
    reset_code_version,
    task_key,
)
from repro.runner.sweep import RunStats, SweepRunner

__all__ = [
    "CacheStats",
    "ResultCache",
    "RunStats",
    "SweepRunner",
    "canonicalize",
    "code_version",
    "reset_code_version",
    "task_key",
]
