"""Content-addressed on-disk cache for experiment results.

A cache entry is addressed by a SHA-256 over three things:

* the **code version** — a digest of every ``*.py`` file in the
  installed ``repro`` package, so any source change invalidates every
  entry (no stale results after editing the simulator);
* the **task identity** — the function's module and qualified name;
* the **canonicalised parameters** — dataclasses (``ProcessorConfig``
  and friends), enums, bytes, numpy scalars and nested containers are
  reduced to a stable JSON form, so logically equal parameter sets hash
  equally regardless of dict ordering, and any config change is a miss.

Entries are pickled results under ``<root>/<key[:2]>/<key>.pkl``.  The
root defaults to ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in the current
working directory.  Eviction is explicit: :meth:`ResultCache.clear`
drops everything, :meth:`ResultCache.evict` trims to a budget by age.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import threading

import numpy as np

from repro.errors import ConfigError
from repro.obs.tracer import current as _obs

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_code_version: Optional[str] = None
_code_version_lock = threading.Lock()


def code_version() -> str:
    """Digest of the installed ``repro`` sources (cached per process).

    Hashes every ``*.py`` under the package root in sorted order, so the
    same sources always produce the same version and any edit produces a
    new one — the cache's whole-package invalidation lever.

    The memoization is thread-safe (service workers share one process)
    and explicitly resettable: a long-lived worker that survives a
    source change keeps serving the stale digest until
    :func:`reset_code_version` is called, which the service layer does
    on every worker (re)spawn.
    """
    global _code_version
    with _code_version_lock:
        if _code_version is None:
            import repro

            root = Path(repro.__file__).resolve().parent
            digest = hashlib.sha256()
            for path in sorted(root.rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(b"\0")
                digest.update(path.read_bytes())
            _code_version = digest.hexdigest()[:16]
        return _code_version


def reset_code_version() -> None:
    """Drop the memoized source digest; the next call recomputes it.

    Call after the installed sources may have changed under a long-lived
    process — :class:`repro.service` workers invoke this on (re)spawn so
    a redeployed tree cannot keep addressing the old version's entries.
    """
    global _code_version
    with _code_version_lock:
        _code_version = None


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a stable, JSON-serialisable form.

    The reduction is the foundation of both content addressing (cache
    keys) and the golden-trace digests of :mod:`repro.verify.digest`:
    logically equal values canonicalise equally regardless of dict or
    set ordering, and every float survives exactly (``json`` emits the
    shortest round-tripping decimal, so no precision is lost).  Non-
    finite floats and numpy arrays get tagged structured forms because
    plain JSON cannot represent them.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            return {"__float__": "nan"}
        if math.isinf(obj):
            return {"__float__": "inf" if obj > 0 else "-inf"}
        return float(obj)
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": str(obj.dtype),
                "shape": list(obj.shape),
                "data": [canonicalize(v) for v in obj.reshape(-1).tolist()]}
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__module__}.{type(obj).__qualname__}",
                "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__":
                f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": {
                f.name: canonicalize(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Mapping):
        if all(isinstance(k, str) for k in obj):
            # Str-keyed mappings stay plain objects (ordering is handled
            # by sort_keys at serialisation time) so golden documents
            # remain directly readable and diffable.
            return {k: canonicalize(v) for k, v in obj.items()}
        items = [[canonicalize(k), canonicalize(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__mapping__": items}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        members = [canonicalize(v) for v in obj]
        members.sort(key=lambda v: json.dumps(v, sort_keys=True))
        return {"__set__": members}
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalars
        return canonicalize(obj.item())
    if callable(obj):
        return {"__callable__":
                f"{getattr(obj, '__module__', '?')}."
                f"{getattr(obj, '__qualname__', repr(obj))}"}
    # Stable-enough catch-all; anything routinely swept should be one of
    # the structured cases above.
    return {"__repr__": repr(obj)}


def task_key(fn: Callable[..., Any], kwargs: Mapping[str, Any],
             version: Optional[str] = None) -> str:
    """The content address of one task: code + function + parameters."""
    payload = {
        "code": version if version is not None else code_version(),
        "fn": f"{fn.__module__}.{fn.__qualname__}",
        "params": canonicalize(dict(kwargs)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache`.

    ``corrupt`` counts entries that existed on disk but could not be
    decoded; each such entry is also counted as a miss (and unlinked, so
    it cannot be re-missed forever).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0


class ResultCache:
    """Pickled experiment results, content-addressed on disk.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro-cache``.  Created lazily on the first store.
    version:
        Override the code-version component of every key (tests use
        this to simulate source changes without editing files).
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 version: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.version = version
        self.stats = CacheStats()

    def key_for(self, fn: Callable[..., Any],
                kwargs: Mapping[str, Any]) -> str:
        """The content address of ``fn(**kwargs)`` at this code version."""
        return task_key(fn, kwargs, version=self.version)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """(hit, value) for ``key``.

        A missing entry is a plain miss.  An entry that exists but
        cannot be decoded (truncated write, unpicklable after a class
        moved, plain disk corruption) is *unlinked* and counted in
        ``stats.corrupt`` as well as ``stats.misses`` — leaving it on
        disk would re-read and re-miss it on every lookup while
        ``__len__`` kept counting it as a valid entry.
        """
        tracer = _obs()
        path = self._path(key)
        try:
            fh = open(path, "rb")
        except OSError:
            self.stats.misses += 1
            if tracer.enabled:
                tracer.metrics.counter("cache.misses").inc()
            return False, None
        try:
            with fh:
                value = pickle.load(fh)
        except Exception:
            # Undecodable garbage can raise nearly anything out of the
            # unpickler (UnpicklingError, EOFError, ImportError, value
            # and type errors from corrupt opcodes); whatever it was,
            # the entry is useless — drop it.
            self.stats.corrupt += 1
            self.stats.misses += 1
            if tracer.enabled:
                tracer.metrics.counter("cache.corrupt").inc()
                tracer.metrics.counter("cache.misses").inc()
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        if tracer.enabled:
            tracer.metrics.counter("cache.hits").inc()
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic rename, last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("cache.stores").inc()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def evict(self, max_entries: int) -> int:
        """Trim to ``max_entries`` by dropping the oldest entries first."""
        if max_entries < 0:
            raise ConfigError(f"max_entries must be >= 0, got {max_entries}")
        entries = sorted(self.root.glob("*/*.pkl"),
                         key=lambda p: p.stat().st_mtime)
        removed = 0
        for path in entries[:max(0, len(entries) - max_entries)]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
