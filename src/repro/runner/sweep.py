"""Parallel experiment executor with optional result caching.

A *task* is a module-level function plus a kwargs dict, both picklable —
exactly the shape of the per-trial helpers in
:mod:`repro.analysis.experiments` (every trial builds its own
:class:`~repro.soc.system.System` from a :class:`ProcessorConfig` and a
seed, so tasks share no state and any execution order gives identical
results).  :meth:`SweepRunner.map` preserves input order in its output,
which makes ``jobs=1`` and ``jobs=N`` bit-identical by construction.

With a :class:`~repro.runner.cache.ResultCache` attached, each task is
looked up by content address first; only misses are executed (in
parallel if requested) and stored back, so a warm rerun of a figure
executes nothing.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.tracer import current as _obs
from repro.runner.cache import ResultCache


def _annotate_failure(exc: BaseException, index: int,
                      kwargs: Mapping[str, Any]) -> BaseException:
    """Attach the failing task's identity to its exception.

    The original exception type is preserved (callers' ``except`` clauses
    keep working); ``task_index`` and ``task_kwargs`` attributes — plus an
    exception note on Python >= 3.11 — say *which* task of the sweep died
    and with what parameters.
    """
    exc.task_index = index  # type: ignore[attr-defined]
    exc.task_kwargs = dict(kwargs)  # type: ignore[attr-defined]
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(f"SweepRunner task {index} failed; kwargs={dict(kwargs)!r}")
    return exc


@dataclass
class RunStats:
    """What one :meth:`SweepRunner.map` call did.

    ``executed`` counts tasks that actually ran *to completion* — a
    sweep that dies on task 1 of 50 reports 1, not 50.  ``deduped``
    counts positions resolved by copying another position's result
    because both canonicalised to the same cache key within the call.
    """

    tasks: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduped: int = 0

    def add(self, other: "RunStats") -> None:
        """Accumulate another call's stats into this one."""
        self.tasks += other.tasks
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.deduped += other.deduped


class SweepRunner:
    """Executes independent experiment tasks, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every task inline in
        this process — no pool, no pickling, the exact legacy behaviour.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Stats of the most recent :meth:`map` call.
        self.last_run = RunStats()
        #: Cumulative stats across the runner's lifetime.
        self.total = RunStats()

    def map(self, fn: Callable[..., Any],
            kwargs_list: Sequence[Mapping[str, Any]]) -> List[Any]:
        """Run ``fn(**kwargs)`` for every kwargs set, in input order.

        Results are returned positionally; parallel execution cannot
        reorder them.  ``fn`` must be a module-level function and every
        kwargs value picklable when ``jobs > 1`` (process pool) or when
        a cache is attached (results are pickled to disk).

        When a task raises, every sibling result that already completed
        is still stored in the cache before the exception propagates —
        a crashed sweep resumes from where it died instead of replaying
        finished work.  The re-raised exception carries ``task_index``
        and ``task_kwargs`` attributes identifying the failing task, and
        ``last_run``/``total`` still account for the completed siblings.

        With a cache attached, positions whose kwargs canonicalise to
        the same content address are *deduplicated within the call*: one
        representative executes (or hits), and every duplicate position
        receives a copy of its result (``RunStats.deduped`` counts the
        copies).  Without a cache there are no content addresses, so
        duplicates execute independently, exactly as before.
        """
        stats = RunStats(tasks=len(kwargs_list))
        results: List[Any] = [None] * len(kwargs_list)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(kwargs_list)
        #: Duplicate position -> representative position with the same key.
        duplicate_of: Dict[int, int] = {}
        tracer = _obs()

        if self.cache is not None:
            first_by_key: Dict[str, int] = {}
            for idx, kwargs in enumerate(kwargs_list):
                key = self.cache.key_for(fn, kwargs)
                keys[idx] = key
                representative = first_by_key.get(key)
                if representative is not None:
                    # Same content address earlier in this very call:
                    # don't look it up (it would miss while the
                    # representative is still pending) and don't execute
                    # it again — copy the representative's result below.
                    duplicate_of[idx] = representative
                    stats.deduped += 1
                    continue
                first_by_key[key] = idx
                hit, value = self.cache.get(key)
                if hit:
                    results[idx] = value
                    stats.cache_hits += 1
                else:
                    pending.append(idx)
        else:
            pending = list(range(len(kwargs_list)))

        completed: List[int] = []
        failure: Optional[Tuple[int, BaseException]] = None
        if pending:
            try:
                if self.jobs == 1 or len(pending) == 1:
                    for idx in pending:
                        try:
                            results[idx] = self._run_one(
                                fn, kwargs_list[idx], idx, tracer)
                        except Exception as exc:
                            failure = (idx, exc)
                            break
                        completed.append(idx)
                else:
                    workers = min(self.jobs, len(pending))
                    with concurrent.futures.ProcessPoolExecutor(
                            max_workers=workers) as pool:
                        futures = {
                            idx: pool.submit(fn, **kwargs_list[idx])
                            for idx in pending
                        }
                        # Drain every future before deciding the call's
                        # fate: one failure must not discard siblings
                        # that finished (or will finish) successfully.
                        for idx, future in futures.items():
                            try:
                                results[idx] = future.result()
                            except Exception as exc:
                                if failure is None:
                                    failure = (idx, exc)
                                continue
                            completed.append(idx)
            finally:
                if self.cache is not None:
                    for idx in completed:
                        self.cache.put(keys[idx], results[idx])

        # Executed counts *completions*: a sweep that dies on its first
        # task reports 1 (or 0), never the whole pending count.
        stats.executed = len(completed)

        # Resolve in-call duplicates from their representatives (cache
        # hits never entered ``pending``; executed ones must have
        # completed).  A duplicate of a failed representative stays
        # unresolved, which only matters on the failure path (no
        # results are returned).
        completed_set = set(completed)
        pending_set = set(pending)
        for idx, representative in duplicate_of.items():
            if (representative in completed_set
                    or representative not in pending_set):
                results[idx] = results[representative]

        if tracer.enabled:
            tracer.metrics.counter("runner.tasks").inc(stats.tasks)
            tracer.metrics.counter("runner.cache_hits").inc(stats.cache_hits)
            tracer.metrics.counter("runner.executed").inc(stats.executed)
            tracer.metrics.counter("runner.deduped").inc(stats.deduped)
            if failure is not None:
                tracer.metrics.counter("runner.task_failures").inc()

        # last_run/total stay consistent on the failure path too: the
        # caller's except clause can still read how much work finished.
        self.last_run = stats
        self.total.add(stats)

        if failure is not None:
            idx, exc = failure
            raise _annotate_failure(exc, idx, kwargs_list[idx])
        return results

    def _run_one(self, fn: Callable[..., Any], kwargs: Mapping[str, Any],
                 index: int, tracer) -> Any:
        """Run one task inline, under a wall-clock span when tracing."""
        if not tracer.enabled:
            return fn(**kwargs)
        start = time.perf_counter()
        with tracer.wall_span("runner.task", "runner",
                              args={"index": index}) as span:
            try:
                result = fn(**kwargs)
            except Exception:
                span["outcome"] = "error"
                raise
            span["outcome"] = "executed"
        tracer.metrics.histogram("runner.task_wall_ms").observe(
            (time.perf_counter() - start) * 1e3)
        return result

    def call(self, fn: Callable[..., Any], **kwargs: Any) -> Any:
        """Run (or cache-resolve) a single task."""
        return self.map(fn, [kwargs])[0]
