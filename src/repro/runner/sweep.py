"""Parallel experiment executor with optional result caching.

A *task* is a module-level function plus a kwargs dict, both picklable —
exactly the shape of the per-trial helpers in
:mod:`repro.analysis.experiments` (every trial builds its own
:class:`~repro.soc.system.System` from a :class:`ProcessorConfig` and a
seed, so tasks share no state and any execution order gives identical
results).  :meth:`SweepRunner.map` preserves input order in its output,
which makes ``jobs=1`` and ``jobs=N`` bit-identical by construction.

With a :class:`~repro.runner.cache.ResultCache` attached, each task is
looked up by content address first; only misses are executed (in
parallel if requested) and stored back, so a warm rerun of a figure
executes nothing.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Sequence

from repro.errors import ConfigError
from repro.runner.cache import ResultCache


@dataclass
class RunStats:
    """What one :meth:`SweepRunner.map` call did."""

    tasks: int = 0
    cache_hits: int = 0
    executed: int = 0


class SweepRunner:
    """Executes independent experiment tasks, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every task inline in
        this process — no pool, no pickling, the exact legacy behaviour.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Stats of the most recent :meth:`map` call.
        self.last_run = RunStats()
        #: Cumulative stats across the runner's lifetime.
        self.total = RunStats()

    def map(self, fn: Callable[..., Any],
            kwargs_list: Sequence[Mapping[str, Any]]) -> List[Any]:
        """Run ``fn(**kwargs)`` for every kwargs set, in input order.

        Results are returned positionally; parallel execution cannot
        reorder them.  ``fn`` must be a module-level function and every
        kwargs value picklable when ``jobs > 1`` (process pool) or when
        a cache is attached (results are pickled to disk).
        """
        stats = RunStats(tasks=len(kwargs_list))
        results: List[Any] = [None] * len(kwargs_list)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(kwargs_list)

        if self.cache is not None:
            for idx, kwargs in enumerate(kwargs_list):
                key = self.cache.key_for(fn, kwargs)
                keys[idx] = key
                hit, value = self.cache.get(key)
                if hit:
                    results[idx] = value
                    stats.cache_hits += 1
                else:
                    pending.append(idx)
        else:
            pending = list(range(len(kwargs_list)))

        if pending:
            stats.executed = len(pending)
            if self.jobs == 1 or len(pending) == 1:
                for idx in pending:
                    results[idx] = fn(**kwargs_list[idx])
            else:
                workers = min(self.jobs, len(pending))
                with concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers) as pool:
                    futures = {
                        idx: pool.submit(fn, **kwargs_list[idx])
                        for idx in pending
                    }
                    for idx, future in futures.items():
                        results[idx] = future.result()
            if self.cache is not None:
                for idx in pending:
                    self.cache.put(keys[idx], results[idx])

        self.last_run = stats
        self.total.tasks += stats.tasks
        self.total.cache_hits += stats.cache_hits
        self.total.executed += stats.executed
        return results

    def call(self, fn: Callable[..., Any], **kwargs: Any) -> Any:
        """Run (or cache-resolve) a single task."""
        return self.map(fn, [kwargs])[0]
