"""Self-documenting registry: emit docs/SCENARIOS.md's reference block.

Every registered scenario renders its own reference entry — name,
description, topology table, and the command that runs it — between
the two HTML marker comments in docs/SCENARIOS.md.  The emitter is
deterministic (pure function of the registry), ``check_docs`` diffs
the committed file against a fresh render, and a test plus a CI step
run that check, so the registry and its documentation cannot drift.

CLI: ``python -m repro.scenarios docs [--check] [--path PATH]``.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.scenarios.registry import all_specs
from repro.scenarios.spec import ScenarioSpec

#: Markers delimiting the generated block inside docs/SCENARIOS.md.
BEGIN_MARK = "<!-- scenario-registry:begin (generated; edit the registry, then run `python -m repro.scenarios docs`) -->"
END_MARK = "<!-- scenario-registry:end -->"

#: Default location of the scenario reference, relative to the repo root.
DEFAULT_DOCS_PATH = "docs/SCENARIOS.md"


def _tenant_line(spec: ScenarioSpec) -> str:
    """One-line human summary of the scenario's tenant placement."""
    parts = []
    for tenant in spec.tenants:
        if tenant.channel == "cores":
            where = f"cores {tenant.sender_core}→{tenant.receiver_core}"
        elif tenant.channel == "smt":
            where = f"core {tenant.sender_core} (SMT siblings)"
        else:
            where = f"core {tenant.sender_core} (one thread)"
        parts.append(f"{tenant.channel} on {where} "
                     f"@ +{tenant.offset_fraction:.2f} slot")
    return "; ".join(parts)


def _background_line(spec: ScenarioSpec) -> str:
    """One-line human summary of the background workloads."""
    if not spec.background:
        return "—"
    return "; ".join(
        f"{w.kind} on core {w.core}/smt {w.smt_slot}"
        + (f" ({len(w.phases)} recorded phases)" if w.kind == "replay"
           else f" ({w.duration_ms:g} ms, seed {w.seed})")
        for w in spec.background)


def _entry_markdown(spec: ScenarioSpec) -> str:
    """The reference entry of one scenario."""
    config = spec.processor_config()
    overrides = (", ".join(f"{k}={v}" for k, v in spec.overrides)
                 if spec.overrides else "—")
    protocol = (", ".join(f"{k}={v}" for k, v in spec.protocol)
                if spec.protocol else "—")
    mitigations = [f.replace("_", "-")
                   for f, enabled in spec.options.to_mapping().items()
                   if enabled]
    noise = ("—" if spec.noise is None else
             f"{spec.noise.config().total_event_rate_per_s:g} events/s "
             f"for {spec.noise.horizon_ms:g} ms (seed {spec.noise.seed})")
    lines = [
        f"### `{spec.name}`",
        "",
        spec.description,
        "",
        "| | |",
        "|---|---|",
        f"| Processor | `{spec.preset}` — {config.name} "
        f"({config.n_cores} cores × {config.smt_per_core} threads, "
        f"{config.vr_kind.name} rail) |",
        f"| Overrides | {overrides} |",
        f"| Mitigations | {', '.join(mitigations) if mitigations else '—'} |",
        f"| PMU | queue_depth={spec.pmu.queue_depth}, "
        f"grant_policy={spec.pmu.grant_policy} |",
        f"| Tenants | {_tenant_line(spec)} |",
        f"| Background | {_background_line(spec)} |",
        f"| OS noise | {noise} |",
        f"| Faults | {'`' + spec.faults + '`' if spec.faults else '—'} |",
        f"| Protocol | {protocol} |",
        f"| Payload | `{spec.payload_hex}` ({len(spec.payload)} byte(s)), "
        f"seed {spec.seed} |",
        "",
        f"Run it: `python -m repro --scenario {spec.name}`",
    ]
    return "\n".join(lines)


def registry_markdown() -> str:
    """The full generated reference block (without the markers)."""
    entries = [_entry_markdown(spec) for spec in all_specs()]
    header = (f"_{len(entries)} registered scenarios, in registry "
              f"order.  This block is generated — edit "
              f"`src/repro/scenarios/registry.py` and re-run "
              f"`python -m repro.scenarios docs`._")
    return "\n\n".join([header] + entries)


def render_docs(text: str) -> str:
    """``text`` with the block between the markers regenerated."""
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin < 0 or end < 0 or end < begin:
        raise ConfigError(
            f"the scenario reference needs both markers "
            f"{BEGIN_MARK!r} and {END_MARK!r}, in order")
    head = text[:begin + len(BEGIN_MARK)]
    tail = text[end:]
    return f"{head}\n\n{registry_markdown()}\n\n{tail}"


def check_docs(text: str) -> List[str]:
    """Lines of drift between ``text`` and a fresh render (empty = ok)."""
    fresh = render_docs(text)
    if fresh == text:
        return []
    old_lines = text.splitlines()
    new_lines = fresh.splitlines()
    drift = [
        f"line {i + 1}: {old!r} -> {new!r}"
        for i, (old, new) in enumerate(zip(old_lines, new_lines))
        if old != new
    ]
    if len(old_lines) != len(new_lines):
        drift.append(f"length changed: {len(old_lines)} -> "
                     f"{len(new_lines)} lines")
    return drift
