"""The named scenario registry (15 curated topologies).

Scenarios fall into four groups:

* **Paper baselines** — each covert channel alone on its reference
  part (``baseline_thread``/``baseline_smt``/``baseline_cores``), plus
  the FIVR variant (``fivr_cores``) and the two configurations the
  paper reports as *defeating* the channels: per-core LDO rails
  (``ldo_cores``) and the secure mode (``secure_mode``) — both are
  expected to calibrate as infeasible, and the registry pins that.
* **Environment** — the channel beside realistic disturbance:
  OS noise plus a 7-zip-style neighbour (``noisy_neighbour``), the
  default fault suite (``faulted_default``), and trace-driven replay
  of a recorded phase trace (``trace_replay``).
* **Multi-tenant interference** — N sender/receiver pairs sharing one
  PMU (``interference_1pair`` .. ``interference_8pair``), the
  Multi-Throttling-Cores root cause at scale; tenants spread their
  slot clocks across the slot to dodge each other.
* **PMU microarchitecture** — the same two-pair contention under a
  shallow transition queue (``shallow_queue_2pair``) and under the
  hypothetical coalescing grant policy (``coalesced_2pair``).

Every registered spec is immutable, cheap enough for the verify/docs
gates (small payloads, trimmed training), and renders its own entry in
docs/SCENARIOS.md via :mod:`repro.scenarios.docsgen`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.scenarios.spec import (
    NoiseSpec,
    OptionsSpec,
    PMUSpec,
    ScenarioSpec,
    TenantSpec,
    WorkloadSpec,
)

#: The registry: name -> spec, in registration (= documentation) order.
_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry; duplicate names are ConfigErrors."""
    if spec.name in _REGISTRY:
        raise ConfigError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario_names() -> List[str]:
    """All registered scenario names, in registration order."""
    return list(_REGISTRY)


def get_spec(name: str) -> ScenarioSpec:
    """The registered scenario called ``name`` (ConfigError on a typo)."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(scenario_names())}")
    return spec


def all_specs() -> Tuple[ScenarioSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


#: Protocol trim shared by the cheap registry scenarios: one training
#: round instead of three shrinks calibration cost without touching
#: the decode path.
_FAST_PROTOCOL: Tuple[Tuple[str, int], ...] = (("training_rounds", 1),)


def interference_spec(n_pairs: int, preset: str = "skylake_sp",
                      pmu: PMUSpec = PMUSpec(),
                      name: str = "", description: str = "",
                      payload_hex: str = "43") -> ScenarioSpec:
    """An N-pair cross-core interference scenario on one shared rail.

    Pair ``i`` occupies cores ``(2i, 2i+1)`` with its slot clock offset
    by ``i / n_pairs`` of the common slot, so the pairs' transitions
    tile the slot evenly — the fairest static schedule.  The default
    ``skylake_sp`` preset fits up to 12 pairs; the
    :func:`repro.scenarios.run.interference_sweep` experiment builds
    its 1/2/4/8-pair ladder through this factory.
    """
    if n_pairs < 1:
        raise ConfigError(f"n_pairs must be >= 1, got {n_pairs}")
    tenants = tuple(
        TenantSpec("cores", 2 * i, 2 * i + 1,
                   offset_fraction=i / n_pairs)
        for i in range(n_pairs))
    return ScenarioSpec(
        name=name or f"interference_{n_pairs}pair",
        description=description or (
            f"{n_pairs} cross-core pair(s) sharing one {preset} rail, "
            f"slot clocks tiled at 1/{n_pairs} offsets — "
            f"Multi-Throttling-Cores contention at scale."),
        preset=preset,
        protocol=_FAST_PROTOCOL,
        tenants=tenants,
        pmu=pmu,
        payload_hex=payload_hex,
    )


# -- paper baselines ---------------------------------------------------------

register(ScenarioSpec(
    name="baseline_thread",
    description=(
        "IccThreadCovert alone on Cannon Lake: sender and receiver "
        "time-share one hardware thread (paper Section 4.3.2)."),
    preset="cannon_lake",
    tenants=(TenantSpec("thread", 0, 0),),
))

register(ScenarioSpec(
    name="baseline_smt",
    description=(
        "IccSMTcovert alone on Cannon Lake: the parties run on SMT "
        "siblings of one core (paper Section 4.3.2)."),
    preset="cannon_lake",
    tenants=(TenantSpec("smt", 0, 0),),
))

register(ScenarioSpec(
    name="baseline_cores",
    description=(
        "IccCoresCovert alone on Cannon Lake: two physical cores "
        "coupled only through the shared MBVR rail (Section 4.3.1)."),
    preset="cannon_lake",
    tenants=(TenantSpec("cores", 0, 1),),
))

register(ScenarioSpec(
    name="fivr_cores",
    description=(
        "The cross-core channel on Haswell's faster FIVR: shorter "
        "throttling periods, same root cause (paper Figure 8a)."),
    preset="haswell",
    tenants=(TenantSpec("cores", 0, 1),),
))

register(ScenarioSpec(
    name="ldo_cores",
    description=(
        "The cross-core channel against per-core LDO rails (an AMD-"
        "Zen2-style part): no shared-rail serialisation exists, so "
        "calibration finds no separable levels — registered to pin "
        "the channel's expected infeasibility (paper Section 7)."),
    preset="amd_zen2",
    tenants=(TenantSpec("cores", 0, 1),),
))

register(ScenarioSpec(
    name="secure_mode",
    description=(
        "The same-thread channel against the paper's secure mode: "
        "guardbands pinned at the power-virus worst case, nothing "
        "transitions, nothing throttles — expected infeasible "
        "(paper Section 7)."),
    preset="cannon_lake",
    options=OptionsSpec(secure_mode=True),
    tenants=(TenantSpec("thread", 0, 0),),
))

# -- environment: noise, faults, trace replay --------------------------------

register(ScenarioSpec(
    name="noisy_neighbour",
    description=(
        "The cross-core channel under OS noise on both tenant threads "
        "plus a 7-zip-style compressor sharing the sender's core over "
        "SMT: the adaptive protocol rides out the interference (paper "
        "Section 6.3)."),
    preset="cannon_lake",
    tenants=(TenantSpec("cores", 0, 1),),
    noise=NoiseSpec(horizon_ms=60.0),
    background=(WorkloadSpec("sevenzip", core=0, smt_slot=1,
                             duration_ms=60.0, seed=7),),
))

register(ScenarioSpec(
    name="faulted_default",
    description=(
        "The same-thread channel under the default deterministic "
        "fault suite (rail jitter, dropout, grant interference, "
        "thermal drift, clock skew, slot jitter) at nominal "
        "intensity — docs/FAULTS.md's resilience setting."),
    preset="cannon_lake",
    tenants=(TenantSpec("thread", 0, 0),),
    faults="default:intensity=1.0,seed=3",
))

register(ScenarioSpec(
    name="trace_replay",
    description=(
        "The cross-core channel beside a trace-driven replay of a "
        "recorded phase trace (an AVX2 burst pattern captured from "
        "the 7-zip-like workload) on the second core's SMT sibling."),
    preset="cannon_lake",
    tenants=(TenantSpec("cores", 0, 1),),
    background=(WorkloadSpec(
        kind="replay", core=1, smt_slot=1, duration_ms=24.0,
        phases=(
            ("SCALAR_64", 5_000_000.0),
            ("HEAVY_256", 60_000.0),
            ("SCALAR_64", 3_500_000.0),
            ("HEAVY_256", 45_000.0),
            ("SCALAR_64", 6_000_000.0),
            ("LIGHT_256", 80_000.0),
            ("SCALAR_64", 4_200_000.0),
            ("HEAVY_256", 55_000.0),
            ("SCALAR_64", 5_060_000.0),
        )),),
))

# -- multi-tenant interference ladder ----------------------------------------

register(interference_spec(1, preset="coffee_lake"))
register(interference_spec(2, preset="coffee_lake"))
register(interference_spec(4))
register(interference_spec(8))

# -- PMU microarchitecture variants ------------------------------------------

register(interference_spec(
    2, preset="coffee_lake",
    pmu=PMUSpec(queue_depth=1),
    name="shallow_queue_2pair",
    description=(
        "Two contending pairs against a shallow (depth-1) PMU "
        "transition mailbox: overflowing requests coalesce into the "
        "newest queued entry, so waiting cores are granted in batches "
        "instead of strictly one by one."),
))

register(interference_spec(
    2, preset="coffee_lake",
    pmu=PMUSpec(grant_policy="coalesced"),
    name="coalesced_2pair",
    description=(
        "Two contending pairs against a coalescing PMU: every queued "
        "up-request drains into a single transition to the collective "
        "worst-case level — the hypothetical firmware fix that "
        "shortens the shared throttle window by over-granting."),
))

# -- mitigation-matrix defenders ---------------------------------------------
#
# The non-paper defender recipes of the attacker/defender evaluation
# matrix (repro.mitigations.matrix), registered here so the matrix, the
# scenario CLI and docs/SCENARIOS.md all read one definition.  Each is
# the cross-core channel (the hardest to defend) under one defender.

register(ScenarioSpec(
    name="matrix_noise_injection",
    description=(
        "The cross-core channel against defender-controlled noise "
        "injection: scheduled grant-queue jamming plus slot-clock "
        "jitter smear the TP level ladder without a standing "
        "frequency cost (mitigation-matrix defender)."),
    preset="cannon_lake",
    tenants=(TenantSpec("cores", 0, 1),),
    faults=("grant-interference:burst_rate_per_s=500,hold_us=150,seed=5;"
            "slot-jitter:sigma_us=2.5,cap_us=12,seed=5"),
))

register(ScenarioSpec(
    name="matrix_turbo_license",
    description=(
        "The cross-core channel at a 3.0 GHz turbo request against "
        "turbo-license limiting: the package is clamped to the worst-"
        "case license ceiling, so guardband traffic stops moving the "
        "frequency (no PLL-relock throttling) while rail settles "
        "still leak (mitigation-matrix defender)."),
    preset="cannon_lake",
    overrides=(("base_freq_ghz", 3.0),),
    options=OptionsSpec(turbo_license_limit=True),
    tenants=(TenantSpec("cores", 0, 1),),
))

register(ScenarioSpec(
    name="matrix_state_flush",
    description=(
        "The cross-core channel against temporal partitioning: every "
        "scheduling quantum the current-management state is flushed "
        "to the power-virus worst case and released, overwriting the "
        "attacker's phased transitions (RISC-V prevention-style "
        "state flush; mitigation-matrix defender)."),
    preset="cannon_lake",
    tenants=(TenantSpec("cores", 0, 1),),
    faults="state-flush:quantum_us=500,hold_us=80",
))
