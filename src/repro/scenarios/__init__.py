"""Declarative scenario library: specs, registry, builder, runner, docs.

The scenario layer turns every experiment topology in this repo into
plain data: a :class:`~repro.scenarios.spec.ScenarioSpec` composes the
processor preset (and overrides), the VR/PMU behaviour knobs, OS
noise, fault suites, background workload traces (including replay of
recorded phase traces), and N covert sender/receiver tenants sharing
one PMU.  The registry ships 15 named scenarios from the paper's
single-pair baselines to 8-pair interference matrices; each runs
through ``python -m repro --scenario NAME``, the sweep runner, the
service, and the verify golden gates, and renders its own entry in
docs/SCENARIOS.md.
"""

from repro.scenarios.build import build_system, tenant_thread_ids
from repro.scenarios.docsgen import (
    check_docs,
    registry_markdown,
    render_docs,
)
from repro.scenarios.registry import (
    all_specs,
    get_spec,
    interference_spec,
    register,
    scenario_names,
)
from repro.scenarios.run import (
    InterferencePoint,
    InterferenceSweepResult,
    ScenarioRun,
    TenantResult,
    interference_sweep,
    interference_trial,
    make_channel,
    run_document,
    run_scenario,
    scenario_document,
)
from repro.scenarios.spec import (
    CHANNEL_KINDS,
    NoiseSpec,
    OVERRIDABLE_FIELDS,
    OptionsSpec,
    PMUSpec,
    ScenarioSpec,
    TenantSpec,
    WORKLOAD_KINDS,
    WorkloadSpec,
)

__all__ = [
    "CHANNEL_KINDS",
    "InterferencePoint",
    "InterferenceSweepResult",
    "NoiseSpec",
    "OVERRIDABLE_FIELDS",
    "OptionsSpec",
    "PMUSpec",
    "ScenarioRun",
    "ScenarioSpec",
    "TenantResult",
    "TenantSpec",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "all_specs",
    "build_system",
    "check_docs",
    "get_spec",
    "interference_spec",
    "interference_sweep",
    "interference_trial",
    "make_channel",
    "register",
    "registry_markdown",
    "render_docs",
    "run_document",
    "run_scenario",
    "scenario_document",
    "scenario_names",
    "tenant_thread_ids",
]
