"""Run declarative scenarios end to end (N tenants, one shared PMU).

Generalises the two-pair experiment of
:func:`repro.analysis.experiments.multi_pair_interference` to any
registered topology: every tenant calibrates sequentially (alone on
the machine), then all feasible tenants transfer the payload
*concurrently* on a common slot length, each with its own slot-clock
offset.  A tenant whose calibration fails (per-core LDO rails, secure
mode, drowned-out levels) is reported infeasible with BER 1.0 rather
than aborting the scenario — infeasibility is a result the registry
pins, not an error.

The module-level entry points (:func:`scenario_document`,
:func:`interference_trial`) are picklable, so scenarios run unchanged
through :class:`~repro.runner.SweepRunner` pools and the
:mod:`repro.service` worker fleet; :func:`run_document` emits the
plain-JSON document the :mod:`repro.verify` golden gates digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core import IccCoresCovert, IccSMTcovert, IccThreadCovert
from repro.core.capacity import symbol_channel_capacity_bps
from repro.core.channel import CovertChannel
from repro.core.encoding import bytes_to_symbols
from repro.core.sync import SlotSchedule
from repro.errors import CalibrationError, ProtocolError
from repro.runner import SweepRunner
from repro.scenarios.build import build_system
from repro.scenarios.registry import get_spec, interference_spec
from repro.scenarios.spec import ScenarioSpec, TenantSpec
from repro.soc.system import System
from repro.units import bits_per_second, ns_to_us

#: Bits one four-level symbol carries.
_BITS_PER_SYMBOL = 2


def make_channel(system: System, tenant: TenantSpec,
                 spec: ScenarioSpec) -> CovertChannel:
    """Construct ``tenant``'s channel on ``system``.

    Maps the tenant's channel kind to the concrete primitive —
    ``thread`` -> :class:`IccThreadCovert`, ``smt`` ->
    :class:`IccSMTcovert`, ``cores`` -> :class:`IccCoresCovert` — on
    the tenant's cores.  Shared by :func:`run_scenario` and the
    mitigation matrix's session cells.
    """
    config = spec.channel_config()
    if tenant.channel == "thread":
        return IccThreadCovert(system, config, core=tenant.sender_core)
    if tenant.channel == "smt":
        return IccSMTcovert(system, config, core=tenant.sender_core)
    return IccCoresCovert(system, config,
                          sender_core=tenant.sender_core,
                          receiver_core=tenant.receiver_core)


@dataclass(frozen=True)
class TenantResult:
    """One tenant's outcome in a scenario run.

    ``feasible`` is False when calibration failed (no separable levels
    under this topology); then BER is pinned at 1.0 and the streams
    are empty.  ``symbols_received`` uses ``-1`` for slots where the
    receiver produced no measurement (lost to noise/faults) — those
    slots count as fully errored.
    """

    index: int
    channel: str
    sender_core: int
    receiver_core: int
    feasible: bool
    ber: float
    bits: int
    bit_errors: int
    throughput_bps: float
    goodput_bps: float
    capacity_bps: float
    symbols_sent: Tuple[int, ...] = ()
    symbols_received: Tuple[int, ...] = ()
    measurements_tsc: Tuple[float, ...] = ()

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-JSON form for documents and service responses."""
        return {
            "index": self.index,
            "channel": self.channel,
            "sender_core": self.sender_core,
            "receiver_core": self.receiver_core,
            "feasible": self.feasible,
            "ber": float(self.ber),
            "bits": self.bits,
            "bit_errors": self.bit_errors,
            "throughput_bps": float(self.throughput_bps),
            "goodput_bps": float(self.goodput_bps),
            "capacity_bps": float(self.capacity_bps),
            "symbols_sent": list(self.symbols_sent),
            "symbols_received": list(self.symbols_received),
            "measurements_tsc": [float(m) for m in self.measurements_tsc],
        }


@dataclass
class ScenarioRun:
    """Everything observed while running one scenario."""

    spec: ScenarioSpec
    tenants: List[TenantResult]
    slot_ns: float
    elapsed_ns: float
    freq_ghz_final: float
    transitions_issued: Tuple[int, ...]
    throttled_releases: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def mean_ber(self) -> float:
        """Average BER across all tenants (infeasible ones count 1.0)."""
        if not self.tenants:
            return 1.0
        return sum(t.ber for t in self.tenants) / len(self.tenants)

    @property
    def aggregate_goodput_bps(self) -> float:
        """Total correct payload bits per second across tenants."""
        return sum(t.goodput_bps for t in self.tenants)

    def document(self) -> Dict[str, Any]:
        """The digest document the verify goldens pin.

        Contains the canonical spec mapping (so a golden breaks when a
        registered scenario is redefined), every tenant's full symbol
        streams and measurements, and the system's end state.
        """
        return {
            "spec": self.spec.to_mapping(),
            "tenants": [t.to_mapping() for t in self.tenants],
            "slot_ns": float(self.slot_ns),
            "elapsed_ns": float(self.elapsed_ns),
            "mean_ber": float(self.mean_ber),
            "aggregate_goodput_bps": float(self.aggregate_goodput_bps),
            "system": {
                "freq_ghz_final": float(self.freq_ghz_final),
                "transitions_issued": list(self.transitions_issued),
            },
        }


def _infeasible(index: int, tenant: TenantSpec,
                n_symbols: int) -> TenantResult:
    """The pinned outcome of a tenant whose calibration failed."""
    bits = _BITS_PER_SYMBOL * n_symbols
    return TenantResult(
        index=index, channel=tenant.channel,
        sender_core=tenant.sender_core, receiver_core=tenant.receiver_core,
        feasible=False, ber=1.0, bits=bits, bit_errors=bits,
        throughput_bps=0.0, goodput_bps=0.0, capacity_bps=0.0,
    )


def run_scenario(spec: Union[ScenarioSpec, str]) -> ScenarioRun:
    """Run one scenario end to end; see the module docstring.

    ``spec`` is a :class:`~repro.scenarios.spec.ScenarioSpec` or a
    registered scenario name.
    """
    if isinstance(spec, str):
        spec = get_spec(spec)
    system = build_system(spec)
    symbols = bytes_to_symbols(spec.payload)
    channels: List[Optional[CovertChannel]] = []
    for tenant in spec.tenants:
        channel = make_channel(system, tenant, spec)
        try:
            channel.calibrate()
        except (CalibrationError, ProtocolError):
            channel = None
        channels.append(channel)

    feasible = [c for c in channels if c is not None]
    results: List[TenantResult] = []
    transfer_start_ns = system.now
    slot_ns = 0.0
    schedules: List[Optional[SlotSchedule]] = []
    readings: List[Optional[List[Optional[float]]]] = []
    if feasible:
        slot_ns = max(c.slot_ns for c in feasible)
        epoch_ns = system.now + slot_ns
        for tenant, channel in zip(spec.tenants, channels):
            if channel is None:
                schedules.append(None)
                readings.append(None)
                continue
            schedule = SlotSchedule(
                epoch_ns + tenant.offset_fraction * slot_ns, slot_ns)
            measurements: List[Optional[float]] = [None] * len(symbols)
            channel._spawn_transaction_programs(schedule, list(symbols),
                                                measurements)
            schedules.append(schedule)
            readings.append(measurements)
        end_ns = max(s.slot_start(len(symbols))
                     for s in schedules if s is not None)
        end_ns += slot_ns + max(c._fault_slack_ns() for c in feasible)
        transfer_start_ns = epoch_ns
        system.run_until(end_ns)

    for index, (tenant, channel) in enumerate(zip(spec.tenants, channels)):
        if channel is None:
            results.append(_infeasible(index, tenant, len(symbols)))
            continue
        measurements = readings[index]
        assert measurements is not None and channel.calibrator is not None
        decoded = channel.calibrator.decode_all(
            [0.0 if m is None else float(m) for m in measurements])
        received: List[int] = []
        wrong = 0
        for sent, measurement, got in zip(symbols, measurements, decoded):
            if measurement is None:
                received.append(-1)
                wrong += _BITS_PER_SYMBOL
            else:
                received.append(got)
                wrong += bin((sent ^ got) & 0b11).count("1")
        bits = _BITS_PER_SYMBOL * len(symbols)
        ber = wrong / bits if bits else 0.0
        elapsed_ns = len(symbols) * slot_ns
        throughput = bits_per_second(bits, elapsed_ns)
        symbol_errors = sum(
            1 for sent, got in zip(symbols, received) if sent != got)
        capacity = symbol_channel_capacity_bps(
            ns_to_us(slot_ns), symbol_errors / len(symbols))
        results.append(TenantResult(
            index=index, channel=tenant.channel,
            sender_core=tenant.sender_core,
            receiver_core=tenant.receiver_core,
            feasible=True, ber=ber, bits=bits, bit_errors=wrong,
            throughput_bps=throughput,
            goodput_bps=throughput * (1.0 - ber),
            capacity_bps=capacity,
            symbols_sent=tuple(symbols),
            symbols_received=tuple(received),
            measurements_tsc=tuple(
                -1.0 if m is None else float(m) for m in measurements),
        ))

    return ScenarioRun(
        spec=spec,
        tenants=results,
        slot_ns=slot_ns,
        elapsed_ns=system.now - transfer_start_ns,
        freq_ghz_final=system.pmu.freq_ghz,
        transitions_issued=tuple(system.pmu.transitions_issued),
    )


def run_document(spec: Union[ScenarioSpec, str]) -> Dict[str, Any]:
    """Run a scenario and return its digest document (plain JSON)."""
    return run_scenario(spec).document()


def scenario_document(name: str) -> Dict[str, Any]:
    """Module-level task form of :func:`run_document`.

    Takes the scenario *name* (picklable) so it can fan out over
    :class:`~repro.runner.SweepRunner` process pools and the service
    worker fleet.
    """
    return run_document(name)


def interference_trial(n_pairs: int, preset: str = "skylake_sp",
                       payload_hex: str = "43") -> Dict[str, Any]:
    """One interference-ladder point as a module-level (picklable) task."""
    return run_document(interference_spec(n_pairs, preset=preset,
                                          payload_hex=payload_hex))


@dataclass(frozen=True)
class InterferencePoint:
    """Per-tenant channel quality at one tenant-pair count."""

    n_pairs: int
    per_tenant_ber: Tuple[float, ...]
    per_tenant_capacity_bps: Tuple[float, ...]
    mean_ber: float
    aggregate_goodput_bps: float


@dataclass(frozen=True)
class InterferenceSweepResult:
    """The interference ladder: channel quality vs tenant count."""

    preset: str
    points: Tuple[InterferencePoint, ...]

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-JSON form (for reports and service responses)."""
        return {
            "preset": self.preset,
            "points": [{
                "n_pairs": p.n_pairs,
                "per_tenant_ber": list(p.per_tenant_ber),
                "per_tenant_capacity_bps": list(p.per_tenant_capacity_bps),
                "mean_ber": p.mean_ber,
                "aggregate_goodput_bps": p.aggregate_goodput_bps,
            } for p in self.points],
        }


def interference_sweep(pair_counts: Sequence[int] = (1, 2, 4, 8),
                       preset: str = "skylake_sp",
                       payload_hex: str = "43",
                       runner: Optional[SweepRunner] = None,
                       ) -> InterferenceSweepResult:
    """Per-tenant BER/capacity as tenant count grows on one rail.

    Runs the N-pair ladder (same part, same payload, slot clocks tiled
    per :func:`~repro.scenarios.registry.interference_spec`) and
    reduces each point to per-tenant BER and capacity.  ``runner``
    fans the independent points out over a process pool.
    """
    tasks = [dict(n_pairs=int(n), preset=preset, payload_hex=payload_hex)
             for n in pair_counts]
    if runner is not None:
        documents = runner.map(interference_trial, tasks)
    else:
        documents = [interference_trial(**kwargs) for kwargs in tasks]
    points = []
    for n, document in zip(pair_counts, documents):
        tenants = document["tenants"]
        points.append(InterferencePoint(
            n_pairs=int(n),
            per_tenant_ber=tuple(t["ber"] for t in tenants),
            per_tenant_capacity_bps=tuple(
                t["capacity_bps"] for t in tenants),
            mean_ber=document["mean_ber"],
            aggregate_goodput_bps=document["aggregate_goodput_bps"],
        ))
    return InterferenceSweepResult(preset=preset, points=tuple(points))
