"""Materialise a :class:`~repro.scenarios.spec.ScenarioSpec` as a system.

``build_system`` is the single seam between the declarative layer and
the :mod:`repro.soc` substrate: it builds the processor from the
preset + overrides, threads the mitigation options and PMU knobs into
:class:`~repro.soc.system.SystemOptions`, attaches the fault suite,
spawns every background workload trace on its pinned hardware thread,
and arms OS noise on the tenant threads.  Channels themselves are
constructed by :mod:`repro.scenarios.run`, which owns slot scheduling.
"""

from __future__ import annotations

from typing import List

from repro.faults import parse_fault_spec
from repro.scenarios.spec import ScenarioSpec
from repro.soc.noise import attach_system_noise, attach_trace
from repro.soc.system import System
from repro.units import ms_to_ns


def tenant_thread_ids(spec: ScenarioSpec, system: System) -> List[int]:
    """The hardware-thread ids every tenant occupies, in tenant order."""
    thread_ids: List[int] = []
    for tenant in spec.tenants:
        for core, smt_slot in tenant.hardware_threads():
            thread_ids.append(system.thread_on(core, smt_slot))
    return thread_ids


def build_system(spec: ScenarioSpec) -> System:
    """Build the fully furnished system one scenario describes.

    The returned system has the scenario's faults attached, its
    background workloads spawned, and OS noise armed on the tenant
    threads — everything except the covert channels, which the run
    layer constructs so it can own calibration and slot scheduling.
    """
    config = spec.processor_config()
    system = System(config, options=spec.system_options(), seed=spec.seed)
    if spec.faults:
        parse_fault_spec(spec.faults).attach(system)
    for workload in spec.background:
        attach_trace(system,
                     system.thread_on(workload.core, workload.smt_slot),
                     workload.build_trace(config.max_vector_bits))
    if spec.noise is not None:
        attach_system_noise(system, tenant_thread_ids(spec, system),
                            spec.noise.config(),
                            horizon_ns=ms_to_ns(spec.noise.horizon_ms),
                            seed=spec.noise.seed)
    return system
