"""CLI for the scenario library: ``python -m repro.scenarios ...``.

Subcommands:

``list``
    All registered scenarios with their one-line descriptions.
``show NAME``
    The canonical mapping of one scenario as JSON (feed it back
    through ``ScenarioSpec.from_mapping`` to reproduce the spec).
``run NAME``
    Run one scenario end to end and print per-tenant BER/goodput.
``docs [--check] [--path PATH]``
    Regenerate the scenario reference block in docs/SCENARIOS.md —
    or, with ``--check``, fail if the committed file drifted from the
    registry (the CI docs job runs this).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.scenarios.docsgen import DEFAULT_DOCS_PATH, check_docs, render_docs
from repro.scenarios.registry import all_specs, get_spec
from repro.scenarios.run import run_scenario


def _cmd_list() -> int:
    """Print every registered scenario and its description."""
    for spec in all_specs():
        print(f"{spec.name:22s} {spec.description}")
    return 0


def _cmd_show(name: str) -> int:
    """Print one scenario's canonical mapping as indented JSON."""
    print(json.dumps(get_spec(name).to_mapping(), indent=2, sort_keys=False))
    return 0


def _cmd_run(name: str) -> int:
    """Run one scenario and print its per-tenant outcome summary."""
    run = run_scenario(name)
    spec = run.spec
    print(f"scenario: {spec.name} (preset {spec.preset}, "
          f"{len(spec.tenants)} tenant(s))")
    for tenant in run.tenants:
        state = "ok" if tenant.feasible else "infeasible"
        print(f"  tenant {tenant.index} [{tenant.channel:6s}] "
              f"cores {tenant.sender_core}->{tenant.receiver_core}: "
              f"BER={tenant.ber:.3f}  "
              f"goodput={tenant.goodput_bps:,.0f} bit/s  [{state}]")
    print(f"mean BER {run.mean_ber:.3f}, aggregate goodput "
          f"{run.aggregate_goodput_bps:,.0f} bit/s")
    return 0


def _cmd_docs(path: str, check: bool) -> int:
    """Regenerate (or with ``check`` verify) the docs reference block."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 2
    if check:
        drift = check_docs(text)
        if drift:
            print(f"{path} drifted from the scenario registry "
                  f"({len(drift)} difference(s)); regenerate with "
                  f"`python -m repro.scenarios docs`:", file=sys.stderr)
            for line in drift[:20]:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"{path}: scenario reference is up to date")
        return 0
    fresh = render_docs(text)
    if fresh == text:
        print(f"{path}: already up to date")
        return 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(fresh)
    print(f"{path}: scenario reference regenerated")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Declarative scenario library (see docs/SCENARIOS.md).")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered scenarios")
    show = sub.add_parser("show", help="print one scenario's mapping (JSON)")
    show.add_argument("name")
    run = sub.add_parser("run", help="run one scenario end to end")
    run.add_argument("name")
    docs = sub.add_parser(
        "docs", help="regenerate the docs/SCENARIOS.md reference block")
    docs.add_argument("--check", action="store_true",
                      help="fail instead of rewriting when drifted")
    docs.add_argument("--path", default=DEFAULT_DOCS_PATH,
                      help=f"reference file (default: {DEFAULT_DOCS_PATH})")
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "show":
            return _cmd_show(args.name)
        if args.command == "run":
            return _cmd_run(args.name)
        return _cmd_docs(args.path, args.check)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
