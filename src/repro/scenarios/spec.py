"""Declarative scenario specifications (the scenario library's grammar).

A :class:`ScenarioSpec` is a frozen, validated description of one
complete experiment: which processor preset (and overrides) to build,
which mitigation options and PMU behaviour knobs to apply, which covert
tenants share the package and where they are pinned, what OS noise,
faults, and background workloads surround them, and what payload the
tenants transfer.  Everything is plain data with a dict/TOML-friendly
:meth:`ScenarioSpec.from_mapping` / :meth:`ScenarioSpec.to_mapping`
round-trip, so scenarios can live in files, travel over the service
HTTP API, and be digested by :mod:`repro.verify` without touching code.

Validation is front-loaded and actionable: unknown fields, impossible
topologies (a tenant on a core the preset does not have, two tenants
sharing a hardware thread, SMT placement on a part without SMT), bad
payloads, and unparseable fault specs all raise
:class:`~repro.errors.ConfigError` naming the offending field and the
valid alternatives at construction time, never mid-run.

See docs/SCENARIOS.md for the full grammar and worked examples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.core.channel import ChannelConfig
from repro.errors import ConfigError
from repro.faults import parse_fault_spec
from repro.isa.instructions import IClass
from repro.isa.workload import (
    PhaseTrace,
    browser_like_trace,
    calculix_like_trace,
    ml_inference_like_trace,
    power_virus,
    random_phi_schedule,
    sevenzip_like_trace,
    video_codec_like_trace,
)
from repro.pmu.central import GRANT_POLICIES
from repro.soc.config import PRESETS, ProcessorConfig, preset
from repro.soc.noise import NoiseConfig
from repro.soc.system import SystemOptions

#: Covert-channel placements a :class:`TenantSpec` accepts, mirroring
#: the paper's three channels (Section 4.3): same hardware thread,
#: across SMT siblings, across physical cores.
CHANNEL_KINDS: Tuple[str, ...] = ("thread", "smt", "cores")

#: Workload kinds a :class:`WorkloadSpec` can synthesise.  All but
#: ``replay`` map to the factories in :mod:`repro.isa.workload`;
#: ``replay`` plays back an explicit recorded phase list.
WORKLOAD_KINDS: Tuple[str, ...] = (
    "browser", "sevenzip", "calculix", "ml_inference", "video_codec",
    "power_virus", "phi_schedule", "replay",
)

#: Scalar :class:`~repro.soc.config.ProcessorConfig` fields a scenario
#: may override on top of its preset.  Deliberately narrow: structural
#: fields (V/F points, turbo ceilings, thermal spec) stay preset-owned.
OVERRIDABLE_FIELDS: Tuple[str, ...] = (
    "n_cores", "base_freq_ghz", "reset_time_us", "pll_relock_ns",
    "vr_slew_mv_per_us", "vr_command_latency_ns", "vid_step_mv",
    "r_ll_mohm", "droop_margin_mv",
)

#: Valid scenario names: lowercase identifiers (also golden file stems).
_NAME_RE = re.compile(r"[a-z][a-z0-9_]*")


def _require_keys(mapping: Mapping[str, Any], valid: Iterable[str],
                  context: str) -> None:
    """Reject unknown mapping keys with the valid alternatives listed."""
    valid = tuple(valid)
    unknown = sorted(set(mapping) - set(valid))
    if unknown:
        raise ConfigError(
            f"unknown {context} field(s) {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(valid)}")


@dataclass(frozen=True)
class PMUSpec:
    """Central-PMU behaviour knobs of one scenario.

    Parameters
    ----------
    queue_depth:
        Per-rail transition queue bound; 0 (default) is the unbounded
        mailbox the paper characterises.  See
        :class:`repro.pmu.central.PMUConfig`.
    grant_policy:
        ``"serialized"`` (paper behaviour) or ``"coalesced"`` (batch
        all queued up-requests into one transition).
    """

    queue_depth: int = 0
    grant_policy: str = "serialized"

    def __post_init__(self) -> None:
        if self.queue_depth < 0:
            raise ConfigError(
                f"pmu.queue_depth must be >= 0 (0 = unbounded), "
                f"got {self.queue_depth}")
        if self.grant_policy not in GRANT_POLICIES:
            raise ConfigError(
                f"pmu.grant_policy must be one of {GRANT_POLICIES}, "
                f"got {self.grant_policy!r}")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "PMUSpec":
        """Build from a plain dict; unknown keys raise ConfigError."""
        _require_keys(mapping, ("queue_depth", "grant_policy"), "pmu")
        return cls(queue_depth=int(mapping.get("queue_depth", 0)),
                   grant_policy=str(mapping.get("grant_policy", "serialized")))

    def to_mapping(self) -> Dict[str, Any]:
        """Canonical plain-dict form (every field explicit)."""
        return {"queue_depth": self.queue_depth,
                "grant_policy": self.grant_policy}


@dataclass(frozen=True)
class OptionsSpec:
    """Mitigation/ablation switches forwarded to ``SystemOptions``.

    Each field mirrors the identically named
    :class:`~repro.soc.system.SystemOptions` switch; the PMU knobs and
    kernel mode are carried elsewhere (:class:`PMUSpec`, environment).
    """

    per_core_vr: bool = False
    ldo_rails: bool = False
    improved_throttling: bool = False
    secure_mode: bool = False
    turbo_license_limit: bool = False

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "OptionsSpec":
        """Build from a plain dict; unknown keys raise ConfigError."""
        names = tuple(f.name for f in fields(cls))
        _require_keys(mapping, names, "options")
        return cls(**{name: bool(mapping.get(name, False)) for name in names})

    def to_mapping(self) -> Dict[str, Any]:
        """Canonical plain-dict form.

        Every original switch is explicit; ``turbo_license_limit`` is
        emitted only when set.  Run documents embed this mapping, so an
        unconditionally emitted new key would silently re-digest every
        committed golden — absent-means-False keeps pre-existing
        digests stable while the round-trip stays an identity.
        """
        mapping = {f.name: getattr(self, f.name) for f in fields(self)}
        if not mapping["turbo_license_limit"]:
            del mapping["turbo_license_limit"]
        return mapping


@dataclass(frozen=True)
class NoiseSpec:
    """OS-noise profile applied to every tenant hardware thread.

    The first four fields mirror :class:`~repro.soc.noise.NoiseConfig`;
    ``horizon_ms`` bounds how long the noise processes run (covering
    calibration plus transfer is enough) and ``seed`` makes the arrival
    processes reproducible.
    """

    interrupt_rate_per_s: float = 500.0
    interrupt_mean_us: float = 3.0
    ctx_switch_rate_per_s: float = 100.0
    ctx_switch_mean_us: float = 25.0
    horizon_ms: float = 50.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.horizon_ms <= 0:
            raise ConfigError(
                f"noise.horizon_ms must be positive, got {self.horizon_ms}")
        self.config()  # delegate rate/service-time validation

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "NoiseSpec":
        """Build from a plain dict; unknown keys raise ConfigError."""
        names = tuple(f.name for f in fields(cls))
        _require_keys(mapping, names, "noise")
        kwargs: Dict[str, Any] = {}
        for name in names:
            if name in mapping:
                kwargs[name] = (int(mapping[name]) if name == "seed"
                                else float(mapping[name]))
        return cls(**kwargs)

    def to_mapping(self) -> Dict[str, Any]:
        """Canonical plain-dict form (every field explicit)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def config(self) -> NoiseConfig:
        """The :class:`~repro.soc.noise.NoiseConfig` this spec describes."""
        return NoiseConfig(
            interrupt_rate_per_s=self.interrupt_rate_per_s,
            interrupt_mean_us=self.interrupt_mean_us,
            ctx_switch_rate_per_s=self.ctx_switch_rate_per_s,
            ctx_switch_mean_us=self.ctx_switch_mean_us,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """One background workload pinned to a hardware thread.

    Parameters
    ----------
    kind:
        One of :data:`WORKLOAD_KINDS`.  The synthetic kinds call the
        matching :mod:`repro.isa.workload` factory; ``replay`` plays
        the explicit ``phases`` list back verbatim (trace-driven replay
        of a recorded :class:`~repro.isa.workload.PhaseTrace`).
    core / smt_slot:
        Hardware-thread pinning; collisions with tenants are rejected
        by :class:`ScenarioSpec`.
    duration_ms:
        Trace length for the synthetic kinds (ignored by ``replay``,
        where the phases carry their own durations).
    seed:
        Factory seed for the randomised synthetic kinds.
    rate_per_s:
        PHI-burst rate, used by ``phi_schedule`` only.
    phases:
        ``replay`` payload: ``((iclass_name, duration_ns), ...)`` pairs
        where ``iclass_name`` is an :class:`~repro.isa.instructions.IClass`
        member name (``"SCALAR_64"``, ``"HEAVY_256"``, ...).
    """

    kind: str
    core: int = 1
    smt_slot: int = 0
    duration_ms: float = 20.0
    seed: int = 7
    rate_per_s: float = 200.0
    phases: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(
            (str(name), float(duration)) for name, duration in self.phases))
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigError(
                f"unknown workload kind {self.kind!r}; "
                f"valid kinds: {', '.join(WORKLOAD_KINDS)}")
        if self.core < 0:
            raise ConfigError(f"workload core must be >= 0, got {self.core}")
        if self.smt_slot not in (0, 1):
            raise ConfigError(
                f"workload smt_slot must be 0 or 1, got {self.smt_slot}")
        if self.duration_ms <= 0:
            raise ConfigError(
                f"workload duration_ms must be positive, got {self.duration_ms}")
        if self.kind == "replay":
            if not self.phases:
                raise ConfigError(
                    "a 'replay' workload needs a non-empty 'phases' list of "
                    "[iclass_name, duration_ns] pairs")
            for name, duration in self.phases:
                if name not in IClass.__members__:
                    raise ConfigError(
                        f"unknown instruction class {name!r} in replay "
                        f"phases; valid classes: "
                        f"{', '.join(IClass.__members__)}")
                if duration <= 0:
                    raise ConfigError(
                        f"replay phase durations must be positive ns, "
                        f"got {duration} for {name}")
        elif self.phases:
            raise ConfigError(
                f"'phases' is only valid for kind 'replay', "
                f"not {self.kind!r}")

    @classmethod
    def replay(cls, trace: PhaseTrace, core: int = 1,
               smt_slot: int = 0) -> "WorkloadSpec":
        """Capture a recorded trace as a replayable workload spec."""
        phases = tuple((phase.iclass.name, float(phase.duration_ns))
                       for phase in trace)
        duration_ms = max(trace.duration_ns / 1e6, 1e-6)
        return cls(kind="replay", core=core, smt_slot=smt_slot,
                   duration_ms=duration_ms, phases=phases)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "WorkloadSpec":
        """Build from a plain dict; unknown keys raise ConfigError."""
        names = tuple(f.name for f in fields(cls))
        _require_keys(mapping, names, "workload")
        if "kind" not in mapping:
            raise ConfigError(
                f"a workload mapping needs a 'kind' "
                f"(one of: {', '.join(WORKLOAD_KINDS)})")
        kwargs: Dict[str, Any] = {"kind": str(mapping["kind"])}
        for name, convert in (("core", int), ("smt_slot", int),
                              ("duration_ms", float), ("seed", int),
                              ("rate_per_s", float)):
            if name in mapping:
                kwargs[name] = convert(mapping[name])
        if "phases" in mapping:
            kwargs["phases"] = tuple(
                (str(name), float(duration))
                for name, duration in mapping["phases"])
        return cls(**kwargs)

    def to_mapping(self) -> Dict[str, Any]:
        """Canonical plain-dict form (every field explicit)."""
        return {
            "kind": self.kind,
            "core": self.core,
            "smt_slot": self.smt_slot,
            "duration_ms": self.duration_ms,
            "seed": self.seed,
            "rate_per_s": self.rate_per_s,
            "phases": [[name, duration] for name, duration in self.phases],
        }

    def build_trace(self, max_vector_bits: int = 512) -> PhaseTrace:
        """Materialise the workload as a phase trace.

        ``max_vector_bits`` caps vector widths to what the target part
        executes (an AVX2-only part gets 256-bit power viruses and PHI
        bursts).
        """
        if self.kind == "replay":
            trace = PhaseTrace(name="replay")
            for name, duration_ns in self.phases:
                trace.append(IClass[name], duration_ns)
            return trace
        if self.kind == "browser":
            return browser_like_trace(self.duration_ms, seed=self.seed)
        if self.kind == "sevenzip":
            return sevenzip_like_trace(self.duration_ms, seed=self.seed)
        if self.kind == "calculix":
            return calculix_like_trace(self.duration_ms, seed=self.seed)
        if self.kind == "ml_inference":
            return ml_inference_like_trace(self.duration_ms,
                                           width_bits=max_vector_bits,
                                           seed=self.seed)
        if self.kind == "video_codec":
            return video_codec_like_trace(self.duration_ms, seed=self.seed)
        if self.kind == "power_virus":
            return power_virus(self.duration_ms, width_bits=max_vector_bits)
        # phi_schedule: restrict burst classes to the part's vector width.
        usable = tuple(c for c in (IClass.HEAVY_128, IClass.LIGHT_256,
                                   IClass.HEAVY_256, IClass.HEAVY_512)
                       if c.width_bits <= max_vector_bits)
        return random_phi_schedule(self.duration_ms, self.rate_per_s,
                                   classes=usable, seed=self.seed)


@dataclass(frozen=True)
class TenantSpec:
    """One covert sender/receiver pair (a tenant) and its placement.

    Parameters
    ----------
    channel:
        ``"thread"`` (IccThreadCovert: both parties time-share one
        hardware thread), ``"smt"`` (IccSMTcovert: SMT siblings of one
        core), or ``"cores"`` (IccCoresCovert: two physical cores
        coupled through the shared rail).
    sender_core / receiver_core:
        Physical core pinning.  ``thread``/``smt`` tenants live on one
        core, so both fields must match; ``cores`` tenants need two
        distinct cores.
    offset_fraction:
        This tenant's slot-clock phase as a fraction of the common slot
        (``0 <= f < 1``).  Spreading tenants across the slot moves
        their voltage transitions out of each other's measurement
        windows — the interference scenarios' main dial.
    """

    channel: str
    sender_core: int = 0
    receiver_core: int = 1
    offset_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.channel not in CHANNEL_KINDS:
            raise ConfigError(
                f"unknown tenant channel {self.channel!r}; "
                f"valid channels: {', '.join(CHANNEL_KINDS)}")
        if self.sender_core < 0 or self.receiver_core < 0:
            raise ConfigError(
                f"tenant cores must be >= 0, got "
                f"{self.sender_core}/{self.receiver_core}")
        if self.channel in ("thread", "smt"):
            if self.sender_core != self.receiver_core:
                raise ConfigError(
                    f"a {self.channel!r} tenant places both parties on one "
                    f"core; set receiver_core == sender_core "
                    f"(got {self.sender_core} vs {self.receiver_core})")
        elif self.sender_core == self.receiver_core:
            raise ConfigError(
                f"a 'cores' tenant needs two distinct cores, got both "
                f"on core {self.sender_core}")
        if not 0.0 <= self.offset_fraction < 1.0:
            raise ConfigError(
                f"offset_fraction must be in [0, 1), "
                f"got {self.offset_fraction}")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "TenantSpec":
        """Build from a plain dict; unknown keys raise ConfigError."""
        names = tuple(f.name for f in fields(cls))
        _require_keys(mapping, names, "tenant")
        if "channel" not in mapping:
            raise ConfigError(
                f"a tenant mapping needs a 'channel' "
                f"(one of: {', '.join(CHANNEL_KINDS)})")
        kwargs: Dict[str, Any] = {"channel": str(mapping["channel"])}
        for name, convert in (("sender_core", int), ("receiver_core", int),
                              ("offset_fraction", float)):
            if name in mapping:
                kwargs[name] = convert(mapping[name])
        return cls(**kwargs)

    def to_mapping(self) -> Dict[str, Any]:
        """Canonical plain-dict form (every field explicit)."""
        return {
            "channel": self.channel,
            "sender_core": self.sender_core,
            "receiver_core": self.receiver_core,
            "offset_fraction": self.offset_fraction,
        }

    def hardware_threads(self) -> Tuple[Tuple[int, int], ...]:
        """``(core, smt_slot)`` pairs this tenant occupies exclusively."""
        if self.channel == "thread":
            return ((self.sender_core, 0),)
        if self.channel == "smt":
            return ((self.sender_core, 0), (self.sender_core, 1))
        return ((self.sender_core, 0), (self.receiver_core, 0))


#: Keys a scenario mapping may carry (the spec grammar's top level).
_SPEC_KEYS: Tuple[str, ...] = (
    "name", "description", "preset", "overrides", "options", "pmu",
    "protocol", "tenants", "noise", "faults", "background",
    "payload_hex", "seed",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario (see the module docstring).

    Parameters
    ----------
    name / description:
        Identity and one-line documentation; the name is also the
        registry key, the CLI argument and the golden file stem.
    preset / overrides:
        Processor: a :data:`repro.soc.config.PRESETS` name plus scalar
        field overrides from :data:`OVERRIDABLE_FIELDS`.
    options / pmu:
        Mitigation switches and PMU queue/grant-policy knobs.
    protocol:
        :class:`~repro.core.channel.ChannelConfig` field overrides
        applied to every tenant's channel (e.g. shorter
        ``training_rounds`` for cheap scenarios).
    tenants:
        The covert pairs sharing the package (at least one).
    noise / faults / background:
        Optional OS-noise profile, :mod:`repro.faults` spec string
        (empty = none), and background workloads.
    payload_hex / seed:
        The transferred payload (hex) and the system RNG seed.
    """

    name: str
    description: str
    preset: str = "cannon_lake"
    overrides: Tuple[Tuple[str, Any], ...] = ()
    options: OptionsSpec = OptionsSpec()
    pmu: PMUSpec = PMUSpec()
    protocol: Tuple[Tuple[str, Any], ...] = ()
    tenants: Tuple[TenantSpec, ...] = (TenantSpec("thread", 0, 0),)
    noise: Optional[NoiseSpec] = None
    faults: str = ""
    background: Tuple[WorkloadSpec, ...] = ()
    payload_hex: str = "4943"
    seed: int = 2021

    def __post_init__(self) -> None:
        # Normalise the collection fields so equal scenarios compare
        # equal regardless of construction spelling (lists vs tuples,
        # override ordering) — required for the mapping round-trip to
        # be an identity.
        object.__setattr__(self, "overrides", tuple(
            sorted((str(k), v) for k, v in self.overrides)))
        object.__setattr__(self, "protocol", tuple(
            sorted((str(k), v) for k, v in self.protocol)))
        object.__setattr__(self, "tenants", tuple(self.tenants))
        object.__setattr__(self, "background", tuple(self.background))
        self._validate()

    def _validate(self) -> None:
        """Front-loaded validation; every failure names its field."""
        if not _NAME_RE.fullmatch(self.name):
            raise ConfigError(
                f"scenario name must be a lowercase identifier "
                f"([a-z][a-z0-9_]*), got {self.name!r}")
        if not self.description:
            raise ConfigError(f"scenario {self.name!r} needs a description")
        if self.preset not in PRESETS:
            raise ConfigError(
                f"unknown preset {self.preset!r}; "
                f"valid presets: {', '.join(PRESETS)}")
        for key, _ in self.overrides:
            if key not in OVERRIDABLE_FIELDS:
                raise ConfigError(
                    f"override {key!r} is not allowed; overridable fields: "
                    f"{', '.join(OVERRIDABLE_FIELDS)}")
        base = preset(self.preset)
        override_map = dict(self.overrides)
        n_cores = int(override_map.get("n_cores", base.n_cores))
        if n_cores > base.n_cores:
            raise ConfigError(
                f"n_cores override {n_cores} exceeds the {self.preset!r} "
                f"preset's {base.n_cores} cores (its turbo-ceiling rows "
                f"bound the core count); pick a bigger preset such as "
                f"'skylake_sp'")
        config = self.processor_config()  # ProcessorConfig re-validates
        valid_protocol = tuple(f.name for f in fields(ChannelConfig))
        for key, _ in self.protocol:
            if key not in valid_protocol:
                raise ConfigError(
                    f"protocol override {key!r} is not a ChannelConfig "
                    f"field; valid fields: {', '.join(valid_protocol)}")
        self.channel_config()  # ChannelConfig re-validates values
        try:
            payload = bytes.fromhex(self.payload_hex)
        except ValueError as exc:
            raise ConfigError(
                f"payload_hex must be an even-length hex string, "
                f"got {self.payload_hex!r}") from exc
        if not payload:
            raise ConfigError("payload_hex must encode at least one byte")
        if self.faults:
            parse_fault_spec(self.faults)  # raises with the valid models
        if not self.tenants:
            raise ConfigError(
                f"scenario {self.name!r} needs at least one tenant")
        self._validate_topology(config)

    def _validate_topology(self, config: ProcessorConfig) -> None:
        """Check tenant/background placement against the processor."""
        occupied: Dict[Tuple[int, int], str] = {}
        for index, tenant in enumerate(self.tenants):
            label = f"tenant {index} ({tenant.channel})"
            if tenant.channel == "smt" and not config.supports_smt:
                raise ConfigError(
                    f"{label} needs SMT, but preset {self.preset!r} has "
                    f"smt_per_core=1; use an SMT part such as "
                    f"'cannon_lake' or 'skylake_sp'")
            for core in (tenant.sender_core, tenant.receiver_core):
                if core >= config.n_cores:
                    raise ConfigError(
                        f"{label} is pinned to core {core}, but the "
                        f"scenario's processor has only {config.n_cores} "
                        f"cores (0..{config.n_cores - 1})")
            self._claim(occupied, tenant.hardware_threads(), label)
        for index, workload in enumerate(self.background):
            label = f"background {index} ({workload.kind})"
            if workload.core >= config.n_cores:
                raise ConfigError(
                    f"{label} is pinned to core {workload.core}, but the "
                    f"scenario's processor has only {config.n_cores} "
                    f"cores (0..{config.n_cores - 1})")
            if workload.smt_slot >= config.smt_per_core:
                raise ConfigError(
                    f"{label} uses smt_slot {workload.smt_slot}, but "
                    f"preset {self.preset!r} has "
                    f"smt_per_core={config.smt_per_core}")
            self._claim(occupied,
                        ((workload.core, workload.smt_slot),), label)

    @staticmethod
    def _claim(occupied: Dict[Tuple[int, int], str],
               threads: Tuple[Tuple[int, int], ...], label: str) -> None:
        """Claim hardware threads, rejecting double occupancy."""
        for thread in threads:
            holder = occupied.get(thread)
            if holder is not None:
                core, slot = thread
                raise ConfigError(
                    f"{label} collides with {holder} on core {core} "
                    f"smt_slot {slot}; every party needs its own "
                    f"hardware thread")
            occupied[thread] = label

    # -- mapping round-trip ---------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a validated spec from a plain (TOML/JSON-shaped) dict.

        Unknown keys anywhere in the mapping raise
        :class:`~repro.errors.ConfigError` listing the valid fields.
        """
        _require_keys(mapping, _SPEC_KEYS, "scenario")
        for required in ("name", "description"):
            if required not in mapping:
                raise ConfigError(
                    f"a scenario mapping needs a {required!r} field")
        noise_mapping = mapping.get("noise")
        return cls(
            name=str(mapping["name"]),
            description=str(mapping["description"]),
            preset=str(mapping.get("preset", "cannon_lake")),
            overrides=tuple(sorted(
                (str(k), v)
                for k, v in dict(mapping.get("overrides", {})).items())),
            options=OptionsSpec.from_mapping(mapping.get("options", {})),
            pmu=PMUSpec.from_mapping(mapping.get("pmu", {})),
            protocol=tuple(sorted(
                (str(k), v)
                for k, v in dict(mapping.get("protocol", {})).items())),
            tenants=tuple(TenantSpec.from_mapping(t)
                          for t in mapping.get("tenants", ())),
            noise=(None if noise_mapping is None
                   else NoiseSpec.from_mapping(noise_mapping)),
            faults=str(mapping.get("faults", "")),
            background=tuple(WorkloadSpec.from_mapping(w)
                             for w in mapping.get("background", ())),
            payload_hex=str(mapping.get("payload_hex", "4943")),
            seed=int(mapping.get("seed", 2021)),
        )

    def to_mapping(self) -> Dict[str, Any]:
        """The canonical plain-dict form of this spec.

        Every field is explicit (defaults included), keys are sorted
        inside the override/protocol sub-dicts, and all values are
        plain JSON types — so ``to_mapping`` output is stable input for
        digests, goldens, docs generation and ``from_mapping``.
        """
        return {
            "name": self.name,
            "description": self.description,
            "preset": self.preset,
            "overrides": dict(self.overrides),
            "options": self.options.to_mapping(),
            "pmu": self.pmu.to_mapping(),
            "protocol": dict(self.protocol),
            "tenants": [t.to_mapping() for t in self.tenants],
            "noise": None if self.noise is None else self.noise.to_mapping(),
            "faults": self.faults,
            "background": [w.to_mapping() for w in self.background],
            "payload_hex": self.payload_hex,
            "seed": self.seed,
        }

    # -- materialisation helpers ---------------------------------------------

    def processor_config(self) -> ProcessorConfig:
        """The processor this scenario runs on (preset + overrides)."""
        return preset(self.preset).with_overrides(**dict(self.overrides))

    def system_options(self) -> SystemOptions:
        """The ``SystemOptions`` this scenario's system is built with.

        The kernel mode is deliberately left at its environment-driven
        default so scenarios stay bit-identical under both
        ``REPRO_KERNEL`` settings.
        """
        return SystemOptions(
            per_core_vr=self.options.per_core_vr,
            ldo_rails=self.options.ldo_rails,
            improved_throttling=self.options.improved_throttling,
            secure_mode=self.options.secure_mode,
            turbo_license_limit=self.options.turbo_license_limit,
            pmu_queue_depth=self.pmu.queue_depth,
            pmu_grant_policy=self.pmu.grant_policy,
        )

    def channel_config(self) -> ChannelConfig:
        """The protocol configuration every tenant's channel uses."""
        return ChannelConfig(**dict(self.protocol))

    @property
    def payload(self) -> bytes:
        """The transferred payload as bytes."""
        return bytes.fromhex(self.payload_hex)
