"""The matrix sweep: cross product of attackers and defenders.

:func:`run_matrix` runs every (attacker, defender) cell —
attacker-major, registry order, so results and goldens are stable —
through :func:`~repro.mitigations.matrix.cells.run_cell`, optionally
fanned out over a :class:`~repro.runner.SweepRunner` pool (the cell
task is module-level and keyword-driven, so it pickles), then measures
each defender's cost and assembles the
:class:`~repro.mitigations.matrix.report.MitigationMatrixReport`.

:func:`smoke_matrix` is the small fixed corner CI exercises on every
push: all three protocol tiers on the cross-core channel against the
undefended baseline, the secure mode, and the state-flush defender.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.mitigations.matrix.attackers import attacker_names, get_attacker
from repro.mitigations.matrix.cells import cell_from_mapping, run_cell
from repro.mitigations.matrix.cost import defender_cost
from repro.mitigations.matrix.defenders import defender_names, get_defender
from repro.mitigations.matrix.report import MitigationMatrixReport
from repro.runner import SweepRunner

#: The fixed smoke corner: every protocol tier on the cross-core
#: channel, against no defence, the strongest paper recipe, and one
#: literature recipe that degrades without killing.
SMOKE_ATTACKERS: Tuple[str, ...] = ("plain_cores", "arq_cores",
                                    "adaptive_cores")
SMOKE_DEFENDERS: Tuple[str, ...] = ("none", "secure_mode", "state_flush")


def run_matrix(attackers: Optional[Sequence[str]] = None,
               defenders: Optional[Sequence[str]] = None,
               runner: Optional[SweepRunner] = None,
               include_costs: bool = True) -> MitigationMatrixReport:
    """Run the attacker x defender cross product and report it.

    ``attackers``/``defenders`` default to the full registries (9 x 7);
    pass subsets to run a corner.  Unknown names raise ConfigError
    before any cell runs.  ``runner`` fans the cells out over a worker
    pool (and can attach a result cache); the default runs inline.
    ``include_costs=False`` skips the per-defender cost harness — the
    verify golden uses that to stay cheap.
    """
    chosen_attackers = tuple(attackers) if attackers else tuple(
        attacker_names())
    chosen_defenders = tuple(defenders) if defenders else tuple(
        defender_names())
    for name in chosen_attackers:
        get_attacker(name)
    for name in chosen_defenders:
        get_defender(name)
    if not chosen_attackers or not chosen_defenders:
        raise ConfigError("the matrix needs at least one attacker and "
                          "one defender")
    tasks = [{"attacker": attacker, "defender": defender}
             for attacker in chosen_attackers
             for defender in chosen_defenders]
    pool = runner if runner is not None else SweepRunner()
    mappings = pool.map(run_cell, tasks)
    cells = tuple(cell_from_mapping(m) for m in mappings)
    costs = (tuple(defender_cost(name) for name in chosen_defenders)
             if include_costs else ())
    return MitigationMatrixReport(
        cells=cells, costs=costs,
        attackers=chosen_attackers, defenders=chosen_defenders)


def smoke_matrix(runner: Optional[SweepRunner] = None,
                 include_costs: bool = True) -> MitigationMatrixReport:
    """The fixed 3x3 smoke corner CI runs on every push."""
    return run_matrix(attackers=SMOKE_ATTACKERS,
                      defenders=SMOKE_DEFENDERS,
                      runner=runner, include_costs=include_costs)
