"""Defender cost: what the defence charges the protected workload.

A defence that kills the channel by making the machine slow or hot is
not free, and the matrix reports that price next to the security
verdict.  The harness runs one fixed victim workload — a
calculix-like compute trace whose loops are sized at a fixed reference
frequency, so the instruction total is identical under every defender
— to completion on the defended system and on an undefended reference
sharing the same preset overrides, then compares:

* **runtime overhead** — relative completion-time stretch (throttle
  windows, flush stalls, forfeited turbo headroom all land here);
* **power overhead** — relative mean package power over the run
  (secure mode's pinned guardbands land here).

Both are deterministic, so the matrix goldens can digest them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Generator, List

import numpy as np

from repro.isa.workload import PhaseTrace, calculix_like_trace, uniform_loop
from repro.mitigations.matrix.defenders import Defender, get_defender
from repro.scenarios.build import build_system
from repro.scenarios.registry import get_spec
from repro.scenarios.spec import ScenarioSpec
from repro.soc.system import System
from repro.units import ms_to_ns

#: Loops are sized at this frequency regardless of what the defended
#: machine actually runs at, so every defender executes the same
#: instruction count and completion times are comparable.
SIZING_FREQ_GHZ: float = 2.2

#: Victim workload length (at the sizing frequency) and its RNG seed.
WORKLOAD_MS: float = 3.0
_WORKLOAD_SEED: int = 17

#: Hard stop for a defended run: a defence that stretches the workload
#: past this point is scored at the cap (and is a broken defence).
_HORIZON_CAP_NS: float = ms_to_ns(60.0)

#: Power is averaged over this many evenly spaced samples of the run.
_POWER_SAMPLES: int = 257


@dataclass(frozen=True)
class DefenderCost:
    """One defender's measured price on the victim workload."""

    defender: str
    completion_ns: float
    reference_ns: float
    mean_power_w: float
    reference_power_w: float

    @property
    def runtime_overhead(self) -> float:
        """Relative completion-time stretch vs the undefended run."""
        return self.completion_ns / self.reference_ns - 1.0

    @property
    def power_overhead(self) -> float:
        """Relative mean-package-power increase vs the undefended run."""
        return self.mean_power_w / self.reference_power_w - 1.0

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-dict form (derived overheads included) for export."""
        mapping = dataclasses.asdict(self)
        mapping["runtime_overhead"] = self.runtime_overhead
        mapping["power_overhead"] = self.power_overhead
        return mapping


def _timed_program(system: System, thread_id: int, trace: PhaseTrace,
                   out: List[float]) -> Generator:
    """Play ``trace`` with loops sized at :data:`SIZING_FREQ_GHZ`.

    Appends the completion timestamp to ``out`` when the last phase
    retires — the completion signal :func:`_completion_and_power`
    reads after the run.
    """
    for phase in trace:
        loop = uniform_loop(phase.iclass,
                            duration_us=phase.duration_ns / 1_000.0,
                            freq_ghz=SIZING_FREQ_GHZ)
        yield system.execute(thread_id, loop)
    out.append(system.now)


def _completion_and_power(spec: ScenarioSpec) -> Dict[str, float]:
    """Run the fixed victim workload on ``spec``'s system and score it."""
    system = build_system(spec)
    trace = calculix_like_trace(total_ms=WORKLOAD_MS, seed=_WORKLOAD_SEED)
    out: List[float] = []
    system.spawn(_timed_program(system, system.thread_on(0), trace, out),
                 name="cost_workload")
    system.run_until(_HORIZON_CAP_NS)
    completion_ns = out[0] if out else _HORIZON_CAP_NS
    grid = np.linspace(0.0, completion_ns, _POWER_SAMPLES)
    mean_power = float(np.mean([system.power_at(float(t)) for t in grid]))
    return {"completion_ns": float(completion_ns),
            "mean_power_w": mean_power}


def _defended_spec(defender: Defender) -> ScenarioSpec:
    """The cost scenario for ``defender``: baseline + defender knobs."""
    base = get_spec("baseline_cores")
    if defender.name == "none":
        return base
    return dataclasses.replace(
        base, name=f"matrix_cost_{defender.name}",
        description=f"Cost run for the {defender.name} defender.",
        options=defender.options, faults=defender.faults,
        overrides=defender.overrides)


def _reference_spec(defender: Defender) -> ScenarioSpec:
    """The undefended reference: same preset overrides, no defence.

    Keeping the defender's preset overrides (e.g. the turbo defender's
    3.0 GHz base request) isolates the defence mechanism's cost from
    the operating point it assumes.
    """
    base = get_spec("baseline_cores")
    if not defender.overrides:
        return base
    return dataclasses.replace(
        base, name=f"matrix_cost_ref_{defender.name}",
        description=f"Undefended cost reference for {defender.name}.",
        overrides=defender.overrides)


def defender_cost(name: str) -> DefenderCost:
    """Measure :class:`DefenderCost` for the defender called ``name``."""
    defender = get_defender(name)
    defended = _completion_and_power(_defended_spec(defender))
    reference = _completion_and_power(_reference_spec(defender))
    return DefenderCost(
        defender=defender.name,
        completion_ns=defended["completion_ns"],
        reference_ns=reference["completion_ns"],
        mean_power_w=defended["mean_power_w"],
        reference_power_w=reference["mean_power_w"])


def cost_from_mapping(mapping: Dict[str, Any]) -> DefenderCost:
    """Rebuild a :class:`DefenderCost` from :meth:`DefenderCost.to_mapping`."""
    fields = {f.name for f in dataclasses.fields(DefenderCost)}
    return DefenderCost(**{k: v for k, v in mapping.items() if k in fields})
