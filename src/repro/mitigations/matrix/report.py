"""The matrix report: cells + costs, queryable and exportable.

:class:`MitigationMatrixReport` is what
:func:`~repro.mitigations.matrix.sweep.run_matrix` returns: every
scored :class:`~repro.mitigations.matrix.cells.MatrixCell`, the
per-defender :class:`~repro.mitigations.matrix.cost.DefenderCost`
measurements, and the attacker/defender axes in registry order.  It
exports three ways —

* ``document()`` / ``to_json_text()`` — the canonical mapping the
  golden gates digest and the CLI's ``--matrix-json`` writes;
* ``to_csv_text()`` — one row per cell with the defender's overheads
  joined in, for spreadsheets and the CI artifact;
* ``markdown_table()`` — the attacker x defender verdict grid used by
  docs/MITIGATIONS.md and EXPERIMENTS.md.

It also answers the two questions the acceptance gates ask:
:meth:`channels_defeated` (which channel families a defender kills
outright, across every protocol tier) and
:meth:`adaptive_shortfalls` (cells where the adaptive session fails
to strictly out-carry plain ARQ).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.errors import ConfigError
from repro.mitigations.matrix.cells import MatrixCell, cell_from_mapping
from repro.mitigations.matrix.cost import DefenderCost, cost_from_mapping
from repro.runner.cache import canonicalize

#: Columns of the CSV export, in order.
_CSV_COLUMNS: Tuple[str, ...] = (
    "attacker", "defender", "protocol", "channel", "scenario", "verdict",
    "feasible", "residual_ber", "residual_capacity_bps", "elapsed_ns",
    "attempts", "recalibrations", "degraded", "document_digest",
    "defender_runtime_overhead", "defender_power_overhead",
)


@dataclass(frozen=True)
class MitigationMatrixReport:
    """Every scored cell plus defender costs, with the axes in order."""

    cells: Tuple[MatrixCell, ...]
    costs: Tuple[DefenderCost, ...]
    attackers: Tuple[str, ...]
    defenders: Tuple[str, ...]

    def cell(self, attacker: str, defender: str) -> MatrixCell:
        """The scored cell at (attacker, defender); ConfigError if absent."""
        for cell in self.cells:
            if cell.attacker == attacker and cell.defender == defender:
                return cell
        raise ConfigError(
            f"no cell for attacker {attacker!r} x defender {defender!r} "
            f"in this report")

    def cost(self, defender: str) -> DefenderCost:
        """The cost record for ``defender``; ConfigError if absent."""
        for cost in self.costs:
            if cost.defender == defender:
                return cost
        raise ConfigError(f"no cost record for defender {defender!r}")

    def channels_defeated(self, defender: str) -> Set[str]:
        """Channel families ``defender`` kills across *every* tier.

        A channel counts as defeated only when every attacker of that
        family present in the report is defeated — one surviving
        protocol tier keeps the channel alive.
        """
        by_channel: Dict[str, List[MatrixCell]] = {}
        for cell in self.cells:
            if cell.defender == defender:
                by_channel.setdefault(cell.channel, []).append(cell)
        return {channel for channel, group in by_channel.items()
                if all(c.verdict == "defeated" for c in group)}

    def adaptive_shortfalls(self) -> List[str]:
        """Cells where the adaptive tier fails to out-carry plain ARQ.

        For every (defender, channel) where the ARQ cell is *not*
        defeated, the adaptive cell must also survive and carry
        strictly more residual capacity.  Returns human-readable
        violation strings — empty means the adaptive attacker dominates
        everywhere it should.
        """
        shortfalls: List[str] = []
        for defender in self.defenders:
            for channel in ("thread", "smt", "cores"):
                try:
                    arq = self.cell(f"arq_{channel}", defender)
                    adaptive = self.cell(f"adaptive_{channel}", defender)
                except ConfigError:
                    continue
                if arq.verdict == "defeated":
                    continue
                if adaptive.verdict == "defeated":
                    shortfalls.append(
                        f"{defender}/{channel}: adaptive defeated while "
                        f"arq survives")
                elif (adaptive.residual_capacity_bps
                        <= arq.residual_capacity_bps):
                    shortfalls.append(
                        f"{defender}/{channel}: adaptive carries "
                        f"{adaptive.residual_capacity_bps:.1f} b/s <= arq "
                        f"{arq.residual_capacity_bps:.1f} b/s")
        return shortfalls

    def document(self) -> Dict[str, Any]:
        """The canonical mapping form (what the golden gates digest)."""
        return {
            "attackers": list(self.attackers),
            "defenders": list(self.defenders),
            "cells": [cell.to_mapping() for cell in self.cells],
            "costs": [cost.to_mapping() for cost in self.costs],
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "MitigationMatrixReport":
        """Rebuild a report from :meth:`document` output."""
        return cls(
            cells=tuple(cell_from_mapping(m) for m in document["cells"]),
            costs=tuple(cost_from_mapping(m) for m in document["costs"]),
            attackers=tuple(document["attackers"]),
            defenders=tuple(document["defenders"]))

    def to_json_text(self) -> str:
        """The document as canonical (sorted-key, rounded) JSON text."""
        return json.dumps(canonicalize(self.document()), indent=2,
                          sort_keys=True) + "\n"

    def to_csv_text(self) -> str:
        """One CSV row per cell, defender overheads joined in."""
        overheads = {cost.defender: cost for cost in self.costs}
        buffer = io.StringIO()
        buffer.write(",".join(_CSV_COLUMNS) + "\n")
        for cell in self.cells:
            mapping = cell.to_mapping()
            cost = overheads.get(cell.defender)
            mapping["defender_runtime_overhead"] = (
                f"{cost.runtime_overhead:.6f}" if cost else "")
            mapping["defender_power_overhead"] = (
                f"{cost.power_overhead:.6f}" if cost else "")
            buffer.write(",".join(str(mapping[c]) for c in _CSV_COLUMNS)
                         + "\n")
        return buffer.getvalue()

    def markdown_table(self) -> str:
        """The attacker x defender verdict grid as a markdown table.

        Each cell shows ``verdict (capacity b/s)``; defenders head the
        columns with their runtime overhead in the header row.
        """
        overheads = {cost.defender: cost for cost in self.costs}
        headers = ["attacker"]
        for defender in self.defenders:
            cost = overheads.get(defender)
            suffix = (f" ({cost.runtime_overhead * 100.0:+.1f}% rt)"
                      if cost else "")
            headers.append(f"{defender}{suffix}")
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "---|" * len(headers)]
        for attacker in self.attackers:
            row = [f"`{attacker}`"]
            for defender in self.defenders:
                try:
                    cell = self.cell(attacker, defender)
                except ConfigError:
                    row.append("—")
                    continue
                row.append(f"{cell.verdict} "
                           f"({cell.residual_capacity_bps:.0f} b/s)")
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines) + "\n"

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json_text` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json_text())

    def write_csv(self, path: str) -> None:
        """Write :meth:`to_csv_text` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv_text())
