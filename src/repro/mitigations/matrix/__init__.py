"""Attacker-vs-defender evaluation matrix.

The paper's Section 7 names three defence recipes and reports each as
simply "defeating" the channels; this package turns that single data
point into a standing evaluation surface.  A **defender registry**
(:mod:`~repro.mitigations.matrix.defenders`) carries the paper's three
recipes plus three prevention-literature recipes (noise injection,
turbo-license limiting, temporal-partitioning state flush), and an
**attacker registry** (:mod:`~repro.mitigations.matrix.attackers`)
carries three protocol tiers (plain one-shot, Hamming-protected ARQ,
and the adaptive session) against each of the three channel families.
The cross product — 9 attackers x 7 defenders — runs every cell
through the scenario layer and reports residual BER, residual capacity
in bits per second, the cell verdict (``open``/``degraded``/
``defeated``), and the defender's own runtime/power cost
(:mod:`~repro.mitigations.matrix.cost`).

Entry points:

* :func:`~repro.mitigations.matrix.sweep.run_matrix` — the sweep,
  optionally fanned out over a :class:`~repro.runner.SweepRunner`;
* ``python -m repro --mitigation-matrix`` — the CLI front end with
  CSV/JSON export;
* the ``matrix_2x2`` verify scenario — a golden-digested 2x2 corner
  of the matrix keeping CI honest about drift.

See docs/MITIGATIONS.md for the worked tour and EXPERIMENTS.md for
headline numbers.
"""

from repro.mitigations.matrix.attackers import ATTACKERS, Attacker, attacker_names
from repro.mitigations.matrix.cells import MatrixCell, cell_spec, run_cell
from repro.mitigations.matrix.cost import DefenderCost, defender_cost
from repro.mitigations.matrix.defenders import DEFENDERS, Defender, defender_names
from repro.mitigations.matrix.report import MitigationMatrixReport
from repro.mitigations.matrix.sweep import run_matrix, smoke_matrix

__all__ = [
    "ATTACKERS",
    "Attacker",
    "DEFENDERS",
    "Defender",
    "DefenderCost",
    "MatrixCell",
    "MitigationMatrixReport",
    "attacker_names",
    "cell_spec",
    "defender_cost",
    "defender_names",
    "run_cell",
    "run_matrix",
    "smoke_matrix",
]
