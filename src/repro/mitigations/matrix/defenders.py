"""The defender registry of the mitigation matrix.

Seven defenders, in two groups:

* the **paper recipes** (Section 7): per-core LDO/IVR rails, improved
  (grant-before-throttle) throttling, and the secure mode;
* the **prevention-literature recipes**: scheduled noise injection,
  turbo-license limiting, and temporal-partitioning state flush —
  the classes of defence the RISC-V prevention work catalogues for
  current-management side channels.

Each :class:`Defender` is a frozen bundle of the scenario knobs that
realise the defence: a :class:`~repro.scenarios.spec.OptionsSpec`
(system-level switches), a fault-suite string (defender-controlled
perturbation processes), and preset overrides.  The three literature
recipes source their knobs from the registered
``matrix_noise_injection`` / ``matrix_turbo_license`` /
``matrix_state_flush`` scenarios so the matrix, the scenario CLI and
docs/SCENARIOS.md all read one definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.scenarios.registry import get_spec
from repro.scenarios.spec import OptionsSpec


@dataclass(frozen=True)
class Defender:
    """One defence recipe: the scenario knobs that realise it.

    ``options``/``faults``/``overrides`` are grafted onto the target
    channel's baseline scenario by
    :func:`~repro.mitigations.matrix.cells.cell_spec`; ``scenario``
    names the registered scenario this defender was sourced from (empty
    for the paper recipes, whose knobs are plain option switches).
    ``overhead_note`` is the qualitative cost the source literature
    quotes, complementing the measured
    :class:`~repro.mitigations.matrix.cost.DefenderCost`.
    """

    name: str
    description: str
    options: OptionsSpec = field(default_factory=OptionsSpec)
    faults: str = ""
    overrides: Tuple[Tuple[str, float], ...] = ()
    scenario: str = ""
    overhead_note: str = ""


def _literature_defenders() -> Tuple[Defender, ...]:
    """The three recipes sourced from registered matrix scenarios."""
    noise = get_spec("matrix_noise_injection")
    turbo = get_spec("matrix_turbo_license")
    flush = get_spec("matrix_state_flush")
    return (
        Defender(
            name="noise_injection",
            description=(
                "Scheduled grant-queue jamming plus slot-clock jitter "
                "smearing the TP level ladder"),
            faults=noise.faults,
            scenario=noise.name,
            overhead_note="jamming duty cycle steals grant bandwidth",
        ),
        Defender(
            name="turbo_license_limit",
            description=(
                "Package clamped to the worst-case turbo-license "
                "ceiling so guardband traffic stops moving frequency"),
            options=turbo.options,
            overrides=turbo.overrides,
            scenario=turbo.name,
            overhead_note="all turbo headroom above the ceiling forfeited",
        ),
        Defender(
            name="state_flush",
            description=(
                "Temporal partitioning: periodic worst-case state "
                "flush on a scheduling quantum"),
            faults=flush.faults,
            scenario=flush.name,
            overhead_note="every quantum pays a flush-and-settle stall",
        ),
    )


def _build_registry() -> Dict[str, Defender]:
    """All seven defenders, in documentation order."""
    paper = (
        Defender(
            name="none",
            description="No defence: the paper's baseline substrate",
        ),
        Defender(
            name="per_core_ldo",
            description=(
                "Per-core LDO/IVR rails: no shared-rail serialisation "
                "exists for cross-core channels (paper Section 7)"),
            options=OptionsSpec(per_core_vr=True, ldo_rails=True),
            overhead_note="roughly 11-13% core area for the LDO network",
        ),
        Defender(
            name="improved_throttling",
            description=(
                "Grant-before-throttle: the PMU raises guardbands "
                "without the blocking throttle window (paper Section 7)"),
            options=OptionsSpec(improved_throttling=True),
            overhead_note="design effort only; removes the SMT observable",
        ),
        Defender(
            name="secure_mode",
            description=(
                "Guardbands pinned at the power-virus worst case: "
                "nothing transitions, nothing throttles (paper Section 7)"),
            options=OptionsSpec(secure_mode=True),
            overhead_note="roughly 4-11% standing power at typical load",
        ),
    )
    return {d.name: d for d in paper + _literature_defenders()}


#: The registry: defender name -> :class:`Defender`, in documentation
#: order (paper recipes first, literature recipes after).
DEFENDERS: Dict[str, Defender] = _build_registry()


def defender_names() -> List[str]:
    """All defender names, in registry order."""
    return list(DEFENDERS)


def get_defender(name: str) -> Defender:
    """The defender called ``name`` (ConfigError on a typo)."""
    defender = DEFENDERS.get(name)
    if defender is None:
        raise ConfigError(
            f"unknown defender {name!r}; registered defenders: "
            f"{', '.join(defender_names())}")
    return defender
