"""The attacker registry of the mitigation matrix.

Nine attackers: three protocol tiers crossed with the three channel
families of the paper.

Protocol tiers (escalating sophistication, mirroring the repo's own
protocol stack):

* ``plain`` — the one-shot scenario transfer: calibrate once, send the
  payload once, no error protection.  Residual BER is the raw channel
  BER.
* ``arq`` — a :class:`~repro.core.session.CovertSession` with
  Hamming(7,4) FEC and retransmission on CRC failure: robust but pays
  a fixed 1/2-rate overhead in every cell.
* ``adaptive`` — the PR-3 adaptive session: no standing FEC, but BER
  tracking, re-calibration, exponential backoff and degraded-mode
  fallback.  Twice the clean-cell capacity of ``arq``; degrades
  instead of dying under defender pressure.

Channel families: ``thread`` (IccThreadCovert), ``smt``
(IccSMTcovert), ``cores`` (IccCoresCovert), each riding its registered
``baseline_*`` scenario topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.session import AdaptiveConfig, FecScheme, SessionConfig
from repro.errors import ConfigError
from repro.scenarios.spec import CHANNEL_KINDS

#: The protocol tiers, in escalation order.
PROTOCOLS: Tuple[str, ...] = ("plain", "arq", "adaptive")

_PROTOCOL_BLURBS: Dict[str, str] = {
    "plain": "one-shot transfer, no error protection",
    "arq": "Hamming(7,4) FEC session with retransmission",
    "adaptive": "adaptive session: recalibration, backoff, degradation",
}

_CHANNEL_BLURBS: Dict[str, str] = {
    "thread": "IccThreadCovert (time-sliced single thread)",
    "smt": "IccSMTcovert (SMT siblings, throttling observable)",
    "cores": "IccCoresCovert (shared rail across physical cores)",
}


@dataclass(frozen=True)
class Attacker:
    """One attacker: a protocol tier on one channel family."""

    name: str
    protocol: str
    channel: str
    description: str


def _build_registry() -> Dict[str, Attacker]:
    """All nine attackers, protocol-major (plain tier first)."""
    registry: Dict[str, Attacker] = {}
    for protocol in PROTOCOLS:
        for channel in CHANNEL_KINDS:
            name = f"{protocol}_{channel}"
            registry[name] = Attacker(
                name=name, protocol=protocol, channel=channel,
                description=(f"{_PROTOCOL_BLURBS[protocol]} over "
                             f"{_CHANNEL_BLURBS[channel]}"))
    return registry


#: The registry: attacker name -> :class:`Attacker`, protocol-major.
ATTACKERS: Dict[str, Attacker] = _build_registry()


def attacker_names() -> List[str]:
    """All attacker names, in registry order."""
    return list(ATTACKERS)


def get_attacker(name: str) -> Attacker:
    """The attacker called ``name`` (ConfigError on a typo)."""
    attacker = ATTACKERS.get(name)
    if attacker is None:
        raise ConfigError(
            f"unknown attacker {name!r}; registered attackers: "
            f"{', '.join(attacker_names())}")
    return attacker


def session_config(protocol: str) -> SessionConfig:
    """The session configuration realising a non-plain protocol tier.

    ``arq`` is the fixed-rate Hamming session; ``adaptive`` trades the
    standing FEC for the adaptive machinery (tight backoff so defender
    pressure costs time, not feasibility).  ``plain`` has no session —
    asking for one is a ConfigError.
    """
    if protocol == "arq":
        return SessionConfig(frame_bytes=8, fec=FecScheme.HAMMING,
                             max_retries=4)
    if protocol == "adaptive":
        return SessionConfig(
            frame_bytes=8, fec=FecScheme.NONE, max_retries=8,
            adaptive=AdaptiveConfig(
                ber_window=4, ber_bound=0.05, recalibration_budget=2,
                backoff_base_us=400.0, backoff_max_us=6000.0,
                degraded_fec=FecScheme.REPETITION3))
    raise ConfigError(
        f"protocol {protocol!r} has no session form; expected 'arq' "
        f"or 'adaptive'")
