"""One matrix cell: attacker x defender, run and scored.

A cell's scenario is the attacker's channel baseline with the
defender's knobs grafted on (:func:`cell_spec`); :func:`run_cell` then
executes it with the attacker's protocol tier and scores the residual
channel.  ``run_cell`` is a picklable module-level task so the sweep
can fan it out over a :class:`~repro.runner.SweepRunner` pool.

Verdicts:

* ``defeated`` — the channel is gone: calibration found no separable
  levels, the residual BER is at/above the 0.25 decode wall, or no
  residual capacity survives;
* ``open`` — residual BER below 0.05: the defender changed nothing
  that matters;
* ``degraded`` — alive but paying: errors, retransmissions or
  recalibrations eat into capacity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict

from repro.core.session import CovertSession
from repro.errors import CalibrationError, ConfigError, ProtocolError
from repro.mitigations.matrix.attackers import get_attacker, session_config
from repro.mitigations.matrix.defenders import Defender, get_defender
from repro.scenarios.build import build_system
from repro.scenarios.registry import get_spec
from repro.scenarios.run import make_channel, run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.units import bits_per_second

#: Residual BER at/above which a cell counts as defeated: past the
#: decode wall even repetition coding cannot recover the stream.
DEFEAT_BER: float = 0.25

#: Session-tier payload (24 bytes = three 8-byte frames).  The plain
#: tier keeps the baseline scenario's 2-byte payload so its cells stay
#: bit-identical to the committed goldens; sessions need several
#: frames so the protocol machinery (FEC rate, retransmission,
#: recalibration amortisation) is actually exercised.
SESSION_PAYLOAD_HEX: str = "49434841" * 6

#: Residual BER below which a defender has visibly changed nothing.
OPEN_BER: float = 0.05


@dataclass(frozen=True)
class MatrixCell:
    """One scored (attacker, defender) cell of the matrix.

    ``residual_ber`` is the error rate the attacker could not engineer
    away (post-FEC/ARQ for session tiers, raw for ``plain``);
    ``residual_capacity_bps`` is the correct-payload-bit rate actually
    achieved.  ``document_digest`` is only set for ``plain`` cells —
    it is the content digest of the underlying scenario run document,
    which for the ``none`` defender must equal the committed
    ``baseline_*`` golden digests bit for bit.
    """

    attacker: str
    defender: str
    protocol: str
    channel: str
    scenario: str
    feasible: bool
    residual_ber: float
    residual_capacity_bps: float
    elapsed_ns: float
    attempts: int
    recalibrations: int
    degraded: bool
    document_digest: str = ""

    @property
    def verdict(self) -> str:
        """``defeated`` / ``open`` / ``degraded`` (see module docs)."""
        if (not self.feasible or self.residual_ber >= DEFEAT_BER
                or self.residual_capacity_bps <= 0.0):
            return "defeated"
        if self.residual_ber < OPEN_BER:
            return "open"
        return "degraded"

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-dict form (verdict included) for JSON/golden export."""
        mapping = dataclasses.asdict(self)
        mapping["verdict"] = self.verdict
        return mapping


def cell_spec(channel: str, defender: Defender) -> ScenarioSpec:
    """The scenario a cell runs: channel baseline + defender knobs.

    The ``none`` defender returns the registered ``baseline_*`` spec
    object itself, so undefended cells stay bit-identical to the
    committed scenario goldens.  A literature defender on its native
    cross-core channel returns its registered ``matrix_*`` scenario
    for the same reason; every other combination grafts the defender's
    options/faults/overrides onto the channel baseline under a derived
    ``matrix_<defender>_<channel>`` name.
    """
    base = get_spec(f"baseline_{channel}")
    if defender.name == "none":
        return base
    if defender.scenario and channel == "cores":
        return get_spec(defender.scenario)
    return dataclasses.replace(
        base,
        name=f"matrix_{defender.name}_{channel}",
        description=(f"The {channel} channel against the "
                     f"{defender.name} defender (derived matrix cell)."),
        options=defender.options,
        faults=defender.faults,
        overrides=defender.overrides,
    )


def _defeated_cell(attacker_name: str, defender_name: str,
                   spec: ScenarioSpec) -> MatrixCell:
    """The cell recorded when the attacker cannot establish a channel."""
    attacker = get_attacker(attacker_name)
    return MatrixCell(
        attacker=attacker.name, defender=defender_name,
        protocol=attacker.protocol, channel=attacker.channel,
        scenario=spec.name, feasible=False, residual_ber=1.0,
        residual_capacity_bps=0.0, elapsed_ns=0.0, attempts=0,
        recalibrations=0, degraded=False)


def _run_plain_cell(attacker_name: str, defender_name: str,
                    spec: ScenarioSpec) -> MatrixCell:
    """Score a one-shot (no-session) cell via the scenario runner."""
    # Imported here, not at module top: repro.verify's package init
    # pulls in repro.analysis.experiments, which imports
    # repro.mitigations — a cycle if resolved at import time.
    from repro.verify.digest import content_digest

    attacker = get_attacker(attacker_name)
    run = run_scenario(spec)
    tenant = run.tenants[0]
    if not tenant.feasible:
        return _defeated_cell(attacker_name, defender_name, spec)
    return MatrixCell(
        attacker=attacker.name, defender=defender_name,
        protocol=attacker.protocol, channel=attacker.channel,
        scenario=spec.name, feasible=True,
        residual_ber=tenant.ber,
        residual_capacity_bps=(0.0 if tenant.ber >= DEFEAT_BER
                               else tenant.goodput_bps),
        elapsed_ns=run.elapsed_ns, attempts=1, recalibrations=0,
        degraded=False,
        document_digest=content_digest(run.document()))


def _run_session_cell(attacker_name: str, defender_name: str,
                      spec: ScenarioSpec) -> MatrixCell:
    """Score an ARQ/adaptive cell via a :class:`CovertSession`."""
    attacker = get_attacker(attacker_name)
    spec = dataclasses.replace(spec, payload_hex=SESSION_PAYLOAD_HEX)
    system = build_system(spec)
    channel = make_channel(system, spec.tenants[0], spec)
    session = CovertSession(channel, session_config(attacker.protocol))
    start_ns = system.now
    try:
        report = session.send(spec.payload)
    except (CalibrationError, ProtocolError):
        return _defeated_cell(attacker_name, defender_name, spec)
    elapsed_ns = system.now - start_ns
    payload_bits = 8 * len(spec.payload)
    residual = report.residual_ber
    # Past the decode wall the delivered bits carry no usable payload;
    # report zero residual capacity instead of a garbage-bit rate.
    capacity = (0.0 if residual >= DEFEAT_BER else
                bits_per_second(payload_bits * (1.0 - residual),
                                elapsed_ns))
    return MatrixCell(
        attacker=attacker.name, defender=defender_name,
        protocol=attacker.protocol, channel=attacker.channel,
        scenario=spec.name, feasible=True, residual_ber=residual,
        residual_capacity_bps=capacity, elapsed_ns=elapsed_ns,
        attempts=report.total_attempts,
        recalibrations=report.recalibrations,
        degraded=report.degraded)


def run_cell(attacker: str = "", defender: str = "") -> Dict[str, Any]:
    """Run one (attacker, defender) cell and return its mapping.

    The module-level, keyword-driven sweep task: picklable for
    :meth:`repro.runner.SweepRunner.map`, deterministic for the golden
    gates.  Raises ConfigError on unknown names or blank arguments.
    """
    if not attacker or not defender:
        raise ConfigError("run_cell needs attacker= and defender= names")
    spec = cell_spec(get_attacker(attacker).channel,
                     get_defender(defender))
    if get_attacker(attacker).protocol == "plain":
        cell = _run_plain_cell(attacker, defender, spec)
    else:
        cell = _run_session_cell(attacker, defender, spec)
    return cell.to_mapping()


def cell_from_mapping(mapping: Dict[str, Any]) -> MatrixCell:
    """Rebuild a :class:`MatrixCell` from :meth:`MatrixCell.to_mapping`."""
    fields = {f.name for f in dataclasses.fields(MatrixCell)}
    return MatrixCell(**{k: v for k, v in mapping.items() if k in fields})
