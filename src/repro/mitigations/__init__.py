"""The paper's mitigations (Section 7, Table 1).

Three defences, each a :class:`~repro.soc.system.SystemOptions` recipe
plus evaluation tooling:

* **Per-core voltage regulators** (LDO/IVR) — eliminates the cross-core
  serialisation (IccCoresCovert) and, with fast LDO ramps, shrinks the
  remaining throttling periods below usability.  11-13 % core area.
* **Improved core throttling** — gate only the PHI thread's uops;
  IccSMTcovert dies, the same-thread and cross-core channels survive.
* **Secure mode** — pin the worst-case guardband; no transitions, no
  throttling, all three channels die, at a 4-11 % power cost.
"""

from repro.mitigations.recipes import (
    Mitigation,
    improved_throttling_options,
    options_for,
    per_core_vr_options,
    secure_mode_options,
)
from repro.mitigations.detector import DetectionReport, ThrottleAnomalyDetector
from repro.mitigations.report import (
    MitigationOutcome,
    MitigationReport,
    evaluate_mitigation,
    evaluate_all,
)

__all__ = [
    "DetectionReport",
    "ThrottleAnomalyDetector",
    "Mitigation",
    "improved_throttling_options",
    "options_for",
    "per_core_vr_options",
    "secure_mode_options",
    "MitigationOutcome",
    "MitigationReport",
    "evaluate_mitigation",
    "evaluate_all",
]
