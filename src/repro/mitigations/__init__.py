"""The paper's mitigations (Section 7, Table 1).

Three defences, each a :class:`~repro.soc.system.SystemOptions` recipe
plus evaluation tooling:

* **Per-core voltage regulators** (LDO/IVR) — eliminates the cross-core
  serialisation (IccCoresCovert) and, with fast LDO ramps, shrinks the
  remaining throttling periods below usability.  11-13 % core area.
* **Improved core throttling** — gate only the PHI thread's uops;
  IccSMTcovert dies, the same-thread and cross-core channels survive.
* **Secure mode** — pin the worst-case guardband; no transitions, no
  throttling, all three channels die, at a 4-11 % power cost.

The :mod:`~repro.mitigations.matrix` subpackage widens this into a
standing attacker-vs-defender evaluation matrix: the three paper
recipes plus three prevention-literature defenders (noise injection,
turbo-license limiting, temporal-partitioning state flush), crossed
with three attacker protocol tiers per channel family, with residual
BER/capacity verdicts and per-defender runtime/power cost.  Run it
with ``python -m repro --mitigation-matrix``.
"""

from repro.mitigations.matrix import (
    ATTACKERS,
    Attacker,
    DEFENDERS,
    Defender,
    DefenderCost,
    MatrixCell,
    MitigationMatrixReport,
    run_matrix,
    smoke_matrix,
)

from repro.mitigations.recipes import (
    Mitigation,
    improved_throttling_options,
    options_for,
    per_core_vr_options,
    secure_mode_options,
)
from repro.mitigations.detector import DetectionReport, ThrottleAnomalyDetector
from repro.mitigations.report import (
    MitigationOutcome,
    MitigationReport,
    evaluate_mitigation,
    evaluate_all,
)

__all__ = [
    "ATTACKERS",
    "Attacker",
    "DEFENDERS",
    "Defender",
    "DefenderCost",
    "DetectionReport",
    "MatrixCell",
    "MitigationMatrixReport",
    "ThrottleAnomalyDetector",
    "Mitigation",
    "run_matrix",
    "smoke_matrix",
    "improved_throttling_options",
    "options_for",
    "per_core_vr_options",
    "secure_mode_options",
    "MitigationOutcome",
    "MitigationReport",
    "evaluate_mitigation",
    "evaluate_all",
]
