"""System-option recipes for each mitigation."""

from __future__ import annotations

import enum

from repro.errors import ConfigError
from repro.soc.system import SystemOptions


@enum.unique
class Mitigation(enum.Enum):
    """The three defences of Section 7."""

    NONE = "baseline"
    PER_CORE_VR = "per-core-vr"
    IMPROVED_THROTTLING = "improved-throttling"
    SECURE_MODE = "secure-mode"


def per_core_vr_options(fast_ldo: bool = True) -> SystemOptions:
    """Per-core rails; with ``fast_ldo`` also sub-0.5 us transitions.

    The paper proposes LDO (AMD-style) per-core regulators: the
    dedicated rail removes cross-core transition serialisation, and the
    fast ramp shrinks every remaining throttling period from >10 us to
    <0.5 us, making the level ladder unusable in practice.
    """
    return SystemOptions(per_core_vr=True, ldo_rails=fast_ldo)


def improved_throttling_options() -> SystemOptions:
    """Gate only the PHI thread's uops (no cross-SMT co-throttling)."""
    return SystemOptions(improved_throttling=True)


def secure_mode_options() -> SystemOptions:
    """Worst-case guardband pinned; no transitions, no throttling."""
    return SystemOptions(secure_mode=True)


def options_for(mitigation: Mitigation) -> SystemOptions:
    """The :class:`SystemOptions` implementing ``mitigation``."""
    if mitigation == Mitigation.NONE:
        return SystemOptions()
    if mitigation == Mitigation.PER_CORE_VR:
        return per_core_vr_options()
    if mitigation == Mitigation.IMPROVED_THROTTLING:
        return improved_throttling_options()
    if mitigation == Mitigation.SECURE_MODE:
        return secure_mode_options()
    raise ConfigError(f"unknown mitigation: {mitigation}")


#: Table 1's overhead column, as reported by the paper.
OVERHEAD_NOTES = {
    Mitigation.NONE: "none",
    Mitigation.PER_CORE_VR: "11%-13% more core area",
    Mitigation.IMPROVED_THROTTLING: "some design effort",
    Mitigation.SECURE_MODE: "4%-11% additional power",
}
