"""Mitigation evaluation harness (regenerates Table 1).

For each (channel, mitigation) pair the harness builds a fresh system
with the mitigation's options, calibrates the channel with *no* minimum
separation requirement (so even a barely-alive channel gets its best
shot), transfers a test payload, and classifies the outcome:

* ``MITIGATED`` — the level clusters collapse (or BER >= 0.25): the
  channel cannot carry data.
* ``PARTIAL`` — decodable in a noise-free simulation but with level
  separation below the reliable-decoding threshold; any real-world
  jitter breaks it.  This is the paper's 'Partially' for the fast
  per-core-VR defence: transitions still happen, but in <0.5 us.
* ``OPEN`` — the channel still works.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Type

from repro.core.channel import ChannelConfig, CovertChannel
from repro.core.cores_channel import IccCoresCovert
from repro.core.smt_channel import IccSMTcovert
from repro.core.thread_channel import IccThreadCovert
from repro.errors import CalibrationError, ConfigError
from repro.mitigations.recipes import Mitigation, OVERHEAD_NOTES, options_for
from repro.soc.config import ProcessorConfig
from repro.soc.system import System


@dataclass(frozen=True)
class MitigationOutcome:
    """Result of testing one channel under one mitigation."""

    channel: str
    mitigation: Mitigation
    verdict: str  # MITIGATED / PARTIAL / OPEN
    ber: float
    min_separation_tsc: float

    @property
    def blocked(self) -> bool:
        """True when the channel is unusable under the mitigation."""
        return self.verdict == "MITIGATED"


@dataclass
class MitigationReport:
    """Table-1-shaped collection of outcomes."""

    outcomes: List[MitigationOutcome]
    secure_mode_power_overhead: float
    overhead_notes: Dict[Mitigation, str]

    def verdict(self, channel: str, mitigation: Mitigation) -> str:
        """Verdict string for a (channel, mitigation) cell."""
        for outcome in self.outcomes:
            if outcome.channel == channel and outcome.mitigation == mitigation:
                return outcome.verdict
        raise ConfigError(f"no outcome recorded for {channel} / {mitigation}")


_CHANNELS: Dict[str, Type[CovertChannel]] = {
    "IccThreadCovert": IccThreadCovert,
    "IccSMTcovert": IccSMTcovert,
    "IccCoresCovert": IccCoresCovert,
}

_TEST_PAYLOAD = b"\x1b\x2d\x4e\x87"


def evaluate_mitigation(config: ProcessorConfig, channel_name: str,
                        mitigation: Mitigation,
                        channel_config: ChannelConfig = ChannelConfig(),
                        payload: bytes = _TEST_PAYLOAD) -> MitigationOutcome:
    """Test one channel against one mitigation on a fresh system."""
    channel_cls = _CHANNELS.get(channel_name)
    if channel_cls is None:
        raise ConfigError(
            f"unknown channel {channel_name!r}; choose from {sorted(_CHANNELS)}"
        )
    gap_required = channel_config.min_level_gap_tsc
    permissive = replace(channel_config, min_level_gap_tsc=0.0)
    system = System(config, options=options_for(mitigation))
    channel = channel_cls(system, permissive)
    try:
        calibrator = channel.calibrate()
    except CalibrationError:
        return MitigationOutcome(channel_name, mitigation, "MITIGATED",
                                 ber=0.5, min_separation_tsc=0.0)
    min_sep = min((gap for _, _, gap in calibrator.separations()), default=0.0)
    report = channel.transfer(payload)
    if report.ber >= 0.25:
        verdict = "MITIGATED"
    elif min_sep >= gap_required and report.ber < 0.05:
        verdict = "OPEN"
    else:
        verdict = "PARTIAL"
    return MitigationOutcome(channel_name, mitigation, verdict,
                             ber=report.ber, min_separation_tsc=min_sep)


def evaluate_all(config: ProcessorConfig,
                 channel_config: ChannelConfig = ChannelConfig(),
                 mitigations: "List[Mitigation]" = (
                     Mitigation.PER_CORE_VR,
                     Mitigation.IMPROVED_THROTTLING,
                     Mitigation.SECURE_MODE,
                 ),
                 channel_filter: Callable[[str], bool] = lambda _name: True,
                 ) -> MitigationReport:
    """Build the full Table-1 matrix for one processor."""
    outcomes: List[MitigationOutcome] = []
    for channel_name in _CHANNELS:
        if not channel_filter(channel_name):
            continue
        if channel_name == "IccSMTcovert" and not config.smt_per_core > 1:
            continue
        if channel_name == "IccCoresCovert" and config.n_cores < 2:
            continue
        for mitigation in mitigations:
            outcomes.append(
                evaluate_mitigation(config, channel_name, mitigation,
                                    channel_config)
            )
    reference = System(config, options=options_for(Mitigation.SECURE_MODE))
    from repro.isa.instructions import IClass  # local to avoid cycle at import

    overhead = reference.pmu.secure_mode_power_overhead(IClass.SCALAR_64)
    return MitigationReport(
        outcomes=outcomes,
        secure_mode_power_overhead=overhead,
        overhead_notes=dict(OVERHEAD_NOTES),
    )
