"""Defender-side detection of covert-channel throttle patterns.

The mitigations of Section 7 change the hardware; a software defender on
*today's* hardware can still watch for the channels' signature: IChannels
transactions throttle the core at a metronomic slot period (the sender
must respect the reset-time, so episodes arrive every ~0.7 ms with very
low jitter), while organic workloads throttle irregularly whenever their
phase structure happens to cross a guardband boundary.

:class:`ThrottleAnomalyDetector` consumes the per-core throttle traces
the simulator records (a real deployment would use the frontend-stall
PMCs of Figure 11) and flags cores whose throttle-episode intervals are
too regular for too long.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.measure.trace import StepTrace
from repro.soc.system import System


@dataclass(frozen=True)
class DetectionReport:
    """Verdict for one core's throttle activity."""

    core: int
    episodes: int
    mean_interval_ns: float
    interval_cv: float
    periodicity: float
    flagged: bool

    @property
    def episode_rate_hz(self) -> float:
        """Throttle episodes per second."""
        if self.mean_interval_ns <= 0:
            return 0.0
        return 1e9 / self.mean_interval_ns


class ThrottleAnomalyDetector:
    """Flags clocked throttle-episode trains.

    The channel's signature is *periodicity*, not constant spacing: a
    transaction throttles the core more than once (the sender's ramp and
    the probe's), so the interval stream is multi-modal but repeats with
    the slot clock exactly.  The detector bins episode starts and scores
    the autocorrelation of the binned train; covert slots produce a
    near-1 peak at the slot lag, organic workloads stay low.

    Parameters
    ----------
    min_episodes:
        Minimum throttle episodes before a verdict is attempted; fewer
        episodes stay unflagged (not enough evidence).
    periodicity_threshold:
        Autocorrelation peak above which the train counts as clocked.
    bin_ns:
        Time bin for the autocorrelation (should be well below the slot
        period and above the intra-slot episode spacing jitter).
    """

    def __init__(self, min_episodes: int = 6,
                 periodicity_threshold: float = 0.5,
                 bin_ns: float = 50_000.0) -> None:
        if min_episodes < 3:
            raise ConfigError("need at least 3 episodes for intervals")
        if not 0.0 < periodicity_threshold <= 1.0:
            raise ConfigError("periodicity threshold must be in (0, 1]")
        if bin_ns <= 0:
            raise ConfigError("bin width must be positive")
        self.min_episodes = min_episodes
        self.periodicity_threshold = periodicity_threshold
        self.bin_ns = bin_ns

    def periodicity_score(self, starts: List[float], t0_ns: float,
                          t1_ns: float) -> float:
        """Peak normalised autocorrelation of the binned episode train."""
        if len(starts) < 3:
            return 0.0
        n_bins = max(8, int((t1_ns - t0_ns) / self.bin_ns) + 1)
        train = np.zeros(n_bins)
        for start in starts:
            idx = int((start - t0_ns) / self.bin_ns)
            if 0 <= idx < n_bins:
                train[idx] += 1.0
        train = train - train.mean()
        ac = np.correlate(train, train, mode="full")[n_bins - 1:]
        if ac[0] <= 0:
            return 0.0
        ac = ac / ac[0]
        # Skip the zero-lag neighbourhood; look within half the window.
        lo = 2
        hi = max(lo + 1, n_bins // 2)
        return float(np.max(ac[lo:hi]))

    def episode_starts(self, trace: StepTrace, t0_ns: float,
                       t1_ns: float) -> List[float]:
        """Rising edges of a 0/1 throttle trace within [t0, t1]."""
        starts = []
        previous = trace.value_at(t0_ns, default=0)
        for t, value in trace.changes_in(t0_ns, t1_ns):
            if value and not previous:
                starts.append(t)
            previous = value
        return starts

    def analyze_trace(self, core: int, trace: StepTrace, t0_ns: float,
                      t1_ns: float) -> DetectionReport:
        """Verdict for one throttle trace over a window."""
        if t1_ns <= t0_ns:
            raise ConfigError(f"empty window [{t0_ns}, {t1_ns}]")
        starts = self.episode_starts(trace, t0_ns, t1_ns)
        if len(starts) < self.min_episodes:
            return DetectionReport(core, len(starts), 0.0, float("inf"),
                                   periodicity=0.0, flagged=False)
        intervals = np.diff(np.asarray(starts))
        mean = float(np.mean(intervals))
        cv = float(np.std(intervals) / mean) if mean > 0 else float("inf")
        score = self.periodicity_score(starts, t0_ns, t1_ns)
        return DetectionReport(
            core=core,
            episodes=len(starts),
            mean_interval_ns=mean,
            interval_cv=cv,
            periodicity=score,
            flagged=score >= self.periodicity_threshold,
        )

    def analyze_system(self, system: System, t0_ns: float = 0.0,
                       t1_ns: Optional[float] = None
                       ) -> List[DetectionReport]:
        """Per-core verdicts over a simulated system's recorded traces."""
        end = t1_ns if t1_ns is not None else system.now
        return [
            self.analyze_trace(core, system.throttle_traces[core], t0_ns, end)
            for core in range(system.config.n_cores)
        ]

    def any_flagged(self, system: System) -> bool:
        """Whether any core shows a covert-channel-like pattern."""
        return any(report.flagged for report in self.analyze_system(system))
