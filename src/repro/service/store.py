"""Shared artifact store: the :class:`ResultCache` promoted to a service.

A :class:`ArtifactStore` is a drop-in :class:`~repro.runner.cache.
ResultCache` (sweep runners attach it unchanged) with the extra
guarantees a long-lived, multi-worker service needs:

* **versioned entries** — every stored value is wrapped in an envelope
  carrying the entry schema and the code version that produced it.  An
  entry whose envelope does not decode to the current schema (a foreign
  pickle, a pre-service entry, a future schema) is treated as *stale*:
  unlinked and counted, never returned;
* **eviction budgets** — :meth:`evict_to_budget` trims the store to a
  configured entry-count / byte-size / age budget, oldest entries
  first, so an always-on service cannot grow its disk without bound;
* **inventory** — :meth:`entries` and :meth:`total_bytes` give the
  scheduler and the HTTP ``/metrics`` endpoint a cheap view of what is
  on disk.

Writes stay atomic (tempfile + ``os.replace``) and last-writer-wins,
which is exactly what concurrent workers need: an ``evict`` racing an
in-flight ``put`` can at worst delete the *previous* entry under the
same key; the rename still lands the new one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.errors import ConfigError
from repro.runner.cache import CacheStats, ResultCache, code_version

#: Envelope schema version; bump on incompatible layout changes.
ARTIFACT_SCHEMA = 1

#: Envelope key marking a value as a versioned artifact entry.
_ENVELOPE_KEY = "__artifact__"


@dataclass
class StoreStats(CacheStats):
    """Cache counters plus the store-specific ones.

    ``stale`` counts entries that decoded fine but were not artifact
    envelopes of the current schema (each is also a miss and is
    unlinked).  ``evicted`` counts entries removed by budget eviction.
    """

    stale: int = 0
    evicted: int = 0


@dataclass(frozen=True)
class EntryInfo:
    """One on-disk entry of an :class:`ArtifactStore`."""

    key: str
    path: Path
    size_bytes: int
    mtime: float


@dataclass
class StoreBudget:
    """Eviction budget of an :class:`ArtifactStore`.

    Any field left ``None`` is unconstrained.  ``max_age_s`` is the
    maximum entry age in seconds since the entry was (re)written.
    """

    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    max_age_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 0:
            raise ConfigError(
                f"max_entries must be >= 0, got {self.max_entries}")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0, got {self.max_bytes}")
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ConfigError(f"max_age_s must be >= 0, got {self.max_age_s}")


class ArtifactStore(ResultCache):
    """Content-addressed artifact store shared by service workers.

    Parameters
    ----------
    root:
        Store directory; same default resolution as
        :class:`ResultCache` (``$REPRO_CACHE_DIR`` or ``.repro-cache``).
    version:
        Override the code-version component of every key (tests use
        this to simulate deployments without editing sources).
    budget:
        Optional :class:`StoreBudget`; :meth:`evict_to_budget` trims to
        it, and the service calls that hook after every job.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 version: Optional[str] = None,
                 budget: Optional[StoreBudget] = None) -> None:
        super().__init__(root=root, version=version)
        self.stats: StoreStats = StoreStats()
        self.budget = budget if budget is not None else StoreBudget()

    # -- versioned entries ---------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` wrapped in a versioned artifact envelope."""
        envelope = {
            _ENVELOPE_KEY: ARTIFACT_SCHEMA,
            "code": self.version if self.version is not None else code_version(),
            "value": value,
        }
        super().put(key, envelope)

    def get(self, key: str) -> Tuple[bool, Any]:
        """(hit, value); stale or foreign entries are unlinked misses."""
        hit, envelope = super().get(key)
        if not hit:
            return False, None
        if (isinstance(envelope, dict)
                and envelope.get(_ENVELOPE_KEY) == ARTIFACT_SCHEMA
                and "value" in envelope):
            return True, envelope["value"]
        # Decoded but not an envelope this build understands: a foreign
        # ResultCache pickle or another schema.  Serving it would hand
        # the caller an un-unwrapped (or wrongly-unwrapped) object.
        self.stats.stale += 1
        self.stats.hits -= 1
        self.stats.misses += 1
        try:
            self._path(key).unlink()
        except OSError:
            pass
        return False, None

    # -- inventory -----------------------------------------------------------

    def entries(self) -> List[EntryInfo]:
        """Every on-disk entry, oldest first (by mtime).

        Entries that vanish mid-scan (a concurrent ``clear``/``evict``)
        are skipped rather than raised.
        """
        found: List[EntryInfo] = []
        for path in self.root.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append(EntryInfo(key=path.stem, path=path,
                                   size_bytes=stat.st_size,
                                   mtime=stat.st_mtime))
        found.sort(key=lambda entry: (entry.mtime, entry.key))
        return found

    def total_bytes(self) -> int:
        """Sum of all entry sizes on disk."""
        return sum(entry.size_bytes for entry in self.entries())

    # -- budget eviction -----------------------------------------------------

    def evict_to_budget(self, now: Optional[float] = None) -> int:
        """Trim to the configured budget; returns entries removed.

        Age eviction runs first (anything older than ``max_age_s``),
        then count and byte budgets drop the oldest survivors until
        both hold.  A concurrently re-written entry whose unlink fails
        is simply skipped — last writer wins, as for ``put``.
        """
        budget = self.budget
        if (budget.max_entries is None and budget.max_bytes is None
                and budget.max_age_s is None):
            return 0
        clock = now if now is not None else time.time()
        survivors: List[EntryInfo] = []
        doomed: List[EntryInfo] = []
        for entry in self.entries():
            if (budget.max_age_s is not None
                    and clock - entry.mtime > budget.max_age_s):
                doomed.append(entry)
            else:
                survivors.append(entry)
        if budget.max_entries is not None:
            overflow = len(survivors) - budget.max_entries
            if overflow > 0:
                doomed.extend(survivors[:overflow])
                survivors = survivors[overflow:]
        if budget.max_bytes is not None:
            remaining = sum(entry.size_bytes for entry in survivors)
            index = 0
            while remaining > budget.max_bytes and index < len(survivors):
                doomed.append(survivors[index])
                remaining -= survivors[index].size_bytes
                index += 1
        removed = 0
        for entry in doomed:
            try:
                entry.path.unlink()
                removed += 1
            except OSError:
                pass
        self.stats.evicted += removed
        return removed

    def describe(self) -> dict:
        """A JSON-ready summary for status endpoints and logs."""
        inventory = self.entries()
        return {
            "root": str(self.root),
            "entries": len(inventory),
            "total_bytes": sum(entry.size_bytes for entry in inventory),
            "budget": {
                "max_entries": self.budget.max_entries,
                "max_bytes": self.budget.max_bytes,
                "max_age_s": self.budget.max_age_s,
            },
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "stores": self.stats.stores,
                "corrupt": self.stats.corrupt,
                "stale": self.stats.stale,
                "evicted": self.stats.evicted,
            },
        }
