"""``python -m repro.service`` — serve, drive and smoke the channel lab.

Server side::

    python -m repro.service serve --port 8123 --workers 4 --store .lab-store

Client side (against a running server)::

    python -m repro.service tasks
    python -m repro.service submit square --kwargs-json '[{"x": 3}]'
    python -m repro.service submit noop --count 1000 --stream
    python -m repro.service status job-000001
    python -m repro.service fetch job-000001
    python -m repro.service cancel job-000001

Self-contained (no server; the CI throughput gate)::

    python -m repro.service smoke --tasks 10000 --workers 4 \\
        --trace smoke-trace.json --metrics smoke-metrics.json

``smoke`` queues the requested number of no-op tasks, consumes the
job's completion stream live, cross-checks a ``square`` sweep for
bit-identity against an inline :class:`~repro.runner.SweepRunner`, and
prints the per-worker utilization report; exit status 0 only when every
check holds.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.runner import SweepRunner
from repro.service.http import ServiceHTTP
from repro.service.scheduler import ChannelLabService, ServiceConfig
from repro.service.store import ArtifactStore, StoreBudget
from repro.service.tasks import square, task_names

#: Progress line cadence of the smoke stream (tasks per line).
SMOKE_PROGRESS_EVERY = 1000


def _build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Channel-lab job service: HTTP server, client "
                    "commands, and the self-contained smoke gate.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8123)
    serve.add_argument("--workers", type=int, default=2,
                       help="async workers (one runner each)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="process-pool width per worker runner")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="tasks a worker drains per dispatch")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="artifact store directory (omit to disable "
                            "disk caching)")
    serve.add_argument("--store-max-entries", type=int, default=None)
    serve.add_argument("--store-max-bytes", type=int, default=None)
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="write a Chrome trace on shutdown")
    serve.add_argument("--metrics", metavar="PATH", default=None,
                       help="write a metrics snapshot on shutdown")

    for name, description in (("status", "one job's status document"),
                              ("fetch", "a finished job's results"),
                              ("cancel", "cancel a job"),
                              ("stream", "stream a job's completions")):
        client = sub.add_parser(name, help=description)
        client.add_argument("job_id")
        client.add_argument("--url", default="http://127.0.0.1:8123")
        if name == "fetch":
            client.add_argument("--wait", action="store_true",
                                help="block until the job finishes")

    tasks_cmd = sub.add_parser("tasks", help="list registered tasks")
    tasks_cmd.add_argument("--url", default="http://127.0.0.1:8123")

    jobs_cmd = sub.add_parser("jobs", help="list all jobs")
    jobs_cmd.add_argument("--url", default="http://127.0.0.1:8123")

    submit = sub.add_parser("submit", help="submit a job")
    submit.add_argument("task", help="registered task name")
    submit.add_argument("--url", default="http://127.0.0.1:8123")
    submit.add_argument("--kwargs-json", default=None,
                        help="JSON list of kwargs objects, one per task")
    submit.add_argument("--count", type=int, default=1,
                        help="submit COUNT empty-kwargs tasks instead")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--stream", action="store_true",
                        help="stream completions after submitting")

    smoke = sub.add_parser(
        "smoke", help="self-contained throughput + bit-identity gate")
    smoke.add_argument("--tasks", type=int, default=10000,
                       help="no-op tasks to drain through the queue")
    smoke.add_argument("--workers", type=int, default=4)
    smoke.add_argument("--batch-size", type=int, default=64)
    smoke.add_argument("--trace", metavar="PATH", default=None)
    smoke.add_argument("--metrics", metavar="PATH", default=None)
    return parser


# -- client commands ---------------------------------------------------------


def _request(url: str, method: str = "GET",
             payload: Optional[Dict[str, Any]] = None) -> Any:
    """One JSON request against the server; decoded response body."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace").strip()
        raise ConfigError(f"server answered {exc.code}: {detail}")
    except urllib.error.URLError as exc:
        raise ConfigError(f"cannot reach {url}: {exc.reason}")


def _stream_lines(url: str) -> int:
    """Print one NDJSON stream line per completion; lines printed."""
    printed = 0
    try:
        with urllib.request.urlopen(url) as response:
            for raw in response:
                line = raw.decode(errors="replace").rstrip("\n")
                if line:
                    print(line)
                    printed += 1
    except urllib.error.URLError as exc:
        raise ConfigError(f"cannot stream from {url}: {exc}")
    return printed


def _client_main(args: argparse.Namespace) -> int:
    """Dispatch one client subcommand; process exit status."""
    base = args.url.rstrip("/")
    if args.command == "tasks":
        document = _request(f"{base}/tasks")
    elif args.command == "jobs":
        document = _request(f"{base}/jobs")
    elif args.command == "status":
        document = _request(f"{base}/jobs/{args.job_id}")
    elif args.command == "fetch":
        wait = "?wait=1" if args.wait else ""
        document = _request(f"{base}/jobs/{args.job_id}/results{wait}")
    elif args.command == "cancel":
        document = _request(f"{base}/jobs/{args.job_id}/cancel",
                            method="POST")
    elif args.command == "stream":
        _stream_lines(f"{base}/jobs/{args.job_id}/stream")
        return 0
    elif args.command == "submit":
        if args.kwargs_json is not None:
            kwargs_list = json.loads(args.kwargs_json)
        else:
            kwargs_list = [{} for _ in range(args.count)]
        document = _request(f"{base}/jobs", method="POST",
                            payload={"task": args.task,
                                     "kwargs_list": kwargs_list,
                                     "priority": args.priority})
        if args.stream:
            print(json.dumps(document, sort_keys=True))
            _stream_lines(f"{base}/jobs/{document['id']}/stream")
            return 0
    else:  # pragma: no cover - argparse enforces the choices
        raise ConfigError(f"unknown command {args.command!r}")
    print(json.dumps(document, sort_keys=True, indent=2))
    return 0


# -- serve -------------------------------------------------------------------


async def _serve_async(args: argparse.Namespace) -> int:
    """Run the HTTP service until cancelled (Ctrl-C)."""
    store = None
    if args.store is not None:
        store = ArtifactStore(
            root=args.store,
            budget=StoreBudget(max_entries=args.store_max_entries,
                               max_bytes=args.store_max_bytes))
    config = ServiceConfig(workers=args.workers, runner_jobs=args.jobs,
                           batch_size=args.batch_size, store=store,
                           record_events=args.trace is not None)
    service = await ChannelLabService(config).start()
    front = ServiceHTTP(service)
    await front.start(host=args.host, port=args.port)
    print(f"repro.service listening on http://{args.host}:{front.port} "
          f"(workers={args.workers}, jobs={args.jobs}, "
          f"store={args.store or 'off'})", flush=True)
    try:
        await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
    finally:
        await front.stop()
        await service.stop(drain=False)
        if args.trace is not None:
            service.export_chrome_trace(args.trace)
        if args.metrics is not None:
            service.export_metrics(args.metrics)
    return 0


# -- smoke -------------------------------------------------------------------


async def _smoke_async(args: argparse.Namespace) -> int:
    """The self-contained gate: drain, stream, verify, report."""
    config = ServiceConfig(workers=args.workers,
                           batch_size=args.batch_size,
                           record_events=args.trace is not None)
    service = await ChannelLabService(config).start()
    failures: List[str] = []
    try:
        # 1. Throughput: drain the queued no-op tasks while consuming
        #    the completion stream live (partial results, not a final
        #    dump).
        job = await service.submit(
            "noop", [{"i": i} for i in range(args.tasks)])
        streamed = 0
        async for record in job.stream():
            if not record.ok:
                failures.append(f"task {record.index} failed: "
                                f"{record.error}")
            streamed += 1
            if streamed % SMOKE_PROGRESS_EVERY == 0:
                print(f"smoke: streamed {streamed}/{args.tasks} "
                      f"completions", flush=True)
        await job.wait()
        values = job.values()
        if streamed != args.tasks:
            failures.append(
                f"streamed {streamed} completions, expected {args.tasks}")
        if job.state != "done":
            failures.append(f"job finished {job.state}, expected done")
        bad_order = sum(1 for i, value in enumerate(values)
                        if value != {"i": i})
        if bad_order:
            failures.append(f"{bad_order} results out of input order")

        # 2. Bit-identity: the same square sweep through the service and
        #    through an inline runner must agree exactly.
        sweep = [{"x": float(x) * 0.5} for x in range(64)]
        service_job = await service.submit("square", sweep)
        await service_job.wait()
        inline = SweepRunner().map(square, sweep)
        if service_job.values() != inline:
            failures.append("service square sweep != inline SweepRunner")

        # 3. Per-worker metrics must actually have recorded work.
        utilization = service.utilization()
        busy_workers = sum(1 for worker in utilization["workers"]
                           if worker["tasks"] > 0)
        if busy_workers == 0:
            failures.append("no worker recorded any tasks")
        print(json.dumps({"tasks": args.tasks, "streamed": streamed,
                          "ok": not failures, "failures": failures,
                          "utilization": utilization},
                         sort_keys=True, indent=2))
    finally:
        await service.stop(drain=False)
        if args.trace is not None:
            service.export_chrome_trace(args.trace)
        if args.metrics is not None:
            service.export_metrics(args.metrics)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            return asyncio.run(_serve_async(args))
        if args.command == "smoke":
            return asyncio.run(_smoke_async(args))
        return _client_main(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
