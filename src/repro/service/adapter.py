"""Synchronous :class:`SweepRunner`-shaped facade over the service.

Everything above the runner layer — the figure experiments, the verify
scenarios, the benchmarks — takes a ``runner`` argument and calls
``runner.map(fn, kwargs_list)`` / ``runner.call(fn, **kwargs)``.
:class:`ServiceRunner` implements exactly that contract on top of a
:class:`~repro.service.scheduler.ChannelLabService`, so any experiment
can be routed *through the queue* unchanged:

    with ServiceRunner(ServiceConfig(workers=2)) as runner:
        document = fig13_slice(runner=runner)

The service's event loop runs on a private daemon thread; ``map`` blocks
the calling thread until the submitted job finishes, preserving the
synchronous call shape.  Results come back in input order and failures
re-raise the original annotated exception — the two properties
:mod:`repro.verify` leans on to prove the service path bit-identical to
the inline one.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, List, Mapping, Optional, Sequence

from repro.errors import ConfigError
from repro.runner import RunStats
from repro.service.scheduler import ChannelLabService, ServiceConfig


class ServiceRunner:
    """Drop-in sweep runner that executes through the job service.

    Parameters
    ----------
    config:
        The wrapped service's :class:`ServiceConfig`.  Defaults to two
        workers with inline runners and no store — the configuration
        whose results are trivially bit-identical to a plain
        :class:`~repro.runner.SweepRunner`.
    priority:
        Priority of every job this runner submits.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 priority: int = 0) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.priority = priority
        #: Stats of the most recent :meth:`map` call (runner contract).
        self.last_run = RunStats()
        #: Cumulative stats across this runner's lifetime.
        self.total = RunStats()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-service-runner", daemon=True)
        self._thread.start()
        self.service = self._call(ChannelLabService(self.config).start())
        self._closed = False

    def _call(self, coro: Any) -> Any:
        """Run a coroutine on the service loop; block for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def map(self, fn: Callable[..., Any],
            kwargs_list: Sequence[Mapping[str, Any]]) -> List[Any]:
        """Run ``fn(**kwargs)`` for every kwargs set, in input order.

        Submits one job to the wrapped service and blocks until it is
        terminal.  A failed job re-raises the first task's annotated
        exception, exactly like :meth:`SweepRunner.map`.
        """
        if self._closed:
            raise ConfigError("ServiceRunner is closed")
        if not kwargs_list:
            self.last_run = RunStats()
            return []
        job = self._call(self._run_job(fn, kwargs_list))
        stats = RunStats(tasks=job.tasks,
                         cache_hits=job.run_stats.cache_hits,
                         executed=job.run_stats.executed,
                         deduped=job.run_stats.deduped)
        self.last_run = stats
        self.total.add(stats)
        return job.values()

    async def _run_job(self, fn: Callable[..., Any],
                       kwargs_list: Sequence[Mapping[str, Any]]) -> Any:
        """Submit one job and await its terminal state (loop side)."""
        job = await self.service.submit(fn, kwargs_list,
                                        priority=self.priority)
        await job.wait()
        return job

    def call(self, fn: Callable[..., Any], **kwargs: Any) -> Any:
        """Run (or cache-resolve) a single task through the service."""
        return self.map(fn, [kwargs])[0]

    def close(self) -> None:
        """Stop the wrapped service and the loop thread; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._call(self.service.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> "ServiceRunner":
        """Use as a context manager; closes on exit."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Close the runner when the ``with`` block ends."""
        self.close()
