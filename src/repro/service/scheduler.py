"""Asyncio job scheduler + worker fleet over :class:`SweepRunner`.

The paper's evaluation is a giant sweep matrix; ROADMAP item 2 grows
the single-host process pool into a *service* that can absorb queued
experiment requests continuously.  The split mirrors the classic
scheduler / worker-fleet / recorder architecture:

* a **priority queue** (FIFO within a priority level) of individual
  experiment tasks, fed by :meth:`ChannelLabService.submit`;
* a **worker fleet**: each worker owns one
  :class:`~repro.runner.SweepRunner` (with its configured process-pool
  width) and drains batches of queued tasks through it on an executor
  thread, so the event loop keeps accepting submissions and serving
  status while simulations run;
* a shared :class:`~repro.service.store.ArtifactStore` so identical
  tasks across jobs, restarts and workers resolve from disk, plus a
  **single-flight table** so identical tasks *in flight* execute once
  — followers await the leader's future and copy its result;
* **streaming partial results**: :meth:`Job.stream` is an async
  iterator of task completions in completion order, and a JSONL sink
  mirrors the same stream to disk for offline consumers;
* **failure handling** on the runner's annotation seams: failed tasks
  retry with exponential backoff up to a budget; a worker whose
  process pool dies (``BrokenProcessPool``) respawns its runner, calls
  :func:`~repro.runner.cache.reset_code_version`, and re-queues the
  batch it was holding (completed siblings were already stored by the
  runner's salvage path, so nothing re-executes);
* **observability**: every queue/worker action lands in a dedicated
  :class:`~repro.obs.Tracer` — per-worker counters and busy spans,
  queue-depth and wait histograms — exportable as Chrome trace JSON
  and a metrics snapshot per run.

The scheduler is single-loop asyncio: all job/queue state is mutated
only from coroutines on the service's event loop, so there are no
locks beyond the per-job condition used by streamers.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Any, AsyncIterator, Callable, Dict, List, Mapping,
                    Optional, Sequence, Tuple, Union)

from repro.errors import ConfigError
from repro.obs import Tracer, write_chrome_trace, write_metrics_json
from repro.runner import (RunStats, SweepRunner, canonicalize,
                          reset_code_version, task_key)
from repro.runner.cache import ResultCache
from repro.runner.sweep import _annotate_failure
from repro.service.tasks import get_task

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class ServiceConfig:
    """Tuning knobs of one :class:`ChannelLabService`.

    Parameters
    ----------
    workers:
        Async workers (and executor threads).  Each worker owns one
        :class:`SweepRunner`.
    runner_jobs:
        Process-pool width of each worker's runner; ``1`` executes
        inline on the worker's thread.
    batch_size:
        Tasks a worker drains from the queue per dispatch (same job
        only).  Batches >1 amortise the runner's pool spin-up and are
        what make ``runner_jobs > 1`` effective.
    max_retries:
        Extra attempts a failing task gets before the job fails.
    backoff_base_s / backoff_cap_s:
        Exponential retry backoff: ``base * 2**(attempt-1)`` capped.
    max_salvages:
        Times a task may be re-queued because its worker's pool died
        (not counted against ``max_retries``).
    store:
        Shared :class:`~repro.service.store.ArtifactStore` (or plain
        :class:`ResultCache`) attached to every worker's runner; also
        the key space of the single-flight table.  ``None`` disables
        disk caching (in-flight dedup still works).
    record_events:
        Record trace events (spans) in the service tracer; metrics
        counters are always kept.
    """

    workers: int = 2
    runner_jobs: int = 1
    batch_size: int = 8
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    max_salvages: int = 3
    store: Optional[ResultCache] = None
    record_events: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.runner_jobs < 1:
            raise ConfigError(
                f"runner_jobs must be >= 1, got {self.runner_jobs}")
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff values must be >= 0")


@dataclass
class TaskResult:
    """One task's terminal record inside a job."""

    index: int
    ok: bool
    value: Any = None
    error: str = ""
    attempts: int = 1
    worker: int = -1
    deduped: bool = False
    wall_ms: float = 0.0

    def describe(self) -> Dict[str, Any]:
        """JSON-ready record (values canonicalised)."""
        return {
            "index": self.index,
            "ok": self.ok,
            "value": canonicalize(self.value),
            "error": self.error,
            "attempts": self.attempts,
            "worker": self.worker,
            "deduped": self.deduped,
            "wall_ms": round(self.wall_ms, 3),
        }


class _Task:
    """Internal queue entry: one (job, index) unit of work."""

    __slots__ = ("job", "index", "kwargs", "key", "attempts", "salvages",
                 "enqueued")

    def __init__(self, job: "Job", index: int,
                 kwargs: Mapping[str, Any], key: str) -> None:
        self.job = job
        self.index = index
        self.kwargs = dict(kwargs)
        self.key = key
        self.attempts = 0
        self.salvages = 0
        self.enqueued = 0.0


class Job:
    """One submitted sweep: N tasks of the same function.

    Jobs are created by :meth:`ChannelLabService.submit`; callers hold
    them to :meth:`wait`, :meth:`stream` partial results, or read
    :attr:`results` afterwards.
    """

    def __init__(self, job_id: str, name: str, fn: Callable[..., Any],
                 kwargs_list: Sequence[Mapping[str, Any]],
                 priority: int) -> None:
        self.id = job_id
        self.name = name
        self.fn = fn
        self.kwargs_list = [dict(kwargs) for kwargs in kwargs_list]
        self.priority = priority
        self.state = QUEUED
        #: Per-position terminal records, input order (None until done).
        self.results: List[Optional[TaskResult]] = [None] * len(kwargs_list)
        #: Terminal records in *completion* order (the stream's source).
        self.completion_log: List[TaskResult] = []
        #: Aggregated runner stats of every batch this job executed.
        self.run_stats = RunStats()
        self.error: Optional[BaseException] = None
        self._outstanding = len(kwargs_list)
        self._done = asyncio.Event()
        self._progress = asyncio.Condition()

    @property
    def tasks(self) -> int:
        """Number of tasks in the job."""
        return len(self.kwargs_list)

    @property
    def completed(self) -> int:
        """Terminal task records so far (successes and failures)."""
        return len(self.completion_log)

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    async def wait(self) -> "Job":
        """Block until the job reaches a terminal state."""
        await self._done.wait()
        return self

    async def stream(self) -> AsyncIterator[TaskResult]:
        """Yield task completions as they happen (completion order).

        Iteration ends when the job is terminal and every logged
        completion has been yielded; a subscriber that joins late
        replays the log from the start first.
        """
        cursor = 0
        while True:
            async with self._progress:
                while (cursor >= len(self.completion_log)
                       and not self.finished):
                    await self._progress.wait()
                if cursor < len(self.completion_log):
                    item = self.completion_log[cursor]
                    cursor += 1
                else:
                    return
            yield item

    def values(self) -> List[Any]:
        """Result values in input order; raises the job's failure.

        A failed job re-raises the (annotated) first task failure; a
        cancelled job raises :class:`ConfigError`.
        """
        if self.state == FAILED and self.error is not None:
            raise self.error
        if self.state == CANCELLED:
            raise ConfigError(f"job {self.id} was cancelled")
        if not self.finished:
            raise ConfigError(f"job {self.id} is still {self.state}")
        return [record.value if record is not None else None
                for record in self.results]

    def describe(self) -> Dict[str, Any]:
        """JSON-ready status document (the HTTP ``GET /jobs/<id>``)."""
        return {
            "id": self.id,
            "task": self.name,
            "state": self.state,
            "priority": self.priority,
            "tasks": self.tasks,
            "completed": self.completed,
            "ok": sum(1 for r in self.completion_log if r.ok),
            "failed": sum(1 for r in self.completion_log if not r.ok),
            "deduped": sum(1 for r in self.completion_log if r.deduped),
            "error": str(self.error) if self.error is not None else "",
        }


def _execute_batch(runner: SweepRunner, fn: Callable[..., Any],
                   kwargs_seq: Sequence[Mapping[str, Any]]
                   ) -> Tuple[List[Tuple[bool, Any, Optional[BaseException]]],
                              RunStats]:
    """Run one batch on the worker's runner; per-task outcomes + stats.

    Runs on an executor thread.  The happy path is one
    :meth:`SweepRunner.map` call (pool parallelism, in-call dedup).  On
    a failure the runner has already stored every completed sibling, so
    the salvage pass re-resolves each remaining task individually —
    completed ones hit the store, unfinished ones execute inline — and
    only genuinely failing tasks surface as errors.
    ``BrokenProcessPool`` is *not* absorbed: it means the worker lost
    its pool and must respawn (the caller's salvage path).
    """
    before = dataclasses.replace(runner.total)
    tasks = [dict(kwargs) for kwargs in kwargs_seq]
    outcomes: List[Tuple[bool, Any, Optional[BaseException]]] = []
    try:
        values = runner.map(fn, tasks)
        outcomes = [(True, value, None) for value in values]
    except BrokenProcessPool:
        raise
    except Exception as exc:
        failed_index = getattr(exc, "task_index", None)
        for index, kwargs in enumerate(tasks):
            if index == failed_index:
                outcomes.append((False, None, exc))
                continue
            try:
                outcomes.append((True, runner.call(fn, **kwargs), None))
            except BrokenProcessPool:
                raise
            except Exception as sub_exc:
                outcomes.append((False, None, sub_exc))
    after = runner.total
    stats = RunStats(tasks=after.tasks - before.tasks,
                     cache_hits=after.cache_hits - before.cache_hits,
                     executed=after.executed - before.executed,
                     deduped=after.deduped - before.deduped)
    return outcomes, stats


class ChannelLabService:
    """The channel lab as a service: queue, worker fleet, artifact store.

    Usage (single event loop)::

        service = ChannelLabService(ServiceConfig(workers=4))
        await service.start()
        job = await service.submit("square", [{"x": x} for x in range(100)])
        async for partial in job.stream():
            ...
        results = (await job.wait()).values()
        await service.stop()

    ``submit`` accepts either a registered task name (the HTTP/CLI
    path) or a module-level callable (the Python path).
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.tracer = Tracer(events=self.config.record_events)
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._jobs: Dict[str, Job] = {}
        #: Single-flight table: store key -> leader future resolving to
        #: ("ok", value) | ("err", None).
        self._inflight: Dict[str, asyncio.Future] = {}
        self._workers: List[asyncio.Task] = []
        self._aux: List[asyncio.Task] = []
        self._seq = itertools.count()
        self._job_counter = itertools.count(1)
        self._started = False
        self._epoch = time.perf_counter()
        #: Per-worker runners, for utilization reporting.
        self._runners: List[Optional[SweepRunner]] = (
            [None] * self.config.workers)
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ChannelLabService":
        """Spawn the worker fleet; idempotent."""
        if self._started:
            return self
        self._started = True
        self._epoch = time.perf_counter()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service")
        for wid in range(self.config.workers):
            self._workers.append(
                asyncio.create_task(self._worker_loop(wid),
                                    name=f"repro-service-worker-{wid}"))
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the fleet; with ``drain`` first waits for queued work."""
        if not self._started:
            return
        if drain:
            for job in list(self._jobs.values()):
                await job.wait()
            await self._drain_aux()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        await self._drain_aux()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    async def __aenter__(self) -> "ChannelLabService":
        """Start on entering an ``async with`` block."""
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        """Drain and stop on leaving the block."""
        await self.stop(drain=exc_info[0] is None)

    async def _drain_aux(self) -> None:
        """Await auxiliary tasks (sinks, requeue timers) to completion."""
        pending = [task for task in self._aux if not task.done()]
        self._aux = pending
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # -- submission ----------------------------------------------------------

    async def submit(self, task: Union[str, Callable[..., Any]],
                     kwargs_list: Sequence[Mapping[str, Any]],
                     priority: int = 0,
                     sink: Optional[str] = None) -> Job:
        """Queue one job of ``len(kwargs_list)`` tasks; returns the Job.

        ``task`` is a registered task name or a module-level callable.
        Higher ``priority`` runs earlier; equal priorities are FIFO.
        ``sink`` mirrors the completion stream to a JSONL file.
        """
        if not self._started:
            raise ConfigError("service is not started; call start() first")
        if isinstance(task, str):
            name, fn = task, get_task(task)
        else:
            fn = task
            name = getattr(fn, "__name__", repr(fn))
        if not kwargs_list:
            raise ConfigError("kwargs_list must not be empty")
        job = Job(f"job-{next(self._job_counter):06d}", name, fn,
                  kwargs_list, priority)
        self._jobs[job.id] = job
        store = self.config.store
        metrics = self.tracer.metrics
        metrics.counter("service.jobs_submitted").inc()
        metrics.counter("service.tasks_submitted").inc(job.tasks)
        for index, kwargs in enumerate(job.kwargs_list):
            key = (store.key_for(fn, kwargs) if store is not None
                   else task_key(fn, kwargs))
            entry = _Task(job, index, kwargs, key)
            self._enqueue(entry)
        metrics.histogram("service.queue_depth").observe(self._queue.qsize())
        if sink is not None:
            self._spawn_aux(self._sink_job(job, sink))
        return job

    def _enqueue(self, task: _Task) -> None:
        """Put one task on the priority queue (FIFO within priority)."""
        task.enqueued = time.perf_counter()
        self._queue.put_nowait((-task.job.priority, next(self._seq), task))

    def _spawn_aux(self, coro: Any) -> None:
        """Track an auxiliary coroutine so stop() can await it."""
        self._aux.append(asyncio.create_task(coro))

    # -- status --------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        """The job called ``job_id`` (ConfigError when unknown)."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ConfigError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        """Every submitted job, submission order."""
        return list(self._jobs.values())

    async def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns False if it already finished.

        Queued tasks are dropped as workers reach them; a task already
        executing on a pool is not interrupted (its result is simply
        discarded).
        """
        job = self.job(job_id)
        if job.finished:
            return False
        await self._finalize(job, CANCELLED)
        self.tracer.metrics.counter("service.jobs_cancelled").inc()
        return True

    def utilization(self) -> Dict[str, Any]:
        """Per-worker utilization + queue snapshot, JSON-ready.

        ``busy_ms`` sums task-batch execution time on the worker's
        executor thread; ``utilization`` divides by wall time since the
        service started; cache/executed counts come from each worker's
        runner totals, hit rate from the shared store.
        """
        elapsed = max(time.perf_counter() - self._epoch, 1e-9)
        metrics = self.tracer.metrics
        workers = []
        for wid in range(self.config.workers):
            runner = self._runners[wid]
            totals = runner.total if runner is not None else RunStats()
            busy = metrics.histogram(f"service.worker{wid}.busy_ms")
            tasks_done = metrics.counter(f"service.worker{wid}.tasks").value
            workers.append({
                "worker": wid,
                "tasks": tasks_done,
                "batches": busy.count,
                "busy_ms": round(busy.total, 3),
                "utilization": round(busy.total / (elapsed * 1e3), 4),
                "tasks_per_s": round(tasks_done / elapsed, 2),
                "cache_hits": totals.cache_hits,
                "executed": totals.executed,
            })
        store = self.config.store
        lookups = 0
        hit_rate = 0.0
        if store is not None:
            lookups = store.stats.hits + store.stats.misses
            hit_rate = store.stats.hits / lookups if lookups else 0.0
        return {
            "elapsed_s": round(elapsed, 3),
            "queue_depth": self._queue.qsize(),
            "inflight": len(self._inflight),
            "jobs": len(self._jobs),
            "store_lookups": lookups,
            "store_hit_rate": round(hit_rate, 4),
            "workers": workers,
        }

    def export_chrome_trace(self, path: str) -> None:
        """Write this run's service trace as Chrome trace-event JSON."""
        write_chrome_trace(self.tracer, path)

    def export_metrics(self, path: str) -> None:
        """Write this run's metrics snapshot as JSON."""
        write_metrics_json(self.tracer, path)

    # -- worker fleet --------------------------------------------------------

    def _make_runner(self) -> SweepRunner:
        """A fresh runner for a (re)spawned worker.

        Resets the memoized code version first, so a worker brought up
        after a redeploy addresses the store under the new sources.
        """
        reset_code_version()
        return SweepRunner(jobs=self.config.runner_jobs,
                           cache=self.config.store)

    async def _worker_loop(self, wid: int) -> None:
        """One worker: dequeue, batch, dispatch, record — forever."""
        runner = self._make_runner()
        self._runners[wid] = runner
        metrics = self.tracer.metrics
        while True:
            _, _, task = await self._queue.get()
            if task.job.finished:
                continue
            batch = self._drain_batch(task)
            metrics.histogram("service.queue_depth").observe(
                self._queue.qsize())
            leaders: List[Tuple[_Task, asyncio.Future]] = []
            for entry in batch:
                waited = time.perf_counter() - entry.enqueued
                metrics.histogram("service.queue_wait_ms").observe(
                    waited * 1e3)
                leader = self._inflight.get(entry.key)
                if leader is not None:
                    # Identical task already executing: follow it.
                    self._spawn_aux(self._follow(entry, leader))
                    continue
                future = asyncio.get_running_loop().create_future()
                self._inflight[entry.key] = future
                leaders.append((entry, future))
            if not leaders:
                continue
            try:
                runner = await self._dispatch(wid, runner, leaders)
            except asyncio.CancelledError:
                # Service stopping: release followers so they retry or
                # resolve on a later start; nothing records.
                for entry, future in leaders:
                    self._inflight.pop(entry.key, None)
                    if not future.done():
                        future.set_result(("err", None))
                raise

    def _drain_batch(self, first: _Task) -> List[_Task]:
        """Greedily extend ``first`` with queued same-job tasks.

        Only same-job tasks join a batch (one function per
        :meth:`SweepRunner.map` call); anything else drained is
        re-queued with its original priority and sequence, so ordering
        is preserved.
        """
        batch = [first]
        requeue = []
        while len(batch) < self.config.batch_size:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            candidate = item[2]
            if candidate.job is first.job and not candidate.job.finished:
                batch.append(candidate)
            else:
                requeue.append(item)
        for item in requeue:
            self._queue.put_nowait(item)
        return batch

    async def _dispatch(self, wid: int, runner: SweepRunner,
                        leaders: List[Tuple[_Task, asyncio.Future]]
                        ) -> SweepRunner:
        """Execute one leader batch; returns the (possibly new) runner."""
        job = leaders[0][0].job
        fn = job.fn
        metrics = self.tracer.metrics
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            with self.tracer.wall_span(
                    "service.batch", "service", track=f"worker{wid}",
                    args={"job": job.id, "tasks": len(leaders)}):
                outcomes, stats = await loop.run_in_executor(
                    self._executor, _execute_batch, runner, fn,
                    [entry.kwargs for entry, _ in leaders])
        except BrokenProcessPool:
            # Worker-loss salvage: the pool is gone, the runner with it.
            # Completed siblings were stored by the runner before the
            # pool died; re-queue the batch (bounded) on a fresh runner.
            metrics.counter("service.worker_respawns").inc()
            for entry, future in leaders:
                self._inflight.pop(entry.key, None)
                if not future.done():
                    future.set_result(("err", None))
                entry.salvages += 1
                if entry.salvages <= self.config.max_salvages:
                    metrics.counter("service.salvaged_tasks").inc()
                    self._enqueue(entry)
                else:
                    await self._record_failure(
                        entry, wid,
                        ConfigError(f"worker pool lost "
                                    f"{entry.salvages} times"))
            fresh = self._make_runner()
            self._runners[wid] = fresh
            return fresh
        elapsed_ms = (time.perf_counter() - started) * 1e3
        metrics.histogram(f"service.worker{wid}.busy_ms").observe(elapsed_ms)
        metrics.counter(f"service.worker{wid}.tasks").inc(len(leaders))
        job.run_stats.add(stats)
        per_task_ms = elapsed_ms / max(len(leaders), 1)
        for (entry, future), (ok, value, exc) in zip(leaders, outcomes):
            entry.attempts += 1
            self._inflight.pop(entry.key, None)
            if ok:
                if not future.done():
                    future.set_result(("ok", value))
                await self._record_success(entry, wid, value, per_task_ms)
            else:
                if not future.done():
                    future.set_result(("err", None))
                await self._handle_failure(entry, wid, exc)
        return runner

    # -- single-flight followers --------------------------------------------

    async def _follow(self, task: _Task, leader: asyncio.Future) -> None:
        """Await another worker's identical execution and copy it."""
        status, value = await leader
        if task.job.finished:
            return
        if status == "ok":
            self.tracer.metrics.counter("service.dedup_inflight").inc()
            task.job.run_stats.deduped += 1
            await self._record_success(task, -1, value, 0.0, deduped=True)
        else:
            # The leader failed; this position re-enters the queue and
            # becomes (or follows) a new leader on its own attempt.
            self._enqueue(task)

    # -- terminal recording --------------------------------------------------

    async def _record_success(self, task: _Task, wid: int, value: Any,
                              wall_ms: float, deduped: bool = False) -> None:
        """Record one task's success and advance the job."""
        self.tracer.metrics.counter("service.tasks_completed").inc()
        record = TaskResult(index=task.index, ok=True, value=value,
                            attempts=max(task.attempts, 1), worker=wid,
                            deduped=deduped, wall_ms=wall_ms)
        await self._record(task, record)

    async def _record_failure(self, task: _Task, wid: int,
                              exc: BaseException) -> None:
        """Record one task's permanent failure and advance the job."""
        self.tracer.metrics.counter("service.tasks_failed").inc()
        record = TaskResult(index=task.index, ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=max(task.attempts, 1), worker=wid)
        if task.job.error is None:
            task.job.error = _annotate_failure(exc, task.index, task.kwargs)
        await self._record(task, record)

    async def _handle_failure(self, task: _Task, wid: int,
                              exc: Optional[BaseException]) -> None:
        """Retry with backoff, or record the failure permanently."""
        failure = exc if exc is not None else ConfigError("task failed")
        if task.job.finished:
            return
        if task.attempts <= self.config.max_retries:
            self.tracer.metrics.counter("service.retries").inc()
            delay = min(self.config.backoff_cap_s,
                        self.config.backoff_base_s
                        * (2.0 ** (task.attempts - 1)))
            self._spawn_aux(self._requeue_later(task, delay))
            return
        await self._record_failure(task, wid, failure)

    async def _requeue_later(self, task: _Task, delay: float) -> None:
        """Sleep the backoff, then put the task back on the queue."""
        await asyncio.sleep(delay)
        if not task.job.finished:
            self._enqueue(task)

    async def _record(self, task: _Task, record: TaskResult) -> None:
        """Append a terminal record, notify streamers, maybe finalize."""
        job = task.job
        if job.finished:
            return
        async with job._progress:
            if job.state == QUEUED:
                job.state = RUNNING
            job.results[task.index] = record
            job.completion_log.append(record)
            job._outstanding -= 1
            job._progress.notify_all()
        if job._outstanding <= 0:
            await self._finalize(
                job, FAILED if job.error is not None else DONE)

    async def _finalize(self, job: Job, state: str) -> None:
        """Move a job to a terminal state and wake every waiter."""
        async with job._progress:
            if job.finished:
                return
            job.state = state
            job._done.set()
            job._progress.notify_all()
        store = self.config.store
        if store is not None and hasattr(store, "evict_to_budget"):
            store.evict_to_budget()

    # -- JSONL sink ----------------------------------------------------------

    async def _sink_job(self, job: Job, path: str) -> None:
        """Mirror a job's completion stream to a JSONL file.

        One line per task completion (completion order), then a final
        summary line with the job's terminal state.  All file I/O runs
        in the loop's default executor so a slow disk never stalls the
        scheduler's event loop between completions.
        """
        loop = asyncio.get_running_loop()

        def _open():
            return open(path, "w", encoding="utf-8")

        def _emit(handle, payload: str) -> None:
            handle.write(payload)
            handle.write("\n")
            handle.flush()

        handle = await loop.run_in_executor(None, _open)
        try:
            async for record in job.stream():
                await loop.run_in_executor(
                    None, _emit, handle,
                    json.dumps(record.describe(), sort_keys=True))
            await job.wait()
            await loop.run_in_executor(
                None, _emit, handle,
                json.dumps(job.describe(), sort_keys=True))
        finally:
            await loop.run_in_executor(None, handle.close)
